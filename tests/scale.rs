//! Scale smoke tests: larger-than-unit workloads that must stay fast
//! and correct. The heavyweight variant is `#[ignore]`d for routine
//! runs (`cargo test -- --ignored` to include it).

use std::time::Instant;

use ssdm::bistab::{self, BistabConfig};
use ssdm::{Backend, Ssdm};

#[test]
fn midsize_bistab_under_a_second_per_query() {
    let mut db = Ssdm::open(Backend::Relational);
    db.set_externalize_threshold(256, 4096);
    bistab::load_bistab(
        &mut db,
        &BistabConfig {
            tasks: 300,
            realizations: 4,
            trajectory_len: 1024,
            seed: 11,
        },
    )
    .unwrap();
    for (name, q) in bistab::queries() {
        let t = Instant::now();
        let rows = db.query(&q).unwrap().into_rows().unwrap();
        assert!(!rows.is_empty(), "{name}");
        assert!(
            t.elapsed().as_secs_f64() < 2.0,
            "{name} took {:?}",
            t.elapsed()
        );
    }
}

#[test]
fn wide_graph_point_query_stays_fast() {
    // 20k triples; a selective query must run in milliseconds thanks to
    // the POS index + join ordering, not seconds of scanning.
    let mut db = Ssdm::open(Backend::Memory);
    let mut turtle = String::from("@prefix ex: <http://e#> .\n");
    for i in 0..5000 {
        turtle.push_str(&format!(
            "ex:n{i} ex:group {} ; ex:value {} ; ex:tag \"t{}\" ; ex:flag {} .\n",
            i % 50,
            i,
            i % 7,
            i % 2
        ));
    }
    db.load_turtle(&turtle).unwrap();
    assert_eq!(db.dataset.graph.len(), 20_000);
    let t = Instant::now();
    let rows = db
        .query(
            r#"PREFIX ex: <http://e#>
               SELECT ?n WHERE { ?n ex:value 4321 ; ex:group ?g ; ex:flag 1 }"#,
        )
        .unwrap()
        .into_rows()
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert!(
        t.elapsed().as_millis() < 200,
        "selective query took {:?}",
        t.elapsed()
    );
}

#[test]
#[ignore = "heavyweight: ~8 MB arrays, thousands of tasks"]
fn heavyweight_bistab() {
    let mut db = Ssdm::open(Backend::Relational);
    db.set_externalize_threshold(256, 0); // auto chunk size
    bistab::load_bistab(
        &mut db,
        &BistabConfig {
            tasks: 2000,
            realizations: 8,
            trajectory_len: 4096,
            seed: 123,
        },
    )
    .unwrap();
    for (name, q) in bistab::queries() {
        let t = Instant::now();
        let rows = db.query(&q).unwrap().into_rows().unwrap();
        println!("{name}: {} rows in {:?}", rows.len(), t.elapsed());
        assert!(!rows.is_empty());
    }
}
