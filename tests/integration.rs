//! Workspace integration tests: exercise the full stack (Turtle parsing
//! → graph → SciSPARQL → optimizer → executor → ASEI back-ends) across
//! crates, including cross-backend result agreement.

use ssdm::bistab::{self, BistabConfig};
use ssdm::{Backend, Ssdm};
use ssdm_storage::{spd::SpdOptions, ChunkStore, RetrievalStrategy};

fn render(rows: &[Vec<Option<scisparql::Value>>]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|c| c.as_ref().map(|v| v.to_string()).unwrap_or_default())
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort();
    out
}

/// The same query suite must agree across every storage configuration.
#[test]
fn backends_agree_on_bistab_suite() {
    let config = BistabConfig {
        tasks: 30,
        realizations: 3,
        trajectory_len: 128,
        seed: 99,
    };
    let dir = std::env::temp_dir().join(format!("ssdm-it-{}", std::process::id()));
    let mut reference: Option<Vec<Vec<String>>> = None;
    let backends = || -> Vec<(&'static str, Ssdm)> {
        vec![
            ("memory-resident", Ssdm::open(Backend::Memory)),
            ("memory-external", {
                let mut db = Ssdm::open(Backend::Memory);
                db.set_externalize_threshold(32, 256);
                db
            }),
            ("file", {
                let mut db = Ssdm::open(Backend::File(dir.clone()));
                db.set_externalize_threshold(32, 256);
                db
            }),
            ("relational", {
                let mut db = Ssdm::open(Backend::Relational);
                db.set_externalize_threshold(32, 256);
                db
            }),
        ]
    };
    for (name, mut db) in backends() {
        bistab::load_bistab(&mut db, &config).unwrap();
        let mut all = Vec::new();
        for (qname, q) in bistab::queries() {
            let rows = db
                .query(&q)
                .unwrap_or_else(|e| panic!("{name}/{qname}: {e}"))
                .into_rows()
                .unwrap();
            all.push(render(&rows));
        }
        match &reference {
            None => reference = Some(all),
            Some(r) => assert_eq!(r, &all, "backend {name} diverged"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Retrieval strategies agree on results; only I/O profiles differ.
#[test]
fn retrieval_strategies_agree() {
    let mut db = Ssdm::open(Backend::Relational);
    db.set_externalize_threshold(16, 64);
    db.load_turtle(
        r#"@prefix ex: <http://e#> .
           ex:a ex:v (1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20) ."#,
    )
    .unwrap();
    let q = "PREFIX ex: <http://e#>
             SELECT (array_sum(?v[1:2:19]) AS ?s) (?v[7] AS ?e) WHERE { ex:a ex:v ?v }";
    let mut results = Vec::new();
    for strategy in [
        RetrievalStrategy::Single,
        RetrievalStrategy::BufferedIn { buffer_size: 2 },
        RetrievalStrategy::SpdRange {
            options: SpdOptions::default(),
        },
        RetrievalStrategy::WholeArray,
    ] {
        db.set_strategy(strategy);
        let rows = db.query(q).unwrap().into_rows().unwrap();
        results.push(render(&rows));
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]));
}

/// Full round trip: Turtle in → query → CONSTRUCT → serialize →
/// reload → consolidate → same answers.
#[test]
fn construct_serialize_reload_roundtrip() {
    let mut db = Ssdm::open(Backend::Memory);
    db.load_turtle(
        r#"@prefix ex: <http://e#> .
           ex:s1 ex:data (1 2 3) ; ex:tag "a" .
           ex:s2 ex:data (4 5 6) ; ex:tag "b" ."#,
    )
    .unwrap();
    let scisparql::QueryResult::Graph(g) = db
        .query(
            r#"PREFIX ex: <http://e#>
               CONSTRUCT { ?s ex:copy ?d } WHERE { ?s ex:data ?d }"#,
        )
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(g.len(), 2);
    let text = ssdm_rdf::ntriples::serialize(&g);
    let mut db2 = Ssdm::open(Backend::Memory);
    db2.load_turtle(&text).unwrap();
    db2.consolidate_collections();
    let rows = db2
        .query(
            r#"PREFIX ex: <http://e#>
               SELECT (array_sum(?d) AS ?s) WHERE { ?x ex:copy ?d } ORDER BY ?s"#,
        )
        .unwrap()
        .into_rows()
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "6");
    assert_eq!(rows[1][0].as_ref().unwrap().to_string(), "15");
}

/// UDFs defined over graph data keep working when arrays externalize.
#[test]
fn udf_over_external_arrays() {
    let mut db = Ssdm::open(Backend::Relational);
    db.set_externalize_threshold(4, 32);
    db.load_turtle(
        r#"@prefix ex: <http://e#> .
           ex:x ex:series (1 2 3 4 5 6 7 8) .
           ex:y ex:series (10 20 30 40 50 60 70 80) ."#,
    )
    .unwrap();
    db.query(
        "PREFIX ex: <http://e#>
         DEFINE FUNCTION range_of(?a) AS
         SELECT (array_max(?a) - array_min(?a) AS ?r) WHERE { }",
    )
    .unwrap();
    let rows = db
        .query(
            "PREFIX ex: <http://e#>
             SELECT ?s (range_of(?v) AS ?range) WHERE { ?s ex:series ?v } ORDER BY ?range",
        )
        .unwrap()
        .into_rows()
        .unwrap();
    assert_eq!(rows[0][1].as_ref().unwrap().to_string(), "7");
    assert_eq!(rows[1][1].as_ref().unwrap().to_string(), "70");
}

/// The SPD strategy issues fewer statements than SINGLE on the same
/// workload, with identical results (the thesis' headline storage
/// claim, end to end through the query language).
#[test]
fn spd_reduces_statements_end_to_end() {
    let build = |strategy: RetrievalStrategy| {
        let mut db = Ssdm::open(Backend::Relational);
        db.set_externalize_threshold(16, 32); // 4 elements per chunk
        db.load_turtle(&format!(
            "@prefix ex: <http://e#> . ex:a ex:v ({}) .",
            (0..512)
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        ))
        .unwrap();
        db.set_strategy(strategy);
        db.dataset.arrays.backend_mut().reset_io_stats();
        let rows = db
            .query("PREFIX ex: <http://e#> SELECT (array_sum(?v) AS ?s) WHERE { ex:a ex:v ?v }")
            .unwrap()
            .into_rows()
            .unwrap();
        let stats = db.dataset.arrays.backend().io_stats();
        (rows[0][0].as_ref().unwrap().to_string(), stats)
    };
    let (sum_single, st_single) = build(RetrievalStrategy::Single);
    let (sum_spd, st_spd) = build(RetrievalStrategy::SpdRange {
        options: SpdOptions::default(),
    });
    assert_eq!(sum_single, sum_spd);
    assert_eq!(sum_spd, ((0..512).sum::<i64>()).to_string());
    assert!(
        st_single.statements > st_spd.statements * 10,
        "SINGLE {} vs SPD {}",
        st_single.statements,
        st_spd.statements
    );
}

/// Data Cube pipeline through the ssdm facade.
#[test]
fn datacube_consolidation_preserves_queries() {
    use ssdm::datacube;
    let turtle = datacube::generate_datacube(&[5, 6]);
    let mut db = Ssdm::open(Backend::Memory);
    db.load_turtle(&turtle).unwrap();
    let obs = db
        .query(
            r#"PREFIX qb: <http://purl.org/linked-data/cube#>
               PREFIX ex: <http://example.org/cube/>
               SELECT ?m WHERE { ?o ex:dim1 4 ; ex:dim2 2 ; qb:measure ?m }"#,
        )
        .unwrap()
        .into_rows()
        .unwrap();
    datacube::consolidate_datacube(&mut db.dataset.graph);
    let arr = db
        .query(
            r#"PREFIX ex: <http://example.org/cube/>
               SELECT (?a[4,2] AS ?m)
               WHERE { ex:ds <urn:ssdm:datacube:measureArray> ?a }"#,
        )
        .unwrap()
        .into_rows()
        .unwrap();
    assert_eq!(
        obs[0][0].as_ref().unwrap().to_string(),
        arr[0][0].as_ref().unwrap().to_string()
    );
}
