//! RDF Data Cube consolidation (thesis §5.3.3).
//!
//! Builds a statistical dataset in the W3C Data Cube vocabulary (one
//! `qb:Observation` node per cell), shows the graph-size blow-up, then
//! consolidates the observations into a single numeric array plus
//! dimension dictionaries — and queries both representations.
//!
//! Run with: `cargo run --example datacube`

use std::time::Instant;

use ssdm::datacube::{self, consolidate_datacube};
use ssdm::{Backend, Ssdm};

fn main() {
    // A 3-dimensional cube: 12 regions x 10 years x 4 quarters.
    let dims = [12usize, 10, 4];
    let turtle = datacube::generate_datacube(&dims);

    let mut db = Ssdm::open(Backend::Memory);
    db.load_turtle(&turtle).expect("load");
    let before = db.dataset.graph.len();
    println!(
        "Data Cube with {} cells loaded as {} triples",
        dims.iter().product::<usize>(),
        before
    );

    // Querying the observation form: find the measure at (3, 5, 2).
    let obs_query = r#"
        PREFIX qb: <http://purl.org/linked-data/cube#>
        PREFIX ex: <http://example.org/cube/>
        SELECT ?m WHERE {
          ?o qb:dataSet ex:ds ; ex:dim1 3 ; ex:dim2 5 ; ex:dim3 2 ; qb:measure ?m
        }"#;
    let t = Instant::now();
    let rows = db.query(obs_query).unwrap().into_rows().unwrap();
    println!(
        "observation-form lookup: {} (in {:?})",
        rows[0][0].as_ref().unwrap(),
        t.elapsed()
    );

    // Consolidate.
    let t = Instant::now();
    let report = consolidate_datacube(&mut db.dataset.graph);
    println!(
        "\nconsolidated {} dataset(s): removed {} observation triples in {:?}",
        report.datasets,
        report.triples_removed,
        t.elapsed()
    );
    println!(
        "graph shrank {} -> {} triples ({}x reduction)",
        before,
        db.dataset.graph.len(),
        before / db.dataset.graph.len().max(1)
    );

    // The same lookup against the array form: one dereference.
    let arr_query = r#"
        PREFIX ex: <http://example.org/cube/>
        SELECT (?a[3, 5, 2] AS ?m) WHERE {
          ex:ds <urn:ssdm:datacube:measureArray> ?a
        }"#;
    let t = Instant::now();
    let rows = db.query(arr_query).unwrap().into_rows().unwrap();
    println!(
        "array-form lookup:       {} (in {:?})",
        rows[0][0].as_ref().unwrap(),
        t.elapsed()
    );

    // And array analytics that the observation form cannot express
    // without heavy aggregation machinery:
    let rows = db
        .query(
            r#"PREFIX ex: <http://example.org/cube/>
               SELECT (array_avg(?a[1]) AS ?region1Mean)
                      (array_max(?a) AS ?peak)
               WHERE { ex:ds <urn:ssdm:datacube:measureArray> ?a }"#,
        )
        .unwrap()
        .into_rows()
        .unwrap();
    println!(
        "region-1 mean = {}, global peak = {}",
        rows[0][0].as_ref().unwrap(),
        rows[0][1].as_ref().unwrap()
    );
}
