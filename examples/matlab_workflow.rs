//! The ch. 7 workflow: computational results annotated with Semantic
//! Web metadata and retrieved by content-free search.
//!
//! A "Matlab user" (here: plain Rust standing in for the MCR client)
//! runs a parameter sweep, stores each result matrix under a URI with
//! descriptive triples, and a collaborator later *finds* the right runs
//! by metadata and fetches exactly the arrays they need.
//!
//! Run with: `cargo run --example matlab_workflow`

use ssdm::workflow::Session;
use ssdm::{Backend, Ssdm};
use ssdm_array::NumArray;
use ssdm_rdf::Term;

fn meta(p: &str) -> Term {
    Term::uri(format!("http://meta#{p}"))
}

fn main() {
    let dir = std::env::temp_dir().join("ssdm-workflow-example");
    let mut db = Ssdm::open(Backend::File(dir.clone()));
    db.dataset.chunk_bytes = 4096;

    {
        let mut session = Session::connect(&mut db);

        // --- producer side: run simulations, store + annotate ---------
        println!("storing simulation results with metadata...");
        for (i, damping) in [0.1f64, 0.5, 0.9].iter().enumerate() {
            // A decaying 64x64 wave field.
            let field = NumArray::from_shape_fn(&[64, 64], |ix| {
                let (r, c) = (ix[0] as f64, ix[1] as f64);
                let v = ((r / 5.0).sin() + (c / 7.0).cos()) * (-damping * r / 64.0).exp();
                v.into()
            });
            session
                .store(
                    &format!("http://sim/run{i}"),
                    &field,
                    &[
                        (meta("model"), Term::str("wave2d")),
                        (meta("damping"), Term::double(*damping)),
                        (meta("grid"), Term::integer(64)),
                        (meta("author"), Term::str("alice")),
                    ],
                )
                .expect("store");
        }

        // --- consumer side: search by metadata -------------------------
        println!("\nsearching: wave2d runs with damping < 0.6 ...");
        let found = session
            .find(
                r#"?r <http://meta#model> "wave2d" ;
                      <http://meta#damping> ?d FILTER (?d < 0.6)"#,
            )
            .expect("find");
        println!("  found: {found:?}");

        // --- server-side post-processing before transfer ----------------
        println!("\nper-run first-row energy (computed where the data lives):");
        let rows = session
            .query(
                r#"SELECT ?r ?d (array_avg(?v[1]) AS ?rowMean) WHERE {
                     ?r <http://meta#model> "wave2d" ;
                        <http://meta#damping> ?d ;
                        <urn:ssdm:value> ?v
                   } ORDER BY ?d"#,
            )
            .expect("query")
            .into_rows()
            .unwrap();
        for row in &rows {
            let cells: Vec<String> = row
                .iter()
                .map(|c| c.as_ref().map(|v| v.to_string()).unwrap_or_default())
                .collect();
            println!("  {}", cells.join("  "));
        }

        // --- fetch only the chosen result -------------------------------
        let chosen = &found[0];
        println!("\nfetching {chosen} ...");
        let matrix = session.fetch(chosen).expect("fetch");
        println!(
            "  got a {:?} matrix; corner element = {}",
            matrix.shape(),
            matrix.get(&[0, 0]).unwrap()
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
