//! The BISTAB application scenario (thesis §6.4): a parameter study of
//! a bistable genetic switch, queried through SciSPARQL with trajectory
//! arrays stored in the embedded relational back-end.
//!
//! Demonstrates the end-to-end pipeline the paper motivates: metadata
//! filters select tasks, array slices/aggregates post-process the
//! numeric trajectories, and the array contents are fetched lazily —
//! only the chunks a query touches leave the back-end.
//!
//! Run with: `cargo run --example bistab_analysis`

use std::time::Instant;

use ssdm::bistab::{self, BistabConfig};
use ssdm::{Backend, Ssdm};
use ssdm_storage::ChunkStore;

fn main() {
    let config = BistabConfig {
        tasks: 400,
        realizations: 4,
        trajectory_len: 1024,
        seed: 42,
    };

    let mut db = Ssdm::open(Backend::Relational);
    // Trajectories (1024 elements) are stored externally in 2 KiB chunks.
    db.set_externalize_threshold(128, 2048);

    let t = Instant::now();
    bistab::load_bistab(&mut db, &config).expect("generate");
    println!(
        "loaded {} tasks ({} graph triples, trajectories externalized) in {:?}\n",
        config.tasks,
        db.dataset.graph.len(),
        t.elapsed()
    );

    for (name, query) in bistab::queries() {
        db.dataset.arrays.backend_mut().reset_io_stats();
        let t = Instant::now();
        let result = db.query(&query).expect(name);
        let elapsed = t.elapsed();
        let io = db.dataset.arrays.backend().io_stats();
        let rows = result.into_rows().unwrap();
        println!(
            "{name}: {} rows in {elapsed:?} — {} back-end statements, {} chunks, {} KiB fetched",
            rows.len(),
            io.statements,
            io.chunks_returned,
            io.bytes_returned / 1024
        );
        for row in rows.iter().take(3) {
            let cells: Vec<String> = row
                .iter()
                .map(|c| c.as_ref().map(|v| v.to_string()).unwrap_or_default())
                .collect();
            println!("    {}", cells.join("  "));
        }
        if rows.len() > 3 {
            println!("    ... ({} more)", rows.len() - 3);
        }
        println!();
    }

    // The headline behaviour: Q3 only reads the first 32 of 1024
    // elements per trajectory. Compare chunks fetched against a full
    // materialization of every matching trajectory.
    println!("Lazy-retrieval check:");
    db.dataset.arrays.backend_mut().reset_io_stats();
    db.query(
        &format!(
            "PREFIX b: <{}>\nSELECT (array_avg(?tr[1:32]) AS ?e) WHERE {{ ?t b:trajectory ?tr ; b:result 1 }}",
            bistab::NS
        ),
    )
    .unwrap();
    let sliced = db.dataset.arrays.backend().io_stats();
    db.dataset.arrays.backend_mut().reset_io_stats();
    db.query(
        &format!(
            "PREFIX b: <{}>\nSELECT (array_avg(?tr) AS ?e) WHERE {{ ?t b:trajectory ?tr ; b:result 1 }}",
            bistab::NS
        ),
    )
    .unwrap();
    let full = db.dataset.arrays.backend().io_stats();
    println!(
        "  slice [1:32]: {} chunks, {} KiB   |   whole array: {} chunks, {} KiB",
        sliced.chunks_returned,
        sliced.bytes_returned / 1024,
        full.chunks_returned,
        full.bytes_returned / 1024
    );
}
