//! Client–server deployment (thesis §5.1 / ch. 7 transport).
//!
//! Spawns an SSDM server thread over the relational back-end, then acts
//! as a remote client: loads data with updates, defines a function, and
//! runs array queries over the wire — the same protocol the `ssdm-server`
//! binary speaks and a Matlab-style client would use.
//!
//! Run with: `cargo run --example client_server`

use ssdm::server::{Client, Server};
use ssdm::{Backend, Ssdm};

fn main() {
    // --- server side --------------------------------------------------
    let mut db = Ssdm::open(Backend::Relational);
    db.set_externalize_threshold(1000, 8192);
    let server = Server::bind("127.0.0.1:0", db).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    println!("server listening on {addr}");

    // --- client side ----------------------------------------------------
    let mut client = Client::connect(addr).expect("connect");

    println!("\ninserting data over the wire...");
    let r = client
        .query(
            r#"PREFIX ex: <http://lab#>
               INSERT DATA {
                 ex:sensor1 ex:site "roof" ; ex:readings (18 19 22 25 24 21) .
                 ex:sensor2 ex:site "cellar" ; ex:readings (11 11 12 12 11 11) .
               }"#,
        )
        .expect("insert");
    println!("  {}", r.trim());

    println!("\ndefining a server-side function...");
    client
        .query(
            "DEFINE FUNCTION spread(?a) AS SELECT (array_max(?a) - array_min(?a) AS ?r) WHERE { }",
        )
        .expect("define");

    println!("\nquerying (computation happens on the server):");
    let (vars, rows) = client
        .query_rows(
            r#"PREFIX ex: <http://lab#>
               SELECT ?site (array_avg(?r) AS ?mean) (spread(?r) AS ?spread)
               WHERE { ?s ex:site ?site ; ex:readings ?r } ORDER BY ?site"#,
        )
        .expect("select");
    println!("  {}", vars.join("\t"));
    for row in rows {
        println!("  {}", row.join("\t"));
    }

    println!("\nerrors stay on the connection:");
    match client.query("SELECT nonsense FROM nowhere") {
        Err(e) => println!("  server said: {e}"),
        Ok(_) => unreachable!(),
    }

    let (_, rows) = client
        .query_rows(r#"PREFIX ex: <http://lab#> SELECT ?s WHERE { ?s ex:site ?x }"#)
        .expect("still alive");
    println!(
        "  connection still serves queries ({} sensors found)",
        rows.len()
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("join");
    println!("\nserver shut down cleanly");
}
