//! Quickstart: RDF with Arrays in five minutes.
//!
//! Loads a small dataset mixing metadata (strings, URIs) and numeric
//! matrices, then walks through the core SciSPARQL features: graph
//! patterns, array dereference and slicing, array arithmetic, built-in
//! array functions, and a user-defined function used as a second-order
//! argument.
//!
//! Run with: `cargo run --example quickstart`

use ssdm::{Backend, Ssdm};

fn show(db: &mut Ssdm, title: &str, query: &str) {
    println!("--- {title}\n{query}\n");
    match db.query(query) {
        Ok(result) => println!("{}", result.to_table()),
        Err(e) => println!("error: {e}\n"),
    }
}

fn main() {
    let mut db = Ssdm::open(Backend::Memory);

    // Weather-station measurements: a 2-D matrix per station
    // (rows = days, columns = hours sampled).
    db.load_turtle(
        r#"
        @prefix ex: <http://example.org/weather#> .
        ex:uppsala a ex:Station ; ex:name "Uppsala" ;
            ex:temperature ((18 19 21) (16 17 20) (12 14 15)) .
        ex:kiruna a ex:Station ; ex:name "Kiruna" ;
            ex:temperature ((-8 -4 -2) (-12 -9 -5) (-15 -11 -8)) .
        ex:lund a ex:Station ; ex:name "Lund" ;
            ex:temperature ((20 22 25) (19 21 24) (18 20 22)) .
    "#,
    )
    .expect("load");

    show(
        &mut db,
        "Stations and their full matrices",
        r#"PREFIX ex: <http://example.org/weather#>
SELECT ?name ?t WHERE { ?s a ex:Station ; ex:name ?name ; ex:temperature ?t }
ORDER BY ?name"#,
    );

    show(
        &mut db,
        "Array dereference: day 2, hour 3 (1-based subscripts)",
        r#"PREFIX ex: <http://example.org/weather#>
SELECT ?name (?t[2,3] AS ?day2hour3) WHERE { ?s ex:name ?name ; ex:temperature ?t }
ORDER BY ?name"#,
    );

    show(
        &mut db,
        "Slicing: the whole first day, and every second hour",
        r#"PREFIX ex: <http://example.org/weather#>
SELECT ?name (?t[1] AS ?day1) (?t[1, 1:2:3] AS ?oddHours)
WHERE { ?s ex:name ?name ; ex:temperature ?t } ORDER BY ?name"#,
    );

    show(
        &mut db,
        "Array functions and filters over them",
        r#"PREFIX ex: <http://example.org/weather#>
SELECT ?name (array_avg(?t) AS ?mean) (array_min(?t) AS ?coldest)
WHERE { ?s ex:name ?name ; ex:temperature ?t FILTER (array_max(?t) > 0) }
ORDER BY ?name"#,
    );

    show(
        &mut db,
        "Array arithmetic: convert Celsius to Fahrenheit",
        r#"PREFIX ex: <http://example.org/weather#>
SELECT ?name (?t * 1.8 + 32 AS ?fahrenheit)
WHERE { ?s ex:name ?name ; ex:temperature ?t FILTER (?name = "Kiruna") }"#,
    );

    // A user-defined function (parameterized query) applied with the
    // second-order array_map.
    db.query("DEFINE FUNCTION to_kelvin(?c) AS SELECT (?c + 273.15 AS ?k) WHERE { }")
        .expect("define");
    show(
        &mut db,
        "Second-order: map a user-defined function over a matrix",
        r#"PREFIX ex: <http://example.org/weather#>
SELECT (array_map(to_kelvin, ?t) AS ?kelvin)
WHERE { ?s ex:name "Uppsala" ; ex:temperature ?t }"#,
    );

    show(
        &mut db,
        "Subscript variables: where does each station peak?",
        r#"PREFIX ex: <http://example.org/weather#>
SELECT ?name ?day ?hour ?temp WHERE {
  ?s ex:name ?name ; ex:temperature ?t
  BIND (?t[?day, ?hour] AS ?temp)
  FILTER (?temp = array_max(?t))
} ORDER BY ?name"#,
    );

    show(
        &mut db,
        "Aggregation across stations",
        r#"PREFIX ex: <http://example.org/weather#>
SELECT (COUNT(?s) AS ?stations) (AVG(?m) AS ?overallMean) WHERE {
  ?s ex:temperature ?t BIND (array_avg(?t) AS ?m)
}"#,
    );
}
