//! End-to-end SciSPARQL query tests, following the thesis' own
//! examples: ch. 3 (SPARQL core: graph patterns, OPTIONAL, UNION,
//! filters, paths, aggregation) and ch. 4 (array queries, functional
//! views, closures, second-order functions).

use scisparql::{Dataset, QueryResult, Value};

/// The FOAF example dataset of thesis Fig. 5.
fn foaf_dataset() -> Dataset {
    let mut ds = Dataset::in_memory();
    ds.load_turtle(
        r#"
        @prefix foaf: <http://xmlns.com/foaf/0.1/> .
        _:a a foaf:Person ; foaf:name "Alice" ; foaf:knows _:b , _:d .
        _:b a foaf:Person ; foaf:name "Bob" ; foaf:knows _:a .
        _:c a foaf:Person ; foaf:name "Cindy" ; foaf:knows _:d .
        _:d a foaf:Person ; foaf:name "Daniel" .
        _:b foaf:mbox "bob@example.org" .
    "#,
    )
    .unwrap();
    ds
}

fn rows(ds: &mut Dataset, q: &str) -> Vec<Vec<Option<Value>>> {
    ds.query(q).unwrap().into_rows().unwrap()
}

fn strings(rows: &[Vec<Option<Value>>], col: usize) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|r| r[col].as_ref().map(|v| v.to_string()).unwrap_or_default())
        .collect();
    out.sort();
    out
}

#[test]
fn basic_graph_pattern() {
    let mut ds = foaf_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           SELECT ?fn WHERE { ?p foaf:name "Alice" ; foaf:knows ?f . ?f foaf:name ?fn }"#,
    );
    assert_eq!(strings(&r, 0), vec!["\"Bob\"", "\"Daniel\""]);
}

#[test]
fn optional_yields_unbound() {
    let mut ds = foaf_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           SELECT ?n ?mb WHERE {
             ?p foaf:name ?n OPTIONAL { ?p foaf:mbox ?mb }
           }"#,
    );
    assert_eq!(r.len(), 4);
    let bound: Vec<&Vec<Option<Value>>> = r.iter().filter(|row| row[1].is_some()).collect();
    assert_eq!(bound.len(), 1);
    assert_eq!(bound[0][0].as_ref().unwrap().to_string(), "\"Bob\"");
}

#[test]
fn union_both_directions() {
    // The thesis' bidirectional-knows example (§3.3.2).
    let mut ds = foaf_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           SELECT DISTINCT ?fn WHERE {
             ?f foaf:name ?fn . ?alice foaf:name "Alice" .
             { ?alice foaf:knows ?f } UNION { ?f foaf:knows ?alice }
           }"#,
    );
    assert_eq!(strings(&r, 0), vec!["\"Bob\"", "\"Daniel\""]);
}

#[test]
fn filter_exists_and_not_exists() {
    // §3.3.3: persons with a mailbox / without one.
    let mut ds = foaf_dataset();
    let with = rows(
        &mut ds,
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           SELECT ?n WHERE { ?p foaf:name ?n FILTER EXISTS { ?p foaf:mbox ?m } }"#,
    );
    assert_eq!(strings(&with, 0), vec!["\"Bob\""]);
    let without = rows(
        &mut ds,
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           SELECT ?n WHERE { ?p foaf:name ?n FILTER NOT EXISTS { ?p foaf:mbox ?m } }"#,
    );
    assert_eq!(without.len(), 3);
}

#[test]
fn property_path_plus() {
    let mut ds = foaf_dataset();
    // Everyone transitively known by Cindy: Daniel (one step), and no
    // one else (Daniel knows nobody).
    let r = rows(
        &mut ds,
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           SELECT DISTINCT ?n WHERE {
             ?c foaf:name "Cindy" . ?c foaf:knows+ ?f . ?f foaf:name ?n
           }"#,
    );
    assert_eq!(strings(&r, 0), vec!["\"Daniel\""]);
    // From Alice the closure reaches Bob, Daniel, and Alice again
    // (via Bob).
    let r2 = rows(
        &mut ds,
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           SELECT DISTINCT ?n WHERE {
             ?a foaf:name "Alice" . ?a foaf:knows+ ?f . ?f foaf:name ?n
           }"#,
    );
    assert_eq!(strings(&r2, 0), vec!["\"Alice\"", "\"Bob\"", "\"Daniel\""]);
}

#[test]
fn property_path_sequence_and_inverse() {
    let mut ds = foaf_dataset();
    // knows/name composes; ^knows finds who knows Daniel.
    let r = rows(
        &mut ds,
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           SELECT ?n WHERE {
             ?d foaf:name "Daniel" . ?d ^foaf:knows/foaf:name ?n
           }"#,
    );
    assert_eq!(strings(&r, 0), vec!["\"Alice\"", "\"Cindy\""]);
}

#[test]
fn path_star_includes_zero_length() {
    let mut ds = foaf_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           SELECT DISTINCT ?n WHERE {
             ?c foaf:name "Cindy" . ?c foaf:knows* ?f . ?f foaf:name ?n
           }"#,
    );
    assert_eq!(strings(&r, 0), vec!["\"Cindy\"", "\"Daniel\""]);
}

#[test]
fn aggregation_grouping_having() {
    let mut ds = foaf_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           SELECT ?n (COUNT(?f) AS ?cnt) WHERE {
             ?p foaf:name ?n . ?p foaf:knows ?f
           } GROUP BY ?n HAVING (COUNT(?f) >= 2)"#,
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "\"Alice\"");
    assert_eq!(r[0][1].as_ref().unwrap().to_string(), "2");
}

#[test]
fn order_limit_offset() {
    let mut ds = foaf_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           SELECT ?n WHERE { ?p foaf:name ?n } ORDER BY ?n LIMIT 2 OFFSET 1"#,
    );
    assert_eq!(
        r.iter()
            .map(|x| x[0].as_ref().unwrap().to_string())
            .collect::<Vec<_>>(),
        vec!["\"Bob\"", "\"Cindy\""]
    );
}

#[test]
fn ask_and_construct() {
    let mut ds = foaf_dataset();
    assert_eq!(
        ds.query(r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/> ASK { ?x foaf:name "Alice" }"#)
            .unwrap()
            .as_bool(),
        Some(true)
    );
    assert_eq!(
        ds.query(r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/> ASK { ?x foaf:name "Zed" }"#)
            .unwrap()
            .as_bool(),
        Some(false)
    );
    let QueryResult::Graph(g) = ds
        .query(
            r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
               CONSTRUCT { ?a <http://fof> ?c } WHERE { ?a foaf:knows ?b . ?b foaf:knows ?c }"#,
        )
        .unwrap()
    else {
        panic!()
    };
    // friend-of-friend pairs: a->a (via b), b->b (via a), b->d (via a).
    assert_eq!(g.len(), 3);
}

#[test]
fn values_restricts() {
    let mut ds = foaf_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           SELECT ?n WHERE { VALUES ?n { "Alice" "Bob" "Nobody" } ?p foaf:name ?n }"#,
    );
    assert_eq!(strings(&r, 0), vec!["\"Alice\"", "\"Bob\""]);
}

#[test]
fn bind_computes() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle("<http://s> <http://v> 21 .").unwrap();
    let r = rows(
        &mut ds,
        "SELECT ?d WHERE { ?s <http://v> ?x BIND (?x * 2 AS ?d) }",
    );
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "42");
}

// -----------------------------------------------------------------------
// Array queries (thesis ch. 4)
// -----------------------------------------------------------------------

fn array_dataset() -> Dataset {
    let mut ds = Dataset::in_memory();
    ds.load_turtle(
        r#"
        @prefix ex: <http://example.org/> .
        ex:m1 ex:data ((1 2 3) (4 5 6) (7 8 9)) ; ex:label "first" .
        ex:m2 ex:data ((10 20) (30 40)) ; ex:label "second" .
        ex:v  ex:data (2.5 3.5 4.0) ; ex:label "vector" .
    "#,
    )
    .unwrap();
    ds
}

#[test]
fn array_element_access_is_one_based() {
    let mut ds = array_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://example.org/>
           SELECT (?a[2,3] AS ?v) WHERE { ex:m1 ex:data ?a }"#,
    );
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "6");
}

#[test]
fn array_slice_and_row() {
    let mut ds = array_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://example.org/>
           SELECT (?a[2] AS ?row) (?a[1:2, 2] AS ?colpart) WHERE { ex:m1 ex:data ?a }"#,
    );
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "(4 5 6)");
    assert_eq!(r[0][1].as_ref().unwrap().to_string(), "(2 5)");
}

#[test]
fn array_stride_and_negative() {
    let mut ds = array_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://example.org/>
           SELECT (?a[1, 1:2:3] AS ?odds) (?a[-1,-1] AS ?last) WHERE { ex:m1 ex:data ?a }"#,
    );
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "(1 3)");
    assert_eq!(r[0][1].as_ref().unwrap().to_string(), "9");
}

#[test]
fn out_of_bounds_is_unbound_not_error() {
    // §3.6 error handling: failed expressions leave results unbound.
    let mut ds = array_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://example.org/>
           SELECT (?a[99,99] AS ?v) ?l WHERE { ex:m1 ex:data ?a ; ex:label ?l }"#,
    );
    assert_eq!(r.len(), 1);
    assert!(r[0][0].is_none());
    assert!(r[0][1].is_some());
}

#[test]
fn array_builtin_functions() {
    let mut ds = array_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://example.org/>
           SELECT (array_sum(?a) AS ?s) (array_avg(?a) AS ?m)
                  (array_min(?a) AS ?lo) (array_max(?a) AS ?hi)
                  (array_rank(?a) AS ?rk) (array_dims(?a) AS ?dm)
           WHERE { ex:m1 ex:data ?a }"#,
    );
    let row = &r[0];
    assert_eq!(row[0].as_ref().unwrap().to_string(), "45");
    assert_eq!(row[1].as_ref().unwrap().to_string(), "5.0");
    assert_eq!(row[2].as_ref().unwrap().to_string(), "1");
    assert_eq!(row[3].as_ref().unwrap().to_string(), "9");
    assert_eq!(row[4].as_ref().unwrap().to_string(), "2");
    assert_eq!(row[5].as_ref().unwrap().to_string(), "(3 3)");
}

#[test]
fn array_arithmetic_in_expressions() {
    let mut ds = array_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://example.org/>
           SELECT (?a * 2 AS ?dbl) (?a[1] + ?a[2] AS ?rowsum)
           WHERE { ex:m2 ex:data ?a }"#,
    );
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "((20 40) (60 80))");
    assert_eq!(r[0][1].as_ref().unwrap().to_string(), "(40 60)");
}

#[test]
fn array_equality_filter() {
    let mut ds = array_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://example.org/>
           SELECT ?l WHERE { ?m ex:data ?a ; ex:label ?l FILTER (?a[1,1] = 10) }"#,
    );
    assert_eq!(strings(&r, 0), vec!["\"second\""]);
}

#[test]
fn filter_on_array_aggregate() {
    let mut ds = array_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://example.org/>
           SELECT ?l WHERE { ?m ex:data ?a ; ex:label ?l FILTER (array_avg(?a) > 9) }"#,
    );
    assert_eq!(strings(&r, 0), vec!["\"second\""]);
}

#[test]
fn matching_array_constant_in_pattern() {
    let mut ds = array_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://example.org/>
           SELECT ?l WHERE { ?m ex:data ((10 20) (30 40)) ; ex:label ?l }"#,
    );
    assert_eq!(strings(&r, 0), vec!["\"second\""]);
}

#[test]
fn transpose_builtin() {
    let mut ds = array_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://example.org/>
           SELECT (array_transpose(?a) AS ?t) WHERE { ex:m2 ex:data ?a }"#,
    );
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "((10 30) (20 40))");
}

#[test]
fn matmul_builtin() {
    let mut ds = array_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://example.org/>
           SELECT (matmul(?a, ?a) AS ?sq) WHERE { ex:m2 ex:data ?a }"#,
    );
    assert_eq!(
        r[0][0].as_ref().unwrap().to_string(),
        "((700.0 1000.0) (1500.0 2200.0))"
    );
}

// -----------------------------------------------------------------------
// Functional views, closures, second-order functions (thesis §4.2–4.3)
// -----------------------------------------------------------------------

#[test]
fn define_and_call_function() {
    let mut ds = array_dataset();
    ds.query("DEFINE FUNCTION square(?x) AS SELECT (?x * ?x AS ?r) WHERE { }")
        .unwrap();
    let r = rows(&mut ds, "SELECT (square(7) AS ?v) WHERE { }");
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "49");
}

#[test]
fn parameterized_view_queries_graph() {
    let mut ds = foaf_dataset();
    ds.query(
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           DEFINE FUNCTION nameOf(?p) AS SELECT ?n WHERE { ?p foaf:name ?n }"#,
    )
    .unwrap();
    let r = rows(
        &mut ds,
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           SELECT (nameOf(?f) AS ?fn) WHERE { ?a foaf:name "Alice" ; foaf:knows ?f }"#,
    );
    assert_eq!(strings(&r, 0), vec!["\"Bob\"", "\"Daniel\""]);
}

#[test]
fn second_order_map_with_named_function() {
    let mut ds = array_dataset();
    ds.query("DEFINE FUNCTION square(?x) AS SELECT (?x * ?x AS ?r) WHERE { }")
        .unwrap();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://example.org/>
           SELECT (array_map(square, ?a) AS ?sq) WHERE { ex:m2 ex:data ?a }"#,
    );
    assert_eq!(
        r[0][0].as_ref().unwrap().to_string(),
        "((100 400) (900 1600))"
    );
}

#[test]
fn closure_partial_application() {
    let mut ds = array_dataset();
    ds.query("DEFINE FUNCTION scale(?k, ?x) AS SELECT (?k * ?x AS ?r) WHERE { }")
        .unwrap();
    // scale(10, ?_) is a unary closure multiplying by 10.
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://example.org/>
           SELECT (array_map(scale(10, ?_), ?a) AS ?s) WHERE { ex:m2 ex:data ?a }"#,
    );
    assert_eq!(
        r[0][0].as_ref().unwrap().to_string(),
        "((100 200) (300 400))"
    );
}

#[test]
fn condense_with_closure() {
    let mut ds = array_dataset();
    ds.query("DEFINE FUNCTION plus(?a, ?b) AS SELECT (?a + ?b AS ?r) WHERE { }")
        .unwrap();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://example.org/>
           SELECT (array_condense(plus, ?a) AS ?s) WHERE { ex:m1 ex:data ?a }"#,
    );
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "45");
}

#[test]
fn array_build_second_order() {
    let mut ds = Dataset::in_memory();
    ds.query("DEFINE FUNCTION cell(?i, ?j) AS SELECT (?i * 10 + ?j AS ?r) WHERE { }")
        .unwrap();
    let r = rows(
        &mut ds,
        "SELECT (array_build(array(2, 3), cell) AS ?m) WHERE { }",
    );
    assert_eq!(
        r[0][0].as_ref().unwrap().to_string(),
        "((11 12 13) (21 22 23))"
    );
}

#[test]
fn apply_builtin_calls_closures() {
    let mut ds = Dataset::in_memory();
    ds.query("DEFINE FUNCTION addmul(?a, ?b, ?c) AS SELECT (?a + ?b * ?c AS ?r) WHERE { }")
        .unwrap();
    let r = rows(
        &mut ds,
        "SELECT (apply(addmul(1, ?_, ?_), 2, 3) AS ?v) WHERE { }",
    );
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "7");
}

#[test]
fn foreign_math_functions() {
    let mut ds = Dataset::in_memory();
    let r = rows(&mut ds, "SELECT (sqrt(16) AS ?v) (exp(0) AS ?e) WHERE { }");
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "4.0");
    assert_eq!(r[0][1].as_ref().unwrap().to_string(), "1.0");
}

#[test]
fn custom_foreign_function_with_cost() {
    use scisparql::{ForeignFunction, FunctionCost};
    let mut ds = Dataset::in_memory();
    ds.registry.register_foreign(ForeignFunction {
        name: "triple_it".into(),
        arity: 1,
        cost: FunctionCost {
            per_call: 5.0,
            fanout: 1.0,
        },
        imp: std::sync::Arc::new(|args| {
            let n = args[0]
                .as_num()
                .ok_or_else(|| scisparql::QueryError::Eval("number required".into()))?;
            Ok(Value::integer(n.as_i64() * 3))
        }),
    });
    let r = rows(&mut ds, "SELECT (triple_it(14) AS ?v) WHERE { }");
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "42");
}

// -----------------------------------------------------------------------
// External array storage through queries
// -----------------------------------------------------------------------

#[test]
fn externalized_arrays_answer_queries_lazily() {
    let mut ds = Dataset::in_memory();
    ds.externalize_threshold = 4; // force external storage
    ds.chunk_bytes = 32;
    ds.load_turtle(
        r#"@prefix ex: <http://example.org/> .
           ex:big ex:data (1 2 3 4 5 6 7 8 9 10) ; ex:label "big" ."#,
    )
    .unwrap();
    // Element access resolves only the needed chunk(s).
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://example.org/>
           SELECT (?a[10] AS ?last) (array_sum(?a) AS ?s) WHERE { ex:big ex:data ?a }"#,
    );
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "10");
    assert_eq!(r[0][1].as_ref().unwrap().to_string(), "55");
}

#[test]
fn proxies_slice_lazily_and_project() {
    let mut ds = Dataset::in_memory();
    ds.externalize_threshold = 4;
    ds.chunk_bytes = 16; // 2 elements per chunk
    ds.load_turtle(
        r#"@prefix ex: <http://example.org/> .
           ex:big ex:data (0 1 2 3 4 5 6 7 8 9) ."#,
    )
    .unwrap();
    ds.arrays.backend_mut().reset_io_stats();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://example.org/>
           SELECT (array_sum(?a[1:2]) AS ?s) WHERE { ex:big ex:data ?a }"#,
    );
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "1");
    // Only the first chunk should be touched.
    assert_eq!(ds.arrays.backend().io_stats().chunks_returned, 1);
}

#[test]
fn insert_and_delete_data() {
    let mut ds = Dataset::in_memory();
    ds.query(
        r#"PREFIX ex: <http://example.org/>
           INSERT DATA { ex:s ex:p 1 , 2 ; ex:q (1 2 3) . }"#,
    )
    .unwrap();
    assert_eq!(ds.graph.len(), 3);
    ds.query(
        r#"PREFIX ex: <http://example.org/>
           DELETE DATA { ex:s ex:p 1 . }"#,
    )
    .unwrap();
    assert_eq!(ds.graph.len(), 2);
    // Array delete by content.
    ds.query(
        r#"PREFIX ex: <http://example.org/>
           DELETE DATA { ex:s ex:q (1 2 3) . }"#,
    )
    .unwrap();
    assert_eq!(ds.graph.len(), 1);
}

#[test]
fn distinct_dedups() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle("<http://a> <http://p> 1 . <http://b> <http://p> 1 . <http://c> <http://p> 2 .")
        .unwrap();
    let r = rows(&mut ds, "SELECT DISTINCT ?v WHERE { ?s <http://p> ?v }");
    assert_eq!(r.len(), 2);
}

#[test]
fn variable_predicate() {
    let mut ds = foaf_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           SELECT DISTINCT ?prop WHERE { ?a foaf:name "Bob" . ?a ?prop ?v }"#,
    );
    assert_eq!(r.len(), 4); // rdf:type, name, knows, mbox
}

#[test]
fn same_variable_twice_in_pattern() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle("<http://x> <http://p> <http://x> . <http://y> <http://p> <http://z> .")
        .unwrap();
    let r = rows(&mut ds, "SELECT ?s WHERE { ?s <http://p> ?s }");
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "<http://x>");
}

#[test]
fn string_builtins() {
    let mut ds = Dataset::in_memory();
    let r = rows(
        &mut ds,
        r#"SELECT (strlen("hello") AS ?l) (ucase("abc") AS ?u)
                  (concat("a", "b", "c") AS ?c) (substr("hello", 2, 3) AS ?s)
           WHERE { }"#,
    );
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "5");
    assert_eq!(r[0][1].as_ref().unwrap().to_string(), "\"ABC\"");
    assert_eq!(r[0][2].as_ref().unwrap().to_string(), "\"abc\"");
    assert_eq!(r[0][3].as_ref().unwrap().to_string(), "\"ell\"");
}

#[test]
fn if_coalesce_bound() {
    let mut ds = foaf_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           SELECT ?n (COALESCE(?mb, "none") AS ?mail)
                  (IF(BOUND(?mb), 1, 0) AS ?flag)
           WHERE { ?p foaf:name ?n OPTIONAL { ?p foaf:mbox ?mb } }
           ORDER BY ?n"#,
    );
    assert_eq!(r.len(), 4);
    assert_eq!(r[0][1].as_ref().unwrap().to_string(), "\"none\""); // Alice
    assert_eq!(r[1][1].as_ref().unwrap().to_string(), "\"bob@example.org\"");
    assert_eq!(r[1][2].as_ref().unwrap().to_string(), "1");
}

#[test]
fn division_by_zero_filter_is_false() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle("<http://s> <http://v> 0 . <http://t> <http://v> 2 .")
        .unwrap();
    let r = rows(
        &mut ds,
        "SELECT ?s WHERE { ?s <http://v> ?x FILTER (10 / ?x > 1) }",
    );
    assert_eq!(r.len(), 1, "error rows are filtered out, not fatal");
}

#[test]
fn group_concat_and_sample() {
    let mut ds = foaf_dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
           SELECT (GROUP_CONCAT(?n ; SEPARATOR=", ") AS ?all) WHERE {
             ?p foaf:name ?n
           } ORDER BY ?all"#,
    );
    assert_eq!(r.len(), 1);
    let all = r[0][0].as_ref().unwrap().to_string();
    assert!(all.contains("Alice") && all.contains("Daniel"));
}

#[test]
fn nested_udf_recursion_via_views() {
    // A view calling another view.
    let mut ds = Dataset::in_memory();
    ds.query("DEFINE FUNCTION inc(?x) AS SELECT (?x + 1 AS ?r) WHERE { }")
        .unwrap();
    ds.query("DEFINE FUNCTION inc2(?x) AS SELECT (inc(inc(?x)) AS ?r) WHERE { }")
        .unwrap();
    let r = rows(&mut ds, "SELECT (inc2(40) AS ?v) WHERE { }");
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "42");
}

#[test]
fn unknown_function_is_error() {
    let mut ds = Dataset::in_memory();
    assert!(ds.query("SELECT (nosuch(1) AS ?v) WHERE { }").is_err());
}
