//! Variables bound to array subscripts (thesis §4.1.2): an unbound
//! variable in a dereference subscript enumerates all valid positions,
//! binding the subscript (1-based) alongside the element value.

use scisparql::Dataset;

fn dataset() -> Dataset {
    let mut ds = Dataset::in_memory();
    ds.load_turtle(
        r#"@prefix ex: <http://e#> .
           ex:v ex:data (10 20 30) .
           ex:m ex:grid ((1 2) (3 4)) ."#,
    )
    .unwrap();
    ds
}

fn rows(ds: &mut Dataset, q: &str) -> Vec<Vec<Option<scisparql::Value>>> {
    ds.query(q).unwrap().into_rows().unwrap()
}

#[test]
fn vector_enumeration() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?i ?x WHERE {
             ex:v ex:data ?a BIND (?a[?i] AS ?x)
           } ORDER BY ?i"#,
    );
    assert_eq!(r.len(), 3);
    let pairs: Vec<(String, String)> = r
        .iter()
        .map(|row| {
            (
                row[0].as_ref().unwrap().to_string(),
                row[1].as_ref().unwrap().to_string(),
            )
        })
        .collect();
    assert_eq!(
        pairs,
        vec![
            ("1".into(), "10".into()),
            ("2".into(), "20".into()),
            ("3".into(), "30".into())
        ]
    );
}

#[test]
fn matrix_enumeration_two_vars() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?i ?j ?x WHERE {
             ex:m ex:grid ?a BIND (?a[?i, ?j] AS ?x)
           } ORDER BY ?i ?j"#,
    );
    assert_eq!(r.len(), 4);
    assert_eq!(r[0][2].as_ref().unwrap().to_string(), "1");
    assert_eq!(r[3][2].as_ref().unwrap().to_string(), "4");
    assert_eq!(r[2][0].as_ref().unwrap().to_string(), "2"); // i of third row
}

#[test]
fn mixed_bound_and_unbound_subscripts() {
    let mut ds = dataset();
    // Fix the row, enumerate columns.
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?j ?x WHERE {
             ex:m ex:grid ?a BIND (?a[2, ?j] AS ?x)
           } ORDER BY ?j"#,
    );
    assert_eq!(r.len(), 2);
    assert_eq!(r[0][1].as_ref().unwrap().to_string(), "3");
    assert_eq!(r[1][1].as_ref().unwrap().to_string(), "4");
}

#[test]
fn enumeration_with_filter_finds_position() {
    // The idiomatic use: find WHERE in the array a value occurs.
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?i WHERE {
             ex:v ex:data ?a BIND (?a[?i] AS ?x) FILTER (?x = 20)
           }"#,
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "2");
}

#[test]
fn prebound_subscript_var_joins() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?x WHERE {
             VALUES ?i { 3 }
             ex:v ex:data ?a BIND (?a[?i] AS ?x)
           }"#,
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "30");
}

#[test]
fn enumeration_over_external_arrays() {
    let mut ds = Dataset::in_memory();
    ds.externalize_threshold = 2;
    ds.chunk_bytes = 16;
    ds.load_turtle("@prefix ex: <http://e#> . ex:v ex:data (5 6 7 8) .")
        .unwrap();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?i ?x WHERE {
             ex:v ex:data ?a BIND (?a[?i] AS ?x)
           } ORDER BY ?i"#,
    );
    assert_eq!(r.len(), 4);
    assert_eq!(r[3][1].as_ref().unwrap().to_string(), "8");
}

#[test]
fn aggregate_over_enumerated_positions() {
    // Count elements above a threshold using enumeration.
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT (COUNT(?i) AS ?n) WHERE {
             ex:m ex:grid ?a BIND (?a[?i, ?j] AS ?x) FILTER (?x >= 2)
           }"#,
    );
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "3");
}
