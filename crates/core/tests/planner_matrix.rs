//! Differential planner matrix: every join-enumeration mode (textual,
//! greedy, DP), with and without calibration and under forced
//! mid-query re-optimization, must produce the *same result multiset*
//! for the same query — plans may differ, answers may not.
//!
//! Queries are seeded random BGPs (star, chain and mixed shapes) with
//! random filters over a deterministic synthetic graph, so failures
//! reproduce exactly.

use scisparql::planner::{PlannerConfig, PlannerMode};
use scisparql::{Dataset, QueryResult};

/// Deterministic PRNG (splitmix64) — the suite must not depend on
/// ambient randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const N_SUBJECTS: u64 = 160;

/// A synthetic graph with skewed predicates: typed subjects, a skewed
/// numeric score, link edges and group membership.
fn build_dataset() -> Dataset {
    let mut ds = Dataset::in_memory();
    let mut turtle = String::from("@prefix ex: <http://example.org/> .\n");
    for i in 0..N_SUBJECTS {
        let ty = i % 4;
        // Skew: 90% of scores land in 0..10, the rest are large.
        let score = if i % 10 == 9 { 1000 + i } else { i % 10 };
        let link = (i * 7 + 3) % N_SUBJECTS;
        // Skewed group membership: "g0" holds 70% of subjects, so the
        // uniform count/distinct model *under*-estimates it — the
        // trigger condition for mid-query re-optimization.
        let group = if i % 10 < 7 { 0 } else { i % 8 };
        turtle.push_str(&format!(
            "ex:s{i} ex:type \"t{ty}\" ; ex:score {score} ; \
             ex:link ex:s{link} ; ex:group \"g{group}\" .\n"
        ));
        if i % 3 == 0 {
            turtle.push_str(&format!("ex:s{i} ex:flag \"on\" .\n"));
        }
    }
    ds.load_turtle(&turtle).unwrap();
    ds
}

/// One random query: a connected BGP of 2–5 patterns plus 0–2 filters.
fn random_query(rng: &mut Rng) -> String {
    let n_triples = 2 + rng.below(4) as usize;
    let mut vars = vec!["?x".to_string()];
    let mut body = String::new();
    for t in 0..n_triples {
        let subj = vars[rng.below(vars.len() as u64) as usize].clone();
        match rng.below(6) {
            0 => body.push_str(&format!("{subj} ex:type \"t{}\" . ", rng.below(4))),
            1 => {
                let v = format!("?s{t}");
                body.push_str(&format!("{subj} ex:score {v} . "));
                vars.push(v);
            }
            2 => {
                let v = format!("?l{t}");
                body.push_str(&format!("{subj} ex:link {v} . "));
                vars.push(v);
            }
            3 => body.push_str(&format!("{subj} ex:group \"g{}\" . ", rng.below(8))),
            4 => body.push_str(&format!("{subj} ex:flag \"on\" . ")),
            _ => {
                let v = format!("?g{t}");
                body.push_str(&format!("{subj} ex:group {v} . "));
                vars.push(v);
            }
        }
    }
    let score_vars: Vec<&String> = vars.iter().filter(|v| v.starts_with("?s")).collect();
    if let Some(sv) = score_vars.first() {
        match rng.below(4) {
            0 => body.push_str(&format!("FILTER({sv} > {}) ", rng.below(12))),
            1 => body.push_str(&format!("FILTER({sv} = {}) ", rng.below(10))),
            2 => body.push_str(&format!("FILTER({sv} < {} || {sv} > 900) ", rng.below(8))),
            _ => {}
        }
    }
    format!("PREFIX ex: <http://example.org/> SELECT * WHERE {{ {body}}}")
}

/// Run a query and normalize the result to a sorted row multiset.
fn row_multiset(ds: &mut Dataset, query: &str) -> Vec<String> {
    let result = ds.query(query).unwrap();
    let QueryResult::Solutions { vars, rows } = result else {
        panic!("expected solutions for {query}");
    };
    let mut out: Vec<String> = rows
        .iter()
        .map(|r| {
            let mut cells: Vec<String> = vars
                .iter()
                .zip(r)
                .map(|(v, c)| match c {
                    Some(val) => format!("{v}={val}"),
                    None => format!("{v}=∅"),
                })
                .collect();
            cells.sort();
            cells.join("|")
        })
        .collect();
    out.sort();
    out
}

fn config(mode: PlannerMode) -> PlannerConfig {
    PlannerConfig {
        mode,
        adaptive_qerror: None,
        calibration: false,
        ..PlannerConfig::default()
    }
}

#[test]
fn planner_modes_are_result_identical() {
    let mut ds = build_dataset();
    let mut rng = Rng(0x5c15_9a11);
    for case in 0..40 {
        let query = random_query(&mut rng);
        ds.planner = config(PlannerMode::Textual);
        let textual = row_multiset(&mut ds, &query);
        ds.planner = config(PlannerMode::Greedy);
        let greedy = row_multiset(&mut ds, &query);
        ds.planner = config(PlannerMode::Dp);
        let dp = row_multiset(&mut ds, &query);
        assert_eq!(textual, greedy, "case {case}: textual vs greedy\n{query}");
        assert_eq!(greedy, dp, "case {case}: greedy vs dp\n{query}");
    }
}

#[test]
fn adaptive_reoptimization_is_result_identical() {
    let mut ds = build_dataset();
    let mut rng = Rng(0xfeed_f00d);
    let mut reopts_seen = 0u64;
    for case in 0..30 {
        let query = random_query(&mut rng);
        ds.planner = config(PlannerMode::Dp);
        let baseline = row_multiset(&mut ds, &query);
        // Hair-trigger adaptivity: any estimate overshoot rewrites the
        // suffix, on any intermediate size.
        ds.planner = PlannerConfig {
            mode: PlannerMode::Dp,
            adaptive_qerror: Some(1.01),
            adaptive_min_rows: 0,
            calibration: false,
            ..PlannerConfig::default()
        };
        let adaptive = row_multiset(&mut ds, &query);
        assert_eq!(
            baseline, adaptive,
            "case {case}: adaptive diverged\n{query}"
        );
        let (_, profile) = ds.query_profiled(&query).unwrap();
        let reopts: u64 = profile
            .lines()
            .find(|l| l.starts_with("phases:"))
            .and_then(|l| {
                l.split_whitespace()
                    .find(|t| t.starts_with("reopts="))
                    .and_then(|t| t["reopts=".len()..].parse().ok())
            })
            .unwrap_or(0);
        reopts_seen += reopts;
    }
    assert!(
        reopts_seen > 0,
        "forced Q-error bound of 1.01 never triggered a re-optimization — \
         the adaptive path is not being exercised"
    );
}

#[test]
fn calibration_preserves_results() {
    let mut ds = build_dataset();
    let mut rng = Rng(0x00dd_ba11);
    for case in 0..20 {
        let query = random_query(&mut rng);
        ds.planner = config(PlannerMode::Dp);
        let uncalibrated = row_multiset(&mut ds, &query);
        // Train: profiled runs feed observed cardinalities back into
        // the calibration table, then replan with corrections live.
        ds.planner = PlannerConfig {
            mode: PlannerMode::Dp,
            adaptive_qerror: None,
            calibration: true,
            ..PlannerConfig::default()
        };
        ds.query_profiled(&query).unwrap();
        let calibrated = row_multiset(&mut ds, &query);
        assert_eq!(
            uncalibrated, calibrated,
            "case {case}: calibration changed results\n{query}"
        );
    }
    assert!(
        !ds.calibration.is_empty(),
        "training runs should have populated the calibration table"
    );
}
