//! Intra-array computations (thesis §4.1.5): conditions relating
//! elements of the same array, expressed with subscript arithmetic and
//! subscript-variable enumeration; plus reshape.

use scisparql::Dataset;

fn rows(ds: &mut Dataset, q: &str) -> Vec<Vec<Option<scisparql::Value>>> {
    ds.query(q).unwrap().into_rows().unwrap()
}

#[test]
fn neighbour_comparison_finds_local_maxima() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle("@prefix ex: <http://e#> . ex:s ex:signal (1 5 2 8 3 9 1) .")
        .unwrap();
    // Positions i (2..n-1) where a[i] > a[i-1] and a[i] > a[i+1].
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?i WHERE {
             ex:s ex:signal ?a BIND (?a[?i] AS ?x)
             FILTER (?i > 1 && ?i < array_count(?a)
                     && ?x > ?a[?i - 1] && ?x > ?a[?i + 1])
           } ORDER BY ?i"#,
    );
    let peaks: Vec<String> = r
        .iter()
        .map(|row| row[0].as_ref().unwrap().to_string())
        .collect();
    assert_eq!(peaks, vec!["2", "4", "6"]);
}

#[test]
fn monotonicity_check_via_not_exists_violation() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle(
        r#"@prefix ex: <http://e#> .
           ex:up ex:series (1 2 3 4) .
           ex:bump ex:series (1 3 2 4) ."#,
    )
    .unwrap();
    // Series with no descending adjacent pair are monotone.
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?s WHERE {
             ?s ex:series ?a
             FILTER NOT EXISTS {
               ?s ex:series ?b BIND (?b[?i] AS ?x)
               FILTER (?i < array_count(?b) && ?x > ?b[?i + 1])
             }
           }"#,
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "<http://e#up>");
}

#[test]
fn row_vs_column_comparison_in_matrix() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle("@prefix ex: <http://e#> . ex:m ex:grid ((1 9) (3 4)) .")
        .unwrap();
    // Diagonal-dominance check per row: |a[i,i]| vs the off-diagonal.
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?i WHERE {
             ex:m ex:grid ?a BIND (?a[?i, ?i] AS ?d)
             FILTER (?d >= array_max(?a[?i]) )
           }"#,
    );
    // Row 2: a[2,2]=4 >= max(3,4)=4 ✓; row 1: 1 >= 9 ✗.
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "2");
}

#[test]
fn reshape_builtin() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle("@prefix ex: <http://e#> . ex:v ex:data (1 2 3 4 5 6) .")
        .unwrap();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT (array_reshape(?a, array(2, 3)) AS ?m)
                  (array_reshape(?a, array(3, 2))[2, 1] AS ?e)
           WHERE { ex:v ex:data ?a }"#,
    );
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "((1 2 3) (4 5 6))");
    assert_eq!(r[0][1].as_ref().unwrap().to_string(), "3");
}

#[test]
fn reshape_with_wrong_count_is_unbound() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle("@prefix ex: <http://e#> . ex:v ex:data (1 2 3) .")
        .unwrap();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT (array_reshape(?a, array(2, 2)) AS ?m) WHERE { ex:v ex:data ?a }"#,
    );
    assert!(r[0][0].is_none());
}
