//! Named-graph queries (thesis §3.3.4): GRAPH patterns, FROM and
//! FROM NAMED dataset clauses.

use scisparql::Dataset;

fn dataset() -> Dataset {
    let mut ds = Dataset::in_memory();
    ds.load_turtle(
        r#"@prefix ex: <http://e#> .
           ex:alice ex:name "Alice" ."#,
    )
    .unwrap();
    ds.load_turtle_named(
        "http://graphs/math",
        r#"@prefix ex: <http://e#> .
           ex:alice ex:score (90 85 99) .
           ex:bob ex:score (60 70 65) ."#,
    )
    .unwrap();
    ds.load_turtle_named(
        "http://graphs/bio",
        r#"@prefix ex: <http://e#> .
           ex:alice ex:score (40 50 45) ."#,
    )
    .unwrap();
    ds
}

fn rows(ds: &mut Dataset, q: &str) -> Vec<Vec<Option<scisparql::Value>>> {
    ds.query(q).unwrap().into_rows().unwrap()
}

#[test]
fn graph_with_fixed_name() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT (array_avg(?s) AS ?m) WHERE {
             GRAPH <http://graphs/bio> { ex:alice ex:score ?s }
           }"#,
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "45.0");
}

#[test]
fn graph_variable_iterates_and_binds() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?g (array_max(?s) AS ?best) WHERE {
             GRAPH ?g { ex:alice ex:score ?s }
           } ORDER BY ?g"#,
    );
    assert_eq!(r.len(), 2);
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "<http://graphs/bio>");
    assert_eq!(r[0][1].as_ref().unwrap().to_string(), "50");
    assert_eq!(
        r[1][0].as_ref().unwrap().to_string(),
        "<http://graphs/math>"
    );
    assert_eq!(r[1][1].as_ref().unwrap().to_string(), "99");
}

#[test]
fn default_graph_not_visible_inside_graph_pattern() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?n WHERE { GRAPH ?g { ex:alice ex:name ?n } }"#,
    );
    assert!(r.is_empty(), "name lives only in the default graph");
}

#[test]
fn combine_default_and_named() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?n (array_avg(?s) AS ?m) WHERE {
             ?p ex:name ?n .
             GRAPH <http://graphs/math> { ?p ex:score ?s }
           }"#,
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "\"Alice\"");
}

#[test]
fn from_retargets_default_graph() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?p FROM <http://graphs/math> WHERE { ?p ex:score ?s }"#,
    );
    assert_eq!(r.len(), 2);
    // The default-graph name triple is not visible under FROM.
    let r2 = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?n FROM <http://graphs/math> WHERE { ?p ex:name ?n }"#,
    );
    assert!(r2.is_empty());
}

#[test]
fn from_named_restricts_graph_variable() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?g FROM NAMED <http://graphs/bio> WHERE {
             GRAPH ?g { ex:alice ex:score ?s }
           }"#,
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "<http://graphs/bio>");
}

#[test]
fn unknown_graph_matches_nothing() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?s WHERE { GRAPH <http://graphs/nope> { ?x ex:score ?s } }"#,
    );
    assert!(r.is_empty());
}

#[test]
fn graph_var_prebound_by_values() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?p WHERE {
             VALUES ?g { <http://graphs/math> }
             GRAPH ?g { ?p ex:score ?s }
           }"#,
    );
    assert_eq!(r.len(), 2);
}

#[test]
fn aggregates_across_graphs() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT (COUNT(?s) AS ?n) WHERE { GRAPH ?g { ?p ex:score ?s } }"#,
    );
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "3");
}

#[test]
fn nested_exists_sees_active_graph() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?g WHERE {
             GRAPH ?g { ?p ex:score ?s FILTER EXISTS { ex:bob ex:score ?x } }
           }"#,
    );
    // Only the math graph contains bob.
    assert!(r
        .iter()
        .all(|row| row[0].as_ref().unwrap().to_string() == "<http://graphs/math>"));
    assert_eq!(r.len(), 2);
}
