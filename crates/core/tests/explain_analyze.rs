//! `EXPLAIN ANALYZE` end-to-end: the profile parses, carries the
//! expected counter names, and its per-operator rows exactly reconcile
//! with the backend's `IoStats`/cache totals.

use scisparql::{Dataset, QueryResult};

/// A dataset with one externalized 4000-element array so queries do
/// real chunked I/O.
fn chunked_dataset() -> Dataset {
    let mut ds = Dataset::in_memory();
    ds.externalize_threshold = 16;
    ds.chunk_bytes = 256; // 32 elements per chunk
    let elems: Vec<String> = (0..4000).map(|i| i.to_string()).collect();
    ds.load_turtle(&format!(
        "@prefix ex: <http://example.org/> .
         ex:m ex:data ({}) ; ex:station \"Uppsala\" .",
        elems.join(" ")
    ))
    .unwrap();
    ds
}

/// Parse `key=value` integer fields out of one profile line.
fn fields(line: &str) -> std::collections::HashMap<String, u64> {
    line.split_whitespace()
        .filter_map(|tok| {
            let (k, v) = tok.split_once('=')?;
            Some((k.to_string(), v.parse().ok()?))
        })
        .collect()
}

#[test]
fn profile_reports_phases_and_operators() {
    let mut ds = chunked_dataset();
    let result = ds
        .query(
            "PREFIX ex: <http://example.org/>
             EXPLAIN ANALYZE SELECT (array_sum(?a) AS ?s)
             WHERE { ?m ex:data ?a }",
        )
        .unwrap();
    let QueryResult::Text(profile) = result else {
        panic!("EXPLAIN ANALYZE must return text");
    };
    for needle in [
        "EXPLAIN ANALYZE",
        "phases:",
        "parse_us=",
        "rewrite_us=",
        "plan_us=",
        "exec_us=",
        "total_us=",
        "reopts=",
        "operators:",
        "Scan",
        "Project",
        "rows_in=",
        "rows_out=",
        "time_us=",
        "est=",
        "actual=",
        "qerr=",
        "statements=",
        "chunks=",
        "bytes=",
        "cache_hits=",
        "cache_misses=",
        "kernel_elems=",
        "fallbacks=",
        "skipped=",
        "decoded=",
        "bytes_decoded=",
        "totals:",
    ] {
        assert!(
            profile.contains(needle),
            "missing {needle:?} in:\n{profile}"
        );
    }
}

#[test]
fn operator_counters_reconcile_with_io_totals() {
    let mut ds = chunked_dataset();
    let io_before = ds.arrays.backend().io_stats();
    let cache_before = ds.arrays.backend().cache_stats();
    let result = ds
        .query(
            "PREFIX ex: <http://example.org/>
             EXPLAIN ANALYZE SELECT ?st (array_max(?a) AS ?m)
             WHERE { ?x ex:data ?a ; ex:station ?st }
             ORDER BY ?st",
        )
        .unwrap();
    let QueryResult::Text(profile) = result else {
        panic!("text result expected");
    };
    let io_after = ds.arrays.backend().io_stats();
    let cache_after = ds.arrays.backend().cache_stats();

    // Sum the exclusive per-operator counters.
    let mut op_sums: std::collections::HashMap<String, u64> = Default::default();
    let mut totals: std::collections::HashMap<String, u64> = Default::default();
    for line in profile.lines() {
        if line.starts_with("totals:") {
            totals = fields(line);
        } else if line.contains("time_us=") {
            for (k, v) in fields(line) {
                *op_sums.entry(k).or_default() += v;
            }
        }
    }
    assert!(!totals.is_empty(), "no totals line in:\n{profile}");

    // Per-operator rows sum exactly to the profile totals...
    for key in [
        "statements",
        "chunks",
        "bytes",
        "cache_hits",
        "cache_misses",
        "fallbacks",
        "skipped",
        "decoded",
        "bytes_decoded",
    ] {
        assert_eq!(
            op_sums.get(key),
            totals.get(key),
            "operator {key} rows don't sum to totals in:\n{profile}"
        );
    }
    // ...and the totals are exactly the backend's IoStats/cache
    // movement over the query.
    assert_eq!(
        totals["statements"],
        io_after.statements - io_before.statements
    );
    assert_eq!(
        totals["chunks"],
        io_after.chunks_returned - io_before.chunks_returned
    );
    assert_eq!(
        totals["bytes"],
        io_after.bytes_returned - io_before.bytes_returned
    );
    assert_eq!(totals["cache_hits"], cache_after.hits - cache_before.hits);
    assert_eq!(
        totals["cache_misses"],
        cache_after.misses - cache_before.misses
    );
    // The query really did chunked work, so the reconciliation above is
    // not vacuous.
    assert!(totals["statements"] > 0, "query did no I/O:\n{profile}");
    assert!(totals["chunks"] > 0);
    // Externalized arrays are stored as SCC1 codec frames, so every
    // fetched chunk is decoded and the decode counters must move.
    assert!(totals["decoded"] > 0, "no decodes recorded:\n{profile}");
    assert!(totals["bytes_decoded"] > 0);
}

#[test]
fn explain_analyze_executes_the_query() {
    // EXPLAIN ANALYZE must *run* the query: the kernel element counter
    // moves, unlike plain EXPLAIN which only plans.
    let mut ds = chunked_dataset();
    let before = ssdm_array::compute_stats().elements_processed;
    ds.query(
        "PREFIX ex: <http://example.org/>
         EXPLAIN ANALYZE SELECT (array_sum(?a) AS ?s) WHERE { ?m ex:data ?a }",
    )
    .unwrap();
    let after = ssdm_array::compute_stats().elements_processed;
    assert!(after > before, "EXPLAIN ANALYZE did not execute");

    let plain = ds
        .query(
            "PREFIX ex: <http://example.org/>
             EXPLAIN SELECT (array_sum(?a) AS ?s) WHERE { ?m ex:data ?a }",
        )
        .unwrap();
    let QueryResult::Text(tree) = plain else {
        panic!()
    };
    assert!(tree.contains("Scan"));
    assert!(!tree.contains("totals:"), "plain EXPLAIN must not profile");
}

#[test]
fn estimate_columns_carry_finite_q_errors() {
    // Every plan-tree operator row must render est/actual/qerr, the
    // floats must parse, and qerr must respect its half-row floor. The
    // fields are float-formatted on purpose so the integer-field
    // reconciliation in `operator_counters_reconcile_with_io_totals`
    // never picks them up.
    let mut ds = chunked_dataset();
    let result = ds
        .query(
            "PREFIX ex: <http://example.org/>
             EXPLAIN ANALYZE SELECT ?st WHERE { ?x ex:data ?a ; ex:station ?st }",
        )
        .unwrap();
    let QueryResult::Text(profile) = result else {
        panic!("text result expected");
    };
    let mut seen = 0;
    for line in profile.lines() {
        let Some(est_tok) = line.split_whitespace().find(|t| t.starts_with("est=")) else {
            continue;
        };
        seen += 1;
        let est: f64 = est_tok["est=".len()..].parse().expect("est parses");
        let qerr_tok = line
            .split_whitespace()
            .find(|t| t.starts_with("qerr="))
            .expect("qerr next to est");
        let qerr: f64 = qerr_tok["qerr=".len()..].parse().expect("qerr parses");
        assert!(est.is_finite() && est >= 0.0, "bad est in {line}");
        assert!(qerr.is_finite() && qerr >= 1.0, "bad qerr in {line}");
        assert!(line.contains("actual="), "actual missing in {line}");
    }
    assert!(seen >= 2, "expected scan rows with estimates:\n{profile}");
}

#[test]
fn profiled_queries_feed_the_calibration_table() {
    // The feedback loop: after a profiled query, the dataset's
    // calibration table holds per-predicate corrections learned from
    // observed-vs-estimated scan cardinalities.
    let mut ds = chunked_dataset();
    assert!(ds.calibration.is_empty());
    ds.query_profiled(
        "PREFIX ex: <http://example.org/>
         SELECT ?st WHERE { ?m ex:station ?st }",
    )
    .unwrap();
    assert!(
        !ds.calibration.is_empty(),
        "profiled scan should leave a calibration entry"
    );
    let key = "<http://example.org/station>";
    assert!(ds.calibration.samples(key) >= 1, "no samples under {key}");
    assert!(ds.calibration.factor(key).is_finite());
}

#[test]
fn query_profiled_returns_result_and_profile() {
    let mut ds = chunked_dataset();
    let (result, profile) = ds
        .query_profiled(
            "PREFIX ex: <http://example.org/>
             SELECT ?st WHERE { ?m ex:station ?st }",
        )
        .unwrap();
    let rows = result.into_rows().unwrap();
    assert_eq!(rows.len(), 1);
    assert!(profile.contains("operators:"));
    assert!(profile.contains("totals:"));
}
