//! Subqueries, MINUS, and bag-valued view calls (DAPLEX semantics,
//! thesis §2.6 / §4.2).

use scisparql::Dataset;

fn dataset() -> Dataset {
    let mut ds = Dataset::in_memory();
    ds.load_turtle(
        r#"@prefix ex: <http://e#> .
           ex:a ex:dept "cs" ; ex:salary 100 .
           ex:b ex:dept "cs" ; ex:salary 200 .
           ex:c ex:dept "math" ; ex:salary 150 .
           ex:d ex:dept "math" ; ex:salary 50 ."#,
    )
    .unwrap();
    ds
}

fn rows(ds: &mut Dataset, q: &str) -> Vec<Vec<Option<scisparql::Value>>> {
    ds.query(q).unwrap().into_rows().unwrap()
}

#[test]
fn subquery_aggregates_then_joins() {
    // Classic: employees earning above their department's average —
    // requires an aggregating subquery.
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?p ?s WHERE {
             ?p ex:dept ?d ; ex:salary ?s .
             { SELECT ?d (AVG(?x) AS ?avg) WHERE { ?q ex:dept ?d ; ex:salary ?x } GROUP BY ?d }
             FILTER (?s > ?avg)
           } ORDER BY ?p"#,
    );
    let names: Vec<String> = r
        .iter()
        .map(|row| row[0].as_ref().unwrap().to_string())
        .collect();
    assert_eq!(names, vec!["<http://e#b>", "<http://e#c>"]);
}

#[test]
fn subquery_with_limit_restricts_outer() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?p WHERE {
             { SELECT ?p WHERE { ?p ex:salary ?s } ORDER BY DESC(?s) LIMIT 2 }
             ?p ex:dept "cs" .
           } ORDER BY ?p"#,
    );
    // Top-2 earners are b (200) and c (150); only b is in cs.
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "<http://e#b>");
}

#[test]
fn minus_removes_compatible_solutions() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?p WHERE {
             ?p ex:salary ?s
             MINUS { ?p ex:dept "cs" }
           } ORDER BY ?p"#,
    );
    let names: Vec<String> = r
        .iter()
        .map(|row| row[0].as_ref().unwrap().to_string())
        .collect();
    assert_eq!(names, vec!["<http://e#c>", "<http://e#d>"]);
}

#[test]
fn minus_with_disjoint_domains_removes_nothing() {
    // SPARQL semantics: MINUS with no shared variables keeps everything.
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?p WHERE { ?p ex:salary ?s MINUS { ?x ex:dept "cs" } }"#,
    );
    assert_eq!(r.len(), 4);
}

#[test]
fn bag_valued_view_call_fans_out() {
    // DAPLEX: a view returning a bag enumerates in BIND.
    let mut ds = dataset();
    ds.query(
        r#"PREFIX ex: <http://e#>
           DEFINE FUNCTION members(?d) AS SELECT ?p WHERE { ?p ex:dept ?d }"#,
    )
    .unwrap();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?m WHERE { BIND (members("cs") AS ?m) } ORDER BY ?m"#,
    );
    assert_eq!(r.len(), 2);
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "<http://e#a>");
    assert_eq!(r[1][0].as_ref().unwrap().to_string(), "<http://e#b>");
}

#[test]
fn bag_valued_call_joins_with_outer_bindings() {
    let mut ds = dataset();
    ds.query(
        r#"PREFIX ex: <http://e#>
           DEFINE FUNCTION members(?d) AS SELECT ?p WHERE { ?p ex:dept ?d }"#,
    )
    .unwrap();
    // For each department, enumerate members and fetch their salaries.
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?d (SUM(?s) AS ?total) WHERE {
             VALUES ?d { "cs" "math" }
             BIND (members(?d) AS ?m)
             ?m ex:salary ?s
           } GROUP BY ?d ORDER BY ?d"#,
    );
    assert_eq!(r.len(), 2);
    assert_eq!(r[0][1].as_ref().unwrap().to_string(), "300"); // cs
    assert_eq!(r[1][1].as_ref().unwrap().to_string(), "200"); // math
}

#[test]
fn scalar_context_still_takes_first_solution() {
    // In expressions (not BIND), view calls stay scalar.
    let mut ds = dataset();
    ds.query(
        r#"PREFIX ex: <http://e#>
           DEFINE FUNCTION top_salary() AS
           SELECT ?s WHERE { ?p ex:salary ?s } ORDER BY DESC(?s) LIMIT 1"#,
    )
    .unwrap();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?p WHERE { ?p ex:salary ?s FILTER (?s = top_salary()) }"#,
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "<http://e#b>");
}

#[test]
fn empty_view_bag_leaves_bind_unbound() {
    let mut ds = dataset();
    ds.query(
        r#"PREFIX ex: <http://e#>
           DEFINE FUNCTION members(?d) AS SELECT ?p WHERE { ?p ex:dept ?d }"#,
    )
    .unwrap();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?m WHERE { BIND (members("physics") AS ?m) }"#,
    );
    assert_eq!(r.len(), 1);
    assert!(r[0][0].is_none());
}
