//! SPARQL Update tests: ground and templated forms, including array
//! values and externalization on insert.

use scisparql::{Dataset, QueryResult};

fn count(ds: &mut Dataset, q: &str) -> usize {
    ds.query(q).unwrap().into_rows().unwrap().len()
}

#[test]
fn insert_where_materializes_template() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle(
        r#"@prefix ex: <http://e#> .
           ex:a ex:knows ex:b . ex:b ex:knows ex:c ."#,
    )
    .unwrap();
    let QueryResult::Updated { inserted, .. } = ds
        .query(
            r#"PREFIX ex: <http://e#>
               INSERT { ?x ex:fof ?z } WHERE { ?x ex:knows ?y . ?y ex:knows ?z }"#,
        )
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(inserted, 1);
    assert_eq!(
        count(
            &mut ds,
            "PREFIX ex: <http://e#> SELECT ?x WHERE { ?x ex:fof ?z }"
        ),
        1
    );
}

#[test]
fn delete_where_short_form() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle(
        r#"@prefix ex: <http://e#> .
           ex:a ex:v 1 . ex:b ex:v 2 . ex:c ex:w 3 ."#,
    )
    .unwrap();
    let QueryResult::Updated { deleted, .. } = ds
        .query("PREFIX ex: <http://e#> DELETE WHERE { ?s ex:v ?o }")
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(deleted, 2);
    assert_eq!(ds.graph.len(), 1);
}

#[test]
fn delete_insert_rename_property() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle(
        r#"@prefix ex: <http://e#> .
           ex:a ex:old 1 . ex:b ex:old 2 ."#,
    )
    .unwrap();
    let QueryResult::Updated { inserted, deleted } = ds
        .query(
            r#"PREFIX ex: <http://e#>
               DELETE { ?s ex:old ?v } INSERT { ?s ex:new ?v }
               WHERE { ?s ex:old ?v }"#,
        )
        .unwrap()
    else {
        panic!()
    };
    assert_eq!((inserted, deleted), (2, 2));
    assert_eq!(
        count(
            &mut ds,
            "PREFIX ex: <http://e#> SELECT ?s WHERE { ?s ex:new ?v }"
        ),
        2
    );
    assert_eq!(
        count(
            &mut ds,
            "PREFIX ex: <http://e#> SELECT ?s WHERE { ?s ex:old ?v }"
        ),
        0
    );
}

#[test]
fn modify_with_filter_and_computed_condition() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle(
        r#"@prefix ex: <http://e#> .
           ex:a ex:score (1 2 3) . ex:b ex:score (90 95 99) ."#,
    )
    .unwrap();
    ds.query(
        r#"PREFIX ex: <http://e#>
           INSERT { ?s ex:grade "high" } WHERE {
             ?s ex:score ?a FILTER (array_avg(?a) > 50)
           }"#,
    )
    .unwrap();
    let rows = ds
        .query(r#"PREFIX ex: <http://e#> SELECT ?s WHERE { ?s ex:grade "high" }"#)
        .unwrap()
        .into_rows()
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "<http://e#b>");
}

#[test]
fn insert_where_copies_array_values() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle(r#"@prefix ex: <http://e#> . ex:a ex:raw (1 2 3 4) ."#)
        .unwrap();
    ds.query(
        r#"PREFIX ex: <http://e#>
           INSERT { ex:summary ex:data ?v } WHERE { ex:a ex:raw ?v }"#,
    )
    .unwrap();
    let rows = ds
        .query(
            r#"PREFIX ex: <http://e#>
               SELECT (array_sum(?v) AS ?s) WHERE { ex:summary ex:data ?v }"#,
        )
        .unwrap()
        .into_rows()
        .unwrap();
    assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "10");
}

#[test]
fn insert_data_externalizes_large_arrays() {
    let mut ds = Dataset::in_memory();
    ds.externalize_threshold = 4;
    ds.chunk_bytes = 16;
    ds.query("PREFIX ex: <http://e#> INSERT DATA { ex:s ex:big (1 2 3 4 5 6 7 8) . }")
        .unwrap();
    // The stored term must be an external reference, not a resident array.
    let p = ds
        .graph
        .dictionary()
        .lookup(&ssdm_rdf::Term::uri("http://e#big"))
        .unwrap();
    let t = ds.graph.match_pattern(None, Some(p), None).next().unwrap();
    assert!(matches!(ds.graph.term(t.o), ssdm_rdf::Term::ArrayRef(_)));
    // And still answers queries.
    let rows = ds
        .query("PREFIX ex: <http://e#> SELECT (?v[8] AS ?x) WHERE { ex:s ex:big ?v }")
        .unwrap()
        .into_rows()
        .unwrap();
    assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "8");
}

#[test]
fn delete_where_no_match_is_noop() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle("<http://s> <http://p> 1 .").unwrap();
    let QueryResult::Updated { deleted, .. } =
        ds.query("DELETE WHERE { ?s <http://q> ?o }").unwrap()
    else {
        panic!()
    };
    assert_eq!(deleted, 0);
    assert_eq!(ds.graph.len(), 1);
}

#[test]
fn delete_where_rejects_filters_in_template() {
    let mut ds = Dataset::in_memory();
    assert!(ds
        .query("DELETE WHERE { ?s <http://p> ?o FILTER (?o > 1) }")
        .is_err());
}
