//! Parser robustness: arbitrary input must never panic — only return
//! `Ok` or a positioned parse error — and valid queries survive a
//! parse → execute cycle without engine panics.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary ASCII garbage never panics the lexer/parser.
    #[test]
    fn garbage_never_panics(input in "[ -~\\n\\t]{0,200}") {
        let _ = scisparql::parser::parse(&input);
    }

    /// Garbage built from SPARQL-ish tokens never panics either (this
    /// reaches deeper into the grammar than pure noise).
    #[test]
    fn tokeny_garbage_never_panics(tokens in prop::collection::vec(
        prop_oneof![
            Just("SELECT".to_string()),
            Just("WHERE".to_string()),
            Just("{".to_string()),
            Just("}".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just("[".to_string()),
            Just("]".to_string()),
            Just("?x".to_string()),
            Just("?a".to_string()),
            Just("FILTER".to_string()),
            Just("OPTIONAL".to_string()),
            Just("UNION".to_string()),
            Just("GRAPH".to_string()),
            Just("BIND".to_string()),
            Just("AS".to_string()),
            Just(".".to_string()),
            Just(";".to_string()),
            Just(",".to_string()),
            Just(":".to_string()),
            Just("*".to_string()),
            Just("+".to_string()),
            Just("/".to_string()),
            Just("^".to_string()),
            Just("|".to_string()),
            Just("<http://p>".to_string()),
            Just("\"str\"".to_string()),
            Just("42".to_string()),
            Just("3.5".to_string()),
            Just("a".to_string()),
            Just("COUNT".to_string()),
            Just("GROUP".to_string()),
            Just("BY".to_string()),
            Just("ORDER".to_string()),
            Just("LIMIT".to_string()),
        ],
        0..40,
    )) {
        let input = tokens.join(" ");
        let _ = scisparql::parser::parse(&input);
    }

    /// Queries that do parse execute without panicking against a small
    /// dataset (they may legitimately error or return empty results).
    #[test]
    fn parsed_queries_execute_safely(tokens in prop::collection::vec(
        prop_oneof![
            Just("?s".to_string()),
            Just("?o".to_string()),
            Just("?v".to_string()),
            Just("<http://p>".to_string()),
            Just("<http://q>".to_string()),
            Just("1".to_string()),
            Just("\"x\"".to_string()),
            Just(".".to_string()),
        ],
        3..12,
    )) {
        let body = tokens.join(" ");
        let q = format!("SELECT * WHERE {{ {body} }}");
        if let Ok(stmt) = scisparql::parser::parse(&q) {
            let mut ds = scisparql::Dataset::in_memory();
            ds.load_turtle(
                "<http://s> <http://p> 1 . <http://s> <http://q> (1 2 3) .",
            ).unwrap();
            let _ = ds.execute(stmt);
        }
    }
}
