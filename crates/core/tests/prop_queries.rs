//! Property-based tests of the query pipeline: the optimized plan must
//! agree with a naive reference evaluation, and array semantics must
//! agree between the language level and the array library.

use proptest::prelude::*;
use scisparql::{Dataset, Value};
use ssdm_array::NumArray;

/// Strategy: a small random edge list over a fixed node set.
fn edges() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0u8..6, 0u8..6), 1..20)
}

fn graph_of(edges: &[(u8, u8)]) -> Dataset {
    let mut ds = Dataset::in_memory();
    let mut turtle = String::new();
    for (a, b) in edges {
        turtle.push_str(&format!("<http://n{a}> <http://edge> <http://n{b}> .\n"));
    }
    ds.load_turtle(&turtle).unwrap();
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Join results equal the nested-loop reference on random graphs.
    #[test]
    fn two_hop_join_matches_reference(edges in edges()) {
        let mut ds = graph_of(&edges);
        let rows = ds
            .query("SELECT ?a ?c WHERE { ?a <http://edge> ?b . ?b <http://edge> ?c }")
            .unwrap()
            .into_rows()
            .unwrap();
        let mut got: Vec<(String, String)> = rows
            .iter()
            .map(|r| {
                (
                    r[0].as_ref().unwrap().to_string(),
                    r[1].as_ref().unwrap().to_string(),
                )
            })
            .collect();
        got.sort();
        // Reference: explicit nested loops over the edge list (dedup'd,
        // since the graph is a set).
        let mut set: Vec<(u8, u8)> = edges.to_vec();
        set.sort();
        set.dedup();
        let mut want = Vec::new();
        for &(a, b) in &set {
            for &(b2, c) in &set {
                if b == b2 {
                    want.push((format!("<http://n{a}>"), format!("<http://n{c}>")));
                }
            }
        }
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// `edge+` computed by the path engine equals transitive closure
    /// computed by Floyd–Warshall on the adjacency matrix.
    #[test]
    fn plus_path_matches_closure(edges in edges()) {
        let mut ds = graph_of(&edges);
        let rows = ds
            .query("SELECT ?a ?b WHERE { ?a <http://edge>+ ?b }")
            .unwrap()
            .into_rows()
            .unwrap();
        let mut got: Vec<(String, String)> = rows
            .iter()
            .map(|r| {
                (
                    r[0].as_ref().unwrap().to_string(),
                    r[1].as_ref().unwrap().to_string(),
                )
            })
            .collect();
        got.sort();
        got.dedup();
        let mut reach = [[false; 6]; 6];
        for &(a, b) in &edges {
            reach[a as usize][b as usize] = true;
        }
        for k in 0..6 {
            for i in 0..6 {
                for j in 0..6 {
                    if reach[i][k] && reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
        let mut want = Vec::new();
        for (i, row) in reach.iter().enumerate() {
            for (j, &r) in row.iter().enumerate() {
                if r {
                    want.push((format!("<http://n{i}>"), format!("<http://n{j}>")));
                }
            }
        }
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Language-level dereference agrees with the array library for
    /// arbitrary vectors and in-bounds 1-based subscripts.
    #[test]
    fn deref_matches_library(data in prop::collection::vec(-100i64..100, 1..30), seed in 1u64..1000) {
        let n = data.len();
        let i = (seed as usize % n) + 1;
        let values: String = data.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" ");
        let mut ds = Dataset::in_memory();
        ds.load_turtle(&format!("<http://s> <http://v> ({values}) .")).unwrap();
        let rows = ds
            .query(&format!("SELECT (?a[{i}] AS ?x) WHERE {{ <http://s> <http://v> ?a }}"))
            .unwrap()
            .into_rows()
            .unwrap();
        let got = rows[0][0].as_ref().unwrap().to_string();
        let lib = NumArray::from_i64(data.clone()).get1(&[i as i64]).unwrap();
        prop_assert_eq!(got, lib.to_string());
    }

    /// SUM/AVG/MIN/MAX over query solutions agree with direct folds.
    #[test]
    fn aggregates_match_reference(values in prop::collection::vec(-1000i64..1000, 1..25)) {
        let mut ds = Dataset::in_memory();
        let mut turtle = String::new();
        for (i, v) in values.iter().enumerate() {
            turtle.push_str(&format!("<http://s{i}> <http://v> {v} .\n"));
        }
        ds.load_turtle(&turtle).unwrap();
        let rows = ds
            .query(
                "SELECT (SUM(?v) AS ?s) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) (COUNT(?v) AS ?n)
                 WHERE { ?x <http://v> ?v }",
            )
            .unwrap()
            .into_rows()
            .unwrap();
        let cell = |k: usize| rows[0][k].as_ref().unwrap().to_string();
        prop_assert_eq!(cell(0), values.iter().sum::<i64>().to_string());
        prop_assert_eq!(cell(1), values.iter().min().unwrap().to_string());
        prop_assert_eq!(cell(2), values.iter().max().unwrap().to_string());
        prop_assert_eq!(cell(3), values.len().to_string());
    }

    /// LIMIT/OFFSET slice ordered output consistently.
    #[test]
    fn limit_offset_window(count in 1usize..20, limit in 0usize..25, offset in 0usize..25) {
        let mut ds = Dataset::in_memory();
        let mut turtle = String::new();
        for i in 0..count {
            turtle.push_str(&format!("<http://s{i}> <http://v> {i} .\n"));
        }
        ds.load_turtle(&turtle).unwrap();
        let rows = ds
            .query(&format!(
                "SELECT ?v WHERE {{ ?x <http://v> ?v }} ORDER BY ?v LIMIT {limit} OFFSET {offset}"
            ))
            .unwrap()
            .into_rows()
            .unwrap();
        let got: Vec<i64> = rows
            .iter()
            .map(|r| match r[0].as_ref().unwrap() {
                Value::Term(ssdm_rdf::Term::Number(n)) => n.as_i64(),
                other => panic!("{other}"),
            })
            .collect();
        let want: Vec<i64> = (0..count as i64).skip(offset).take(limit).collect();
        prop_assert_eq!(got, want);
    }

    /// Turtle round trip: serialize the loaded graph and reload — the
    /// query answers stay identical.
    #[test]
    fn turtle_roundtrip_preserves_answers(edges in edges()) {
        let mut ds = graph_of(&edges);
        let q = "SELECT ?a ?b WHERE { ?a <http://edge> ?b } ORDER BY ?a ?b";
        let before = ds.query(q).unwrap().into_rows().unwrap().len();
        let ns = ssdm_rdf::Namespaces::new();
        let text = ssdm_rdf::turtle::serialize(&ds.graph, &ns);
        let mut ds2 = Dataset::in_memory();
        ds2.load_turtle(&text).unwrap();
        let after = ds2.query(q).unwrap().into_rows().unwrap().len();
        prop_assert_eq!(before, after);
    }
}
