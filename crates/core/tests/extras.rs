//! Tests for the IN/NOT IN operator, DESCRIBE, and assorted language
//! corners (error handling per thesis §3.6, OPTIONAL semantics per
//! §5.4.2).

use scisparql::{Dataset, QueryResult};

fn dataset() -> Dataset {
    let mut ds = Dataset::in_memory();
    ds.load_turtle(
        r#"@prefix ex: <http://e#> .
           ex:a ex:v 1 ; ex:name "a" .
           ex:b ex:v 2 ; ex:name "b" .
           ex:c ex:v 3 ; ex:name "c" ."#,
    )
    .unwrap();
    ds
}

fn rows(ds: &mut Dataset, q: &str) -> Vec<Vec<Option<scisparql::Value>>> {
    ds.query(q).unwrap().into_rows().unwrap()
}

#[test]
fn in_list_membership() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?n WHERE { ?s ex:v ?v ; ex:name ?n FILTER (?v IN (1, 3, 99)) }
           ORDER BY ?n"#,
    );
    assert_eq!(r.len(), 2);
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "\"a\"");
    assert_eq!(r[1][0].as_ref().unwrap().to_string(), "\"c\"");
}

#[test]
fn not_in_list() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?n WHERE { ?s ex:v ?v ; ex:name ?n FILTER (?v NOT IN (1, 3)) }"#,
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "\"b\"");
}

#[test]
fn in_list_with_expressions_and_strings() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?n WHERE { ?s ex:v ?v ; ex:name ?n FILTER (?n IN ("a", concat("b", ""))) }"#,
    );
    assert_eq!(r.len(), 2);
}

#[test]
fn describe_returns_subject_triples() {
    let mut ds = dataset();
    let QueryResult::Graph(g) = ds.query("PREFIX ex: <http://e#> DESCRIBE ex:a").unwrap() else {
        panic!()
    };
    assert_eq!(g.len(), 2);
    let QueryResult::Graph(g2) = ds
        .query("PREFIX ex: <http://e#> DESCRIBE ex:a ex:b")
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(g2.len(), 4);
}

#[test]
fn describe_unknown_is_empty() {
    let mut ds = dataset();
    let QueryResult::Graph(g) = ds
        .query("PREFIX ex: <http://e#> DESCRIBE ex:nothing")
        .unwrap()
    else {
        panic!()
    };
    assert!(g.is_empty());
}

/// The thesis' §5.4.2 discussion: OPTIONAL is a left join evaluated in
/// pattern order (operational semantics). This test pins our behaviour
/// on the classic non-commutative example so it is explicit, not
/// accidental.
#[test]
fn optional_order_is_operational() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle(
        r#"@prefix ex: <http://e#> .
           ex:x ex:p 1 .
           ex:x ex:q 2 .
           ex:y ex:p 1 ."#,
    )
    .unwrap();
    // OPTIONAL after the base pattern: both subjects survive, ?o bound
    // only for ex:x.
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?s ?o WHERE { ?s ex:p 1 OPTIONAL { ?s ex:q ?o } } ORDER BY ?s"#,
    );
    assert_eq!(r.len(), 2);
    assert!(r[0][1].is_some());
    assert!(r[1][1].is_none());
}

#[test]
fn nested_optionals() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle(
        r#"@prefix ex: <http://e#> .
           ex:a ex:p 1 ; ex:q 2 .
           ex:b ex:p 1 ."#,
    )
    .unwrap();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?s ?q ?r WHERE {
             ?s ex:p 1
             OPTIONAL { ?s ex:q ?q OPTIONAL { ?s ex:r ?r } }
           } ORDER BY ?s"#,
    );
    assert_eq!(r.len(), 2);
    assert!(r[0][1].is_some() && r[0][2].is_none());
    assert!(r[1][1].is_none() && r[1][2].is_none());
}

#[test]
fn order_by_unbound_sorts_first() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle(
        r#"@prefix ex: <http://e#> .
           ex:a ex:p 1 . ex:b ex:p 1 ; ex:q 5 ."#,
    )
    .unwrap();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?s ?q WHERE { ?s ex:p 1 OPTIONAL { ?s ex:q ?q } } ORDER BY ?q"#,
    );
    assert!(r[0][1].is_none(), "unbound sorts before bound");
    assert!(r[1][1].is_some());
}

#[test]
fn having_without_group_by() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT (SUM(?v) AS ?s) WHERE { ?x ex:v ?v } HAVING (SUM(?v) > 100)"#,
    );
    assert!(r.is_empty());
    let r2 = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT (SUM(?v) AS ?s) WHERE { ?x ex:v ?v } HAVING (SUM(?v) > 1)"#,
    );
    assert_eq!(r2.len(), 1);
    assert_eq!(r2[0][0].as_ref().unwrap().to_string(), "6");
}

#[test]
fn count_distinct() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle(
        r#"@prefix ex: <http://e#> .
           ex:a ex:tag "x" . ex:b ex:tag "x" . ex:c ex:tag "y" ."#,
    )
    .unwrap();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT (COUNT(DISTINCT ?t) AS ?n) WHERE { ?s ex:tag ?t }"#,
    );
    assert_eq!(r[0][0].as_ref().unwrap().to_string(), "2");
}

#[test]
fn values_joins_against_pattern_bindings() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?n ?w WHERE {
             ?s ex:v ?v ; ex:name ?n .
             VALUES (?v ?w) { (1 "one") (2 "two") }
           } ORDER BY ?v"#,
    );
    assert_eq!(r.len(), 2);
    assert_eq!(r[0][1].as_ref().unwrap().to_string(), "\"one\"");
    assert_eq!(r[1][1].as_ref().unwrap().to_string(), "\"two\"");
}

#[test]
fn deref_of_non_array_is_unbound() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT (?v[1] AS ?x) WHERE { ex:a ex:v ?v }"#,
    );
    assert_eq!(r.len(), 1);
    assert!(
        r[0][0].is_none(),
        "subscripting a scalar is an error → unbound"
    );
}

#[test]
fn negative_stride_is_error_unbound() {
    let mut ds = Dataset::in_memory();
    ds.load_turtle("@prefix ex: <http://e#> . ex:s ex:a (1 2 3 4) .")
        .unwrap();
    let r = rows(
        &mut ds,
        "PREFIX ex: <http://e#> SELECT (?a[1:0-1:4] AS ?x) WHERE { ex:s ex:a ?a }",
    );
    assert!(r[0][0].is_none());
}

#[test]
fn string_comparisons() {
    let mut ds = dataset();
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?n WHERE { ?s ex:name ?n FILTER (?n >= "b") } ORDER BY ?n"#,
    );
    assert_eq!(r.len(), 2);
}

#[test]
fn arithmetic_type_error_filters_row() {
    let mut ds = dataset();
    // ?n is a string; ?n + 1 errors → filter false → no rows.
    let r = rows(
        &mut ds,
        r#"PREFIX ex: <http://e#>
           SELECT ?n WHERE { ?s ex:name ?n FILTER (?n + 1 > 0) }"#,
    );
    assert!(r.is_empty());
}
