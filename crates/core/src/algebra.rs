//! Logical algebra and the SciSPARQL translation pipeline.
//!
//! Mirrors SSDM's processing of a query (thesis §5.4): the parsed
//! pattern translates into an operator tree ([`Plan`]); filters are
//! collected and *pushed down* to the earliest point where their
//! variables are bound; and conjunctions of scans are **reordered by
//! estimated cost** using the graph's per-predicate statistics — the
//! role ObjectLog normalization plus the Amos II cost-based optimizer
//! play in the original system.

use std::collections::{HashMap, HashSet};

use ssdm_rdf::{Graph, TermId};

use crate::ast::*;
use crate::planner::{consts, filter_selectivity, PlannerCtx, PlannerMode};

/// A logical operator.
#[derive(Debug, Clone)]
pub enum Plan {
    /// The unit: one empty solution.
    Empty,
    /// Match one triple pattern (including property paths).
    Scan(TriplePattern),
    /// Conjunction; children run left-to-right, feeding bindings forward.
    Join(Vec<Plan>),
    /// OPTIONAL.
    LeftJoin { left: Box<Plan>, right: Box<Plan> },
    /// UNION of branches.
    Union(Vec<Plan>),
    /// FILTER.
    Filter { input: Box<Plan>, expr: Expr },
    /// BIND.
    Extend {
        input: Box<Plan>,
        var: String,
        expr: Expr,
    },
    /// VALUES.
    Values {
        vars: Vec<String>,
        rows: Vec<Vec<Option<ssdm_rdf::Term>>>,
    },
    /// GRAPH pattern: evaluate `inner` against a named graph.
    Graph { name: TermPattern, inner: Box<Plan> },
    /// A subquery whose projected rows join the outer bindings.
    SubSelect(Box<SelectQuery>),
    /// Set difference against compatible solutions of the pattern.
    Minus {
        input: Box<Plan>,
        pattern: GroupPattern,
    },
}

impl Plan {
    /// Variables this plan is guaranteed to bind in every solution
    /// (used for filter placement).
    pub fn certain_vars(&self, out: &mut HashSet<String>) {
        match self {
            Plan::Empty => {}
            Plan::Scan(t) => {
                if let TermPattern::Var(v) = &t.subject {
                    out.insert(v.clone());
                }
                if let Some(TermPattern::Var(v)) = t.path.as_pred() {
                    out.insert(v.clone());
                }
                if let TermPattern::Var(v) = &t.object {
                    out.insert(v.clone());
                }
            }
            Plan::Join(children) => {
                for c in children {
                    c.certain_vars(out);
                }
            }
            Plan::LeftJoin { left, .. } => left.certain_vars(out),
            Plan::Union(branches) => {
                // Only vars bound in EVERY branch are certain.
                let mut iter = branches.iter();
                let mut common: HashSet<String> = match iter.next() {
                    Some(b) => {
                        let mut s = HashSet::new();
                        b.certain_vars(&mut s);
                        s
                    }
                    None => return,
                };
                for b in iter {
                    let mut s = HashSet::new();
                    b.certain_vars(&mut s);
                    common.retain(|v| s.contains(v));
                }
                out.extend(common);
            }
            Plan::Filter { input, .. } => input.certain_vars(out),
            Plan::Extend { input, var, .. } => {
                input.certain_vars(out);
                out.insert(var.clone());
            }
            Plan::Values { vars, rows } => {
                for (i, v) in vars.iter().enumerate() {
                    if rows
                        .iter()
                        .all(|r| r.get(i).map(|c| c.is_some()).unwrap_or(false))
                    {
                        out.insert(v.clone());
                    }
                }
            }
            Plan::Graph { name, inner } => {
                if let TermPattern::Var(v) = name {
                    out.insert(v.clone());
                }
                inner.certain_vars(out);
            }
            Plan::SubSelect(q) => {
                if let Projection::Items(items) = &q.projection {
                    for i in items {
                        out.insert(i.name());
                    }
                }
            }
            Plan::Minus { input, .. } => input.certain_vars(out),
        }
    }
}

/// Translate a group pattern into a logical plan (filters float to the
/// top of their group, per SPARQL's group-level filter scope).
pub fn translate(pattern: &GroupPattern) -> Plan {
    let mut conj: Vec<Plan> = Vec::new();
    let mut filters: Vec<Expr> = Vec::new();
    for elem in &pattern.elems {
        match elem {
            PatternElem::Triple(t) => conj.push(Plan::Scan(t.clone())),
            PatternElem::Group(g) => conj.push(translate(g)),
            PatternElem::Union(branches) => {
                conj.push(Plan::Union(branches.iter().map(translate).collect()))
            }
            PatternElem::Values { vars, rows } => conj.push(Plan::Values {
                vars: vars.clone(),
                rows: rows.clone(),
            }),
            PatternElem::Filter(e) => filters.push(e.clone()),
            PatternElem::Bind { expr, var } => {
                // BIND scopes over the group so far.
                let input = join_of(std::mem::take(&mut conj));
                conj.push(Plan::Extend {
                    input: Box::new(input),
                    var: var.clone(),
                    expr: expr.clone(),
                });
            }
            PatternElem::Graph { name, pattern } => {
                conj.push(Plan::Graph {
                    name: name.clone(),
                    inner: Box::new(translate(pattern)),
                });
            }
            PatternElem::SubSelect(q) => conj.push(Plan::SubSelect(q.clone())),
            PatternElem::Minus(p) => {
                let input = join_of(std::mem::take(&mut conj));
                conj.push(Plan::Minus {
                    input: Box::new(input),
                    pattern: p.clone(),
                });
            }
            PatternElem::Optional(g) => {
                let left = join_of(std::mem::take(&mut conj));
                conj.push(Plan::LeftJoin {
                    left: Box::new(left),
                    right: Box::new(translate(g)),
                });
            }
        }
    }
    let mut plan = join_of(conj);
    for f in filters {
        plan = Plan::Filter {
            input: Box::new(plan),
            expr: f,
        };
    }
    plan
}

fn join_of(mut children: Vec<Plan>) -> Plan {
    match children.len() {
        0 => Plan::Empty,
        1 => children.pop().expect("len checked"),
        _ => Plan::Join(children),
    }
}

// ---------------------------------------------------------------------
// Optimization
// ---------------------------------------------------------------------

/// Optimize a plan against graph statistics with an
/// environment-derived planner configuration: flatten joins, push
/// filters down, and order join children by estimated cardinality
/// given already-bound variables.
pub fn optimize(plan: Plan, graph: &Graph) -> Plan {
    optimize_with(plan, &PlannerCtx::new(graph))
}

/// Optimize under an explicit planner context (configuration mode,
/// calibration table, zone-map statistics). This is the entry the
/// evaluator uses; [`optimize`] is the graph-only convenience wrapper.
pub fn optimize_with(plan: Plan, ctx: &PlannerCtx) -> Plan {
    let plan = flatten(plan);
    order_and_push(plan, ctx, &HashSet::new())
}

/// Translate without reordering (the "textual order" baseline used by
/// the optimizer ablation experiment).
pub fn translate_unoptimized(pattern: &GroupPattern) -> Plan {
    flatten(translate(pattern))
}

fn flatten(plan: Plan) -> Plan {
    match plan {
        Plan::Join(children) => {
            let mut flat = Vec::new();
            for c in children {
                match flatten(c) {
                    Plan::Join(inner) => flat.extend(inner),
                    Plan::Empty => {}
                    other => flat.push(other),
                }
            }
            join_of(flat)
        }
        Plan::LeftJoin { left, right } => Plan::LeftJoin {
            left: Box::new(flatten(*left)),
            right: Box::new(flatten(*right)),
        },
        Plan::Union(branches) => Plan::Union(branches.into_iter().map(flatten).collect()),
        Plan::Filter { input, expr } => Plan::Filter {
            input: Box::new(flatten(*input)),
            expr,
        },
        Plan::Graph { name, inner } => Plan::Graph {
            name,
            inner: Box::new(flatten(*inner)),
        },
        Plan::Minus { input, pattern } => Plan::Minus {
            input: Box::new(flatten(*input)),
            pattern,
        },
        Plan::Extend { input, var, expr } => Plan::Extend {
            input: Box::new(flatten(*input)),
            var,
            expr,
        },
        other => other,
    }
}

/// Recursive optimization: within a Join, order children per the
/// configured enumeration mode and interleave applicable filters;
/// recurse into sub-plans.
fn order_and_push(plan: Plan, ctx: &PlannerCtx, outer_bound: &HashSet<String>) -> Plan {
    match plan {
        Plan::Filter { input, expr } => {
            // Try to push into a join below.
            match *input {
                Plan::Join(children) => optimize_join(children, vec![expr], ctx, outer_bound),
                other => {
                    let inner = order_and_push(other, ctx, outer_bound);
                    Plan::Filter {
                        input: Box::new(inner),
                        expr,
                    }
                }
            }
        }
        Plan::Join(children) => optimize_join(children, Vec::new(), ctx, outer_bound),
        Plan::LeftJoin { left, right } => {
            let left = order_and_push(*left, ctx, outer_bound);
            let mut bound = outer_bound.clone();
            left.certain_vars(&mut bound);
            let right = order_and_push(*right, ctx, &bound);
            Plan::LeftJoin {
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        Plan::Union(branches) => Plan::Union(
            branches
                .into_iter()
                .map(|b| order_and_push(b, ctx, outer_bound))
                .collect(),
        ),
        Plan::Extend { input, var, expr } => Plan::Extend {
            input: Box::new(order_and_push(*input, ctx, outer_bound)),
            var,
            expr,
        },
        // GRAPH inner patterns match a different graph whose statistics
        // we don't consult; only push bound-variable knowledge down.
        Plan::Graph { name, inner } => Plan::Graph {
            name,
            inner: Box::new(order_and_push(*inner, ctx, outer_bound)),
        },
        Plan::Minus { input, pattern } => Plan::Minus {
            input: Box::new(order_and_push(*input, ctx, outer_bound)),
            pattern,
        },
        other => other,
    }
}

/// Collect consecutive filters sitting directly above a join, choose a
/// child order (textual / greedy / DP per the context's mode), then
/// assemble the join with filters interleaved at their earliest
/// fully-bound position.
fn optimize_join(
    children: Vec<Plan>,
    mut filters: Vec<Expr>,
    ctx: &PlannerCtx,
    outer_bound: &HashSet<String>,
) -> Plan {
    // Peel nested Filter-over-Join chains.
    let mut items: Vec<Plan> = Vec::new();
    for c in children {
        match c {
            Plan::Filter { input, expr } if matches!(*input, Plan::Join(_) | Plan::Scan(_)) => {
                filters.push(expr);
                match *input {
                    Plan::Join(inner) => items.extend(inner),
                    other => items.push(other),
                }
            }
            other => items.push(other),
        }
    }

    let order = choose_order(&items, &filters, ctx, outer_bound);

    let mut pending_filters = filters;
    let mut ordered: Vec<Plan> = Vec::new();
    let mut bound = outer_bound.clone();
    let mut items: Vec<Option<Plan>> = items.into_iter().map(Some).collect();

    for idx in order {
        let chosen = items[idx].take().expect("order is a permutation");
        let chosen = order_and_push(chosen, ctx, &bound);
        chosen.certain_vars(&mut bound);
        ordered.push(chosen);
        // Attach every filter whose variables are now all bound.
        let mut still_pending = Vec::new();
        for f in pending_filters.drain(..) {
            let mut vars = Vec::new();
            f.collect_vars(&mut vars);
            if vars.iter().all(|v| bound.contains(v)) {
                let input = join_of(std::mem::take(&mut ordered));
                ordered.push(Plan::Filter {
                    input: Box::new(input),
                    expr: f,
                });
            } else {
                still_pending.push(f);
            }
        }
        pending_filters = still_pending;
    }
    let mut plan = join_of(ordered);
    // Filters whose vars never bind still apply (they see unbound vars).
    for f in pending_filters {
        plan = Plan::Filter {
            input: Box::new(plan),
            expr: f,
        };
    }
    plan
}

/// Pick the evaluation order of a join's children as a permutation of
/// their indices, per the configured enumeration mode.
fn choose_order(
    items: &[Plan],
    filters: &[Expr],
    ctx: &PlannerCtx,
    outer_bound: &HashSet<String>,
) -> Vec<usize> {
    let n = items.len();
    match ctx.config.mode {
        PlannerMode::Textual => (0..n).collect(),
        PlannerMode::Greedy => greedy_order(items, ctx, outer_bound),
        PlannerMode::Dp => {
            if (2..=ctx.config.dp_max_patterns.min(16)).contains(&n) {
                dp_order(items, filters, ctx, outer_bound)
            } else {
                greedy_order(items, ctx, outer_bound)
            }
        }
    }
}

/// One-shot greedy ordering: repeatedly take the child with the lowest
/// estimated cardinality given the variables bound so far (the pre-v2
/// planner).
fn greedy_order(items: &[Plan], ctx: &PlannerCtx, outer_bound: &HashSet<String>) -> Vec<usize> {
    let n = items.len();
    let mut used = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut bound = outer_bound.clone();
    for _ in 0..n {
        let (best_idx, _) = items
            .iter()
            .enumerate()
            .filter(|(i, _)| !used[*i])
            .map(|(i, c)| (i, estimate_ctx(c, ctx, &bound)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("nonempty");
        used[best_idx] = true;
        items[best_idx].certain_vars(&mut bound);
        order.push(best_idx);
    }
    order
}

/// Bottom-up dynamic programming over connected subsets (System R for
/// left-deep plans): `dp[S]` holds the cheapest order producing the
/// item subset `S`, where cost is the total intermediate cardinality
/// Σ |prefix| and filters discount cardinality as soon as their
/// variables bind. Extensions prefer items connected to the bound
/// variable set, so cross products appear only when unavoidable.
fn dp_order(
    items: &[Plan],
    filters: &[Expr],
    ctx: &PlannerCtx,
    outer_bound: &HashSet<String>,
) -> Vec<usize> {
    let n = items.len();
    debug_assert!(n <= 16, "dp_order caller enforces the cutoff");
    let item_vars: Vec<HashSet<String>> = items
        .iter()
        .map(|c| {
            let mut s = HashSet::new();
            c.certain_vars(&mut s);
            s
        })
        .collect();
    let filter_vars: Vec<Vec<String>> = filters
        .iter()
        .map(|f| {
            let mut vs = Vec::new();
            f.collect_vars(&mut vs);
            vs
        })
        .collect();
    let var_preds = var_predicates(items, ctx.graph);

    #[derive(Clone)]
    struct State {
        cost: f64,
        card: f64,
        order: Vec<usize>,
        bound: HashSet<String>,
        filters_done: u64,
    }

    let full: usize = (1 << n) - 1;
    let mut dp: Vec<Option<State>> = vec![None; 1 << n];
    dp[0] = Some(State {
        cost: 0.0,
        card: 1.0,
        order: Vec::new(),
        bound: outer_bound.clone(),
        filters_done: 0,
    });

    for mask in 0..=full {
        let Some(state) = dp[mask].clone() else {
            continue;
        };
        let free: Vec<usize> = (0..n).filter(|j| mask & (1 << j) == 0).collect();
        if free.is_empty() {
            continue;
        }
        // Prefer extensions that join on an already-bound variable
        // (var-free items, e.g. all-constant scans, are always
        // admissible — they cost at most one row).
        let connected: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&j| {
                mask == 0
                    || item_vars[j].is_empty()
                    || item_vars[j].iter().any(|v| state.bound.contains(v))
            })
            .collect();
        let candidates = if connected.is_empty() {
            free
        } else {
            connected
        };
        for j in candidates {
            let next = mask | (1 << j);
            let per_row = estimate_ctx(&items[j], ctx, &state.bound);
            let scanned = state.card * per_row.max(consts::MIN_JOIN_CHILD_CARD);
            let mut bound = state.bound.clone();
            items[j].certain_vars(&mut bound);
            let mut card = scanned;
            let mut filters_done = state.filters_done;
            for (fi, fv) in filter_vars.iter().enumerate() {
                if filters_done & (1 << fi) == 0 && fv.iter().all(|v| bound.contains(v)) {
                    card *= filter_selectivity(&filters[fi], ctx, &var_preds);
                    filters_done |= 1 << fi;
                }
            }
            let card = card.max(consts::MIN_JOIN_CHILD_CARD);
            let cost = state.cost + scanned;
            let better = match &dp[next] {
                None => true,
                Some(s) => {
                    cost < s.cost - 1e-9 || ((cost - s.cost).abs() <= 1e-9 && card < s.card - 1e-9)
                }
            };
            if better {
                let mut order = state.order.clone();
                order.push(j);
                dp[next] = Some(State {
                    cost,
                    card,
                    order,
                    bound,
                    filters_done,
                });
            }
        }
    }
    dp[full]
        .take()
        .map(|s| s.order)
        .unwrap_or_else(|| (0..n).collect())
}

/// Map object-position variables of constant-predicate scans to their
/// predicate's id, so filter selectivity can consult that predicate's
/// object-value histogram.
pub(crate) fn var_predicates(items: &[Plan], graph: &Graph) -> HashMap<String, TermId> {
    let mut out = HashMap::new();
    for item in items {
        collect_var_preds(item, graph, &mut out);
    }
    out
}

fn collect_var_preds(plan: &Plan, graph: &Graph, out: &mut HashMap<String, TermId>) {
    match plan {
        Plan::Scan(t) => {
            if let (Some(TermPattern::Term(p)), TermPattern::Var(v)) = (t.path.as_pred(), &t.object)
            {
                if let Some(pid) = graph.dictionary().lookup(p) {
                    out.entry(v.clone()).or_insert(pid);
                }
            }
        }
        Plan::Join(children) => {
            for c in children {
                collect_var_preds(c, graph, out);
            }
        }
        Plan::Filter { input, .. } | Plan::Extend { input, .. } | Plan::Minus { input, .. } => {
            collect_var_preds(input, graph, out)
        }
        Plan::LeftJoin { left, .. } => collect_var_preds(left, graph, out),
        _ => {}
    }
}

/// Cardinality estimate of one operator given bound variables, from
/// graph statistics alone (no calibration/zone context). Convenience
/// wrapper over [`estimate_ctx`] for `EXPLAIN` and the profiler.
pub fn estimate(plan: &Plan, graph: &Graph, bound: &HashSet<String>) -> f64 {
    estimate_ctx(plan, &PlannerCtx::plain(graph), bound)
}

/// Cardinality estimate of one operator given bound variables, under a
/// full planner context. Fallback constants live in
/// [`crate::planner::consts`]; histogram, sketch and calibration
/// evidence takes precedence when available.
pub fn estimate_ctx(plan: &Plan, ctx: &PlannerCtx, bound: &HashSet<String>) -> f64 {
    let graph = ctx.graph;
    match plan {
        Plan::Empty => 1.0,
        Plan::Scan(t) => {
            let resolve = |tp: &TermPattern| match tp {
                TermPattern::Var(v) => {
                    if bound.contains(v) {
                        BoundKind::BoundVar
                    } else {
                        BoundKind::Free
                    }
                }
                TermPattern::Term(term) => BoundKind::Const(term.clone()),
            };
            let s = resolve(&t.subject);
            let o = resolve(&t.object);
            match t.path.as_pred() {
                Some(p) => {
                    let p = resolve(p);
                    estimate_triple(ctx, s, p, o)
                }
                None => {
                    // Property paths: assume moderate fan-out per start.
                    let base = match (&s, &o) {
                        (BoundKind::Free, BoundKind::Free) => graph.len() as f64,
                        _ => (graph.len() as f64).sqrt().max(1.0),
                    };
                    base * consts::PATH_FANOUT
                }
            }
        }
        Plan::Join(children) => {
            let mut b = bound.clone();
            let mut total = 1.0;
            for c in children {
                total *= estimate_ctx(c, ctx, &b).max(consts::MIN_JOIN_CHILD_CARD);
                c.certain_vars(&mut b);
            }
            total
        }
        Plan::LeftJoin { left, .. } => estimate_ctx(left, ctx, bound),
        Plan::Union(branches) => branches.iter().map(|b| estimate_ctx(b, ctx, bound)).sum(),
        Plan::Filter { input, expr } => {
            // Expression-aware selectivity against the input subtree's
            // object-variable predicates (was a blanket × 0.5).
            let var_preds = var_predicates(std::slice::from_ref(&**input), graph);
            estimate_ctx(input, ctx, bound) * filter_selectivity(expr, ctx, &var_preds)
        }
        Plan::Extend { input, .. } => estimate_ctx(input, ctx, bound),
        Plan::Values { rows, .. } => rows.len() as f64,
        Plan::Graph { inner, .. } => estimate_ctx(inner, ctx, bound) * consts::GRAPH_FANOUT,
        Plan::SubSelect(_) => (graph.len() as f64).sqrt().max(1.0),
        Plan::Minus { input, .. } => estimate_ctx(input, ctx, bound),
    }
}

enum BoundKind {
    Free,
    BoundVar,
    Const(ssdm_rdf::Term),
}

fn estimate_triple(ctx: &PlannerCtx, s: BoundKind, p: BoundKind, o: BoundKind) -> f64 {
    let graph = ctx.graph;
    let lookup = |k: &BoundKind| match k {
        BoundKind::Const(t) => graph.dictionary().lookup(t),
        _ => None,
    };
    let s_id = lookup(&s);
    let p_id = lookup(&p);
    let o_id = lookup(&o);
    // A constant that is not even in the dictionary matches nothing.
    if matches!(s, BoundKind::Const(_)) && s_id.is_none()
        || matches!(p, BoundKind::Const(_)) && p_id.is_none()
        || matches!(o, BoundKind::Const(_)) && o_id.is_none()
    {
        return 0.0;
    }
    let mut est = graph.estimate_pattern(s_id, p_id, o_id);
    // A constant numeric object under a known predicate: refine with
    // that predicate's object-value histogram, which sees skew the
    // uniform (count / distinct) model misses.
    if let (Some(pid), BoundKind::Const(ssdm_rdf::Term::Number(n))) = (p_id, &o) {
        if let Some(h) = graph.estimate_object_eq(pid, n.as_f64()) {
            est = est.min(h.max(consts::MIN_SCAN_CARD));
        }
    }
    // Bound variables act like constants for selectivity. Under a
    // known predicate the expected matches per binding is
    // count / distinct for that position (≈1 per row for key-like
    // predicates); without predicate statistics fall back to a fixed
    // attenuation.
    let s_bound = matches!(s, BoundKind::BoundVar);
    let o_bound = matches!(o, BoundKind::BoundVar);
    if s_bound || o_bound {
        if let Some(pid) = p_id {
            let st = graph.predicate_stats(pid);
            if s_bound {
                est /= st.distinct_subjects.max(1) as f64;
            }
            if o_bound {
                est /= st.distinct_objects.max(1) as f64;
            }
        } else {
            if s_bound {
                est /= consts::BOUND_VAR_ATTENUATION;
            }
            if o_bound {
                est /= consts::BOUND_VAR_ATTENUATION;
            }
        }
    }
    // Runtime feedback: scale by the predicate's learned correction.
    if let BoundKind::Const(pt) = &p {
        est *= ctx.factor_for(pt);
    }
    est.max(consts::MIN_SCAN_CARD)
}

/// Render a plan as an indented operator tree (the `EXPLAIN` output).
pub fn explain(plan: &Plan, graph: &Graph) -> String {
    let mut out = String::new();
    fn walk(plan: &Plan, graph: &Graph, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let est = estimate(plan, graph, &HashSet::new());
        match plan {
            Plan::Empty => out.push_str(&format!("{pad}Empty\n")),
            Plan::Scan(t) => {
                let pred = match &t.path {
                    Path::Pred(p) => term_pattern_text(p),
                    other => format!("path:{other:?}"),
                };
                out.push_str(&format!(
                    "{pad}Scan {} {} {}   (est {est:.1})\n",
                    term_pattern_text(&t.subject),
                    pred,
                    term_pattern_text(&t.object)
                ));
            }
            Plan::Join(children) => {
                out.push_str(&format!("{pad}Join   (est {est:.1})\n"));
                for c in children {
                    walk(c, graph, depth + 1, out);
                }
            }
            Plan::LeftJoin { left, right } => {
                out.push_str(&format!("{pad}LeftJoin (OPTIONAL)\n"));
                walk(left, graph, depth + 1, out);
                walk(right, graph, depth + 1, out);
            }
            Plan::Union(branches) => {
                out.push_str(&format!("{pad}Union   (est {est:.1})\n"));
                for b in branches {
                    walk(b, graph, depth + 1, out);
                }
            }
            Plan::Filter { input, expr } => {
                out.push_str(&format!("{pad}Filter {expr:?}\n"));
                walk(input, graph, depth + 1, out);
            }
            Plan::Extend { input, var, expr } => {
                out.push_str(&format!("{pad}Extend ?{var} := {expr:?}\n"));
                walk(input, graph, depth + 1, out);
            }
            Plan::Values { vars, rows } => {
                out.push_str(&format!("{pad}Values {:?} ({} rows)\n", vars, rows.len()));
            }
            Plan::Graph { name, inner } => {
                out.push_str(&format!("{pad}Graph {}\n", term_pattern_text(name)));
                walk(inner, graph, depth + 1, out);
            }
            Plan::SubSelect(_) => {
                out.push_str(&format!("{pad}SubSelect\n"));
            }
            Plan::Minus { input, .. } => {
                out.push_str(&format!("{pad}Minus\n"));
                walk(input, graph, depth + 1, out);
            }
        }
    }
    walk(plan, graph, 0, &mut out);
    out
}

fn term_pattern_text(tp: &TermPattern) -> String {
    match tp {
        TermPattern::Var(v) => format!("?{v}"),
        TermPattern::Term(t) => t.to_string(),
    }
}

/// One-line label for a plan node — the operator name the profiler uses
/// for its per-operator rows, consistent with [`explain`]'s tree.
pub fn node_label(plan: &Plan) -> String {
    match plan {
        Plan::Empty => "Empty".into(),
        Plan::Scan(t) => {
            let pred = match &t.path {
                Path::Pred(p) => term_pattern_text(p),
                other => format!("path:{other:?}"),
            };
            format!(
                "Scan {} {} {}",
                term_pattern_text(&t.subject),
                pred,
                term_pattern_text(&t.object)
            )
        }
        Plan::Join(_) => "Join".into(),
        Plan::LeftJoin { .. } => "LeftJoin (OPTIONAL)".into(),
        Plan::Union(_) => "Union".into(),
        Plan::Filter { expr, .. } => format!("Filter {expr:?}"),
        Plan::Extend { var, expr, .. } => format!("Extend ?{var} := {expr:?}"),
        Plan::Values { vars, rows } => format!("Values {:?} ({} rows)", vars, rows.len()),
        Plan::Graph { name, .. } => format!("Graph {}", term_pattern_text(name)),
        Plan::SubSelect(_) => "SubSelect".into(),
        Plan::Minus { .. } => "Minus".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use ssdm_rdf::turtle;

    fn plan_for(query: &str, data: &str) -> (Plan, Graph) {
        let mut g = Graph::new();
        turtle::parse_into(&mut g, data).unwrap();
        let Statement::Select(q) = parse(query).unwrap() else {
            panic!()
        };
        // Default planner config, deliberately ignoring SSDM_PLANNER:
        // these tests assert reordering behavior, which a forced
        // textual mode would switch off.
        let plan = optimize_with(translate(&q.pattern), &PlannerCtx::plain(&g));
        (plan, g)
    }

    #[test]
    fn selective_pattern_ordered_first() {
        // foaf:name "Alice" matches 1 triple; foaf:knows matches many.
        let data = r#"
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            _:a foaf:name "Alice" . _:a foaf:knows _:b , _:c , _:d .
            _:b foaf:name "Bob" ; foaf:knows _:a , _:c , _:d .
            _:c foaf:name "Cindy" ; foaf:knows _:d .
            _:d foaf:name "Daniel" .
        "#;
        let q = r#"
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            SELECT ?n WHERE { ?p foaf:knows ?q . ?p foaf:name "Alice" . ?q foaf:name ?n }
        "#;
        let (plan, _g) = plan_for(q, data);
        let Plan::Join(children) = &plan else {
            panic!("expected join, got {plan:?}")
        };
        // First child must be the constant-object name scan.
        let Plan::Scan(t) = &children[0] else {
            panic!("expected scan first, got {:?}", children[0])
        };
        assert!(
            matches!(&t.object, TermPattern::Term(ssdm_rdf::Term::Str(s)) if s == "Alice"),
            "most selective pattern should come first, got {t:?}"
        );
    }

    #[test]
    fn filter_pushed_after_binding_scan() {
        let data = "<http://s> <http://p> 5 . <http://s> <http://q> 6 .";
        let q = "SELECT ?x WHERE { ?s <http://q> ?y . ?s <http://p> ?x . FILTER(?x > 1) }";
        let (plan, _g) = plan_for(q, data);
        // The filter must sit inside the join (not at top wrapping all).
        fn top_is_filter(p: &Plan) -> bool {
            matches!(p, Plan::Filter { .. })
        }
        // With pushdown, the top is a Join whose last element is a
        // Filter over the prefix — or the filter wraps the whole join
        // only if ?x binds last. Either way evaluation works; assert
        // the plan contains a Filter somewhere.
        fn contains_filter(p: &Plan) -> bool {
            match p {
                Plan::Filter { .. } => true,
                Plan::Join(cs) => cs.iter().any(contains_filter),
                Plan::LeftJoin { left, right } => contains_filter(left) || contains_filter(right),
                Plan::Union(bs) => bs.iter().any(contains_filter),
                Plan::Extend { input, .. } => contains_filter(input),
                _ => false,
            }
        }
        assert!(contains_filter(&plan));
        let _ = top_is_filter;
    }

    #[test]
    fn union_certain_vars_is_intersection() {
        let p = Plan::Union(vec![
            Plan::Scan(TriplePattern {
                subject: TermPattern::Var("x".into()),
                path: Path::Pred(TermPattern::Term(ssdm_rdf::Term::uri("p"))),
                object: TermPattern::Var("y".into()),
            }),
            Plan::Scan(TriplePattern {
                subject: TermPattern::Var("x".into()),
                path: Path::Pred(TermPattern::Term(ssdm_rdf::Term::uri("q"))),
                object: TermPattern::Var("z".into()),
            }),
        ]);
        let mut vars = HashSet::new();
        p.certain_vars(&mut vars);
        assert!(vars.contains("x"));
        assert!(!vars.contains("y"));
        assert!(!vars.contains("z"));
    }

    #[test]
    fn impossible_constant_estimates_zero() {
        let (plan, g) = plan_for(
            "SELECT ?x WHERE { ?x <http://nothere> 1 }",
            "<http://s> <http://p> 2 .",
        );
        let est = estimate(&plan, &g, &HashSet::new());
        assert_eq!(est, 0.0);
    }

    #[test]
    fn optional_translates_to_left_join() {
        let (plan, _) = plan_for(
            "SELECT ?x WHERE { ?x <http://p> ?y OPTIONAL { ?x <http://q> ?z } }",
            "<http://s> <http://p> 2 .",
        );
        assert!(matches!(plan, Plan::LeftJoin { .. }));
    }
}
