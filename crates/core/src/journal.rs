//! The update-journaling hook: how a durability layer observes every
//! committed mutation without the core depending on any storage
//! subsystem.
//!
//! SSDM logs updates *logically* — the raw SciSPARQL update text or
//! Turtle document, not the resulting tuples — so replay is simply
//! re-execution against the recovered snapshot. The hook fires **after**
//! the mutation succeeds and **before** the caller sees `Ok`: a journal
//! failure turns into a query error, so an update is never acknowledged
//! unless its record is as durable as the journal's fsync policy
//! promises.

/// One loggable mutation, borrowed from the caller's input text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalEntry<'a> {
    /// A SciSPARQL update statement (`INSERT DATA` / `DELETE DATA` /
    /// `DELETE ... INSERT ... WHERE`), verbatim.
    Statement(&'a str),
    /// A Turtle document loaded into the default graph.
    TurtleDefault(&'a str),
    /// A Turtle document loaded into a named graph.
    TurtleNamed { graph: &'a str, text: &'a str },
}

/// Receiver for committed updates. Implemented by the durability
/// layer's WAL appender; attached via `Dataset::journal`.
pub trait UpdateJournal: Send {
    /// Persist one entry. Returning `Err` vetoes the acknowledgement:
    /// the in-memory mutation has already happened, but the caller gets
    /// a query error and recovery will not replay the update.
    fn record(&mut self, entry: JournalEntry<'_>) -> Result<(), String>;
}
