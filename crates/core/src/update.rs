//! SPARQL Update subset: `INSERT DATA` / `DELETE DATA` with ground
//! triples (SciSPARQL updates, thesis §3.9 / SPARUL §2.2.2).
//!
//! Inserted array values above the dataset's externalization threshold
//! move to the ASEI back-end immediately, so large numeric payloads
//! never bloat the in-memory graph.

use ssdm_rdf::Term;

use crate::ast::GroundTriple;
use crate::dataset::{Dataset, QueryError, QueryResult};

/// Execute `INSERT DATA`.
pub fn insert_data(
    ds: &mut Dataset,
    triples: Vec<GroundTriple>,
) -> Result<QueryResult, QueryError> {
    let mut inserted = 0;
    for t in triples {
        let object = externalize_if_large(ds, t.object)?;
        if ds.graph.insert(t.subject, t.predicate, object) {
            inserted += 1;
        }
    }
    Ok(QueryResult::Updated {
        inserted,
        deleted: 0,
    })
}

/// Execute `DELETE DATA`. Array objects match by content against both
/// resident arrays and external references.
pub fn delete_data(
    ds: &mut Dataset,
    triples: Vec<GroundTriple>,
) -> Result<QueryResult, QueryError> {
    let mut deleted = 0;
    for t in triples {
        let (Some(s), Some(p)) = (
            ds.graph.dictionary().lookup(&t.subject),
            ds.graph.dictionary().lookup(&t.predicate),
        ) else {
            continue;
        };
        match &t.object {
            Term::Array(target) => {
                // Find a matching object among this (s, p)'s values.
                let candidates: Vec<ssdm_rdf::TermId> = ds
                    .graph
                    .match_pattern(Some(s), Some(p), None)
                    .map(|tr| tr.o)
                    .collect();
                for o in candidates {
                    let matches = match ds.graph.term(o).clone() {
                        Term::Array(a) => a.array_eq(target),
                        Term::ArrayRef(id) => {
                            let proxy = ds.arrays.proxy(id)?;
                            let resolved = ds.arrays.resolve(&proxy, ds.strategy)?;
                            resolved.array_eq(target)
                        }
                        _ => false,
                    };
                    if matches {
                        if let Term::ArrayRef(id) = ds.graph.term(o).clone() {
                            ds.arrays.delete_array(id)?;
                        }
                        ds.graph.remove_ids(s, p, o);
                        deleted += 1;
                        break;
                    }
                }
            }
            other => {
                if let Some(o) = ds.graph.dictionary().lookup(other) {
                    if ds.graph.remove_ids(s, p, o) {
                        deleted += 1;
                    }
                }
            }
        }
    }
    Ok(QueryResult::Updated {
        inserted: 0,
        deleted,
    })
}

/// Execute a templated update: evaluate the WHERE pattern, then for
/// each solution remove the instantiated DELETE triples and add the
/// instantiated INSERT triples. Templates with unbound variables skip
/// that solution (standard SPARQL Update semantics).
pub fn modify(
    ds: &mut Dataset,
    delete: Vec<crate::ast::TriplePattern>,
    insert: Vec<crate::ast::TriplePattern>,
    pattern: &crate::ast::GroupPattern,
) -> Result<QueryResult, QueryError> {
    use crate::ast::TermPattern;
    use crate::value::Value;

    let solutions = crate::eval::eval_pattern(ds, pattern, vec![crate::eval::Row::new()])?;
    let instantiate = |row: &crate::eval::Row, tp: &TermPattern| -> Option<Term> {
        match tp {
            TermPattern::Var(v) => match row.get(v)? {
                Value::Term(t) => Some(t.clone()),
                Value::Proxy(p) => Some(Term::ArrayRef(p.array_id())),
                Value::Closure(_) => None,
            },
            TermPattern::Term(t) => Some(t.clone()),
        }
    };
    // Collect ground triples first: updates must see a stable snapshot
    // of the matched solutions.
    let mut to_delete = Vec::new();
    let mut to_insert = Vec::new();
    for row in &solutions {
        for t in &delete {
            let (Some(s), Some(p), Some(o)) = (
                instantiate(row, &t.subject),
                t.path.as_pred().and_then(|p| instantiate(row, p)),
                instantiate(row, &t.object),
            ) else {
                continue;
            };
            to_delete.push((s, p, o));
        }
        for t in &insert {
            let (Some(s), Some(p), Some(o)) = (
                instantiate(row, &t.subject),
                t.path.as_pred().and_then(|p| instantiate(row, p)),
                instantiate(row, &t.object),
            ) else {
                continue;
            };
            to_insert.push((s, p, o));
        }
    }
    let mut deleted = 0;
    for (s, p, o) in to_delete {
        let (Some(si), Some(pi), Some(oi)) = (
            ds.graph.dictionary().lookup(&s),
            ds.graph.dictionary().lookup(&p),
            ds.graph.dictionary().lookup(&o),
        ) else {
            continue;
        };
        if ds.graph.remove_ids(si, pi, oi) {
            deleted += 1;
        }
    }
    let mut inserted = 0;
    for (s, p, o) in to_insert {
        let o = externalize_if_large(ds, o)?;
        if ds.graph.insert(s, p, o) {
            inserted += 1;
        }
    }
    Ok(QueryResult::Updated { inserted, deleted })
}

fn externalize_if_large(ds: &mut Dataset, object: Term) -> Result<Term, QueryError> {
    match object {
        Term::Array(a) if a.element_count() > ds.externalize_threshold => {
            let chunk_bytes = if ds.chunk_bytes == 0 {
                ssdm_storage::auto_chunk_bytes(a.element_count())
            } else {
                ds.chunk_bytes
            };
            let proxy = ds.arrays.store_array(&a, chunk_bytes)?;
            Ok(Term::ArrayRef(proxy.array_id()))
        }
        other => Ok(other),
    }
}
