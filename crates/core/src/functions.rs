//! The function registry: user-defined functions (parameterized
//! queries, thesis §4.2), lexical closures (§4.3), and foreign
//! functions with cost estimates (§4.4).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::ast::FunctionDef;
use crate::dataset::QueryError;
use crate::value::Value;

/// Optimizer-facing cost annotation of a foreign function (thesis §4.4:
/// "cost estimates and alternative evaluation directions may be
/// specified").
#[derive(Debug, Clone, Copy)]
pub struct FunctionCost {
    /// Cost units per invocation (same scale as triple-pattern scans).
    pub per_call: f64,
    /// Expected result fan-out (1.0 for scalar functions).
    pub fanout: f64,
}

impl Default for FunctionCost {
    fn default() -> Self {
        FunctionCost {
            per_call: 1.0,
            fanout: 1.0,
        }
    }
}

/// The native implementation of a foreign function.
pub type ForeignImpl = Arc<dyn Fn(&[Value]) -> Result<Value, QueryError> + Send + Sync + 'static>;

/// A registered foreign function.
#[derive(Clone)]
pub struct ForeignFunction {
    pub name: String,
    pub arity: usize,
    pub cost: FunctionCost,
    pub imp: ForeignImpl,
}

impl fmt::Debug for ForeignFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ForeignFunction")
            .field("name", &self.name)
            .field("arity", &self.arity)
            .finish()
    }
}

/// A functional value: a reference to a defined or foreign function,
/// possibly with some arguments already bound (a lexical closure,
/// thesis §4.3). Created by bare function references (`square`),
/// explicit `FUNCTION name`, or partial application `f(1, ?_)`.
#[derive(Debug, Clone)]
pub struct Closure {
    name: String,
    /// Bound argument slots; `None` marks a remaining parameter.
    bound: Vec<Option<Value>>,
}

impl Closure {
    pub fn reference(name: impl Into<String>) -> Self {
        Closure {
            name: name.into(),
            bound: Vec::new(),
        }
    }

    pub fn partial(name: impl Into<String>, bound: Vec<Option<Value>>) -> Self {
        Closure {
            name: name.into(),
            bound,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn bound(&self) -> &[Option<Value>] {
        &self.bound
    }

    /// Merge the free parameter slots with call-time arguments,
    /// producing the full argument list.
    pub fn complete_args(&self, call_args: &[Value]) -> Result<Vec<Value>, QueryError> {
        if self.bound.is_empty() {
            return Ok(call_args.to_vec());
        }
        let holes = self.bound.iter().filter(|b| b.is_none()).count();
        if holes != call_args.len() {
            return Err(QueryError::Eval(format!(
                "closure over '{}' expects {holes} argument(s), got {}",
                self.name,
                call_args.len()
            )));
        }
        let mut it = call_args.iter();
        Ok(self
            .bound
            .iter()
            .map(|b| match b {
                Some(v) => v.clone(),
                None => it.next().expect("hole count checked").clone(),
            })
            .collect())
    }

    pub fn same_function(&self, other: &Closure) -> bool {
        self.name == other.name && self.bound.len() == other.bound.len()
    }
}

impl fmt::Display for Closure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bound.is_empty() {
            write!(f, "#'{}'", self.name)
        } else {
            write!(f, "#'{}'/{} partially applied", self.name, self.bound.len())
        }
    }
}

/// The registry of callable functions: SciSPARQL `DEFINE FUNCTION`
/// views and native foreign functions. Built-in scalar/array functions
/// live in [`crate::eval::builtins`] and are consulted first by the
/// evaluator.
#[derive(Debug, Default)]
pub struct FunctionRegistry {
    defined: HashMap<String, Arc<FunctionDef>>,
    foreign: HashMap<String, ForeignFunction>,
}

impl FunctionRegistry {
    pub fn new() -> Self {
        FunctionRegistry::default()
    }

    /// A registry preloaded with the standard foreign math library
    /// (sqrt, exp, ln, sin, cos — the kind of computational-library
    /// hooks §4.4 describes).
    pub fn with_builtins() -> Self {
        let mut r = FunctionRegistry::new();
        type MathFn = fn(f64) -> f64;
        let unary_math: [(&str, MathFn); 8] = [
            ("sqrt", f64::sqrt),
            ("exp", f64::exp),
            ("ln", f64::ln),
            ("log10", f64::log10),
            ("sin", f64::sin),
            ("cos", f64::cos),
            ("tan", f64::tan),
            ("atan", f64::atan),
        ];
        for (name, f) in unary_math {
            r.register_foreign(ForeignFunction {
                name: name.to_string(),
                arity: 1,
                cost: FunctionCost {
                    per_call: 0.1,
                    fanout: 1.0,
                },
                imp: Arc::new(move |args: &[Value]| {
                    let n = args.first().and_then(Value::as_num).ok_or_else(|| {
                        QueryError::Eval(format!("{name}: numeric argument required"))
                    })?;
                    Ok(Value::double(f(n.as_f64())))
                }),
            });
        }
        r
    }

    /// Register a `DEFINE FUNCTION` view. Redefinition replaces.
    pub fn define(&mut self, def: FunctionDef) -> Result<(), QueryError> {
        let mut seen = std::collections::HashSet::new();
        for p in &def.params {
            if !seen.insert(p) {
                return Err(QueryError::Translation(format!(
                    "duplicate parameter ?{p} in function {}",
                    def.name
                )));
            }
        }
        self.defined.insert(def.name.clone(), Arc::new(def));
        Ok(())
    }

    pub fn register_foreign(&mut self, f: ForeignFunction) {
        self.foreign.insert(f.name.clone(), f);
    }

    pub fn lookup_defined(&self, name: &str) -> Option<Arc<FunctionDef>> {
        self.defined.get(name).cloned()
    }

    pub fn lookup_foreign(&self, name: &str) -> Option<&ForeignFunction> {
        self.foreign.get(name)
    }

    pub fn is_known(&self, name: &str) -> bool {
        self.defined.contains_key(name) || self.foreign.contains_key(name)
    }

    /// Cost estimate for a call, for the optimizer.
    pub fn call_cost(&self, name: &str) -> FunctionCost {
        self.foreign.get(name).map(|f| f.cost).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_complete_args() {
        let c = Closure::partial(
            "f",
            vec![Some(Value::integer(1)), None, Some(Value::integer(3)), None],
        );
        let full = c
            .complete_args(&[Value::integer(2), Value::integer(4)])
            .unwrap();
        let nums: Vec<i64> = full.iter().map(|v| v.as_num().unwrap().as_i64()).collect();
        assert_eq!(nums, vec![1, 2, 3, 4]);
    }

    #[test]
    fn closure_arity_mismatch() {
        let c = Closure::partial("f", vec![None, None]);
        assert!(c.complete_args(&[Value::integer(1)]).is_err());
    }

    #[test]
    fn bare_reference_passes_args_through() {
        let c = Closure::reference("g");
        let full = c.complete_args(&[Value::integer(9)]).unwrap();
        assert_eq!(full.len(), 1);
    }

    #[test]
    fn builtin_math_registered() {
        let r = FunctionRegistry::with_builtins();
        assert!(r.is_known("sqrt"));
        let f = r.lookup_foreign("sqrt").unwrap();
        let v = (f.imp)(&[Value::double(9.0)]).unwrap();
        assert_eq!(v.as_num().unwrap().as_f64(), 3.0);
    }

    #[test]
    fn duplicate_params_rejected() {
        let mut r = FunctionRegistry::new();
        let def = FunctionDef {
            name: "bad".into(),
            params: vec!["x".into(), "x".into()],
            body: crate::ast::SelectQuery {
                distinct: false,
                projection: crate::ast::Projection::All,
                from: None,
                from_named: Vec::new(),
                pattern: Default::default(),
                group_by: vec![],
                having: None,
                order_by: vec![],
                limit: None,
                offset: None,
            },
        };
        assert!(r.define(def).is_err());
    }
}
