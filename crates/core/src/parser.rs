//! Lexer and recursive-descent parser for SciSPARQL.
//!
//! Covers the SPARQL 1.1 subset described in thesis ch. 3 (SELECT /
//! ASK / CONSTRUCT, OPTIONAL, UNION, FILTER, BIND, VALUES, property
//! paths, aggregation, solution modifiers, INSERT/DELETE DATA) plus the
//! SciSPARQL extensions of ch. 4: array dereference `?a[i, lo:stride:hi]`
//! (1-based, negative-from-end), array arithmetic in expressions,
//! `DEFINE FUNCTION` parameterized views, function references and
//! partial application (`fn(1, ?_)`) producing lexical closures.
//!
//! One deliberate restriction: prefixed names require a non-empty
//! prefix (`ex:p`, not `:p`), because a bare leading colon is claimed
//! by the array range syntax `?a[1:3]`.

use ssdm_array::Num;
use ssdm_rdf::{Namespaces, RdfError, Term, RDF_TYPE};

use crate::ast::*;
use crate::dataset::QueryError;

/// Parse one SciSPARQL statement.
pub fn parse(text: &str) -> Result<Statement, QueryError> {
    let mut p = Parser::new(text)?;
    let stmt = p.parse_statement()?;
    p.expect_eof()?;
    Ok(stmt)
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    Var(String),
    Iri(String),
    PName { prefix: String, local: String },
    BlankLabel(String),
    Str(String),
    LangTag(String),
    Integer(i64),
    Double(f64),
    Name(String), // bare word: keyword or function name
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Dot,
    Colon,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    DoubleCaret,
    Pipe,
    Question,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> QueryError {
        QueryError::Parse {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, k: usize) -> Option<u8> {
        self.src.get(self.pos + k).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn next(&mut self) -> Result<(Tok, usize, usize), QueryError> {
        self.skip_ws();
        let line = self.line;
        let col = self.col;
        let tok = self.next_inner()?;
        Ok((tok, line, col))
    }

    fn next_inner(&mut self) -> Result<Tok, QueryError> {
        let Some(c) = self.peek() else {
            return Ok(Tok::Eof);
        };
        match c {
            b'{' => {
                self.bump();
                Ok(Tok::LBrace)
            }
            b'}' => {
                self.bump();
                Ok(Tok::RBrace)
            }
            b'(' => {
                self.bump();
                Ok(Tok::LParen)
            }
            b')' => {
                self.bump();
                Ok(Tok::RParen)
            }
            b'[' => {
                self.bump();
                Ok(Tok::LBracket)
            }
            b']' => {
                self.bump();
                Ok(Tok::RBracket)
            }
            b',' => {
                self.bump();
                Ok(Tok::Comma)
            }
            b';' => {
                self.bump();
                Ok(Tok::Semicolon)
            }
            b':' => {
                self.bump();
                Ok(Tok::Colon)
            }
            b'.' => {
                if self.peek_at(1).map(|n| n.is_ascii_digit()).unwrap_or(false) {
                    self.lex_number()
                } else {
                    self.bump();
                    Ok(Tok::Dot)
                }
            }
            b'?' | b'$' => {
                // Variable, or a bare '?' (path zero-or-one operator).
                if self
                    .peek_at(1)
                    .map(|n| n.is_ascii_alphanumeric() || n == b'_')
                    .unwrap_or(false)
                {
                    self.bump();
                    let mut name = String::new();
                    while let Some(n) = self.peek() {
                        if n.is_ascii_alphanumeric() || n == b'_' {
                            name.push(self.bump().unwrap() as char);
                        } else {
                            break;
                        }
                    }
                    Ok(Tok::Var(name))
                } else {
                    self.bump();
                    Ok(Tok::Question)
                }
            }
            b'<' => {
                // IRI or comparison operator.
                let nxt = self.peek_at(1);
                match nxt {
                    Some(b'=') => {
                        self.bump();
                        self.bump();
                        Ok(Tok::Le)
                    }
                    Some(n)
                        if n.is_ascii_alphanumeric()
                            || n == b'h'
                            || n == b'_'
                            || n == b'/'
                            || n == b'>' =>
                    {
                        // Treat as IRI if a '>' appears before whitespace.
                        let mut k = 1;
                        let mut is_iri = false;
                        while let Some(ch) = self.peek_at(k) {
                            if ch == b'>' {
                                is_iri = true;
                                break;
                            }
                            if ch.is_ascii_whitespace() {
                                break;
                            }
                            k += 1;
                        }
                        if is_iri {
                            self.lex_iri()
                        } else {
                            self.bump();
                            Ok(Tok::Lt)
                        }
                    }
                    _ => {
                        self.bump();
                        Ok(Tok::Lt)
                    }
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Tok::Ge)
                } else {
                    Ok(Tok::Gt)
                }
            }
            b'=' => {
                self.bump();
                Ok(Tok::Eq)
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Tok::Ne)
                } else {
                    Ok(Tok::Bang)
                }
            }
            b'&' => {
                self.bump();
                if self.peek() == Some(b'&') {
                    self.bump();
                    Ok(Tok::AndAnd)
                } else {
                    Err(self.err("expected '&&'"))
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    Ok(Tok::OrOr)
                } else {
                    Ok(Tok::Pipe)
                }
            }
            b'+' => {
                self.bump();
                Ok(Tok::Plus)
            }
            b'-' => {
                self.bump();
                Ok(Tok::Minus)
            }
            b'*' => {
                self.bump();
                Ok(Tok::Star)
            }
            b'/' => {
                self.bump();
                Ok(Tok::Slash)
            }
            b'^' => {
                self.bump();
                if self.peek() == Some(b'^') {
                    self.bump();
                    Ok(Tok::DoubleCaret)
                } else {
                    Ok(Tok::Caret)
                }
            }
            b'"' | b'\'' => self.lex_string(),
            b'_' if self.peek_at(1) == Some(b':') => self.lex_blank(),
            b'@' => {
                self.bump();
                let mut tag = String::new();
                while let Some(n) = self.peek() {
                    if n.is_ascii_alphanumeric() || n == b'-' {
                        tag.push(self.bump().unwrap() as char);
                    } else {
                        break;
                    }
                }
                if tag.is_empty() {
                    Err(self.err("empty language tag"))
                } else {
                    Ok(Tok::LangTag(tag))
                }
            }
            c if c.is_ascii_digit() => self.lex_number(),
            c if c.is_ascii_alphabetic() || c == b'_' => self.lex_word(),
            other => Err(self.err(format!("unexpected character '{}'", other as char))),
        }
    }

    fn lex_iri(&mut self) -> Result<Tok, QueryError> {
        self.bump(); // <
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'>') => return Ok(Tok::Iri(out)),
                Some(c) => out.push(c as char),
                None => return Err(self.err("unterminated IRI")),
            }
        }
    }

    fn lex_blank(&mut self) -> Result<Tok, QueryError> {
        self.bump(); // _
        self.bump(); // :
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' {
                out.push(self.bump().unwrap() as char);
            } else {
                break;
            }
        }
        if out.is_empty() {
            Err(self.err("empty blank node label"))
        } else {
            Ok(Tok::BlankLabel(out))
        }
    }

    fn lex_string(&mut self) -> Result<Tok, QueryError> {
        let quote = self.bump().unwrap();
        let mut out = String::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(self.err("unterminated string"));
            };
            if c == quote {
                break;
            }
            if c == b'\\' {
                let Some(e) = self.bump() else {
                    return Err(self.err("unterminated escape"));
                };
                match e {
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'"' => out.push('"'),
                    b'\'' => out.push('\''),
                    b'\\' => out.push('\\'),
                    other => return Err(self.err(format!("bad escape '\\{}'", other as char))),
                }
                continue;
            }
            if c < 0x80 {
                out.push(c as char);
            } else {
                let mut buf = vec![c];
                while self.peek().map(|b| b & 0xC0 == 0x80).unwrap_or(false) {
                    buf.push(self.bump().unwrap());
                }
                out.push_str(std::str::from_utf8(&buf).map_err(|_| self.err("invalid UTF-8"))?);
            }
        }
        Ok(Tok::Str(out))
    }

    fn lex_number(&mut self) -> Result<Tok, QueryError> {
        let start = self.pos;
        let mut is_real = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.bump();
            } else if c == b'.' && self.peek_at(1).map(|n| n.is_ascii_digit()).unwrap_or(false) {
                is_real = true;
                self.bump();
            } else if c == b'e' || c == b'E' {
                // Exponent only if followed by digit or sign+digit.
                let k1 = self.peek_at(1);
                let exp = match k1 {
                    Some(d) if d.is_ascii_digit() => true,
                    Some(b'+') | Some(b'-') => {
                        self.peek_at(2).map(|d| d.is_ascii_digit()).unwrap_or(false)
                    }
                    _ => false,
                };
                if !exp {
                    break;
                }
                is_real = true;
                self.bump();
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_real {
            text.parse::<f64>()
                .map(Tok::Double)
                .map_err(|_| self.err(format!("bad number '{text}'")))
        } else {
            text.parse::<i64>()
                .map(Tok::Integer)
                .map_err(|_| self.err(format!("bad number '{text}'")))
        }
    }

    #[allow(clippy::if_same_then_else)]
    fn lex_word(&mut self) -> Result<Tok, QueryError> {
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                word.push(self.bump().unwrap() as char);
            } else {
                break;
            }
        }
        // A ':' right after a word makes it a prefixed name.
        if self.peek() == Some(b':') {
            self.bump();
            let mut local = String::new();
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' {
                    local.push(self.bump().unwrap() as char);
                } else if c == b'.'
                    && self
                        .peek_at(1)
                        .map(|n| n.is_ascii_alphanumeric() || n == b'_')
                        .unwrap_or(false)
                {
                    local.push(self.bump().unwrap() as char);
                } else {
                    break;
                }
            }
            return Ok(Tok::PName {
                prefix: word,
                local,
            });
        }
        Ok(Tok::Name(word))
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    line: usize,
    col: usize,
    ns: Namespaces,
    fresh: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Result<Self, QueryError> {
        let mut p = Parser {
            lexer: Lexer::new(text),
            tok: Tok::Eof,
            line: 1,
            col: 1,
            ns: Namespaces::new(),
            fresh: 0,
        };
        p.advance()?;
        Ok(p)
    }

    fn advance(&mut self) -> Result<(), QueryError> {
        let (tok, line, col) = self.lexer.next()?;
        self.tok = tok;
        self.line = line;
        self.col = col;
        Ok(())
    }

    fn err(&self, msg: impl Into<String>) -> QueryError {
        QueryError::Parse {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), QueryError> {
        if self.tok == tok {
            self.advance()
        } else {
            Err(self.err(format!("expected {tok:?}, found {:?}", self.tok)))
        }
    }

    fn expect_eof(&mut self) -> Result<(), QueryError> {
        if self.tok == Tok::Eof {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {:?}", self.tok)))
        }
    }

    /// Case-insensitive keyword check on the current token.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.tok, Tok::Name(w) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> Result<bool, QueryError> {
        if self.at_kw(kw) {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn require_kw(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_kw(kw)? {
            Ok(())
        } else {
            Err(self.err(format!("expected '{kw}', found {:?}", self.tok)))
        }
    }

    /// True when the current token is `{` and the next token is SELECT
    /// (detected by probing a clone of the lexer state).
    fn peek_is_select(&mut self) -> bool {
        if self.tok != Tok::LBrace {
            return false;
        }
        let mut probe = Lexer {
            src: self.lexer.src,
            pos: self.lexer.pos,
            line: self.lexer.line,
            col: self.lexer.col,
        };
        matches!(probe.next(), Ok((Tok::Name(w), _, _)) if w.eq_ignore_ascii_case("SELECT"))
    }

    fn fresh_var(&mut self) -> String {
        self.fresh += 1;
        format!("_anon{}", self.fresh)
    }

    fn expand(&self, prefix: &str, local: &str) -> Result<String, QueryError> {
        self.ns.expand(prefix, local).map_err(|e| match e {
            RdfError::UnknownPrefix(p) => self.err(format!("unknown prefix '{p}:'")),
            other => self.err(other.to_string()),
        })
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement, QueryError> {
        self.parse_prologue()?;
        if self.at_kw("SELECT") {
            Ok(Statement::Select(self.parse_select()?))
        } else if self.at_kw("ASK") {
            self.advance()?;
            self.eat_kw("WHERE")?;
            let pattern = self.parse_group()?;
            Ok(Statement::Ask(AskQuery { pattern }))
        } else if self.at_kw("CONSTRUCT") {
            self.advance()?;
            self.expect(Tok::LBrace)?;
            let template = self.parse_triples_block(Tok::RBrace)?;
            self.expect(Tok::RBrace)?;
            self.require_kw("WHERE")?;
            let pattern = self.parse_group()?;
            let mut limit = None;
            if self.eat_kw("LIMIT")? {
                limit = Some(self.parse_usize()?);
            }
            Ok(Statement::Construct(ConstructQuery {
                template,
                pattern,
                limit,
            }))
        } else if self.at_kw("EXPLAIN") {
            self.advance()?;
            let analyze = self.eat_kw("ANALYZE")?;
            self.parse_prologue()?;
            if !self.at_kw("SELECT") {
                return Err(self.err("EXPLAIN expects a SELECT query"));
            }
            let q = Box::new(self.parse_select()?);
            Ok(if analyze {
                Statement::ExplainAnalyze(q)
            } else {
                Statement::Explain(q)
            })
        } else if self.at_kw("DESCRIBE") {
            self.advance()?;
            let mut targets = Vec::new();
            loop {
                match self.tok.clone() {
                    Tok::Iri(u) => {
                        self.advance()?;
                        targets.push(Term::uri(self.ns.resolve(&u)));
                    }
                    Tok::PName { prefix, local } => {
                        self.advance()?;
                        targets.push(Term::uri(self.expand(&prefix, &local)?));
                    }
                    _ => break,
                }
            }
            if targets.is_empty() {
                return Err(self.err("DESCRIBE needs at least one IRI"));
            }
            Ok(Statement::Describe(targets))
        } else if self.at_kw("DEFINE") {
            self.advance()?;
            self.require_kw("FUNCTION")?;
            let name = self.parse_function_name()?;
            self.expect(Tok::LParen)?;
            let mut params = Vec::new();
            while let Tok::Var(v) = self.tok.clone() {
                params.push(v);
                self.advance()?;
                if self.tok == Tok::Comma {
                    self.advance()?;
                }
            }
            self.expect(Tok::RParen)?;
            self.require_kw("AS")?;
            self.parse_prologue()?;
            if !self.at_kw("SELECT") {
                return Err(self.err("function body must be a SELECT query"));
            }
            let body = self.parse_select()?;
            Ok(Statement::DefineFunction(FunctionDef {
                name,
                params,
                body,
            }))
        } else if self.at_kw("INSERT") {
            self.advance()?;
            if self.at_kw("DATA") {
                self.advance()?;
                return Ok(Statement::InsertData(self.parse_ground_block()?));
            }
            // INSERT { template } WHERE { pattern }
            self.expect(Tok::LBrace)?;
            let insert = self.parse_triples_block(Tok::RBrace)?;
            self.expect(Tok::RBrace)?;
            self.require_kw("WHERE")?;
            let pattern = self.parse_group()?;
            Ok(Statement::Modify {
                delete: Vec::new(),
                insert,
                pattern,
            })
        } else if self.at_kw("DELETE") {
            self.advance()?;
            if self.at_kw("DATA") {
                self.advance()?;
                return Ok(Statement::DeleteData(self.parse_ground_block()?));
            }
            if self.at_kw("WHERE") {
                // DELETE WHERE { pattern }: the pattern is the template.
                self.advance()?;
                let pattern = self.parse_group()?;
                let delete: Vec<TriplePattern> = pattern
                    .elems
                    .iter()
                    .filter_map(|e| match e {
                        PatternElem::Triple(t) => Some(t.clone()),
                        _ => None,
                    })
                    .collect();
                if delete.len() != pattern.elems.len() {
                    return Err(self.err("DELETE WHERE only allows plain triple patterns"));
                }
                return Ok(Statement::Modify {
                    delete,
                    insert: Vec::new(),
                    pattern,
                });
            }
            // DELETE { template } [INSERT { template }] WHERE { pattern }
            self.expect(Tok::LBrace)?;
            let delete = self.parse_triples_block(Tok::RBrace)?;
            self.expect(Tok::RBrace)?;
            let insert = if self.at_kw("INSERT") {
                self.advance()?;
                self.expect(Tok::LBrace)?;
                let t = self.parse_triples_block(Tok::RBrace)?;
                self.expect(Tok::RBrace)?;
                t
            } else {
                Vec::new()
            };
            self.require_kw("WHERE")?;
            let pattern = self.parse_group()?;
            Ok(Statement::Modify {
                delete,
                insert,
                pattern,
            })
        } else {
            Err(self.err(format!(
                "expected SELECT, ASK, CONSTRUCT, DEFINE, INSERT or DELETE, found {:?}",
                self.tok
            )))
        }
    }

    fn parse_prologue(&mut self) -> Result<(), QueryError> {
        loop {
            if self.at_kw("PREFIX") {
                self.advance()?;
                let Tok::PName { prefix, local } = self.tok.clone() else {
                    return Err(self.err("expected prefix name"));
                };
                if !local.is_empty() {
                    return Err(self.err("prefix declaration must end with ':'"));
                }
                self.advance()?;
                let Tok::Iri(uri) = self.tok.clone() else {
                    return Err(self.err("expected IRI after prefix"));
                };
                self.advance()?;
                self.ns.declare(prefix, uri);
            } else if self.at_kw("BASE") {
                self.advance()?;
                let Tok::Iri(uri) = self.tok.clone() else {
                    return Err(self.err("expected IRI after BASE"));
                };
                self.advance()?;
                self.ns.set_base(uri);
            } else {
                return Ok(());
            }
        }
    }

    fn parse_function_name(&mut self) -> Result<String, QueryError> {
        match self.tok.clone() {
            Tok::Name(n) => {
                self.advance()?;
                Ok(n)
            }
            Tok::PName { prefix, local } => {
                self.advance()?;
                self.expand(&prefix, &local)
            }
            other => Err(self.err(format!("expected function name, found {other:?}"))),
        }
    }

    fn parse_usize(&mut self) -> Result<usize, QueryError> {
        match self.tok {
            Tok::Integer(i) if i >= 0 => {
                self.advance()?;
                Ok(i as usize)
            }
            _ => Err(self.err("expected a non-negative integer")),
        }
    }

    // -----------------------------------------------------------------
    // SELECT
    // -----------------------------------------------------------------

    fn parse_select(&mut self) -> Result<SelectQuery, QueryError> {
        self.require_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT")?;
        let projection = if self.tok == Tok::Star {
            self.advance()?;
            Projection::All
        } else {
            let mut items = Vec::new();
            loop {
                match self.tok.clone() {
                    Tok::Var(v) => {
                        self.advance()?;
                        // Allow array dereference on projected vars:
                        // SELECT ?a[2] — implicit alias.
                        if self.tok == Tok::LBracket {
                            let expr = self.parse_postfix_from(Expr::Var(v.clone()))?;
                            items.push(ProjectionItem {
                                expr,
                                alias: Some(v),
                            });
                        } else {
                            items.push(ProjectionItem {
                                expr: Expr::Var(v),
                                alias: None,
                            });
                        }
                    }
                    Tok::LParen => {
                        self.advance()?;
                        let expr = self.parse_expr()?;
                        self.require_kw("AS")?;
                        let Tok::Var(v) = self.tok.clone() else {
                            return Err(self.err("expected variable after AS"));
                        };
                        self.advance()?;
                        self.expect(Tok::RParen)?;
                        items.push(ProjectionItem {
                            expr,
                            alias: Some(v),
                        });
                    }
                    _ => break,
                }
            }
            if items.is_empty() {
                return Err(self.err("empty SELECT projection"));
            }
            Projection::Items(items)
        };
        let mut from: Option<String> = None;
        let mut from_named: Vec<String> = Vec::new();
        while self.at_kw("FROM") {
            self.advance()?;
            let named = self.eat_kw("NAMED")?;
            let uri = match self.tok.clone() {
                Tok::Iri(u) => {
                    self.advance()?;
                    self.ns.resolve(&u)
                }
                Tok::PName { prefix, local } => {
                    self.advance()?;
                    self.expand(&prefix, &local)?
                }
                other => return Err(self.err(format!("expected IRI after FROM, found {other:?}"))),
            };
            if named {
                from_named.push(uri);
            } else if from.is_none() {
                from = Some(uri);
            } else {
                return Err(self.err("at most one FROM graph is supported"));
            }
        }
        self.eat_kw("WHERE")?;
        let pattern = self.parse_group()?;

        let mut group_by = Vec::new();
        let mut having = None;
        let mut order_by = Vec::new();
        let mut limit = None;
        let mut offset = None;
        loop {
            if self.at_kw("GROUP") {
                self.advance()?;
                self.require_kw("BY")?;
                loop {
                    match self.tok.clone() {
                        Tok::Var(v) => {
                            self.advance()?;
                            group_by.push(Expr::Var(v));
                        }
                        Tok::LParen => {
                            self.advance()?;
                            let e = self.parse_expr()?;
                            self.expect(Tok::RParen)?;
                            group_by.push(e);
                        }
                        _ => break,
                    }
                }
                if group_by.is_empty() {
                    return Err(self.err("empty GROUP BY"));
                }
            } else if self.at_kw("HAVING") {
                self.advance()?;
                self.expect(Tok::LParen)?;
                having = Some(self.parse_expr()?);
                self.expect(Tok::RParen)?;
            } else if self.at_kw("ORDER") {
                self.advance()?;
                self.require_kw("BY")?;
                loop {
                    if self.at_kw("ASC") || self.at_kw("DESC") {
                        let asc = self.at_kw("ASC");
                        self.advance()?;
                        self.expect(Tok::LParen)?;
                        let e = self.parse_expr()?;
                        self.expect(Tok::RParen)?;
                        order_by.push(OrderKey {
                            expr: e,
                            ascending: asc,
                        });
                    } else if let Tok::Var(v) = self.tok.clone() {
                        self.advance()?;
                        order_by.push(OrderKey {
                            expr: Expr::Var(v),
                            ascending: true,
                        });
                    } else {
                        break;
                    }
                }
                if order_by.is_empty() {
                    return Err(self.err("empty ORDER BY"));
                }
            } else if self.at_kw("LIMIT") {
                self.advance()?;
                limit = Some(self.parse_usize()?);
            } else if self.at_kw("OFFSET") {
                self.advance()?;
                offset = Some(self.parse_usize()?);
            } else {
                break;
            }
        }
        Ok(SelectQuery {
            distinct,
            projection,
            from,
            from_named,
            pattern,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    // -----------------------------------------------------------------
    // Graph patterns
    // -----------------------------------------------------------------

    fn parse_group(&mut self) -> Result<GroupPattern, QueryError> {
        self.expect(Tok::LBrace)?;
        let mut elems: Vec<PatternElem> = Vec::new();
        loop {
            if self.tok == Tok::RBrace {
                self.advance()?;
                break;
            }
            if self.at_kw("OPTIONAL") {
                self.advance()?;
                elems.push(PatternElem::Optional(self.parse_group()?));
            } else if self.at_kw("FILTER") {
                self.advance()?;
                let e = if self.at_kw("EXISTS") || self.at_kw("NOT") {
                    self.parse_exists()?
                } else {
                    self.expect(Tok::LParen)?;
                    let e = self.parse_expr()?;
                    self.expect(Tok::RParen)?;
                    e
                };
                elems.push(PatternElem::Filter(e));
            } else if self.at_kw("BIND") {
                self.advance()?;
                self.expect(Tok::LParen)?;
                let expr = self.parse_expr()?;
                self.require_kw("AS")?;
                let Tok::Var(v) = self.tok.clone() else {
                    return Err(self.err("expected variable after AS"));
                };
                self.advance()?;
                self.expect(Tok::RParen)?;
                elems.push(PatternElem::Bind { expr, var: v });
            } else if self.at_kw("VALUES") {
                self.advance()?;
                elems.push(self.parse_values()?);
            } else if self.at_kw("GRAPH") {
                self.advance()?;
                let name = match self.tok.clone() {
                    Tok::Var(v) => {
                        self.advance()?;
                        TermPattern::Var(v)
                    }
                    Tok::Iri(u) => {
                        self.advance()?;
                        TermPattern::Term(Term::uri(self.ns.resolve(&u)))
                    }
                    Tok::PName { prefix, local } => {
                        self.advance()?;
                        TermPattern::Term(Term::uri(self.expand(&prefix, &local)?))
                    }
                    other => return Err(self.err(format!("bad GRAPH name: {other:?}"))),
                };
                let pattern = self.parse_group()?;
                elems.push(PatternElem::Graph { name, pattern });
            } else if self.at_kw("MINUS") {
                self.advance()?;
                elems.push(PatternElem::Minus(self.parse_group()?));
            } else if self.tok == Tok::LBrace {
                // Subquery, nested group, or UNION chain.
                if self.peek_is_select() {
                    self.advance()?; // {
                    let sub = self.parse_select()?;
                    self.expect(Tok::RBrace)?;
                    elems.push(PatternElem::SubSelect(Box::new(sub)));
                    while self.tok == Tok::Dot {
                        self.advance()?;
                    }
                    continue;
                }
                let first = self.parse_group()?;
                if self.at_kw("UNION") {
                    let mut branches = vec![first];
                    while self.eat_kw("UNION")? {
                        branches.push(self.parse_group()?);
                    }
                    elems.push(PatternElem::Union(branches));
                } else {
                    elems.push(PatternElem::Group(first));
                }
            } else {
                // Triples block.
                let triples = self.parse_triples_block(Tok::RBrace)?;
                elems.extend(triples.into_iter().map(PatternElem::Triple));
            }
            // Optional separating dot.
            while self.tok == Tok::Dot {
                self.advance()?;
            }
        }
        Ok(GroupPattern { elems })
    }

    fn parse_exists(&mut self) -> Result<Expr, QueryError> {
        let negated = if self.at_kw("NOT") {
            self.advance()?;
            self.require_kw("EXISTS")?;
            true
        } else {
            self.require_kw("EXISTS")?;
            false
        };
        let pattern = self.parse_group()?;
        Ok(Expr::Exists { pattern, negated })
    }

    fn parse_values(&mut self) -> Result<PatternElem, QueryError> {
        // VALUES ?x { ... } or VALUES (?x ?y) { (..) (..) }
        let mut vars = Vec::new();
        let parenthesized = if let Tok::Var(v) = self.tok.clone() {
            self.advance()?;
            vars.push(v);
            false
        } else {
            self.expect(Tok::LParen)?;
            while let Tok::Var(v) = self.tok.clone() {
                self.advance()?;
                vars.push(v);
            }
            self.expect(Tok::RParen)?;
            true
        };
        self.expect(Tok::LBrace)?;
        let mut rows = Vec::new();
        loop {
            if self.tok == Tok::RBrace {
                self.advance()?;
                break;
            }
            if parenthesized {
                self.expect(Tok::LParen)?;
                let mut row = Vec::new();
                for _ in 0..vars.len() {
                    row.push(self.parse_values_term()?);
                }
                self.expect(Tok::RParen)?;
                rows.push(row);
            } else {
                rows.push(vec![self.parse_values_term()?]);
            }
        }
        Ok(PatternElem::Values { vars, rows })
    }

    fn parse_values_term(&mut self) -> Result<Option<Term>, QueryError> {
        if self.at_kw("UNDEF") {
            self.advance()?;
            return Ok(None);
        }
        Ok(Some(self.parse_ground_term()?))
    }

    /// A block of triple patterns with `;` and `,` abbreviations,
    /// stopping before `stop` or pattern keywords.
    fn parse_triples_block(&mut self, stop: Tok) -> Result<Vec<TriplePattern>, QueryError> {
        let mut out = Vec::new();
        loop {
            if self.tok == stop
                || self.tok == Tok::Eof
                || self.tok == Tok::LBrace
                || self.at_pattern_keyword()
            {
                break;
            }
            self.parse_triples_same_subject(&mut out)?;
            if self.tok == Tok::Dot {
                self.advance()?;
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn at_pattern_keyword(&self) -> bool {
        [
            "OPTIONAL", "FILTER", "BIND", "VALUES", "UNION", "GRAPH", "MINUS",
        ]
        .iter()
        .any(|k| self.at_kw(k))
    }

    fn parse_triples_same_subject(
        &mut self,
        out: &mut Vec<TriplePattern>,
    ) -> Result<(), QueryError> {
        let subject = self.parse_term_pattern(out)?;
        self.parse_property_list(subject, out)
    }

    fn parse_property_list(
        &mut self,
        subject: TermPattern,
        out: &mut Vec<TriplePattern>,
    ) -> Result<(), QueryError> {
        loop {
            let path = self.parse_path()?;
            loop {
                let object = self.parse_term_pattern(out)?;
                out.push(TriplePattern {
                    subject: subject.clone(),
                    path: path.clone(),
                    object,
                });
                if self.tok == Tok::Comma {
                    self.advance()?;
                    continue;
                }
                break;
            }
            if self.tok == Tok::Semicolon {
                self.advance()?;
                // Trailing ';' before '.' or '}' is legal.
                if self.tok == Tok::Dot || self.tok == Tok::RBrace || self.tok == Tok::RBracket {
                    break;
                }
                continue;
            }
            break;
        }
        Ok(())
    }

    /// Subject/object term pattern; `[ ... ]` blank property lists
    /// expand into fresh variables and extra triples pushed to `out`.
    fn parse_term_pattern(
        &mut self,
        out: &mut Vec<TriplePattern>,
    ) -> Result<TermPattern, QueryError> {
        match self.tok.clone() {
            Tok::Var(v) => {
                self.advance()?;
                Ok(TermPattern::Var(v))
            }
            Tok::LBracket => {
                self.advance()?;
                let var = self.fresh_var();
                if self.tok != Tok::RBracket {
                    self.parse_property_list(TermPattern::Var(var.clone()), out)?;
                }
                self.expect(Tok::RBracket)?;
                Ok(TermPattern::Var(var))
            }
            Tok::LParen => {
                // A numeric collection constant (matched as an array).
                self.advance()?;
                let nested = self.parse_collection_const()?;
                Ok(TermPattern::Term(nested))
            }
            _ => Ok(TermPattern::Term(self.parse_ground_term()?)),
        }
    }

    /// Numeric (possibly nested) collection constant, used as an array
    /// value in patterns and ground triples.
    fn parse_collection_const(&mut self) -> Result<Term, QueryError> {
        use ssdm_array::Nested;
        fn read(p: &mut Parser<'_>) -> Result<Nested, QueryError> {
            let mut rows = Vec::new();
            loop {
                match p.tok.clone() {
                    Tok::RParen => {
                        p.advance()?;
                        break;
                    }
                    Tok::LParen => {
                        p.advance()?;
                        rows.push(read(p)?);
                    }
                    Tok::Integer(i) => {
                        p.advance()?;
                        rows.push(Nested::Leaf(Num::Int(i)));
                    }
                    Tok::Double(d) => {
                        p.advance()?;
                        rows.push(Nested::Leaf(Num::Real(d)));
                    }
                    Tok::Minus => {
                        p.advance()?;
                        match p.tok.clone() {
                            Tok::Integer(i) => {
                                p.advance()?;
                                rows.push(Nested::Leaf(Num::Int(-i)));
                            }
                            Tok::Double(d) => {
                                p.advance()?;
                                rows.push(Nested::Leaf(Num::Real(-d)));
                            }
                            _ => return Err(p.err("expected number after '-'")),
                        }
                    }
                    other => {
                        return Err(p.err(format!(
                            "collections in queries must be numeric, found {other:?}"
                        )))
                    }
                }
            }
            Ok(Nested::Row(rows))
        }
        let nested = read(self)?;
        let arr = ssdm_array::NumArray::from_nested(&nested)
            .map_err(|e| self.err(format!("bad array constant: {e}")))?;
        Ok(Term::Array(arr))
    }

    fn parse_ground_term(&mut self) -> Result<Term, QueryError> {
        match self.tok.clone() {
            Tok::Iri(u) => {
                self.advance()?;
                Ok(Term::uri(self.ns.resolve(&u)))
            }
            Tok::PName { prefix, local } => {
                self.advance()?;
                Ok(Term::uri(self.expand(&prefix, &local)?))
            }
            Tok::BlankLabel(b) => {
                self.advance()?;
                Ok(Term::blank(b))
            }
            Tok::Integer(i) => {
                self.advance()?;
                Ok(Term::integer(i))
            }
            Tok::Double(d) => {
                self.advance()?;
                Ok(Term::double(d))
            }
            Tok::Minus => {
                self.advance()?;
                match self.tok.clone() {
                    Tok::Integer(i) => {
                        self.advance()?;
                        Ok(Term::integer(-i))
                    }
                    Tok::Double(d) => {
                        self.advance()?;
                        Ok(Term::double(-d))
                    }
                    _ => Err(self.err("expected number after '-'")),
                }
            }
            Tok::Str(s) => {
                self.advance()?;
                match self.tok.clone() {
                    Tok::LangTag(lang) => {
                        self.advance()?;
                        Ok(Term::LangStr { value: s, lang })
                    }
                    Tok::DoubleCaret => {
                        self.advance()?;
                        let dt = match self.tok.clone() {
                            Tok::Iri(u) => {
                                self.advance()?;
                                self.ns.resolve(&u)
                            }
                            Tok::PName { prefix, local } => {
                                self.advance()?;
                                self.expand(&prefix, &local)?
                            }
                            other => return Err(self.err(format!("bad datatype {other:?}"))),
                        };
                        Ok(Term::Typed {
                            value: s,
                            datatype: dt,
                        })
                    }
                    _ => Ok(Term::Str(s)),
                }
            }
            Tok::Name(w) if w.eq_ignore_ascii_case("true") => {
                self.advance()?;
                Ok(Term::Bool(true))
            }
            Tok::Name(w) if w.eq_ignore_ascii_case("false") => {
                self.advance()?;
                Ok(Term::Bool(false))
            }
            other => Err(self.err(format!("expected RDF term, found {other:?}"))),
        }
    }

    fn parse_ground_block(&mut self) -> Result<Vec<GroundTriple>, QueryError> {
        self.expect(Tok::LBrace)?;
        let mut out = Vec::new();
        loop {
            if self.tok == Tok::RBrace {
                self.advance()?;
                break;
            }
            let subject = self.parse_ground_term()?;
            loop {
                let predicate = if self.at_kw("a") {
                    self.advance()?;
                    Term::uri(RDF_TYPE)
                } else {
                    self.parse_ground_term()?
                };
                loop {
                    let object = if self.tok == Tok::LParen {
                        self.advance()?;
                        self.parse_collection_const()?
                    } else {
                        self.parse_ground_term()?
                    };
                    out.push(GroundTriple {
                        subject: subject.clone(),
                        predicate: predicate.clone(),
                        object,
                    });
                    if self.tok == Tok::Comma {
                        self.advance()?;
                        continue;
                    }
                    break;
                }
                if self.tok == Tok::Semicolon {
                    self.advance()?;
                    if self.tok == Tok::Dot || self.tok == Tok::RBrace {
                        break;
                    }
                    continue;
                }
                break;
            }
            if self.tok == Tok::Dot {
                self.advance()?;
            }
        }
        Ok(out)
    }

    // -----------------------------------------------------------------
    // Property paths
    // -----------------------------------------------------------------

    fn parse_path(&mut self) -> Result<Path, QueryError> {
        let mut left = self.parse_path_seq()?;
        while self.tok == Tok::Pipe {
            self.advance()?;
            let right = self.parse_path_seq()?;
            left = Path::Alt(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_path_seq(&mut self) -> Result<Path, QueryError> {
        let mut left = self.parse_path_elt()?;
        while self.tok == Tok::Slash {
            self.advance()?;
            let right = self.parse_path_elt()?;
            left = Path::Seq(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_path_elt(&mut self) -> Result<Path, QueryError> {
        let inverted = if self.tok == Tok::Caret {
            self.advance()?;
            true
        } else {
            false
        };
        let mut p = self.parse_path_primary()?;
        loop {
            match self.tok {
                Tok::Star => {
                    self.advance()?;
                    p = Path::Star(Box::new(p));
                }
                Tok::Plus => {
                    self.advance()?;
                    p = Path::Plus(Box::new(p));
                }
                Tok::Question => {
                    self.advance()?;
                    p = Path::Opt(Box::new(p));
                }
                _ => break,
            }
        }
        if inverted {
            p = Path::Inv(Box::new(p));
        }
        Ok(p)
    }

    fn parse_path_primary(&mut self) -> Result<Path, QueryError> {
        match self.tok.clone() {
            Tok::Iri(u) => {
                self.advance()?;
                Ok(Path::Pred(TermPattern::Term(Term::uri(
                    self.ns.resolve(&u),
                ))))
            }
            Tok::PName { prefix, local } => {
                self.advance()?;
                Ok(Path::Pred(TermPattern::Term(Term::uri(
                    self.expand(&prefix, &local)?,
                ))))
            }
            Tok::Name(w) if w == "a" => {
                self.advance()?;
                Ok(Path::Pred(TermPattern::Term(Term::uri(RDF_TYPE))))
            }
            Tok::Var(v) => {
                self.advance()?;
                Ok(Path::Pred(TermPattern::Var(v)))
            }
            Tok::LParen => {
                self.advance()?;
                let p = self.parse_path()?;
                self.expect(Tok::RParen)?;
                Ok(p)
            }
            other => Err(self.err(format!("expected predicate or path, found {other:?}"))),
        }
    }

    // -----------------------------------------------------------------
    // Expressions
    // -----------------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, QueryError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.parse_and()?;
        while self.tok == Tok::OrOr {
            self.advance()?;
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.parse_rel()?;
        while self.tok == Tok::AndAnd {
            self.advance()?;
            let right = self.parse_rel()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_rel(&mut self) -> Result<Expr, QueryError> {
        let left = self.parse_add()?;
        // IN / NOT IN list membership.
        if self.at_kw("IN") || self.at_kw("NOT") {
            let negated = self.at_kw("NOT");
            if negated {
                // Only consume NOT when IN follows (else it's NOT EXISTS
                // handled elsewhere / a syntax error downstream).
                let save = self.tok.clone();
                self.advance()?;
                if !self.at_kw("IN") {
                    // Not a NOT IN: restore is impossible with a stream
                    // lexer, so report clearly.
                    let _ = save;
                    return Err(self.err("expected IN after NOT in expression"));
                }
            }
            if self.at_kw("IN") {
                self.advance()?;
                self.expect(Tok::LParen)?;
                let mut haystack = Vec::new();
                while self.tok != Tok::RParen {
                    haystack.push(self.parse_expr()?);
                    if self.tok == Tok::Comma {
                        self.advance()?;
                    }
                }
                self.advance()?; // )
                return Ok(Expr::InList {
                    needle: Box::new(left),
                    haystack,
                    negated,
                });
            }
        }
        let op = match self.tok {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => return Ok(left),
        };
        self.advance()?;
        let right = self.parse_add()?;
        Ok(Expr::Cmp(op, Box::new(left), Box::new(right)))
    }

    fn parse_add(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.parse_mul()?;
        loop {
            let op = match self.tok {
                Tok::Plus => ArithOp::Add,
                Tok::Minus => ArithOp::Sub,
                _ => break,
            };
            self.advance()?;
            let right = self.parse_mul()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_mul(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.tok {
                Tok::Star => ArithOp::Mul,
                Tok::Slash => ArithOp::Div,
                _ => break,
            };
            self.advance()?;
            let right = self.parse_unary()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, QueryError> {
        match self.tok {
            Tok::Bang => {
                self.advance()?;
                Ok(Expr::Not(Box::new(self.parse_unary()?)))
            }
            Tok::Minus => {
                self.advance()?;
                Ok(Expr::Neg(Box::new(self.parse_unary()?)))
            }
            Tok::Plus => {
                self.advance()?;
                self.parse_unary()
            }
            _ => self.parse_power(),
        }
    }

    fn parse_power(&mut self) -> Result<Expr, QueryError> {
        let base = self.parse_postfix()?;
        if self.tok == Tok::Caret {
            self.advance()?;
            // Right-associative.
            let exp = self.parse_unary()?;
            Ok(Expr::Arith(ArithOp::Pow, Box::new(base), Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, QueryError> {
        let primary = self.parse_primary()?;
        self.parse_postfix_from(primary)
    }

    fn parse_postfix_from(&mut self, mut e: Expr) -> Result<Expr, QueryError> {
        while self.tok == Tok::LBracket {
            self.advance()?;
            let mut subs = Vec::new();
            loop {
                subs.push(self.parse_subscript()?);
                if self.tok == Tok::Comma {
                    self.advance()?;
                    continue;
                }
                break;
            }
            self.expect(Tok::RBracket)?;
            e = Expr::ArrayDeref {
                base: Box::new(e),
                subscripts: subs,
            };
        }
        Ok(e)
    }

    fn parse_subscript(&mut self) -> Result<SubscriptExpr, QueryError> {
        // Leading ':' — no lower bound, or bare ':' for all.
        if self.tok == Tok::Colon {
            self.advance()?;
            if self.tok == Tok::Comma || self.tok == Tok::RBracket {
                return Ok(SubscriptExpr::All);
            }
            // ':hi' or ':stride:hi'
            let second = self.parse_add()?;
            if self.tok == Tok::Colon {
                self.advance()?;
                let hi = if self.tok == Tok::Comma || self.tok == Tok::RBracket {
                    None
                } else {
                    Some(self.parse_add()?)
                };
                return Ok(SubscriptExpr::Range {
                    lo: None,
                    stride: Some(second),
                    hi,
                });
            }
            return Ok(SubscriptExpr::Range {
                lo: None,
                stride: None,
                hi: Some(second),
            });
        }
        let first = self.parse_add()?;
        if self.tok != Tok::Colon {
            return Ok(SubscriptExpr::Index(first));
        }
        self.advance()?;
        if self.tok == Tok::Comma || self.tok == Tok::RBracket {
            // 'lo:' — to the end.
            return Ok(SubscriptExpr::Range {
                lo: Some(first),
                stride: None,
                hi: None,
            });
        }
        let second = self.parse_add()?;
        if self.tok == Tok::Colon {
            self.advance()?;
            let hi = if self.tok == Tok::Comma || self.tok == Tok::RBracket {
                None
            } else {
                Some(self.parse_add()?)
            };
            Ok(SubscriptExpr::Range {
                lo: Some(first),
                stride: Some(second),
                hi,
            })
        } else {
            Ok(SubscriptExpr::Range {
                lo: Some(first),
                stride: None,
                hi: Some(second),
            })
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, QueryError> {
        match self.tok.clone() {
            Tok::Var(v) => {
                self.advance()?;
                Ok(Expr::Var(v))
            }
            Tok::Integer(i) => {
                self.advance()?;
                Ok(Expr::Const(Term::integer(i)))
            }
            Tok::Double(d) => {
                self.advance()?;
                Ok(Expr::Const(Term::double(d)))
            }
            Tok::Str(s) => {
                self.advance()?;
                if let Tok::LangTag(lang) = self.tok.clone() {
                    self.advance()?;
                    Ok(Expr::Const(Term::LangStr { value: s, lang }))
                } else {
                    Ok(Expr::Const(Term::Str(s)))
                }
            }
            Tok::Iri(u) => {
                self.advance()?;
                let uri = self.ns.resolve(&u);
                if self.tok == Tok::LParen {
                    self.parse_call(uri)
                } else {
                    Ok(Expr::Const(Term::uri(uri)))
                }
            }
            Tok::PName { prefix, local } => {
                self.advance()?;
                let uri = self.expand(&prefix, &local)?;
                if self.tok == Tok::LParen {
                    self.parse_call(uri)
                } else {
                    Ok(Expr::Const(Term::uri(uri)))
                }
            }
            Tok::LParen => {
                self.advance()?;
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Name(w) => {
                let upper = w.to_ascii_uppercase();
                match upper.as_str() {
                    "TRUE" => {
                        self.advance()?;
                        Ok(Expr::Const(Term::Bool(true)))
                    }
                    "FALSE" => {
                        self.advance()?;
                        Ok(Expr::Const(Term::Bool(false)))
                    }
                    "EXISTS" | "NOT" => self.parse_exists(),
                    "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "SAMPLE" | "GROUP_CONCAT" => {
                        self.parse_aggregate(&upper)
                    }
                    "FUNCTION" => {
                        // FUNCTION name — an explicit function reference.
                        self.advance()?;
                        let name = self.parse_function_name()?;
                        Ok(Expr::FunctionRef {
                            name,
                            bound: Vec::new(),
                        })
                    }
                    _ => {
                        self.advance()?;
                        if self.tok == Tok::LParen {
                            self.parse_call(w)
                        } else {
                            // Bare name: a function reference.
                            Ok(Expr::FunctionRef {
                                name: w,
                                bound: Vec::new(),
                            })
                        }
                    }
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    fn parse_aggregate(&mut self, kw: &str) -> Result<Expr, QueryError> {
        let kind = match kw {
            "COUNT" => AggKind::Count,
            "SUM" => AggKind::Sum,
            "AVG" => AggKind::Avg,
            "MIN" => AggKind::Min,
            "MAX" => AggKind::Max,
            "SAMPLE" => AggKind::Sample,
            "GROUP_CONCAT" => AggKind::GroupConcat,
            _ => unreachable!("caller checked keyword"),
        };
        self.advance()?;
        self.expect(Tok::LParen)?;
        let distinct = self.eat_kw("DISTINCT")?;
        let arg = if self.tok == Tok::Star {
            self.advance()?;
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut separator = None;
        if self.tok == Tok::Semicolon {
            self.advance()?;
            self.require_kw("SEPARATOR")?;
            self.expect(Tok::Eq)?;
            let Tok::Str(s) = self.tok.clone() else {
                return Err(self.err("expected string separator"));
            };
            self.advance()?;
            separator = Some(s);
        }
        self.expect(Tok::RParen)?;
        Ok(Expr::Aggregate {
            kind,
            distinct,
            arg,
            separator,
        })
    }

    fn parse_call(&mut self, name: String) -> Result<Expr, QueryError> {
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        let mut has_placeholder = false;
        loop {
            if self.tok == Tok::RParen {
                self.advance()?;
                break;
            }
            let arg = self.parse_expr()?;
            if matches!(&arg, Expr::Var(v) if v == "_") {
                has_placeholder = true;
            }
            args.push(arg);
            if self.tok == Tok::Comma {
                self.advance()?;
            }
        }
        if has_placeholder {
            // Partial application: `f(1, ?_)` creates a closure with the
            // placeholders as remaining parameters (thesis §4.3).
            let bound = args
                .into_iter()
                .map(|a| match &a {
                    Expr::Var(v) if v == "_" => None,
                    _ => Some(a),
                })
                .collect();
            Ok(Expr::FunctionRef { name, bound })
        } else {
            Ok(Expr::Call { name, args })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(q: &str) -> SelectQuery {
        match parse(q).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn minimal_select() {
        let q = select("SELECT ?x WHERE { ?x <http://p> 1 }");
        assert!(matches!(q.projection, Projection::Items(ref v) if v.len() == 1));
        assert_eq!(q.pattern.elems.len(), 1);
    }

    #[test]
    fn prefixes_and_semicolons() {
        let q = select(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>
             SELECT ?n WHERE { ?p foaf:name ?n ; foaf:knows ?q , ?r . }",
        );
        assert_eq!(q.pattern.elems.len(), 3);
        if let PatternElem::Triple(t) = &q.pattern.elems[0] {
            assert_eq!(
                t.path.as_pred(),
                Some(&TermPattern::Term(Term::uri(
                    "http://xmlns.com/foaf/0.1/name"
                )))
            );
        } else {
            panic!("expected triple");
        }
    }

    #[test]
    fn optional_union_filter() {
        let q = select(
            "SELECT ?x WHERE {
                ?x <http://p> ?y .
                OPTIONAL { ?x <http://q> ?z }
                { ?x <http://r> 1 } UNION { ?x <http://r> 2 }
                FILTER (?y > 3 && bound(?z))
             }",
        );
        assert_eq!(q.pattern.elems.len(), 4);
        assert!(matches!(q.pattern.elems[1], PatternElem::Optional(_)));
        assert!(matches!(q.pattern.elems[2], PatternElem::Union(ref b) if b.len() == 2));
        assert!(matches!(q.pattern.elems[3], PatternElem::Filter(_)));
    }

    #[test]
    fn array_deref_subscripts() {
        let q = select("SELECT (?a[2, 1:2:5, :] AS ?v) WHERE { ?s <http://p> ?a }");
        let Projection::Items(items) = &q.projection else {
            panic!()
        };
        let Expr::ArrayDeref { subscripts, .. } = &items[0].expr else {
            panic!("expected deref, got {:?}", items[0].expr)
        };
        assert_eq!(subscripts.len(), 3);
        assert!(matches!(subscripts[0], SubscriptExpr::Index(_)));
        assert!(matches!(
            subscripts[1],
            SubscriptExpr::Range {
                lo: Some(_),
                stride: Some(_),
                hi: Some(_)
            }
        ));
        assert!(matches!(subscripts[2], SubscriptExpr::All));
    }

    #[test]
    fn open_ranges() {
        let q = select("SELECT (?a[:5] AS ?h) (?a[3:] AS ?t) WHERE { ?s <http://p> ?a }");
        let Projection::Items(items) = &q.projection else {
            panic!()
        };
        let Expr::ArrayDeref { subscripts, .. } = &items[0].expr else {
            panic!()
        };
        assert!(matches!(
            subscripts[0],
            SubscriptExpr::Range {
                lo: None,
                stride: None,
                hi: Some(_)
            }
        ));
        let Expr::ArrayDeref { subscripts, .. } = &items[1].expr else {
            panic!()
        };
        assert!(matches!(
            subscripts[0],
            SubscriptExpr::Range {
                lo: Some(_),
                stride: None,
                hi: None
            }
        ));
    }

    #[test]
    fn deref_in_select_without_alias() {
        let q = select("SELECT ?a[2] WHERE { ?s <http://p> ?a }");
        let Projection::Items(items) = &q.projection else {
            panic!()
        };
        assert_eq!(items[0].alias.as_deref(), Some("a"));
        assert!(matches!(items[0].expr, Expr::ArrayDeref { .. }));
    }

    #[test]
    fn property_paths() {
        let q = select("SELECT ?x WHERE { ?x (<http://p>/<http://q>)+ ?y . ?y ^<http://r> ?z }");
        let PatternElem::Triple(t) = &q.pattern.elems[0] else {
            panic!()
        };
        assert!(matches!(t.path, Path::Plus(_)));
        let PatternElem::Triple(t2) = &q.pattern.elems[1] else {
            panic!()
        };
        assert!(matches!(t2.path, Path::Inv(_)));
    }

    #[test]
    fn path_alternative_and_star() {
        let q = select("SELECT ?x WHERE { ?x <http://a>|<http://b> ?y . ?y <http://c>* ?z }");
        let PatternElem::Triple(t) = &q.pattern.elems[0] else {
            panic!()
        };
        assert!(matches!(t.path, Path::Alt(_, _)));
    }

    #[test]
    fn aggregates_and_grouping() {
        let q = select(
            "SELECT ?g (COUNT(*) AS ?n) (AVG(?v) AS ?m) WHERE { ?x <http://g> ?g ; <http://v> ?v }
             GROUP BY ?g HAVING (COUNT(*) > 1) ORDER BY DESC(?n) LIMIT 5 OFFSET 2",
        );
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].ascending);
        assert_eq!(q.limit, Some(5));
        assert_eq!(q.offset, Some(2));
    }

    #[test]
    fn values_clause() {
        let q = select("SELECT ?x WHERE { VALUES (?x ?y) { (1 2) (UNDEF 3) } }");
        let PatternElem::Values { vars, rows } = &q.pattern.elems[0] else {
            panic!()
        };
        assert_eq!(vars.len(), 2);
        assert_eq!(rows.len(), 2);
        assert!(rows[1][0].is_none());
    }

    #[test]
    fn exists_filter() {
        let q =
            select("SELECT ?x WHERE { ?x <http://p> ?y FILTER NOT EXISTS { ?x <http://q> ?z } }");
        let PatternElem::Filter(Expr::Exists { negated, .. }) = &q.pattern.elems[1] else {
            panic!("{:?}", q.pattern.elems)
        };
        assert!(*negated);
    }

    #[test]
    fn define_function() {
        let s = parse(
            "PREFIX ex: <http://example.org/>
             DEFINE FUNCTION ex:squares(?v) AS
             SELECT (?v * ?v AS ?r) WHERE { }",
        )
        .unwrap();
        let Statement::DefineFunction(f) = s else {
            panic!()
        };
        assert_eq!(f.name, "http://example.org/squares");
        assert_eq!(f.params, vec!["v"]);
    }

    #[test]
    fn function_call_and_closure() {
        let q = select("SELECT (array_map(square, ?a) AS ?m) (f(1, ?_) AS ?c) WHERE { }");
        let Projection::Items(items) = &q.projection else {
            panic!()
        };
        let Expr::Call { name, args } = &items[0].expr else {
            panic!()
        };
        assert_eq!(name, "array_map");
        assert!(matches!(&args[0], Expr::FunctionRef { name, .. } if name == "square"));
        let Expr::FunctionRef { name, bound } = &items[1].expr else {
            panic!()
        };
        assert_eq!(name, "f");
        assert_eq!(bound.len(), 2);
        assert!(bound[0].is_some());
        assert!(bound[1].is_none());
    }

    #[test]
    fn insert_data_with_array() {
        let s = parse(
            "PREFIX ex: <http://example.org/>
             INSERT DATA { ex:s ex:p ((1 2) (3 4)) ; ex:q 5 . }",
        )
        .unwrap();
        let Statement::InsertData(triples) = s else {
            panic!()
        };
        assert_eq!(triples.len(), 2);
        assert!(matches!(triples[0].object, Term::Array(_)));
    }

    #[test]
    fn ask_query() {
        let s = parse("ASK { ?x <http://p> 1 }").unwrap();
        assert!(matches!(s, Statement::Ask(_)));
    }

    #[test]
    fn construct_query() {
        let s = parse(
            "CONSTRUCT { ?x <http://knows2> ?z } WHERE { ?x <http://k> ?y . ?y <http://k> ?z }",
        )
        .unwrap();
        let Statement::Construct(c) = s else { panic!() };
        assert_eq!(c.template.len(), 1);
    }

    #[test]
    fn arithmetic_precedence() {
        let q = select("SELECT (1 + 2 * 3 AS ?x) WHERE { }");
        let Projection::Items(items) = &q.projection else {
            panic!()
        };
        let Expr::Arith(ArithOp::Add, _, rhs) = &items[0].expr else {
            panic!("{:?}", items[0].expr)
        };
        assert!(matches!(**rhs, Expr::Arith(ArithOp::Mul, _, _)));
    }

    #[test]
    fn power_is_right_assoc() {
        let q = select("SELECT (2 ^ 3 ^ 2 AS ?x) WHERE { }");
        let Projection::Items(items) = &q.projection else {
            panic!()
        };
        let Expr::Arith(ArithOp::Pow, _, rhs) = &items[0].expr else {
            panic!()
        };
        assert!(matches!(**rhs, Expr::Arith(ArithOp::Pow, _, _)));
    }

    #[test]
    fn comparison_vs_iri() {
        // '<' must lex as less-than here, not an IRI start.
        let q = select("SELECT ?x WHERE { ?x <http://p> ?y FILTER (?y < 5) }");
        assert!(matches!(
            q.pattern.elems[1],
            PatternElem::Filter(Expr::Cmp(CmpOp::Lt, _, _))
        ));
    }

    #[test]
    fn blank_property_list_expands() {
        let q =
            select("SELECT ?n WHERE { [] <http://name> ?n ; <http://knows> [ <http://name> ?m ] }");
        // [] and [ ... ] become fresh vars with extra triples.
        let triples: Vec<_> = q
            .pattern
            .elems
            .iter()
            .filter(|e| matches!(e, PatternElem::Triple(_)))
            .collect();
        assert_eq!(triples.len(), 3);
    }

    #[test]
    fn parse_error_position() {
        let err = parse("SELECT ?x WHERE { ?x <http://p } ").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
    }

    #[test]
    fn unknown_prefix_rejected() {
        let err = parse("SELECT ?x WHERE { ?x nope:p 1 }").unwrap_err();
        let QueryError::Parse { msg, .. } = err else {
            panic!()
        };
        assert!(msg.contains("unknown prefix"));
    }

    #[test]
    fn values_single_var_shorthand() {
        let q = select("SELECT ?x WHERE { VALUES ?x { 1 2 3 } }");
        let PatternElem::Values { vars, rows } = &q.pattern.elems[0] else {
            panic!()
        };
        assert_eq!(vars, &["x"]);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn bind_clause() {
        let q = select("SELECT ?y WHERE { ?s <http://p> ?x BIND (?x * 2 AS ?y) }");
        assert!(matches!(
            q.pattern.elems[1],
            PatternElem::Bind { ref var, .. } if var == "y"
        ));
    }

    #[test]
    fn negative_subscript() {
        let q = select("SELECT (?a[-1] AS ?last) WHERE { ?s <http://p> ?a }");
        let Projection::Items(items) = &q.projection else {
            panic!()
        };
        let Expr::ArrayDeref { subscripts, .. } = &items[0].expr else {
            panic!()
        };
        assert!(matches!(subscripts[0], SubscriptExpr::Index(Expr::Neg(_))));
    }
}
