//! The query-execution substrate: an RDF-with-Arrays graph plus an
//! array store and a function registry.
//!
//! [`Dataset`] is the core of what the thesis calls an SSDM instance
//! (§5.1): the in-memory RDF graph, the external array storage behind
//! the ASEI, the registry of defined/foreign functions, and the query
//! entry points. The higher-level `ssdm` crate layers data loaders and
//! workflow APIs on top.

use std::fmt;

use ssdm_array::ArrayError;
use ssdm_rdf::{Graph, Namespaces, RdfError, Term};
use ssdm_storage::{
    ArrayProxy, ArrayStore, MemoryChunkStore, ParallelConfig, RetrievalStrategy, SharedChunkStore,
    StorageError,
};

use crate::ast::Statement;
use crate::functions::FunctionRegistry;
use crate::value::Value;

/// Errors raised by SciSPARQL parsing and evaluation.
#[derive(Debug)]
pub enum QueryError {
    Parse {
        line: usize,
        col: usize,
        msg: String,
    },
    /// Static analysis errors (unknown function, bad aggregate use...).
    Translation(String),
    /// Runtime evaluation error that is not recoverable as "unbound".
    Eval(String),
    Rdf(RdfError),
    Array(ArrayError),
    Storage(StorageError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse { line, col, msg } => {
                write!(f, "syntax error at {line}:{col}: {msg}")
            }
            QueryError::Translation(m) => write!(f, "translation error: {m}"),
            QueryError::Eval(m) => write!(f, "evaluation error: {m}"),
            QueryError::Rdf(e) => write!(f, "RDF error: {e}"),
            QueryError::Array(e) => write!(f, "array error: {e}"),
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<RdfError> for QueryError {
    fn from(e: RdfError) -> Self {
        QueryError::Rdf(e)
    }
}

impl From<ArrayError> for QueryError {
    fn from(e: ArrayError) -> Self {
        QueryError::Array(e)
    }
}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}

/// The result of executing a statement.
// Variant sizes differ by design: Solutions carries the data.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum QueryResult {
    /// SELECT: column names and rows of optional values.
    Solutions {
        vars: Vec<String>,
        rows: Vec<Vec<Option<Value>>>,
    },
    /// ASK.
    Boolean(bool),
    /// CONSTRUCT: a new graph.
    Graph(Graph),
    /// Updates and DEFINE FUNCTION.
    Updated { inserted: usize, deleted: usize },
    /// EXPLAIN output: the rendered operator tree.
    Text(String),
}

impl QueryResult {
    /// The solution rows of a SELECT result.
    pub fn into_rows(self) -> Option<Vec<Vec<Option<Value>>>> {
        match self {
            QueryResult::Solutions { rows, .. } => Some(rows),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            QueryResult::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// Render a SELECT result as an aligned text table (for examples
    /// and the CLI).
    pub fn to_table(&self) -> String {
        match self {
            QueryResult::Solutions { vars, rows } => {
                let mut widths: Vec<usize> = vars.iter().map(|v| v.len() + 1).collect();
                let rendered: Vec<Vec<String>> = rows
                    .iter()
                    .map(|r| {
                        r.iter()
                            .map(|c| match c {
                                Some(v) => v.to_string(),
                                None => String::new(),
                            })
                            .collect()
                    })
                    .collect();
                for r in &rendered {
                    for (i, c) in r.iter().enumerate() {
                        widths[i] = widths[i].max(c.len());
                    }
                }
                let mut out = String::new();
                for (i, v) in vars.iter().enumerate() {
                    out.push_str(&format!("?{:<w$} ", v, w = widths[i]));
                }
                out.push('\n');
                for r in rendered {
                    for (i, c) in r.iter().enumerate() {
                        out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
                    }
                    out.push('\n');
                }
                out
            }
            QueryResult::Boolean(b) => format!("{b}\n"),
            QueryResult::Graph(g) => format!("graph with {} triples\n", g.len()),
            QueryResult::Updated { inserted, deleted } => {
                format!("inserted {inserted}, deleted {deleted}\n")
            }
            QueryResult::Text(t) => t.clone(),
        }
    }
}

/// A boxed back-end so one dataset type serves all storage choices.
/// [`SharedChunkStore`] combines the mutating `ChunkStore` contract
/// with the concurrent `SharedChunkRead` one, so the dataset's queries
/// can take the parallel retrieval/aggregation pipelines; every shipped
/// back-end (and the cache/resilience wrappers) qualifies. The trait
/// impls for `Box<dyn SharedChunkStore>` live in `ssdm-storage`.
pub type DynChunkStore = Box<dyn SharedChunkStore>;

/// Default chunk size for externalized arrays (64 KiB, the sweet spot
/// found in experiment E3).
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Process-wide query latency histogram (whole statements, parse
/// included).
fn obs_query_hist() -> &'static std::sync::Arc<ssdm_obs::Histogram> {
    static H: std::sync::OnceLock<std::sync::Arc<ssdm_obs::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| ssdm_obs::recorder().histogram("ssdm_query_seconds"))
}

/// An SSDM dataset: graph + arrays + functions.
pub struct Dataset {
    /// The default graph.
    pub graph: Graph,
    /// Named graphs (thesis §3.3.4). Each has its own dictionary.
    pub named_graphs: std::collections::HashMap<String, Graph>,
    /// The graph currently being matched (set by GRAPH patterns and
    /// FROM clauses during evaluation).
    pub(crate) active_graph: Option<String>,
    /// When set (by FROM NAMED), restricts which graphs `GRAPH ?g`
    /// iterates over.
    pub(crate) visible_named: Option<Vec<String>>,
    pub arrays: ArrayStore<DynChunkStore>,
    pub registry: FunctionRegistry,
    pub namespaces: Namespaces,
    /// Strategy used when queries resolve array proxies.
    pub strategy: RetrievalStrategy,
    /// Arrays larger than this many elements are stored externally on
    /// load; smaller ones stay resident in the graph.
    pub externalize_threshold: usize,
    /// Chunk size for externalized arrays; 0 selects the auto-tuning
    /// heuristic per array.
    pub chunk_bytes: usize,
    /// Worker-pool configuration for proxy resolution and streamed
    /// aggregates. The default (1 worker) is the sequential path;
    /// results are bit-identical for every worker count.
    pub parallel: ParallelConfig,
    /// Durability hook: when set, every committed update is offered to
    /// the journal before it is acknowledged (see [`crate::journal`]).
    pub journal: Option<Box<dyn crate::journal::UpdateJournal>>,
    /// Attached while a statement runs under `EXPLAIN ANALYZE` or the
    /// slow-query log; `None` (the default) keeps every profiling hook
    /// on the zero-cost path.
    pub(crate) profiler: Option<crate::profile::QueryProfiler>,
    /// Planner configuration (join enumeration mode, adaptivity,
    /// calibration switch). Seeded from the environment; override the
    /// field directly to force a mode per dataset.
    pub planner: crate::planner::PlannerConfig,
    /// Runtime feedback: per-predicate cardinality corrections and the
    /// per-backend cost-per-statement, updated after profiled queries.
    pub calibration: crate::planner::Calibration,
}

impl Dataset {
    /// A dataset whose external arrays live in an in-process store.
    pub fn in_memory() -> Self {
        Dataset::with_backend(Box::new(MemoryChunkStore::new()))
    }

    /// A dataset over an arbitrary ASEI back-end.
    pub fn with_backend(backend: DynChunkStore) -> Self {
        Dataset {
            graph: Graph::new(),
            named_graphs: std::collections::HashMap::new(),
            active_graph: None,
            visible_named: None,
            arrays: ArrayStore::new(backend),
            registry: FunctionRegistry::with_builtins(),
            namespaces: Namespaces::new(),
            strategy: RetrievalStrategy::SpdRange {
                options: Default::default(),
            },
            externalize_threshold: usize::MAX,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            parallel: ParallelConfig::with_workers(1),
            journal: None,
            profiler: None,
            planner: crate::planner::PlannerConfig::from_env(),
            calibration: crate::planner::Calibration::default(),
        }
    }

    /// Offer a committed mutation to the attached journal, mapping a
    /// journal failure to a query error so the update is not
    /// acknowledged.
    fn journal_entry(&mut self, entry: crate::journal::JournalEntry<'_>) -> Result<(), QueryError> {
        if let Some(journal) = self.journal.as_mut() {
            journal
                .record(entry)
                .map_err(|e| QueryError::Eval(format!("update journal: {e}")))?;
        }
        Ok(())
    }

    /// The graph scans currently target: a named graph while a GRAPH
    /// pattern or FROM clause is active, else the default graph.
    pub fn active(&self) -> &Graph {
        static EMPTY: std::sync::OnceLock<Graph> = std::sync::OnceLock::new();
        match &self.active_graph {
            Some(name) => self
                .named_graphs
                .get(name)
                .unwrap_or_else(|| EMPTY.get_or_init(Graph::new)),
            None => &self.graph,
        }
    }

    /// Load Turtle into a named graph (creating it if needed).
    pub fn load_turtle_named(&mut self, name: &str, text: &str) -> Result<usize, QueryError> {
        let graph = self.named_graphs.entry(name.to_string()).or_default();
        let n = ssdm_rdf::turtle::parse_into(graph, text)?;
        self.journal_entry(crate::journal::JournalEntry::TurtleNamed { graph: name, text })?;
        Ok(n)
    }

    /// Names of the graphs a `GRAPH ?g` pattern ranges over, sorted for
    /// deterministic iteration.
    pub(crate) fn iterable_graph_names(&self) -> Vec<String> {
        let mut names: Vec<String> = match &self.visible_named {
            Some(allowed) => allowed
                .iter()
                .filter(|n| self.named_graphs.contains_key(*n))
                .cloned()
                .collect(),
            None => self.named_graphs.keys().cloned().collect(),
        };
        names.sort();
        names
    }

    /// Parse and execute one SciSPARQL statement. Mutations are
    /// journaled (when a journal is attached) after they succeed and
    /// before they are acknowledged; replay paths use
    /// [`Dataset::execute`] directly, which does not journal.
    pub fn query(&mut self, text: &str) -> Result<QueryResult, QueryError> {
        let _latency = ssdm_obs::Span::start(obs_query_hist());
        let parse_start = std::time::Instant::now();
        let stmt = crate::parser::parse(text)?;
        let parse_micros = parse_start.elapsed().as_micros() as u64;
        if let Statement::ExplainAnalyze(q) = stmt {
            // Capture the real parse time instead of the zero the
            // pre-parsed `execute` path would report.
            let (_, profile) =
                self.with_profiler(parse_micros, |ds| crate::eval::execute_select(ds, &q))?;
            return Ok(QueryResult::Text(profile));
        }
        let is_mutation = stmt.is_mutation();
        let result = self.execute(stmt)?;
        if is_mutation {
            self.journal_entry(crate::journal::JournalEntry::Statement(text))?;
        }
        Ok(result)
    }

    /// Parse and execute one statement with the profiler attached,
    /// returning the result *and* the rendered profile — the substrate
    /// of the slow-query log. Mutations journal exactly as in
    /// [`query`](Self::query).
    pub fn query_profiled(&mut self, text: &str) -> Result<(QueryResult, String), QueryError> {
        let _latency = ssdm_obs::Span::start(obs_query_hist());
        let parse_start = std::time::Instant::now();
        let stmt = crate::parser::parse(text)?;
        let parse_micros = parse_start.elapsed().as_micros() as u64;
        let is_mutation = stmt.is_mutation();
        let (result, profile) = self.with_profiler(parse_micros, |ds| ds.execute(stmt))?;
        if is_mutation {
            self.journal_entry(crate::journal::JournalEntry::Statement(text))?;
        }
        Ok((result, profile))
    }

    /// Run `f` with a fresh profiler attached, returning its result and
    /// the rendered profile. Nested invocations (an `EXPLAIN ANALYZE`
    /// arriving through [`query_profiled`](Self::query_profiled))
    /// stack: the inner run gets its own profiler and the outer one is
    /// restored afterwards.
    fn with_profiler<T>(
        &mut self,
        parse_micros: u64,
        f: impl FnOnce(&mut Self) -> Result<T, QueryError>,
    ) -> Result<(T, String), QueryError> {
        let saved = self.profiler.take();
        self.profiler = Some(crate::profile::QueryProfiler::new(parse_micros));
        let begin = self.counter_snapshot();
        let start = std::time::Instant::now();
        let result = f(self);
        let exec_total = start.elapsed();
        let end = self.counter_snapshot();
        let profiler = self.profiler.take().expect("profiler still attached");
        self.profiler = saved;
        let value = result?;
        let totals = end.since(&begin);
        // Feedback: fold observed-vs-estimated scan cardinalities into
        // the calibration table and refresh the backend cost figure, so
        // the next plan benefits from what this query measured.
        if self.planner.calibration {
            for op in profiler.ops() {
                if let (Some(est), Some(pred)) = (op.est, op.predicate.as_ref()) {
                    self.calibration.observe(pred, est, op.rows_out as f64);
                }
            }
            self.calibration.refresh_backend_cost();
        }
        Ok((value, profiler.render(exec_total, &totals)))
    }

    /// Snapshot every counter the profiler attributes to operators.
    pub(crate) fn counter_snapshot(&self) -> crate::profile::CounterSnapshot {
        let io = self.arrays.backend().io_stats();
        let cache = self.arrays.backend().cache_stats();
        let apr = self.arrays.cumulative_stats();
        let compute = ssdm_array::compute_stats();
        crate::profile::CounterSnapshot {
            statements: io.statements,
            chunks_fetched: io.chunks_returned,
            bytes_fetched: io.bytes_returned,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            kernel_elements: compute.elements_processed,
            fallbacks: apr.fallbacks,
            chunks_skipped: apr.chunks_skipped,
            chunks_decoded: apr.chunks_decoded,
            bytes_decoded: apr.bytes_decoded,
        }
    }

    /// Open a profiled operator frame. No-op when no profiler is
    /// attached — callers gate on `profiling()` to skip label building.
    /// `est`/`predicate` carry the planner estimate and scan predicate
    /// for the est/actual/q-error columns and the calibration loop.
    pub(crate) fn prof_enter(
        &mut self,
        label: String,
        rows_in: u64,
        est: Option<f64>,
        predicate: Option<String>,
    ) {
        if self.profiler.is_some() {
            let snap = self.counter_snapshot();
            if let Some(p) = self.profiler.as_mut() {
                p.enter(label, snap, rows_in, est, predicate);
            }
        }
    }

    /// Record one mid-query re-optimization (no-op unprofiled).
    pub(crate) fn prof_note_reopt(&mut self) {
        if let Some(p) = self.profiler.as_mut() {
            p.note_reopt();
        }
    }

    /// Close the innermost profiled operator frame.
    pub(crate) fn prof_exit(&mut self, rows_out: u64) {
        if self.profiler.is_some() {
            let snap = self.counter_snapshot();
            if let Some(p) = self.profiler.as_mut() {
                p.exit(snap, rows_out);
            }
        }
    }

    /// Add to a profiled phase timing.
    pub(crate) fn prof_phase(&mut self, name: &'static str, elapsed: std::time::Duration) {
        if let Some(p) = self.profiler.as_mut() {
            p.phase(name, elapsed);
        }
    }

    /// Whether a profiler is attached (evaluation hooks check this
    /// before doing any per-operator work).
    pub(crate) fn profiling(&self) -> bool {
        self.profiler.is_some()
    }

    /// Execute a pre-parsed statement.
    pub fn execute(&mut self, stmt: Statement) -> Result<QueryResult, QueryError> {
        match stmt {
            Statement::Select(q) => crate::eval::execute_select(self, &q),
            Statement::Ask(q) => crate::eval::execute_ask(self, &q),
            Statement::Construct(q) => crate::eval::execute_construct(self, &q),
            Statement::Explain(q) => {
                let plan =
                    crate::algebra::optimize(crate::algebra::translate(&q.pattern), &self.graph);
                Ok(QueryResult::Text(crate::algebra::explain(
                    &plan,
                    &self.graph,
                )))
            }
            Statement::ExplainAnalyze(q) => {
                // Pre-parsed entry (wire protocol, replay): no parse
                // phase to report. `Dataset::query` intercepts the
                // parsed-from-text case to include it.
                let (_, profile) =
                    self.with_profiler(0, |ds| crate::eval::execute_select(ds, &q))?;
                Ok(QueryResult::Text(profile))
            }
            Statement::Describe(targets) => {
                let mut out = Graph::new();
                for target in targets {
                    if let Some(s) = self.graph.dictionary().lookup(&target) {
                        for t in self.graph.match_pattern(Some(s), None, None) {
                            out.insert(
                                self.graph.term(t.s).clone(),
                                self.graph.term(t.p).clone(),
                                self.graph.term(t.o).clone(),
                            );
                        }
                    }
                }
                Ok(QueryResult::Graph(out))
            }
            Statement::DefineFunction(def) => {
                self.registry.define(def)?;
                Ok(QueryResult::Updated {
                    inserted: 0,
                    deleted: 0,
                })
            }
            Statement::InsertData(triples) => crate::update::insert_data(self, triples),
            Statement::DeleteData(triples) => crate::update::delete_data(self, triples),
            Statement::Modify {
                delete,
                insert,
                pattern,
            } => crate::update::modify(self, delete, insert, &pattern),
        }
    }

    /// Load Turtle text into the graph (collections consolidate to
    /// arrays; large arrays are externalized per the threshold).
    pub fn load_turtle(&mut self, text: &str) -> Result<usize, QueryError> {
        let n = ssdm_rdf::turtle::parse_into(&mut self.graph, text)?;
        self.externalize_large_arrays()?;
        self.journal_entry(crate::journal::JournalEntry::TurtleDefault(text))?;
        Ok(n)
    }

    /// Move every resident array above the threshold out to the ASEI
    /// back-end, replacing its term with an [`Term::ArrayRef`].
    pub fn externalize_large_arrays(&mut self) -> Result<usize, QueryError> {
        if self.externalize_threshold == usize::MAX {
            return Ok(0);
        }
        let threshold = self.externalize_threshold;
        let chunk_bytes = self.chunk_bytes;
        // Collect triples whose object is a large resident array.
        let todo: Vec<(ssdm_rdf::TermId, ssdm_rdf::TermId, ssdm_rdf::TermId)> = self
            .graph
            .iter()
            .filter(
                |t| matches!(self.graph.term(t.o), Term::Array(a) if a.element_count() > threshold),
            )
            .map(|t| (t.s, t.p, t.o))
            .collect();
        let mut moved = 0;
        for (s, p, o) in todo {
            let Term::Array(a) = self.graph.term(o).clone() else {
                continue;
            };
            let cb = if chunk_bytes == 0 {
                ssdm_storage::auto_chunk_bytes(a.element_count())
            } else {
                chunk_bytes
            };
            let proxy = self.arrays.store_array(&a, cb)?;
            let new_o = self.graph.intern(Term::ArrayRef(proxy.array_id()));
            self.graph.remove_ids(s, p, o);
            self.graph.insert_ids(s, p, new_o);
            moved += 1;
        }
        Ok(moved)
    }

    /// Resolve a term to a runtime value (array refs become proxies).
    pub fn term_to_value(&self, term: &Term) -> Value {
        match term {
            Term::ArrayRef(id) => match self.arrays.proxy(*id) {
                Ok(p) => Value::Proxy(p),
                Err(_) => Value::Term(term.clone()),
            },
            other => Value::Term(other.clone()),
        }
    }

    /// Force a value to a resident array, resolving proxies through the
    /// APR with the dataset's retrieval strategy.
    pub fn force_array(&mut self, v: &Value) -> Result<ssdm_array::NumArray, QueryError> {
        match v {
            Value::Term(Term::Array(a)) => Ok(a.clone()),
            Value::Proxy(p) => Ok(self
                .arrays
                .resolve_parallel(p, self.strategy, self.parallel)?),
            other => Err(QueryError::Eval(format!("not an array: {other}"))),
        }
    }

    /// A proxy for a stored array id.
    pub fn array_proxy(&self, id: u64) -> Result<ArrayProxy, QueryError> {
        Ok(self.arrays.proxy(id)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn externalization_threshold() {
        let mut ds = Dataset::in_memory();
        ds.externalize_threshold = 4;
        ds.chunk_bytes = 16;
        ds.load_turtle(
            "<http://s> <http://small> (1 2 3) .
             <http://s> <http://big> (1 2 3 4 5 6 7 8) .",
        )
        .unwrap();
        let small = ds
            .graph
            .dictionary()
            .lookup(&Term::uri("http://small"))
            .unwrap();
        let big = ds
            .graph
            .dictionary()
            .lookup(&Term::uri("http://big"))
            .unwrap();
        let small_o = ds
            .graph
            .match_pattern(None, Some(small), None)
            .next()
            .unwrap()
            .o;
        let big_o = ds
            .graph
            .match_pattern(None, Some(big), None)
            .next()
            .unwrap()
            .o;
        assert!(matches!(ds.graph.term(small_o), Term::Array(_)));
        assert!(matches!(ds.graph.term(big_o), Term::ArrayRef(_)));
        // The proxy resolves back to the original content.
        let v = ds.term_to_value(&ds.graph.term(big_o).clone());
        let arr = ds.force_array(&v).unwrap();
        assert_eq!(arr.element_count(), 8);
        assert_eq!(arr.get(&[7]).unwrap().as_i64(), 8);
    }
}
