//! Abstract syntax of SciSPARQL queries, updates and function
//! definitions (thesis ch. 3–4). Produced by [`crate::parser`] and
//! consumed by [`crate::algebra`].

use ssdm_rdf::Term;

/// A full SciSPARQL statement.
#[derive(Debug, Clone)]
pub enum Statement {
    Select(SelectQuery),
    Ask(AskQuery),
    Construct(ConstructQuery),
    /// `DESCRIBE <uri>` — all triples with the resource as subject.
    Describe(Vec<Term>),
    /// `EXPLAIN <select-query>` — show the optimized operator tree
    /// instead of executing (a window into the §5.4 translation).
    Explain(Box<SelectQuery>),
    /// `EXPLAIN ANALYZE <select-query>` — execute the query with the
    /// profiler attached and show the operator tree annotated with
    /// measured phase timings and per-operator counters.
    ExplainAnalyze(Box<SelectQuery>),
    /// `DEFINE FUNCTION name(?p1, ?p2) AS <select-query>` — a
    /// parameterized view (thesis §4.2).
    DefineFunction(FunctionDef),
    /// `INSERT DATA { ... }` / `DELETE DATA { ... }` (SPARQL Update).
    InsertData(Vec<GroundTriple>),
    DeleteData(Vec<GroundTriple>),
    /// Templated update: `DELETE {...} INSERT {...} WHERE {...}`,
    /// including the `INSERT ... WHERE` and `DELETE WHERE` short forms.
    Modify {
        delete: Vec<TriplePattern>,
        insert: Vec<TriplePattern>,
        pattern: GroupPattern,
    },
}

impl Statement {
    /// Whether executing this statement mutates the dataset's graphs or
    /// array store — i.e. whether it must reach the update journal
    /// before being acknowledged. `DEFINE FUNCTION` is deliberately not
    /// a mutation here: function definitions are session state, not
    /// persisted by snapshots, so logging them would make replayed and
    /// snapshotted states diverge.
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            Statement::InsertData(_) | Statement::DeleteData(_) | Statement::Modify { .. }
        )
    }
}

/// A SELECT query.
#[derive(Debug, Clone)]
pub struct SelectQuery {
    pub distinct: bool,
    pub projection: Projection,
    /// `FROM <g>`: query this named graph as the default graph
    /// (at most one; thesis §3.3.4).
    pub from: Option<String>,
    /// `FROM NAMED <g>`: restrict which graphs `GRAPH ?g` ranges over.
    pub from_named: Vec<String>,
    pub pattern: GroupPattern,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
    pub offset: Option<usize>,
}

/// An ASK query.
#[derive(Debug, Clone)]
pub struct AskQuery {
    pub pattern: GroupPattern,
}

/// A CONSTRUCT query.
#[derive(Debug, Clone)]
pub struct ConstructQuery {
    pub template: Vec<TriplePattern>,
    pub pattern: GroupPattern,
    pub limit: Option<usize>,
}

/// `SELECT *` or an explicit projection list.
#[derive(Debug, Clone)]
pub enum Projection {
    All,
    Items(Vec<ProjectionItem>),
}

/// One projected column: a bare variable or `(expr AS ?name)`.
#[derive(Debug, Clone)]
pub struct ProjectionItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

impl ProjectionItem {
    /// The output column name.
    pub fn name(&self) -> String {
        if let Some(a) = &self.alias {
            return a.clone();
        }
        match &self.expr {
            Expr::Var(v) => v.clone(),
            other => format!("{other:?}"),
        }
    }
}

/// An ORDER BY key.
#[derive(Debug, Clone)]
pub struct OrderKey {
    pub expr: Expr,
    pub ascending: bool,
}

/// A group graph pattern `{ ... }`: a conjunction of elements.
#[derive(Debug, Clone, Default)]
pub struct GroupPattern {
    pub elems: Vec<PatternElem>,
}

/// One element of a group pattern.
#[derive(Debug, Clone)]
pub enum PatternElem {
    /// A basic triple pattern (property paths included).
    Triple(TriplePattern),
    /// `OPTIONAL { ... }`.
    Optional(GroupPattern),
    /// `{ A } UNION { B } UNION ...`.
    Union(Vec<GroupPattern>),
    /// `FILTER (...)`.
    Filter(Expr),
    /// `BIND (expr AS ?v)`.
    Bind { expr: Expr, var: String },
    /// `VALUES (?a ?b) { (1 2) (3 UNDEF) }`.
    Values {
        vars: Vec<String>,
        rows: Vec<Vec<Option<Term>>>,
    },
    /// A nested group `{ ... }`.
    Group(GroupPattern),
    /// `GRAPH <g> { ... }` / `GRAPH ?g { ... }` — evaluate the inner
    /// pattern against a named graph (thesis §3.3.4).
    Graph {
        name: TermPattern,
        pattern: GroupPattern,
    },
    /// `{ SELECT ... }` — a subquery; its projected bindings join the
    /// outer solutions.
    SubSelect(Box<SelectQuery>),
    /// `MINUS { ... }` — remove solutions compatible with the pattern.
    Minus(GroupPattern),
}

/// A triple pattern; the predicate may be a property-path expression.
#[derive(Debug, Clone)]
pub struct TriplePattern {
    pub subject: TermPattern,
    pub path: Path,
    pub object: TermPattern,
}

/// Subject/object position: variable or ground term.
#[derive(Debug, Clone, PartialEq)]
pub enum TermPattern {
    Var(String),
    Term(Term),
}

impl TermPattern {
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermPattern::Var(v) => Some(v),
            _ => None,
        }
    }
}

/// A SPARQL 1.1 property-path expression (thesis §3.4).
#[derive(Debug, Clone, PartialEq)]
pub enum Path {
    /// A single predicate (URI or variable).
    Pred(TermPattern),
    /// `p1 / p2` — sequence.
    Seq(Box<Path>, Box<Path>),
    /// `p1 | p2` — alternative.
    Alt(Box<Path>, Box<Path>),
    /// `^p` — inverse.
    Inv(Box<Path>),
    /// `p*` — reflexive-transitive closure.
    Star(Box<Path>),
    /// `p+` — transitive closure.
    Plus(Box<Path>),
    /// `p?` — zero-or-one.
    Opt(Box<Path>),
}

impl Path {
    /// True when the path is a plain predicate (no operators).
    pub fn as_pred(&self) -> Option<&TermPattern> {
        match self {
            Path::Pred(p) => Some(p),
            _ => None,
        }
    }
}

/// Expression grammar (filters, projections, BIND, array syntax).
#[derive(Debug, Clone)]
pub enum Expr {
    Var(String),
    Const(Term),
    /// `?f(args...)` or `name(args...)`: built-in, UDF, foreign
    /// function, or closure application.
    Call {
        name: String,
        args: Vec<Expr>,
    },
    /// A function reference or partial application producing a closure:
    /// `FUNCTION name` or `name(1, ?_, 3)` with `?_` placeholders.
    FunctionRef {
        name: String,
        bound: Vec<Option<Expr>>,
    },
    /// `base[subscripts]` — array dereference (thesis §4.1.1).
    ArrayDeref {
        base: Box<Expr>,
        subscripts: Vec<SubscriptExpr>,
    },
    Not(Box<Expr>),
    Neg(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// `EXISTS { ... }` / `NOT EXISTS { ... }`.
    Exists {
        pattern: GroupPattern,
        negated: bool,
    },
    /// `?x IN (e1, e2, ...)` / `?x NOT IN (...)`.
    InList {
        needle: Box<Expr>,
        haystack: Vec<Expr>,
        negated: bool,
    },
    /// An aggregate call, only legal under GROUP BY (or implicit group).
    Aggregate {
        kind: AggKind,
        distinct: bool,
        arg: Option<Box<Expr>>,
        separator: Option<String>,
    },
}

/// One subscript of an array dereference.
#[derive(Debug, Clone)]
pub enum SubscriptExpr {
    /// A single 1-based (possibly negative) index expression.
    Index(Expr),
    /// `lo:hi` or `lo:stride:hi` with optional bounds.
    Range {
        lo: Option<Expr>,
        stride: Option<Expr>,
        hi: Option<Expr>,
    },
    /// Bare `:` — the whole dimension.
    All,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Pow,
}

/// SPARQL aggregate kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Sample,
    GroupConcat,
}

/// A function definition (parameterized view).
#[derive(Debug, Clone)]
pub struct FunctionDef {
    pub name: String,
    pub params: Vec<String>,
    pub body: SelectQuery,
}

/// A ground triple for INSERT/DELETE DATA.
#[derive(Debug, Clone)]
pub struct GroundTriple {
    pub subject: Term,
    pub predicate: Term,
    pub object: Term,
}

impl Expr {
    /// Collect the variables an expression mentions (excluding those
    /// local to EXISTS blocks, which evaluate in their own scope).
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Const(_) => {}
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Expr::FunctionRef { bound, .. } => {
                for b in bound.iter().flatten() {
                    b.collect_vars(out);
                }
            }
            Expr::ArrayDeref { base, subscripts } => {
                base.collect_vars(out);
                for s in subscripts {
                    match s {
                        SubscriptExpr::Index(e) => e.collect_vars(out),
                        SubscriptExpr::Range { lo, stride, hi } => {
                            for e in [lo, stride, hi].into_iter().flatten() {
                                e.collect_vars(out);
                            }
                        }
                        SubscriptExpr::All => {}
                    }
                }
            }
            Expr::Not(e) | Expr::Neg(e) => e.collect_vars(out),
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Exists { .. } => {}
            Expr::InList {
                needle, haystack, ..
            } => {
                needle.collect_vars(out);
                for h in haystack {
                    h.collect_vars(out);
                }
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// True when the expression contains an aggregate call at any depth.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Var(_) | Expr::Const(_) | Expr::FunctionRef { .. } | Expr::Exists { .. } => false,
            Expr::Call { args, .. } => args.iter().any(Expr::has_aggregate),
            Expr::ArrayDeref { base, subscripts } => {
                base.has_aggregate()
                    || subscripts.iter().any(|s| match s {
                        SubscriptExpr::Index(e) => e.has_aggregate(),
                        SubscriptExpr::Range { lo, stride, hi } => [lo, stride, hi]
                            .into_iter()
                            .flatten()
                            .any(|e| e.has_aggregate()),
                        SubscriptExpr::All => false,
                    })
            }
            Expr::Not(e) | Expr::Neg(e) => e.has_aggregate(),
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
                a.has_aggregate() || b.has_aggregate()
            }
            Expr::InList {
                needle, haystack, ..
            } => needle.has_aggregate() || haystack.iter().any(Expr::has_aggregate),
        }
    }
}

impl GroupPattern {
    /// Variables this pattern can bind.
    pub fn bindable_vars(&self, out: &mut Vec<String>) {
        fn add(out: &mut Vec<String>, v: &str) {
            if !out.iter().any(|x| x == v) {
                out.push(v.to_string());
            }
        }
        for e in &self.elems {
            match e {
                PatternElem::Triple(t) => {
                    if let TermPattern::Var(v) = &t.subject {
                        add(out, v);
                    }
                    if let Some(TermPattern::Var(v)) = t.path.as_pred() {
                        add(out, v);
                    }
                    if let TermPattern::Var(v) = &t.object {
                        add(out, v);
                    }
                }
                PatternElem::Optional(g) | PatternElem::Group(g) => g.bindable_vars(out),
                PatternElem::Graph { name, pattern } => {
                    if let TermPattern::Var(v) = name {
                        add(out, v);
                    }
                    pattern.bindable_vars(out);
                }
                PatternElem::SubSelect(q) => {
                    if let Projection::Items(items) = &q.projection {
                        for i in items {
                            add(out, &i.name());
                        }
                    } else {
                        q.pattern.bindable_vars(out);
                    }
                }
                PatternElem::Minus(_) => {}
                PatternElem::Union(gs) => {
                    for g in gs {
                        g.bindable_vars(out);
                    }
                }
                PatternElem::Filter(_) => {}
                PatternElem::Bind { var, .. } => add(out, var),
                PatternElem::Values { vars, .. } => {
                    for v in vars {
                        add(out, v);
                    }
                }
            }
        }
    }
}
