//! Property-path evaluation (thesis §3.4).
//!
//! Non-trivial paths (sequence, alternative, inverse, closures) are
//! evaluated by set-oriented expansion over the graph: bound endpoints
//! seed the search, `*`/`+` run a breadth-first fixpoint, and the
//! resulting `(subject, object)` pairs join into the binding stream.

use std::collections::{HashSet, VecDeque};

use ssdm_rdf::TermId;

use crate::ast::{Path, TermPattern, TriplePattern};
use crate::dataset::{Dataset, QueryError};
use crate::eval::{value_to_graph_id, Row};

/// Evaluate a path-scan for each input row.
pub fn eval_path_scan(
    ds: &mut Dataset,
    t: &TriplePattern,
    input: Vec<Row>,
) -> Result<Vec<Row>, QueryError> {
    let mut out = Vec::new();
    for row in input {
        let s_bound = endpoint(ds, &row, &t.subject);
        let o_bound = endpoint(ds, &row, &t.object);
        // A bound endpoint that doesn't denote a graph node matches nothing.
        if matches!(s_bound, Endpoint::Dead) || matches!(o_bound, Endpoint::Dead) {
            continue;
        }
        let s_id = s_bound.id();
        let o_id = o_bound.id();
        let pairs = path_pairs(ds.active(), &t.path, s_id, o_id)?;
        for (s, o) in pairs {
            let mut extended = row.clone();
            let mut ok = true;
            if let TermPattern::Var(v) = &t.subject {
                let val = ds.term_to_value(ds.active().term(s));
                match extended.get(v.as_str()) {
                    Some(existing) => ok = existing.value_eq(&val),
                    None => {
                        extended.insert(v.clone(), val);
                    }
                }
            }
            if ok {
                if let TermPattern::Var(v) = &t.object {
                    let val = ds.term_to_value(ds.active().term(o));
                    match extended.get(v.as_str()) {
                        Some(existing) => ok = existing.value_eq(&val),
                        None => {
                            extended.insert(v.clone(), val);
                        }
                    }
                }
            }
            if ok {
                out.push(extended);
            }
        }
    }
    Ok(out)
}

enum Endpoint {
    Free,
    Bound(TermId),
    /// Bound to a value that is not a node of this graph.
    Dead,
}

impl Endpoint {
    fn id(&self) -> Option<TermId> {
        match self {
            Endpoint::Bound(id) => Some(*id),
            _ => None,
        }
    }
}

fn endpoint(ds: &Dataset, row: &Row, tp: &TermPattern) -> Endpoint {
    match tp {
        TermPattern::Term(t) => match ds.active().dictionary().lookup(t) {
            Some(id) => Endpoint::Bound(id),
            None => Endpoint::Dead,
        },
        TermPattern::Var(v) => match row.get(v.as_str()) {
            Some(val) => match value_to_graph_id(ds, val) {
                Some(id) => Endpoint::Bound(id),
                None => Endpoint::Dead,
            },
            None => Endpoint::Free,
        },
    }
}

/// All `(s, o)` pairs connected by `path`, restricted by optional bound
/// endpoints.
pub fn path_pairs(
    graph: &ssdm_rdf::Graph,
    path: &Path,
    s: Option<TermId>,
    o: Option<TermId>,
) -> Result<Vec<(TermId, TermId)>, QueryError> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for pair in raw_pairs(graph, path, s, o)? {
        if seen.insert(pair) {
            out.push(pair);
        }
    }
    Ok(out)
}

fn raw_pairs(
    graph: &ssdm_rdf::Graph,
    path: &Path,
    s: Option<TermId>,
    o: Option<TermId>,
) -> Result<Vec<(TermId, TermId)>, QueryError> {
    match path {
        Path::Pred(TermPattern::Term(t)) => {
            let Some(p) = graph.dictionary().lookup(t) else {
                return Ok(Vec::new());
            };
            Ok(graph
                .match_pattern(s, Some(p), o)
                .map(|tr| (tr.s, tr.o))
                .collect())
        }
        Path::Pred(TermPattern::Var(_)) => Err(QueryError::Translation(
            "variable predicates are not allowed inside path operators".into(),
        )),
        Path::Inv(inner) => {
            let pairs = raw_pairs(graph, inner, o, s)?;
            Ok(pairs.into_iter().map(|(a, b)| (b, a)).collect())
        }
        Path::Alt(a, b) => {
            let mut out = raw_pairs(graph, a, s, o)?;
            out.extend(raw_pairs(graph, b, s, o)?);
            Ok(out)
        }
        Path::Seq(a, b) => {
            // Evaluate the more-bound side first.
            let first = raw_pairs(graph, a, s, None)?;
            let mut out = Vec::new();
            let mut mids: HashSet<TermId> = HashSet::new();
            for &(_, m) in &first {
                mids.insert(m);
            }
            // For each distinct midpoint, continue with b.
            let mut continuations: std::collections::HashMap<TermId, Vec<TermId>> =
                std::collections::HashMap::new();
            for m in mids {
                let second = raw_pairs(graph, b, Some(m), o)?;
                continuations.insert(m, second.into_iter().map(|(_, e)| e).collect());
            }
            for (start, m) in first {
                if let Some(ends) = continuations.get(&m) {
                    for &e in ends {
                        out.push((start, e));
                    }
                }
            }
            Ok(out)
        }
        Path::Opt(inner) => {
            let mut out = raw_pairs(graph, inner, s, o)?;
            // Zero-length matches: every candidate node pairs with itself.
            for n in identity_nodes(graph, s, o) {
                out.push((n, n));
            }
            Ok(out)
        }
        Path::Star(inner) => {
            let mut out: Vec<(TermId, TermId)> = identity_nodes(graph, s, o)
                .into_iter()
                .map(|n| (n, n))
                .collect();
            out.extend(closure_pairs(graph, inner, s, o)?);
            Ok(out)
        }
        Path::Plus(inner) => closure_pairs(graph, inner, s, o)?
            .into_iter()
            .map(Ok)
            .collect(),
    }
}

/// Candidate nodes for zero-length path matches.
fn identity_nodes(graph: &ssdm_rdf::Graph, s: Option<TermId>, o: Option<TermId>) -> Vec<TermId> {
    match (s, o) {
        (Some(a), Some(b)) => {
            if a == b {
                vec![a]
            } else {
                Vec::new()
            }
        }
        (Some(a), None) => vec![a],
        (None, Some(b)) => vec![b],
        (None, None) => {
            // All nodes occurring in the graph.
            let mut set = HashSet::new();
            for t in graph.iter() {
                set.insert(t.s);
                set.insert(t.o);
            }
            set.into_iter().collect()
        }
    }
}

/// Transitive closure (one or more steps) of `inner`.
fn closure_pairs(
    graph: &ssdm_rdf::Graph,
    inner: &Path,
    s: Option<TermId>,
    o: Option<TermId>,
) -> Result<Vec<(TermId, TermId)>, QueryError> {
    // Choose the bound side as the BFS origin; invert if only o is bound.
    if s.is_none() {
        if let Some(oid) = o {
            let inv = Path::Inv(Box::new(inner.clone()));
            let pairs = closure_pairs(graph, &inv, Some(oid), None)?;
            return Ok(pairs.into_iter().map(|(a, b)| (b, a)).collect());
        }
    }
    let starts: Vec<TermId> = match s {
        Some(id) => vec![id],
        None => {
            // All possible start nodes: subjects (and objects, for
            // inverse steps) of the base path.
            let mut set = HashSet::new();
            for (a, _) in raw_pairs(graph, inner, None, None)? {
                set.insert(a);
            }
            set.into_iter().collect()
        }
    };
    let mut out = Vec::new();
    for start in starts {
        let mut visited: HashSet<TermId> = HashSet::new();
        let mut queue: VecDeque<TermId> = VecDeque::new();
        queue.push_back(start);
        // BFS over one-step expansions; `visited` holds reached nodes
        // (excluding the zero-step start unless reachable).
        let mut frontier_guard = 0usize;
        while let Some(node) = queue.pop_front() {
            frontier_guard += 1;
            if frontier_guard > graph.len() + graph.dictionary().len() + 1 {
                break; // safety bound; cycles are caught by `visited`
            }
            for (_, next) in raw_pairs(graph, inner, Some(node), None)? {
                if visited.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        for reached in visited {
            match o {
                Some(oid) if oid != reached => {}
                _ => out.push((start, reached)),
            }
        }
    }
    Ok(out)
}
