//! The SciSPARQL executor.
//!
//! Evaluates optimized [`Plan`] trees against a [`Dataset`] with
//! materialized binding sets, mirroring SSDM's execution algebra
//! (thesis §5.4.4): index-driven nested-loop joins over the graph's
//! SPO/POS/OSP indexes, left joins for OPTIONAL, three-valued filter
//! logic, grouping/aggregation, and lazy array handling — array proxies
//! flow through bindings untouched until an expression demands their
//! elements.

pub mod agg;
pub mod builtins;
pub mod expr;
pub mod path;

use std::collections::HashMap;

use ssdm_rdf::{Term, TermId};

use crate::algebra::{self, Plan};
use crate::ast::*;
use crate::dataset::{Dataset, QueryError, QueryResult};
use crate::value::Value;

/// One solution: variable → value.
pub type Row = HashMap<String, Value>;

/// Projected SELECT output: column names plus rows of optional values.
pub type SelectOutput = (Vec<String>, Vec<Vec<Option<Value>>>);

/// Execute a SELECT query.
pub fn execute_select(ds: &mut Dataset, q: &SelectQuery) -> Result<QueryResult, QueryError> {
    let (vars, rows) = select_solutions(ds, q, Row::new())?;
    Ok(QueryResult::Solutions { vars, rows })
}

/// Execute a SELECT query with initial bindings (the entry point for
/// parameterized-view calls, where parameters arrive pre-bound).
pub fn select_solutions(
    ds: &mut Dataset,
    q: &SelectQuery,
    initial: Row,
) -> Result<SelectOutput, QueryError> {
    // FROM / FROM NAMED: retarget the default graph and restrict the
    // named-graph universe for this query (thesis §3.3.4).
    let saved_active = ds.active_graph.clone();
    let saved_visible = ds.visible_named.clone();
    if let Some(f) = &q.from {
        ds.active_graph = Some(f.clone());
    }
    if !q.from_named.is_empty() {
        ds.visible_named = Some(q.from_named.clone());
    }
    let result = select_solutions_inner(ds, q, initial);
    ds.active_graph = saved_active;
    ds.visible_named = saved_visible;
    result
}

fn select_solutions_inner(
    ds: &mut Dataset,
    q: &SelectQuery,
    initial: Row,
) -> Result<SelectOutput, QueryError> {
    let solutions = eval_pattern(ds, &q.pattern, vec![initial])?;

    // Projection handling, with or without grouping.
    let items: Vec<ProjectionItem> = match &q.projection {
        Projection::Items(items) => items.clone(),
        Projection::All => {
            let mut vars = Vec::new();
            q.pattern.bindable_vars(&mut vars);
            vars.into_iter()
                .filter(|v| !v.starts_with('_'))
                .map(|v| ProjectionItem {
                    expr: Expr::Var(v),
                    alias: None,
                })
                .collect()
        }
    };
    let needs_grouping = !q.group_by.is_empty()
        || items.iter().any(|i| i.expr.has_aggregate())
        || q.having.as_ref().map(Expr::has_aggregate).unwrap_or(false);

    // Projection (and aggregation) resolves array proxies *outside* the
    // plan tree — e.g. `array_sum(?a)` in the SELECT clause fetches
    // chunks here. A synthetic operator row keeps that work attributed,
    // so per-operator counters still sum to the query totals.
    let profiling = ds.profiling();
    if profiling {
        ds.prof_enter("Project".into(), solutions.len() as u64, None, None);
    }
    let mut out_rows: Vec<Vec<Option<Value>>> = if needs_grouping {
        agg::grouped_projection(ds, &items, &q.group_by, &q.having, &solutions)?
    } else {
        let mut out = Vec::with_capacity(solutions.len());
        for row in &solutions {
            let mut cells = Vec::with_capacity(items.len());
            for item in &items {
                cells.push(expr::eval_expr(ds, row, &item.expr)?);
            }
            out.push(cells);
        }
        out
    };
    if profiling {
        ds.prof_exit(out_rows.len() as u64);
    }

    // ORDER BY. Sort keys can also force proxy resolution, hence the
    // synthetic operator row.
    if !q.order_by.is_empty() {
        if profiling {
            ds.prof_enter("OrderBy".into(), out_rows.len() as u64, None, None);
        }
        // Order keys evaluate against the projected row when they are
        // output aliases, else against the source solution.
        type Keyed = (Vec<Option<Value>>, Vec<Option<Value>>);
        let mut keyed: Vec<Keyed> = Vec::new();
        let source_rows: Vec<Row> = if needs_grouping {
            // After grouping, sort keys must reference projected columns.
            out_rows
                .iter()
                .map(|cells| {
                    items
                        .iter()
                        .zip(cells)
                        .filter_map(|(i, c)| c.clone().map(|v| (i.name(), v)))
                        .collect()
                })
                .collect()
        } else {
            // The original solutions, in the same order as out_rows.
            solutions.clone()
        };
        for (cells, src) in out_rows.into_iter().zip(source_rows) {
            let mut augmented = src;
            for (i, c) in items.iter().zip(&cells) {
                if let Some(v) = c {
                    augmented.entry(i.name()).or_insert_with(|| v.clone());
                }
            }
            let mut keys = Vec::with_capacity(q.order_by.len());
            for k in &q.order_by {
                keys.push(expr::eval_expr(ds, &augmented, &k.expr)?);
            }
            keyed.push((keys, cells));
        }
        keyed.sort_by(|a, b| {
            for (k, spec) in a.0.iter().zip(&b.0).zip(&q.order_by) {
                let (x, y) = k;
                let ord = match (x, y) {
                    (None, None) => std::cmp::Ordering::Equal,
                    (None, Some(_)) => std::cmp::Ordering::Less,
                    (Some(_), None) => std::cmp::Ordering::Greater,
                    (Some(x), Some(y)) => x.order_cmp(y),
                };
                let ord = if spec.ascending { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        out_rows = keyed.into_iter().map(|(_, c)| c).collect();
        if profiling {
            ds.prof_exit(out_rows.len() as u64);
        }
    }

    // DISTINCT.
    if q.distinct {
        let mut seen = std::collections::HashSet::new();
        out_rows.retain(|r| {
            let key = r
                .iter()
                .map(|c| c.as_ref().map(|v| v.to_string()).unwrap_or_default())
                .collect::<Vec<_>>()
                .join("\u{1}");
            seen.insert(key)
        });
    }

    // OFFSET / LIMIT.
    if let Some(off) = q.offset {
        out_rows.drain(..off.min(out_rows.len()));
    }
    if let Some(lim) = q.limit {
        out_rows.truncate(lim);
    }

    let vars = items.iter().map(|i| i.name()).collect();
    Ok((vars, out_rows))
}

/// Execute an ASK query.
pub fn execute_ask(ds: &mut Dataset, q: &AskQuery) -> Result<QueryResult, QueryError> {
    let rows = eval_pattern(ds, &q.pattern, vec![Row::new()])?;
    Ok(QueryResult::Boolean(!rows.is_empty()))
}

/// Execute a CONSTRUCT query.
pub fn execute_construct(ds: &mut Dataset, q: &ConstructQuery) -> Result<QueryResult, QueryError> {
    let rows = eval_pattern(ds, &q.pattern, vec![Row::new()])?;
    let mut out = ssdm_rdf::Graph::new();
    let mut blank_counter = 0usize;
    for row in rows {
        blank_counter += 1;
        for t in &q.template {
            let Some(s) = instantiate(ds, &row, &t.subject, blank_counter) else {
                continue;
            };
            let Some(TermPattern::Term(p)) = t
                .path
                .as_pred()
                .map(|p| match p {
                    TermPattern::Var(v) => row
                        .get(v)
                        .and_then(Value::as_term)
                        .cloned()
                        .map(TermPattern::Term),
                    TermPattern::Term(term) => Some(TermPattern::Term(term.clone())),
                })
                .unwrap_or(None)
            else {
                continue;
            };
            let Some(o) = instantiate(ds, &row, &t.object, blank_counter) else {
                continue;
            };
            out.insert(s, p, o);
            if let Some(lim) = q.limit {
                if out.len() >= lim {
                    return Ok(QueryResult::Graph(out));
                }
            }
        }
    }
    Ok(QueryResult::Graph(out))
}

fn instantiate(ds: &Dataset, row: &Row, tp: &TermPattern, solution: usize) -> Option<Term> {
    let _ = ds;
    match tp {
        TermPattern::Var(v) => match row.get(v)? {
            Value::Term(t) => Some(t.clone()),
            Value::Proxy(p) => Some(Term::ArrayRef(p.array_id())),
            Value::Closure(_) => None,
        },
        // Blank nodes in templates are scoped per solution.
        TermPattern::Term(Term::Blank(b)) => Some(Term::blank(format!("{b}_{solution}"))),
        TermPattern::Term(t) => Some(t.clone()),
    }
}

/// Optimize an already-translated plan with the dataset's full planner
/// context: configuration, calibration table and zone-map statistics.
fn plan_with_dataset(ds: &Dataset, translated: Plan) -> Plan {
    let ctx = crate::planner::PlannerCtx {
        graph: ds.active(),
        config: ds.planner,
        calibration: Some(&ds.calibration),
        zones: Some(&ds.arrays),
    };
    algebra::optimize_with(translated, &ctx)
}

/// Translate, optimize and evaluate a group pattern.
pub fn eval_pattern(
    ds: &mut Dataset,
    pattern: &GroupPattern,
    input: Vec<Row>,
) -> Result<Vec<Row>, QueryError> {
    if ds.profiling() {
        let t0 = std::time::Instant::now();
        let translated = algebra::translate(pattern);
        let t1 = std::time::Instant::now();
        let plan = plan_with_dataset(ds, translated);
        let t2 = std::time::Instant::now();
        ds.prof_phase("rewrite", t1.duration_since(t0));
        ds.prof_phase("plan", t2.duration_since(t1));
        return eval_plan(ds, &plan, input);
    }
    let plan = plan_with_dataset(ds, algebra::translate(pattern));
    eval_plan(ds, &plan, input)
}

/// The variables bound in every input row (structurally identical
/// across rows, so the first row suffices), as the planner's bound set.
fn bound_vars_of(input: &[Row]) -> std::collections::HashSet<String> {
    input
        .first()
        .map(|r| r.keys().cloned().collect())
        .unwrap_or_default()
}

/// Greedily re-order the unexecuted scan suffix of a running join by
/// estimated cardinality against the *actually* bound variables — the
/// mid-query re-optimization step. Callers guarantee every element is
/// a plain triple-pattern scan, so any permutation is join-equivalent.
fn reorder_suffix(ds: &Dataset, suffix: &mut [&Plan], rows: &[Row]) {
    let graph = ds.active();
    let mut bound = bound_vars_of(rows);
    for i in 0..suffix.len() {
        let best = (i..suffix.len())
            .min_by(|&a, &b| {
                let ea = algebra::estimate(suffix[a], graph, &bound);
                let eb = algebra::estimate(suffix[b], graph, &bound);
                ea.partial_cmp(&eb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("nonempty range");
        suffix.swap(i, best);
        suffix[i].certain_vars(&mut bound);
    }
}

/// The constant predicate of a scan node, as the calibration key.
fn scan_predicate(plan: &Plan) -> Option<String> {
    match plan {
        Plan::Scan(t) => match t.path.as_pred() {
            Some(TermPattern::Term(p)) => Some(p.to_string()),
            _ => None,
        },
        _ => None,
    }
}

/// Evaluate a plan over input binding rows. With a profiler attached,
/// every node becomes one operator row carrying the planner's
/// (uncalibrated) estimate next to the observed cardinality; without,
/// this is a direct call into the evaluator.
pub fn eval_plan(ds: &mut Dataset, plan: &Plan, input: Vec<Row>) -> Result<Vec<Row>, QueryError> {
    if !ds.profiling() {
        return eval_plan_inner(ds, plan, input);
    }
    let rows_in = input.len() as u64;
    // Raw statistics estimate (calibration deliberately excluded, so
    // the feedback loop converges on true corrections instead of
    // re-correcting its own output).
    let est = algebra::estimate(plan, ds.active(), &bound_vars_of(&input)) * rows_in.max(1) as f64;
    ds.prof_enter(
        algebra::node_label(plan),
        rows_in,
        Some(est),
        scan_predicate(plan),
    );
    let result = eval_plan_inner(ds, plan, input);
    if let Ok(rows) = &result {
        ds.prof_exit(rows.len() as u64);
    }
    result
}

fn eval_plan_inner(ds: &mut Dataset, plan: &Plan, input: Vec<Row>) -> Result<Vec<Row>, QueryError> {
    match plan {
        Plan::Empty => Ok(input),
        Plan::Scan(t) => {
            if t.path.as_pred().is_some() {
                scan_triples(ds, t, input)
            } else {
                path::eval_path_scan(ds, t, input)
            }
        }
        Plan::Join(children) => {
            // Adaptive execution: children run left-to-right; when an
            // operator's observed cardinality exceeds its estimate by
            // more than the configured Q-error bound, the *unexecuted*
            // suffix is re-ordered against the now-known bindings.
            // Produced rows are kept untouched, and only commutative
            // suffixes (pure triple-pattern scans) are rewritten, so
            // results are multiset-identical to the static plan.
            let qbound = ds.planner.adaptive_qerror;
            let min_rows = ds.planner.adaptive_min_rows;
            let mut seq: Vec<&Plan> = children.iter().collect();
            let mut rows = input;
            let mut idx = 0;
            while idx < seq.len() {
                let child = seq[idx];
                // Pre-execution estimate, only when adaptivity could
                // still rewrite something downstream.
                let est = match qbound {
                    Some(_) if seq.len() - idx > 2 => Some(
                        algebra::estimate(child, ds.active(), &bound_vars_of(&rows))
                            * rows.len().max(1) as f64,
                    ),
                    _ => None,
                };
                rows = eval_plan(ds, child, rows)?;
                if rows.is_empty() {
                    break;
                }
                idx += 1;
                if let (Some(qmax), Some(est)) = (qbound, est) {
                    let actual = rows.len() as f64;
                    let blown = actual / est.max(0.5) > qmax;
                    if blown
                        && rows.len() >= min_rows
                        && seq[idx..]
                            .iter()
                            .all(|c| matches!(c, Plan::Scan(t) if t.path.as_pred().is_some()))
                    {
                        reorder_suffix(ds, &mut seq[idx..], &rows);
                        ds.prof_note_reopt();
                    }
                }
            }
            Ok(rows)
        }
        Plan::LeftJoin { left, right } => {
            let left_rows = eval_plan(ds, left, input)?;
            let mut out = Vec::with_capacity(left_rows.len());
            for lrow in left_rows {
                let matches = eval_plan(ds, right, vec![lrow.clone()])?;
                if matches.is_empty() {
                    out.push(lrow);
                } else {
                    out.extend(matches);
                }
            }
            Ok(out)
        }
        Plan::Union(branches) => {
            let mut out = Vec::new();
            for b in branches {
                out.extend(eval_plan(ds, b, input.clone())?);
            }
            Ok(out)
        }
        Plan::Filter { input: inner, expr } => {
            let rows = eval_plan(ds, inner, input)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                // Expression errors count as false (thesis §3.6).
                let keep = expr::eval_expr(ds, &row, expr)?
                    .and_then(|v| v.effective_bool())
                    .unwrap_or(false);
                if keep {
                    out.push(row);
                }
            }
            Ok(out)
        }
        Plan::Extend {
            input: inner,
            var,
            expr,
        } => {
            let rows = eval_plan(ds, inner, input)?;
            let mut out = Vec::with_capacity(rows.len());
            for mut row in rows {
                // Subscript-variable enumeration (thesis §4.1.2): a
                // dereference whose subscripts contain unbound variables
                // fans the solution out over every valid subscript.
                if let Expr::ArrayDeref { base, subscripts } = expr {
                    let has_unbound = subscript_vars(subscripts)
                        .iter()
                        .any(|v| !row.contains_key(*v));
                    if has_unbound {
                        out.extend(enumerate_subscripts(ds, &row, var, base, subscripts)?);
                        continue;
                    }
                }
                // Bag-valued view calls (DAPLEX semantics, §2.6): a BIND
                // of a defined-function call fans out over EVERY solution
                // of the parameterized view, not just the first.
                if let Expr::Call { name, args } = expr {
                    if let Some(def) = ds.registry.lookup_defined(name) {
                        out.extend(bind_view_bag(ds, &row, var, &def, args)?);
                        continue;
                    }
                }
                match expr::eval_expr(ds, &row, expr)? {
                    Some(v) => match row.get(var) {
                        Some(existing) => {
                            if existing.value_eq(&v) {
                                out.push(row);
                            }
                        }
                        None => {
                            row.insert(var.clone(), v);
                            out.push(row);
                        }
                    },
                    // BIND errors leave the variable unbound.
                    None => out.push(row),
                }
            }
            Ok(out)
        }
        Plan::Graph { name, inner } => {
            let saved = ds.active_graph.clone();
            let result = eval_graph_plan(ds, name, inner, input);
            ds.active_graph = saved;
            result
        }
        Plan::SubSelect(q) => {
            // SPARQL subqueries evaluate bottom-up, then join.
            let (vars, sub_rows) = select_solutions(ds, q, Row::new())?;
            let mut out = Vec::new();
            for row in &input {
                'sub: for srow in &sub_rows {
                    let mut merged = row.clone();
                    for (var, cell) in vars.iter().zip(srow) {
                        if let Some(v) = cell {
                            match merged.get(var) {
                                Some(existing) if !existing.value_eq(v) => continue 'sub,
                                Some(_) => {}
                                None => {
                                    merged.insert(var.clone(), v.clone());
                                }
                            }
                        }
                    }
                    out.push(merged);
                }
            }
            Ok(out)
        }
        Plan::Minus {
            input: inner,
            pattern,
        } => {
            let rows = eval_plan(ds, inner, input)?;
            let minus_rows = eval_pattern(ds, pattern, vec![Row::new()])?;
            // SPARQL MINUS: drop a solution when some minus-solution
            // shares at least one variable and agrees on all shared ones.
            Ok(rows
                .into_iter()
                .filter(|row| {
                    !minus_rows.iter().any(|m| {
                        let mut shared = false;
                        for (k, v) in m {
                            if let Some(existing) = row.get(k) {
                                shared = true;
                                if !existing.value_eq(v) {
                                    return false;
                                }
                            }
                        }
                        shared
                    })
                })
                .collect())
        }
        Plan::Values { vars, rows: table } => {
            let mut out = Vec::new();
            for row in input {
                for vrow in table {
                    let mut merged = row.clone();
                    let mut ok = true;
                    for (var, cell) in vars.iter().zip(vrow) {
                        if let Some(term) = cell {
                            let v = ds.term_to_value(term);
                            match merged.get(var) {
                                Some(existing) if !existing.value_eq(&v) => {
                                    ok = false;
                                    break;
                                }
                                Some(_) => {}
                                None => {
                                    merged.insert(var.clone(), v);
                                }
                            }
                        }
                    }
                    if ok {
                        out.push(merged);
                    }
                }
            }
            Ok(out)
        }
    }
}

/// Match a plain triple pattern against the graph for each input row.
fn scan_triples(
    ds: &mut Dataset,
    t: &TriplePattern,
    input: Vec<Row>,
) -> Result<Vec<Row>, QueryError> {
    let pred = t.path.as_pred().expect("caller checked").clone();
    let mut out = Vec::new();
    for row in input {
        // Resolve each position: bound (Some id / unmatched) or free var.
        let mut positions: [Option<TermId>; 3] = [None, None, None];
        let mut free: [Option<&str>; 3] = [None, None, None];
        // Array constants / computed arrays match by CONTENT, not node
        // identity (thesis §4.1.6): remember them for post-filtering.
        let mut content_checks: Vec<(usize, ssdm_array::NumArray)> = Vec::new();
        let mut dead = false;
        for (i, tp) in [&t.subject, &pred, &t.object].iter().enumerate() {
            match tp {
                TermPattern::Term(term) => match ds.active().dictionary().lookup(term) {
                    Some(id) => positions[i] = Some(id),
                    None => match term {
                        Term::Array(a) => content_checks.push((i, a.clone())),
                        _ => {
                            dead = true;
                            break;
                        }
                    },
                },
                TermPattern::Var(v) => match row.get(v.as_str()) {
                    Some(val) => match value_to_graph_id(ds, val) {
                        Some(id) => positions[i] = Some(id),
                        None => match val {
                            Value::Term(Term::Array(a)) => content_checks.push((i, a.clone())),
                            Value::Proxy(p) => {
                                content_checks.push((i, ds.arrays.resolve(p, ds.strategy)?))
                            }
                            _ => {
                                dead = true;
                                break;
                            }
                        },
                    },
                    None => free[i] = Some(v.as_str()),
                },
            }
        }
        if dead {
            continue;
        }
        let mut matches: Vec<ssdm_rdf::Triple> = ds
            .active()
            .match_pattern(positions[0], positions[1], positions[2])
            .collect();
        if !content_checks.is_empty() {
            let mut kept = Vec::new();
            'triple: for m in matches {
                for (i, target) in &content_checks {
                    let id = [m.s, m.p, m.o][*i];
                    let candidate = match ds.active().term(id).clone() {
                        Term::Array(a) => a,
                        Term::ArrayRef(ext) => {
                            let proxy = ds.arrays.proxy(ext)?;
                            ds.arrays.resolve(&proxy, ds.strategy)?
                        }
                        _ => continue 'triple,
                    };
                    if !candidate.array_eq(target) {
                        continue 'triple;
                    }
                }
                kept.push(m);
            }
            matches = kept;
        }
        for m in matches {
            let mut extended = row.clone();
            let mut ok = true;
            for (i, id) in [m.s, m.p, m.o].into_iter().enumerate() {
                if let Some(v) = free[i] {
                    let val = ds.term_to_value(ds.active().term(id));
                    match extended.get(v) {
                        Some(existing) => {
                            // Same variable twice in this pattern.
                            if !existing.value_eq(&val) {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            extended.insert(v.to_string(), val);
                        }
                    }
                }
            }
            if ok {
                out.push(extended);
            }
        }
    }
    Ok(out)
}

/// Map a bound value back to a graph term id, if it denotes a graph
/// node. Computed values (fresh arrays, closures) match nothing.
pub(crate) fn value_to_graph_id(ds: &Dataset, v: &Value) -> Option<TermId> {
    match v {
        Value::Term(t) => ds.active().dictionary().lookup(t),
        Value::Proxy(p) => {
            // Only a whole-array proxy denotes the stored node.
            let whole = ssdm_storage::ArrayProxy::whole(p.meta().clone());
            if whole.view() == p.view() {
                ds.active()
                    .dictionary()
                    .lookup(&Term::ArrayRef(p.array_id()))
            } else {
                None
            }
        }
        Value::Closure(_) => None,
    }
}

/// Evaluate a GRAPH plan: fixed name retargets the active graph; a
/// variable iterates the visible named graphs, binding it.
fn eval_graph_plan(
    ds: &mut Dataset,
    name: &TermPattern,
    inner: &Plan,
    input: Vec<Row>,
) -> Result<Vec<Row>, QueryError> {
    match name {
        TermPattern::Term(Term::Uri(u)) => {
            ds.active_graph = Some(u.clone());
            eval_plan(ds, inner, input)
        }
        TermPattern::Term(_) => Ok(Vec::new()),
        TermPattern::Var(v) => {
            let names = ds.iterable_graph_names();
            let mut out = Vec::new();
            for n in names {
                let gterm = Value::Term(Term::uri(n.clone()));
                let mut rows = Vec::new();
                for row in &input {
                    match row.get(v) {
                        Some(existing) if !existing.value_eq(&gterm) => {}
                        Some(_) => rows.push(row.clone()),
                        None => {
                            let mut r = row.clone();
                            r.insert(v.clone(), gterm.clone());
                            rows.push(r);
                        }
                    }
                }
                if rows.is_empty() {
                    continue;
                }
                ds.active_graph = Some(n);
                out.extend(eval_plan(ds, inner, rows)?);
            }
            Ok(out)
        }
    }
}

/// The plain unbound-capable variables appearing as whole subscripts
/// (`?a[?i, 2]` → ["i"]). Only bare `Index(Var)` subscripts enumerate.
fn subscript_vars(subs: &[SubscriptExpr]) -> Vec<&str> {
    subs.iter()
        .filter_map(|s| match s {
            SubscriptExpr::Index(Expr::Var(v)) => Some(v.as_str()),
            _ => None,
        })
        .collect()
}

/// Fan one solution out over all valid subscript combinations of a
/// dereference with unbound subscript variables (thesis §4.1.2):
/// `BIND (?a[?i] AS ?v)` with unbound `?i` yields one solution per
/// element, binding both `?i` (1-based) and `?v`.
fn enumerate_subscripts(
    ds: &mut Dataset,
    row: &Row,
    var: &str,
    base: &Expr,
    subscripts: &[SubscriptExpr],
) -> Result<Vec<Row>, QueryError> {
    let Some(basev) = expr::eval_expr(ds, row, base)? else {
        return Ok(vec![row.clone()]);
    };
    let Some(shape) = basev.array_shape() else {
        return Ok(vec![row.clone()]); // not an array: error -> unbound
    };
    if subscripts.len() > shape.len() {
        return Ok(vec![row.clone()]);
    }
    // Identify the enumerating dimensions. The same variable appearing
    // in several positions (e.g. the diagonal `?a[?i, ?i]`) enumerates
    // once; dereference failures skip invalid combinations.
    let mut enumerating: Vec<(usize, String)> = Vec::new();
    for (dim, s) in subscripts.iter().enumerate() {
        if let SubscriptExpr::Index(Expr::Var(v)) = s {
            if !row.contains_key(v) && !enumerating.iter().any(|(_, seen)| seen == v) {
                enumerating.push((dim, v.clone()));
            }
        }
    }
    debug_assert!(!enumerating.is_empty(), "caller checked");
    // Odometer over the enumerating dimensions (1-based subscripts).
    let sizes: Vec<usize> = enumerating.iter().map(|(d, _)| shape[*d]).collect();
    let count: usize = sizes.iter().product();
    let mut out = Vec::with_capacity(count);
    let mut ix = vec![1i64; enumerating.len()];
    for _ in 0..count {
        let mut extended = row.clone();
        for ((_, v), &i) in enumerating.iter().zip(&ix) {
            extended.insert(v.clone(), Value::integer(i));
        }
        if let Some(value) = expr::eval_expr(
            ds,
            &extended,
            &Expr::ArrayDeref {
                base: Box::new(base.clone()),
                subscripts: subscripts.to_vec(),
            },
        )? {
            match extended.get(var) {
                Some(existing) => {
                    if existing.value_eq(&value) {
                        out.push(extended);
                    }
                }
                None => {
                    extended.insert(var.to_string(), value);
                    out.push(extended);
                }
            }
        }
        for d in (0..ix.len()).rev() {
            ix[d] += 1;
            if ix[d] <= sizes[d] as i64 {
                break;
            }
            ix[d] = 1;
        }
    }
    Ok(out)
}

/// Fan a solution out over every result of a parameterized-view call
/// (DAPLEX bag semantics): `BIND (f(args) AS ?v)` yields one solution
/// per row of f's body, binding ?v to the first projected column.
fn bind_view_bag(
    ds: &mut Dataset,
    row: &Row,
    var: &str,
    def: &std::sync::Arc<FunctionDef>,
    args: &[Expr],
) -> Result<Vec<Row>, QueryError> {
    if def.params.len() != args.len() {
        return Err(QueryError::Eval(format!(
            "function {} expects {} argument(s), got {}",
            def.name,
            def.params.len(),
            args.len()
        )));
    }
    let mut initial = Row::new();
    for (p, a) in def.params.iter().zip(args) {
        match expr::eval_expr(ds, row, a)? {
            Some(v) => {
                initial.insert(p.clone(), v);
            }
            // An erroneous argument leaves the BIND unbound.
            None => return Ok(vec![row.clone()]),
        }
    }
    let (_, results) = select_solutions(ds, &def.body, initial)?;
    if results.is_empty() {
        // No solutions: the call errors, the variable stays unbound.
        return Ok(vec![row.clone()]);
    }
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        let Some(v) = r.into_iter().next().flatten() else {
            continue;
        };
        let mut extended = row.clone();
        match extended.get(var) {
            Some(existing) => {
                if existing.value_eq(&v) {
                    out.push(extended);
                }
            }
            None => {
                extended.insert(var.to_string(), v);
                out.push(extended);
            }
        }
    }
    Ok(out)
}
