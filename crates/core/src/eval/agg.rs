//! Grouping and aggregation (thesis §3.5).
//!
//! Solutions are partitioned by the GROUP BY key expressions; aggregate
//! calls inside projection and HAVING expressions evaluate over each
//! partition. With no GROUP BY but aggregates present, all solutions
//! form one implicit group.

use std::collections::HashMap;

use ssdm_array::Num;
use ssdm_rdf::Term;

use crate::ast::{AggKind, Expr, ProjectionItem};
use crate::dataset::{Dataset, QueryError};
use crate::eval::expr::eval_expr;
use crate::eval::Row;
use crate::value::Value;

/// Evaluate a projection with aggregates over grouped solutions.
/// Returns projected rows (HAVING applied).
pub fn grouped_projection(
    ds: &mut Dataset,
    items: &[ProjectionItem],
    group_by: &[Expr],
    having: &Option<Expr>,
    solutions: &[Row],
) -> Result<Vec<Vec<Option<Value>>>, QueryError> {
    // Partition by rendered group key (value_eq-compatible for the
    // term kinds group keys take in practice).
    let mut groups: Vec<(Vec<Option<Value>>, Vec<Row>)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    if group_by.is_empty() {
        groups.push((Vec::new(), solutions.to_vec()));
    } else {
        for row in solutions.iter().cloned() {
            let mut key_vals = Vec::with_capacity(group_by.len());
            for g in group_by {
                key_vals.push(eval_expr(ds, &row, g)?);
            }
            let key_str = key_vals
                .iter()
                .map(|v| v.as_ref().map(|x| x.to_string()).unwrap_or_default())
                .collect::<Vec<_>>()
                .join("\u{1}");
            match index.get(&key_str) {
                Some(&i) => groups[i].1.push(row),
                None => {
                    index.insert(key_str, groups.len());
                    groups.push((key_vals, vec![row]));
                }
            }
        }
        // SPARQL: grouping an empty solution set yields no groups.
    }

    let mut out = Vec::with_capacity(groups.len());
    for (_, rows) in &groups {
        if group_by.is_empty() && rows.is_empty() && !items.iter().any(|i| i.expr.has_aggregate()) {
            continue;
        }
        // Representative row for non-aggregate expressions.
        let representative = rows.first().cloned().unwrap_or_default();
        if let Some(h) = having {
            let keep = eval_agg_expr(ds, h, rows, &representative)?
                .and_then(|v| v.effective_bool())
                .unwrap_or(false);
            if !keep {
                continue;
            }
        }
        let mut cells = Vec::with_capacity(items.len());
        for item in items {
            cells.push(eval_agg_expr(ds, &item.expr, rows, &representative)?);
        }
        out.push(cells);
    }
    Ok(out)
}

/// Evaluate an expression in group context: aggregate sub-expressions
/// fold over the group's rows; everything else sees the representative.
fn eval_agg_expr(
    ds: &mut Dataset,
    expr: &Expr,
    rows: &[Row],
    representative: &Row,
) -> Result<Option<Value>, QueryError> {
    if !expr.has_aggregate() {
        return eval_expr(ds, representative, expr);
    }
    match expr {
        Expr::Aggregate {
            kind,
            distinct,
            arg,
            separator,
        } => compute_aggregate(ds, *kind, *distinct, arg.as_deref(), separator, rows),
        Expr::Not(e) => Ok(eval_agg_expr(ds, e, rows, representative)?
            .and_then(|v| v.effective_bool())
            .map(|b| Value::boolean(!b))),
        Expr::Neg(e) => {
            let v = eval_agg_expr(ds, e, rows, representative)?;
            match v.and_then(|v| v.as_num()) {
                Some(n) => Ok(n.checked_neg().ok().map(Value::number)),
                None => Ok(None),
            }
        }
        Expr::And(a, b) => {
            let av = eval_agg_expr(ds, a, rows, representative)?.and_then(|v| v.effective_bool());
            let bv = eval_agg_expr(ds, b, rows, representative)?.and_then(|v| v.effective_bool());
            Ok(match (av, bv) {
                (Some(false), _) | (_, Some(false)) => Some(Value::boolean(false)),
                (Some(true), Some(true)) => Some(Value::boolean(true)),
                _ => None,
            })
        }
        Expr::Or(a, b) => {
            let av = eval_agg_expr(ds, a, rows, representative)?.and_then(|v| v.effective_bool());
            let bv = eval_agg_expr(ds, b, rows, representative)?.and_then(|v| v.effective_bool());
            Ok(match (av, bv) {
                (Some(true), _) | (_, Some(true)) => Some(Value::boolean(true)),
                (Some(false), Some(false)) => Some(Value::boolean(false)),
                _ => None,
            })
        }
        Expr::Cmp(op, a, b) => {
            let (Some(av), Some(bv)) = (
                eval_agg_expr(ds, a, rows, representative)?,
                eval_agg_expr(ds, b, rows, representative)?,
            ) else {
                return Ok(None);
            };
            crate::eval::expr::compare(ds, *op, av, bv)
        }
        Expr::Arith(op, a, b) => {
            let (Some(av), Some(bv)) = (
                eval_agg_expr(ds, a, rows, representative)?,
                eval_agg_expr(ds, b, rows, representative)?,
            ) else {
                return Ok(None);
            };
            crate::eval::expr::arith(ds, *op, av, bv)
        }
        Expr::Call { name, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                match eval_agg_expr(ds, a, rows, representative)? {
                    Some(v) => vals.push(v),
                    None => return Ok(None),
                }
            }
            crate::eval::expr::apply_function(ds, name, &vals)
        }
        other => eval_expr(ds, representative, other),
    }
}

fn compute_aggregate(
    ds: &mut Dataset,
    kind: AggKind,
    distinct: bool,
    arg: Option<&Expr>,
    separator: &Option<String>,
    rows: &[Row],
) -> Result<Option<Value>, QueryError> {
    // Collect the argument values (bound, post-DISTINCT).
    let mut values: Vec<Value> = Vec::new();
    for row in rows {
        match arg {
            Some(e) => {
                if let Some(v) = eval_expr(ds, row, e)? {
                    values.push(v);
                }
            }
            None => values.push(Value::integer(1)), // COUNT(*)
        }
    }
    if distinct {
        let mut seen = std::collections::HashSet::new();
        values.retain(|v| seen.insert(v.to_string()));
    }
    match kind {
        AggKind::Count => Ok(Some(Value::integer(values.len() as i64))),
        AggKind::Sample => Ok(values.into_iter().next()),
        AggKind::GroupConcat => {
            let sep = separator.as_deref().unwrap_or(" ");
            let parts: Vec<String> = values
                .iter()
                .map(|v| match v {
                    Value::Term(Term::Str(s)) => s.clone(),
                    other => other.to_string(),
                })
                .collect();
            Ok(Some(Value::string(parts.join(sep))))
        }
        AggKind::Sum | AggKind::Avg => {
            if values.is_empty() {
                return Ok(match kind {
                    AggKind::Sum => Some(Value::integer(0)),
                    _ => None,
                });
            }
            // Arrays sum element-wise when every value is an array.
            if values.iter().all(Value::is_array) {
                let mut acc = ds.force_array(&values[0])?;
                for v in &values[1..] {
                    let next = ds.force_array(v)?;
                    match acc.add(&next) {
                        Ok(r) => acc = r,
                        Err(_) => return Ok(None),
                    }
                }
                if kind == AggKind::Avg {
                    return Ok(acc
                        .scalar_op(Num::Int(values.len() as i64), ssdm_array::BinOp::Div)
                        .ok()
                        .map(Value::array));
                }
                return Ok(Some(Value::array(acc)));
            }
            let mut acc = Num::Int(0);
            let n = values.len();
            for v in values {
                let Some(x) = v.as_num() else {
                    return Ok(None);
                };
                match acc.checked_add(x) {
                    Ok(r) => acc = r,
                    Err(_) => return Ok(None),
                }
            }
            Ok(Some(match kind {
                AggKind::Avg => Value::number(Num::Real(acc.as_f64() / n as f64)),
                _ => Value::number(acc),
            }))
        }
        AggKind::Min | AggKind::Max => {
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let take_new = match v.order_cmp(&b) {
                            std::cmp::Ordering::Less => kind == AggKind::Min,
                            std::cmp::Ordering::Greater => kind == AggKind::Max,
                            std::cmp::Ordering::Equal => false,
                        };
                        if take_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best)
        }
    }
}
