//! Expression evaluation with SPARQL error semantics.
//!
//! `eval_expr` returns `Ok(None)` for *expression errors* — type
//! mismatches, unbound variables, out-of-bounds subscripts — which
//! filters treat as false and projections as unbound (thesis §3.6),
//! while infrastructure failures (storage I/O) propagate as `Err`.
//!
//! Array semantics (thesis §4.1): dereference applies lazily to array
//! proxies (only shrinking the pending view), arithmetic operators map
//! element-wise over arrays and broadcast scalars, and comparison of
//! arrays is element-wise with `=`/`!=` comparing whole contents.

use ssdm_array::{BinOp, Num, Subscript};
use ssdm_rdf::Term;

use crate::ast::{ArithOp, CmpOp, Expr, SubscriptExpr};
use crate::dataset::{Dataset, QueryError};
use crate::eval::{builtins, Row};
use crate::functions::Closure;
use crate::value::Value;

/// Evaluate an expression in a row context.
pub fn eval_expr(ds: &mut Dataset, row: &Row, expr: &Expr) -> Result<Option<Value>, QueryError> {
    match expr {
        Expr::Var(v) => Ok(row.get(v).cloned()),
        Expr::Const(t) => Ok(Some(ds.term_to_value(t))),
        Expr::Not(e) => {
            let v = eval_expr(ds, row, e)?;
            Ok(v.and_then(|v| v.effective_bool())
                .map(|b| Value::boolean(!b)))
        }
        Expr::Neg(e) => {
            let Some(v) = eval_expr(ds, row, e)? else {
                return Ok(None);
            };
            negate_value(ds, v)
        }
        Expr::And(a, b) => {
            let av = eval_expr(ds, row, a)?.and_then(|v| v.effective_bool());
            let bv = eval_expr(ds, row, b)?.and_then(|v| v.effective_bool());
            // SPARQL three-valued logic: false dominates errors.
            Ok(match (av, bv) {
                (Some(false), _) | (_, Some(false)) => Some(Value::boolean(false)),
                (Some(true), Some(true)) => Some(Value::boolean(true)),
                _ => None,
            })
        }
        Expr::Or(a, b) => {
            let av = eval_expr(ds, row, a)?.and_then(|v| v.effective_bool());
            let bv = eval_expr(ds, row, b)?.and_then(|v| v.effective_bool());
            Ok(match (av, bv) {
                (Some(true), _) | (_, Some(true)) => Some(Value::boolean(true)),
                (Some(false), Some(false)) => Some(Value::boolean(false)),
                _ => None,
            })
        }
        Expr::Cmp(op, a, b) => {
            let (Some(av), Some(bv)) = (eval_expr(ds, row, a)?, eval_expr(ds, row, b)?) else {
                return Ok(None);
            };
            compare(ds, *op, av, bv)
        }
        Expr::Arith(op, a, b) => {
            let (Some(av), Some(bv)) = (eval_expr(ds, row, a)?, eval_expr(ds, row, b)?) else {
                return Ok(None);
            };
            arith(ds, *op, av, bv)
        }
        Expr::ArrayDeref { base, subscripts } => {
            let Some(basev) = eval_expr(ds, row, base)? else {
                return Ok(None);
            };
            let mut subs = Vec::with_capacity(subscripts.len());
            for s in subscripts {
                match eval_subscript(ds, row, s)? {
                    Some(sub) => subs.push(sub),
                    None => return Ok(None),
                }
            }
            dereference(ds, basev, &subs)
        }
        Expr::Call { name, args } => eval_call(ds, row, name, args),
        Expr::FunctionRef { name, bound } => {
            let mut bound_vals = Vec::with_capacity(bound.len());
            for b in bound {
                match b {
                    Some(e) => match eval_expr(ds, row, e)? {
                        Some(v) => bound_vals.push(Some(v)),
                        None => return Ok(None),
                    },
                    None => bound_vals.push(None),
                }
            }
            if bound_vals.is_empty() {
                Ok(Some(Value::Closure(Closure::reference(name.clone()))))
            } else {
                Ok(Some(Value::Closure(Closure::partial(
                    name.clone(),
                    bound_vals,
                ))))
            }
        }
        Expr::Exists { pattern, negated } => {
            let rows = crate::eval::eval_pattern(ds, pattern, vec![row.clone()])?;
            let exists = !rows.is_empty();
            Ok(Some(Value::boolean(exists != *negated)))
        }
        Expr::InList {
            needle,
            haystack,
            negated,
        } => {
            let Some(n) = eval_expr(ds, row, needle)? else {
                return Ok(None);
            };
            let mut saw_error = false;
            for h in haystack {
                match eval_expr(ds, row, h)? {
                    Some(v) => {
                        let eq = match compare(ds, CmpOp::Eq, n.clone(), v)? {
                            Some(b) => b.effective_bool().unwrap_or(false),
                            None => false,
                        };
                        if eq {
                            return Ok(Some(Value::boolean(!negated)));
                        }
                    }
                    None => saw_error = true,
                }
            }
            if saw_error {
                Ok(None) // SPARQL: IN propagates errors when no match
            } else {
                Ok(Some(Value::boolean(*negated)))
            }
        }
        Expr::Aggregate { .. } => Err(QueryError::Translation(
            "aggregate used outside GROUP BY context".into(),
        )),
    }
}

fn eval_subscript(
    ds: &mut Dataset,
    row: &Row,
    s: &SubscriptExpr,
) -> Result<Option<Subscript>, QueryError> {
    let eval_i64 = |ds: &mut Dataset, e: &Expr| -> Result<Option<i64>, QueryError> {
        Ok(eval_expr(ds, row, e)?
            .and_then(|v| v.as_num())
            .map(|n| n.as_i64()))
    };
    Ok(match s {
        SubscriptExpr::Index(e) => eval_i64(ds, e)?.map(Subscript::Index),
        SubscriptExpr::Range { lo, stride, hi } => {
            let lo = match lo {
                Some(e) => match eval_i64(ds, e)? {
                    Some(v) => Some(v),
                    None => return Ok(None),
                },
                None => None,
            };
            let stride = match stride {
                Some(e) => match eval_i64(ds, e)? {
                    Some(v) => v,
                    None => return Ok(None),
                },
                None => 1,
            };
            let hi = match hi {
                Some(e) => match eval_i64(ds, e)? {
                    Some(v) => Some(v),
                    None => return Ok(None),
                },
                None => None,
            };
            Some(Subscript::Range { lo, stride, hi })
        }
        SubscriptExpr::All => Some(Subscript::All),
    })
}

/// Apply a dereference to an array value. Proxies stay lazy unless the
/// result is a single element (then one chunk fetch yields a scalar).
pub fn dereference(
    ds: &mut Dataset,
    base: Value,
    subs: &[Subscript],
) -> Result<Option<Value>, QueryError> {
    match base {
        Value::Term(Term::Array(a)) => match a.dereference(subs) {
            Ok(d) => {
                if d.ndims() == 0
                    || (d.is_scalar() && subs.iter().all(|s| matches!(s, Subscript::Index(_))))
                {
                    Ok(d.scalar_value().map(Value::number))
                } else {
                    Ok(Some(Value::array(d)))
                }
            }
            Err(_) => Ok(None),
        },
        Value::Proxy(p) => match p.dereference(subs) {
            Ok(d) => {
                if d.element_count() == 1
                    && subs.iter().all(|s| matches!(s, Subscript::Index(_)))
                    && d.ndims() == 0
                {
                    let resolved = ds.arrays.resolve(&d, ds.strategy)?;
                    Ok(resolved.scalar_value().map(Value::number))
                } else {
                    Ok(Some(Value::Proxy(d)))
                }
            }
            Err(_) => Ok(None),
        },
        _ => Ok(None),
    }
}

fn negate_value(ds: &mut Dataset, v: Value) -> Result<Option<Value>, QueryError> {
    if let Some(n) = v.as_num() {
        return Ok(n.checked_neg().ok().map(Value::number));
    }
    if v.is_array() {
        let a = ds.force_array(&v)?;
        return Ok(a.negate().ok().map(Value::array));
    }
    Ok(None)
}

/// Comparison with numeric, string, boolean and array semantics.
pub fn compare(
    ds: &mut Dataset,
    op: CmpOp,
    a: Value,
    b: Value,
) -> Result<Option<Value>, QueryError> {
    use std::cmp::Ordering;
    // Array equality compares full contents (thesis §4.1.6).
    if a.is_array() || b.is_array() {
        return match op {
            CmpOp::Eq | CmpOp::Ne => {
                if !(a.is_array() && b.is_array()) {
                    return Ok(Some(Value::boolean(op == CmpOp::Ne)));
                }
                let fa = ds.force_array(&a)?;
                let fb = ds.force_array(&b)?;
                let eq = fa.array_eq(&fb);
                Ok(Some(Value::boolean(if op == CmpOp::Eq { eq } else { !eq })))
            }
            _ => Ok(None),
        };
    }
    let ord: Option<Ordering> = match (&a, &b) {
        (Value::Term(Term::Number(x)), Value::Term(Term::Number(y))) => x.partial_cmp(y),
        (Value::Term(Term::Str(x)), Value::Term(Term::Str(y))) => Some(x.cmp(y)),
        (Value::Term(Term::Bool(x)), Value::Term(Term::Bool(y))) => Some(x.cmp(y)),
        (Value::Term(Term::Uri(x)), Value::Term(Term::Uri(y))) => Some(x.cmp(y)),
        (
            Value::Term(Term::LangStr { value: x, .. }),
            Value::Term(Term::LangStr { value: y, .. }),
        ) => Some(x.cmp(y)),
        _ => {
            // Cross-kind: only equality/inequality are defined.
            return match op {
                CmpOp::Eq => Ok(Some(Value::boolean(a.value_eq(&b)))),
                CmpOp::Ne => Ok(Some(Value::boolean(!a.value_eq(&b)))),
                _ => Ok(None),
            };
        }
    };
    let Some(ord) = ord else {
        return Ok(None); // NaN comparisons are errors.
    };
    let result = match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    };
    Ok(Some(Value::boolean(result)))
}

/// Arithmetic over scalars and arrays (element-wise, scalar broadcast).
pub fn arith(
    ds: &mut Dataset,
    op: ArithOp,
    a: Value,
    b: Value,
) -> Result<Option<Value>, QueryError> {
    let bin = match op {
        ArithOp::Add => BinOp::Add,
        ArithOp::Sub => BinOp::Sub,
        ArithOp::Mul => BinOp::Mul,
        ArithOp::Div => BinOp::Div,
        ArithOp::Rem => BinOp::Rem,
        ArithOp::Pow => BinOp::Pow,
    };
    match (a.is_array(), b.is_array()) {
        (false, false) => {
            let (Some(x), Some(y)) = (a.as_num(), b.as_num()) else {
                return Ok(None);
            };
            Ok(bin.apply(x, y).ok().map(Value::number))
        }
        (true, false) => {
            let Some(s) = b.as_num() else {
                return Ok(None);
            };
            let arr = ds.force_array(&a)?;
            Ok(arr.scalar_op(s, bin).ok().map(Value::array))
        }
        (false, true) => {
            let Some(s) = a.as_num() else {
                return Ok(None);
            };
            let arr = ds.force_array(&b)?;
            Ok(arr.scalar_op_rev(s, bin).ok().map(Value::array))
        }
        (true, true) => {
            let x = ds.force_array(&a)?;
            let y = ds.force_array(&b)?;
            Ok(x.zip_with(&y, bin).ok().map(Value::array))
        }
    }
}

/// Function-call dispatch: special forms, built-ins, defined views,
/// foreign functions.
fn eval_call(
    ds: &mut Dataset,
    row: &Row,
    name: &str,
    args: &[Expr],
) -> Result<Option<Value>, QueryError> {
    let lname = name.to_ascii_lowercase();
    // Special forms that see unevaluated arguments.
    match lname.as_str() {
        "bound" => {
            let Some(Expr::Var(v)) = args.first() else {
                return Err(QueryError::Translation("BOUND expects a variable".into()));
            };
            return Ok(Some(Value::boolean(row.contains_key(v))));
        }
        "if" => {
            if args.len() != 3 {
                return Err(QueryError::Translation("IF expects 3 arguments".into()));
            }
            let c = eval_expr(ds, row, &args[0])?.and_then(|v| v.effective_bool());
            return match c {
                Some(true) => eval_expr(ds, row, &args[1]),
                Some(false) => eval_expr(ds, row, &args[2]),
                None => Ok(None),
            };
        }
        "coalesce" => {
            for a in args {
                if let Some(v) = eval_expr(ds, row, a)? {
                    return Ok(Some(v));
                }
            }
            return Ok(None);
        }
        _ => {}
    }
    // Evaluate arguments strictly.
    let mut vals = Vec::with_capacity(args.len());
    for a in args {
        match eval_expr(ds, row, a)? {
            Some(v) => vals.push(v),
            None => return Ok(None),
        }
    }
    apply_function(ds, name, &vals)
}

/// Call a function by name with evaluated arguments (also used by the
/// second-order builtins to apply closures).
pub fn apply_function(
    ds: &mut Dataset,
    name: &str,
    args: &[Value],
) -> Result<Option<Value>, QueryError> {
    let lname = name.to_ascii_lowercase();
    if let Some(result) = builtins::call_builtin(ds, &lname, args) {
        return result;
    }
    if let Some(def) = ds.registry.lookup_defined(name) {
        if def.params.len() != args.len() {
            return Err(QueryError::Eval(format!(
                "function {name} expects {} argument(s), got {}",
                def.params.len(),
                args.len()
            )));
        }
        let mut initial = Row::new();
        for (p, v) in def.params.iter().zip(args) {
            initial.insert(p.clone(), v.clone());
        }
        let (_, rows) = crate::eval::select_solutions(ds, &def.body, initial)?;
        // DAPLEX-style scalar context: the first column of the first
        // solution is the call's value; no solutions is an error value.
        return Ok(rows
            .into_iter()
            .next()
            .and_then(|r| r.into_iter().next())
            .flatten());
    }
    if let Some(f) = ds.registry.lookup_foreign(name) {
        if f.arity != args.len() {
            return Err(QueryError::Eval(format!(
                "foreign function {name} expects {} argument(s), got {}",
                f.arity,
                args.len()
            )));
        }
        let imp = f.imp.clone();
        return match imp(args) {
            Ok(v) => Ok(Some(v)),
            Err(QueryError::Eval(_)) => Ok(None),
            Err(other) => Err(other),
        };
    }
    Err(QueryError::Translation(format!(
        "unknown function '{name}'"
    )))
}

/// Apply a closure value to arguments.
pub fn apply_closure(
    ds: &mut Dataset,
    c: &Closure,
    args: &[Value],
) -> Result<Option<Value>, QueryError> {
    let full = c.complete_args(args)?;
    apply_function(ds, c.name(), &full)
}

/// Convenience used by builtins: coerce a value to a scalar number.
pub fn want_num(v: &Value) -> Option<Num> {
    v.as_num()
}
