//! Built-in functions: the SPARQL 1.1 scalar library plus the
//! SciSPARQL array functions (thesis §4.1.3) and second-order array
//! primitives (§4.3.1).
//!
//! Array aggregates over *proxies* are delegated to the storage layer's
//! AAPR operator, so `array_sum(?big)` streams chunks instead of
//! materializing the array — the server-side aggregation behaviour the
//! paper highlights.

use ssdm_array::{AggregateOp, Num, NumArray};
use ssdm_rdf::Term;

use crate::dataset::{Dataset, QueryError};
use crate::eval::expr::apply_closure;
use crate::value::Value;

type EvalResult = Result<Option<Value>, QueryError>;

/// Dispatch a builtin by (lowercased) name. `None` means "not a
/// builtin" and the caller falls through to UDFs / foreign functions.
pub fn call_builtin(ds: &mut Dataset, name: &str, args: &[Value]) -> Option<EvalResult> {
    Some(match name {
        // --- strings ---------------------------------------------------
        "str" => str_fn(args),
        "strlen" => with_str(args, |s| Some(Value::integer(s.chars().count() as i64))),
        "ucase" => with_str(args, |s| Some(Value::string(s.to_uppercase()))),
        "lcase" => with_str(args, |s| Some(Value::string(s.to_lowercase()))),
        "contains" => with_2str(args, |a, b| Some(Value::boolean(a.contains(b)))),
        "strstarts" => with_2str(args, |a, b| Some(Value::boolean(a.starts_with(b)))),
        "strends" => with_2str(args, |a, b| Some(Value::boolean(a.ends_with(b)))),
        "substr" => substr(args),
        "concat" => {
            let mut out = String::new();
            for a in args {
                match string_of(a) {
                    Some(s) => out.push_str(&s),
                    None => return Some(Ok(None)),
                }
            }
            Ok(Some(Value::string(out)))
        }
        "replace" => {
            let (Some(s), Some(from), Some(to)) = (
                args.first().and_then(|v| str_ref(v)),
                args.get(1).and_then(|v| str_ref(v)),
                args.get(2).and_then(|v| str_ref(v)),
            ) else {
                return Some(Ok(None));
            };
            Ok(Some(Value::string(s.replace(from, to))))
        }
        "regex" => {
            // A lightweight regex: supports '^'/'$' anchors and '.' as a
            // wildcard; everything else matches literally (substring
            // search when unanchored). Documented in the README.
            let (Some(s), Some(p)) = (
                args.first().and_then(|v| str_ref(v)),
                args.get(1).and_then(|v| str_ref(v)),
            ) else {
                return Some(Ok(None));
            };
            Ok(Some(Value::boolean(mini_regex(s, p))))
        }
        // --- term inspection --------------------------------------------
        "isuri" | "isiri" => term_test(args, |t| matches!(t, Term::Uri(_))),
        "isblank" => term_test(args, |t| matches!(t, Term::Blank(_))),
        "isliteral" => term_test(args, |t| t.is_literal()),
        "isnumeric" => term_test(args, |t| matches!(t, Term::Number(_))),
        "isarray" => Ok(Some(Value::boolean(
            args.first().map(|v| v.is_array()).unwrap_or(false),
        ))),
        "datatype" => {
            let Some(Value::Term(t)) = args.first() else {
                return Some(Ok(None));
            };
            let dt = match t {
                Term::Str(_) => "http://www.w3.org/2001/XMLSchema#string",
                Term::Number(Num::Int(_)) => "http://www.w3.org/2001/XMLSchema#integer",
                Term::Number(Num::Real(_)) => "http://www.w3.org/2001/XMLSchema#double",
                Term::Bool(_) => "http://www.w3.org/2001/XMLSchema#boolean",
                Term::Typed { datatype, .. } => datatype.as_str(),
                _ => return Some(Ok(None)),
            };
            Ok(Some(Value::Term(Term::uri(dt))))
        }
        "lang" => {
            let Some(Value::Term(t)) = args.first() else {
                return Some(Ok(None));
            };
            match t {
                Term::LangStr { lang, .. } => Ok(Some(Value::string(lang.clone()))),
                Term::Str(_) => Ok(Some(Value::string(""))),
                _ => Ok(None),
            }
        }
        // --- numeric scalars ---------------------------------------------
        "abs" => num_fn(
            ds,
            args,
            |n| Some(n.abs()),
            |a| a.map(&|x| Ok(x.abs())).ok(),
        ),
        "round" => num_fn(
            ds,
            args,
            |n| Some(Num::Real(n.as_f64().round())),
            |a| a.map(&|x| Ok(Num::Real(x.as_f64().round()))).ok(),
        ),
        "floor" => num_fn(
            ds,
            args,
            |n| Some(Num::Real(n.as_f64().floor())),
            |a| a.map(&|x| Ok(Num::Real(x.as_f64().floor()))).ok(),
        ),
        "ceil" => num_fn(
            ds,
            args,
            |n| Some(Num::Real(n.as_f64().ceil())),
            |a| a.map(&|x| Ok(Num::Real(x.as_f64().ceil()))).ok(),
        ),
        "mod" => {
            let (Some(a), Some(b)) = (
                args.first().and_then(Value::as_num),
                args.get(1).and_then(Value::as_num),
            ) else {
                return Some(Ok(None));
            };
            Ok(a.checked_rem(b).ok().map(Value::number))
        }
        // --- array introspection -----------------------------------------
        "array_rank" | "arank" => {
            let Some(shape) = args.first().and_then(Value::array_shape) else {
                return Some(Ok(None));
            };
            Ok(Some(Value::integer(shape.len() as i64)))
        }
        "array_dims" | "adims" => {
            let Some(shape) = args.first().and_then(Value::array_shape) else {
                return Some(Ok(None));
            };
            Ok(Some(Value::array(NumArray::from_i64(
                shape.into_iter().map(|s| s as i64).collect(),
            ))))
        }
        "array_dim" | "adim" => {
            let (Some(shape), Some(i)) = (
                args.first().and_then(Value::array_shape),
                args.get(1).and_then(Value::as_num),
            ) else {
                return Some(Ok(None));
            };
            let i = i.as_i64();
            if i < 1 || i as usize > shape.len() {
                return Some(Ok(None));
            }
            Ok(Some(Value::integer(shape[(i - 1) as usize] as i64)))
        }
        // --- array aggregates (AAPR-aware) --------------------------------
        "array_sum" | "asum" => array_aggregate(ds, args, AggregateOp::Sum),
        "array_avg" | "aavg" => array_aggregate(ds, args, AggregateOp::Avg),
        "array_min" | "amin" => array_aggregate(ds, args, AggregateOp::Min),
        "array_max" | "amax" => array_aggregate(ds, args, AggregateOp::Max),
        "array_prod" | "aprod" => array_aggregate(ds, args, AggregateOp::Prod),
        "array_count" | "acount" => array_aggregate(ds, args, AggregateOp::Count),
        // --- filtered aggregates (zone-map-aware) --------------------------
        "array_sum_range" => array_aggregate_range(ds, args, AggregateOp::Sum),
        "array_avg_range" => array_aggregate_range(ds, args, AggregateOp::Avg),
        "array_min_range" => array_aggregate_range(ds, args, AggregateOp::Min),
        "array_max_range" => array_aggregate_range(ds, args, AggregateOp::Max),
        "array_count_range" => array_aggregate_range(ds, args, AggregateOp::Count),
        "array_contains" | "acontains" => array_contains(ds, args),
        // --- array constructors / transforms -------------------------------
        "array" => {
            let mut nums = Vec::with_capacity(args.len());
            for a in args {
                match a.as_num() {
                    Some(n) => nums.push(n),
                    None => return Some(Ok(None)),
                }
            }
            Ok(Some(Value::array(
                NumArray::from_data(ssdm_array::ArrayData::from_nums(&nums), &[nums.len()])
                    .expect("shape matches"),
            )))
        }
        "array_transpose" | "transpose" => {
            let Some(v) = args.first() else {
                return Some(Ok(None));
            };
            match v {
                Value::Term(Term::Array(a)) => Ok(Some(Value::array(a.transpose()))),
                Value::Proxy(p) => Ok(Some(Value::Proxy(p.transpose()))),
                _ => Ok(None),
            }
        }
        "array_reshape" | "reshape" => {
            let (Some(av), Some(shape_v)) = (args.first(), args.get(1)) else {
                return Some(Ok(None));
            };
            if !(av.is_array() && shape_v.is_array()) {
                return Some(Ok(None));
            }
            let (a, shape_arr) = match (ds.force_array(av), ds.force_array(shape_v)) {
                (Ok(x), Ok(y)) => (x, y),
                _ => return Some(Ok(None)),
            };
            let shape: Vec<usize> = shape_arr
                .elements()
                .iter()
                .map(|n| n.as_i64().max(0) as usize)
                .collect();
            if shape.iter().product::<usize>() != a.element_count() {
                return Some(Ok(None));
            }
            let dense = a.materialize();
            let reshaped = NumArray::from_parts(
                dense.data().clone(),
                ssdm_array::ArrayView::contiguous(&shape),
            );
            Ok(Some(Value::array(reshaped)))
        }
        "matmul" => {
            let (Some(a), Some(b)) = (args.first(), args.get(1)) else {
                return Some(Ok(None));
            };
            if !(a.is_array() && b.is_array()) {
                return Some(Ok(None));
            }
            let (fa, fb) = match (ds.force_array(a), ds.force_array(b)) {
                (Ok(x), Ok(y)) => (x, y),
                _ => return Some(Ok(None)),
            };
            Ok(fa.matmul(&fb).ok().map(Value::array))
        }
        // --- second-order array functions (thesis §4.3.1) ------------------
        "array_map" | "map" => array_map(ds, args),
        "array_condense" | "condense" => array_condense(ds, args),
        "array_build" => array_build(ds, args),
        "apply" => {
            let Some(Value::Closure(c)) = args.first() else {
                return Some(Err(QueryError::Eval(
                    "apply: first argument must be a function".into(),
                )));
            };
            let c = c.clone();
            apply_closure(ds, &c, &args[1..])
        }
        _ => return None,
    })
}

// -----------------------------------------------------------------------
// Helpers
// -----------------------------------------------------------------------

fn str_ref(v: &Value) -> Option<&str> {
    match v {
        Value::Term(Term::Str(s)) => Some(s),
        Value::Term(Term::LangStr { value, .. }) => Some(value),
        _ => None,
    }
}

fn string_of(v: &Value) -> Option<String> {
    match v {
        Value::Term(Term::Str(s)) => Some(s.clone()),
        Value::Term(Term::LangStr { value, .. }) => Some(value.clone()),
        Value::Term(Term::Number(n)) => Some(n.to_string()),
        Value::Term(Term::Bool(b)) => Some(b.to_string()),
        Value::Term(Term::Uri(u)) => Some(u.clone()),
        _ => None,
    }
}

fn str_fn(args: &[Value]) -> EvalResult {
    let Some(v) = args.first() else {
        return Ok(None);
    };
    Ok(string_of(v).map(Value::string))
}

fn with_str(args: &[Value], f: impl Fn(&str) -> Option<Value>) -> EvalResult {
    Ok(args.first().and_then(|v| str_ref(v)).and_then(f))
}

fn with_2str(args: &[Value], f: impl Fn(&str, &str) -> Option<Value>) -> EvalResult {
    let (Some(a), Some(b)) = (
        args.first().and_then(|v| str_ref(v)),
        args.get(1).and_then(|v| str_ref(v)),
    ) else {
        return Ok(None);
    };
    Ok(f(a, b))
}

fn substr(args: &[Value]) -> EvalResult {
    let (Some(s), Some(start)) = (
        args.first().and_then(|v| str_ref(v)),
        args.get(1).and_then(Value::as_num),
    ) else {
        return Ok(None);
    };
    let chars: Vec<char> = s.chars().collect();
    let start = (start.as_i64() - 1).max(0) as usize; // SPARQL is 1-based
    let len = args
        .get(2)
        .and_then(Value::as_num)
        .map(|n| n.as_i64().max(0) as usize)
        .unwrap_or(usize::MAX);
    let out: String = chars.into_iter().skip(start).take(len).collect();
    Ok(Some(Value::string(out)))
}

fn term_test(args: &[Value], f: impl Fn(&Term) -> bool) -> EvalResult {
    let Some(v) = args.first() else {
        return Ok(None);
    };
    Ok(Some(Value::boolean(match v {
        Value::Term(t) => f(t),
        _ => false,
    })))
}

/// A scalar-or-elementwise numeric function.
fn num_fn(
    ds: &mut Dataset,
    args: &[Value],
    scalar: impl Fn(Num) -> Option<Num>,
    arrayf: impl Fn(&NumArray) -> Option<NumArray>,
) -> EvalResult {
    let Some(v) = args.first() else {
        return Ok(None);
    };
    if let Some(n) = v.as_num() {
        return Ok(scalar(n).map(Value::number));
    }
    if v.is_array() {
        let a = ds.force_array(v)?;
        return Ok(arrayf(&a).map(Value::array));
    }
    Ok(None)
}

/// AAPR-aware array aggregation: proxies stream through the storage
/// layer; resident arrays fold in memory.
fn array_aggregate(ds: &mut Dataset, args: &[Value], op: AggregateOp) -> EvalResult {
    let Some(v) = args.first() else {
        return Ok(None);
    };
    match v {
        Value::Term(Term::Array(a)) => Ok(a.aggregate(op).ok().map(Value::number)),
        Value::Proxy(p) => {
            let strategy = ds.strategy;
            let parallel = ds.parallel;
            match ds
                .arrays
                .resolve_aggregate_parallel(p, op, strategy, parallel)
            {
                Ok(n) => Ok(Some(Value::number(n))),
                Err(ssdm_storage::StorageError::Backend(_)) => Ok(None),
                Err(e) => Err(e.into()),
            }
        }
        _ => Ok(None),
    }
}

/// `array_*_range(A, lo, hi)`: aggregate only the elements in the
/// inclusive value range `[lo, hi]`. Proxies stream through the
/// storage layer's *filtered* AAPR, which consults per-chunk summary
/// zone maps to skip chunks that provably hold no qualifying element;
/// resident arrays filter in memory with identical semantics. An empty
/// filtered view is unbound, except `Count` (0) and `Sum` (0).
fn array_aggregate_range(ds: &mut Dataset, args: &[Value], op: AggregateOp) -> EvalResult {
    let (Some(v), Some(lo), Some(hi)) = (
        args.first(),
        args.get(1).and_then(Value::as_num),
        args.get(2).and_then(Value::as_num),
    ) else {
        return Ok(None);
    };
    let pred = ssdm_storage::ValuePredicate::Range { lo, hi };
    match v {
        Value::Term(Term::Array(a)) => {
            let matched: Vec<Num> = a
                .elements()
                .into_iter()
                .filter(|n| pred.matches(*n))
                .collect();
            Ok(resident_filtered_aggregate(&matched, op).map(Value::number))
        }
        Value::Proxy(p) => {
            let strategy = ds.strategy;
            let parallel = ds.parallel;
            match ds
                .arrays
                .resolve_aggregate_filtered_parallel(p, &pred, op, strategy, parallel)
            {
                Ok(n) => Ok(Some(Value::number(n))),
                Err(ssdm_storage::StorageError::Backend(_)) => Ok(None),
                Err(e) => Err(e.into()),
            }
        }
        _ => Ok(None),
    }
}

/// Fold an in-memory filtered view with the same empty-view semantics
/// as the storage layer's filtered AAPR.
fn resident_filtered_aggregate(matched: &[Num], op: AggregateOp) -> Option<Num> {
    if matched.is_empty() {
        return match op {
            AggregateOp::Count | AggregateOp::Sum => Some(Num::Int(0)),
            AggregateOp::Prod => Some(Num::Int(1)),
            _ => None,
        };
    }
    if op == AggregateOp::Count {
        return Some(Num::Int(matched.len() as i64));
    }
    NumArray::from_data(ssdm_array::ArrayData::from_nums(matched), &[matched.len()])
        .ok()?
        .aggregate(op)
        .ok()
}

/// `array_contains(A, v, ...)`: whether any element of `A` equals one
/// of the given values. Proxies use the storage layer's existence scan
/// (zone maps prune chunks, the scan stops at the first match).
fn array_contains(ds: &mut Dataset, args: &[Value]) -> EvalResult {
    let Some(v) = args.first() else {
        return Ok(None);
    };
    let mut needles = Vec::with_capacity(args.len().saturating_sub(1));
    for a in &args[1..] {
        match a.as_num() {
            Some(n) => needles.push(n),
            None => return Ok(None),
        }
    }
    if needles.is_empty() {
        return Ok(None);
    }
    let pred = ssdm_storage::ValuePredicate::In(needles);
    match v {
        Value::Term(Term::Array(a)) => Ok(Some(Value::boolean(
            a.elements().into_iter().any(|n| pred.matches(n)),
        ))),
        Value::Proxy(p) => {
            let strategy = ds.strategy;
            match ds.arrays.resolve_exists(p, &pred, strategy) {
                Ok(found) => Ok(Some(Value::boolean(found))),
                Err(ssdm_storage::StorageError::Backend(_)) => Ok(None),
                Err(e) => Err(e.into()),
            }
        }
        _ => Ok(None),
    }
}

/// `array_map(f, A [, B])`.
fn array_map(ds: &mut Dataset, args: &[Value]) -> EvalResult {
    let Some(Value::Closure(c)) = args.first() else {
        return Err(QueryError::Eval(
            "array_map: first argument must be a function".into(),
        ));
    };
    let c = c.clone();
    match args.len() {
        2 => {
            let a = ds.force_array(&args[1])?;
            let elems = a.elements();
            let mut out = Vec::with_capacity(elems.len());
            for x in elems {
                match apply_closure(ds, &c, &[Value::number(x)])? {
                    Some(v) => match v.as_num() {
                        Some(n) => out.push(n),
                        None => return Ok(None),
                    },
                    None => return Ok(None),
                }
            }
            Ok(Some(Value::array(
                NumArray::from_data(ssdm_array::ArrayData::from_nums(&out), &a.shape())
                    .expect("same element count"),
            )))
        }
        3 => {
            let a = ds.force_array(&args[1])?;
            let b = ds.force_array(&args[2])?;
            if a.shape() != b.shape() {
                return Ok(None);
            }
            let xs = a.elements();
            let ys = b.elements();
            let mut out = Vec::with_capacity(xs.len());
            for (x, y) in xs.into_iter().zip(ys) {
                match apply_closure(ds, &c, &[Value::number(x), Value::number(y)])? {
                    Some(v) => match v.as_num() {
                        Some(n) => out.push(n),
                        None => return Ok(None),
                    },
                    None => return Ok(None),
                }
            }
            Ok(Some(Value::array(
                NumArray::from_data(ssdm_array::ArrayData::from_nums(&out), &a.shape())
                    .expect("same element count"),
            )))
        }
        n => Err(QueryError::Eval(format!(
            "array_map expects 2 or 3 arguments, got {n}"
        ))),
    }
}

/// `array_condense(f, A)`: fold all elements with a binary closure.
fn array_condense(ds: &mut Dataset, args: &[Value]) -> EvalResult {
    let Some(Value::Closure(c)) = args.first() else {
        return Err(QueryError::Eval(
            "array_condense: first argument must be a function".into(),
        ));
    };
    let c = c.clone();
    let Some(av) = args.get(1) else {
        return Ok(None);
    };
    let a = ds.force_array(av)?;
    let mut acc: Option<Num> = None;
    for x in a.elements() {
        acc = Some(match acc {
            None => x,
            Some(prev) => match apply_closure(ds, &c, &[Value::number(prev), Value::number(x)])? {
                Some(v) => match v.as_num() {
                    Some(n) => n,
                    None => return Ok(None),
                },
                None => return Ok(None),
            },
        });
    }
    Ok(acc.map(Value::number))
}

/// `array_build(shape, f)`: shape is a 1-D array; `f` receives one
/// 1-based subscript per dimension.
fn array_build(ds: &mut Dataset, args: &[Value]) -> EvalResult {
    let (Some(shape_v), Some(Value::Closure(c))) = (args.first(), args.get(1)) else {
        return Err(QueryError::Eval(
            "array_build expects (shape-array, function)".into(),
        ));
    };
    let c = c.clone();
    let shape_arr = ds.force_array(shape_v)?;
    let shape: Vec<usize> = shape_arr
        .elements()
        .iter()
        .map(|n| n.as_i64().max(0) as usize)
        .collect();
    let count: usize = shape.iter().product();
    if count > 10_000_000 {
        return Err(QueryError::Eval("array_build: shape too large".into()));
    }
    let mut values = Vec::with_capacity(count);
    let mut ix: Vec<i64> = vec![1; shape.len()];
    for _ in 0..count {
        let args: Vec<Value> = ix.iter().map(|&i| Value::integer(i)).collect();
        match apply_closure(ds, &c, &args)? {
            Some(v) => match v.as_num() {
                Some(n) => values.push(n),
                None => return Ok(None),
            },
            None => return Ok(None),
        }
        for d in (0..shape.len()).rev() {
            ix[d] += 1;
            if ix[d] <= shape[d] as i64 {
                break;
            }
            ix[d] = 1;
        }
    }
    Ok(Some(Value::array(
        NumArray::from_data(ssdm_array::ArrayData::from_nums(&values), &shape)
            .expect("count matches shape"),
    )))
}

/// Minimal regex: `^`/`$` anchors, `.` wildcard, literal otherwise.
fn mini_regex(s: &str, pattern: &str) -> bool {
    let (anchored_start, p) = match pattern.strip_prefix('^') {
        Some(rest) => (true, rest),
        None => (false, pattern),
    };
    let (anchored_end, p) = match p.strip_suffix('$') {
        Some(rest) => (true, rest),
        None => (false, p),
    };
    let pat: Vec<char> = p.chars().collect();
    let text: Vec<char> = s.chars().collect();
    let match_at = |start: usize| -> bool {
        if start + pat.len() > text.len() {
            return false;
        }
        pat.iter()
            .zip(&text[start..])
            .all(|(pc, tc)| *pc == '.' || pc == tc)
    };
    if anchored_start && anchored_end {
        pat.len() == text.len() && match_at(0)
    } else if anchored_start {
        match_at(0)
    } else if anchored_end {
        text.len() >= pat.len() && match_at(text.len() - pat.len())
    } else {
        if pat.is_empty() {
            return true;
        }
        (0..=text.len().saturating_sub(pat.len())).any(match_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::expr::apply_function;

    #[test]
    fn mini_regex_semantics() {
        assert!(mini_regex("hello world", "lo w"));
        assert!(mini_regex("hello", "^hel"));
        assert!(mini_regex("hello", "llo$"));
        assert!(mini_regex("hello", "^h.llo$"));
        assert!(!mini_regex("hello", "^ello"));
        assert!(!mini_regex("hello", "olleh"));
        assert!(mini_regex("x", ""));
    }

    #[test]
    fn apply_function_unknown_errors() {
        let mut ds = Dataset::in_memory();
        let e = apply_function(&mut ds, "no_such_fn", &[]).unwrap_err();
        assert!(matches!(e, QueryError::Translation(_)));
    }
}
