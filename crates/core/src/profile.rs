//! The per-query profiler behind `EXPLAIN ANALYZE` and the slow-query
//! log.
//!
//! A [`QueryProfiler`] is attached to a [`Dataset`] for the duration of
//! one statement. It records:
//!
//! * **phase timings** — parse, rewrite (pattern → algebra), plan
//!   (optimize) and exec, in microseconds;
//! * **per-operator rows** — one row per evaluated plan node (plus the
//!   synthetic `Project` / `OrderBy` operators that run outside the
//!   plan tree), each carrying inclusive wall time, input/output row
//!   counts, and *exclusive* storage counters (back-end statements,
//!   chunks and bytes fetched, cache hits/misses, kernel elements,
//!   fetch fallbacks).
//!
//! Counters are attributed by snapshot deltas of the dataset's own
//! backend statistics ([`CounterSnapshot`]): an operator's exclusive
//! numbers are its inclusive delta minus its children's inclusive
//! deltas, so summing the `operator:` rows of a profile reproduces the
//! `totals:` line — and the totals are exactly the `IoStats`/cache
//! movement of the query. That reconciliation is tested, which is what
//! keeps the profile honest as operators evolve.
//!
//! [`Dataset`]: crate::dataset::Dataset

use std::time::{Duration, Instant};

/// A point-in-time copy of every counter the profiler attributes to
/// operators. Taken from the dataset's backend at operator entry/exit.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Back-end statements issued (`IoStats::statements`).
    pub statements: u64,
    /// Chunks returned by the back-end (`IoStats::chunks_returned`).
    pub chunks_fetched: u64,
    /// Bytes returned by the back-end (`IoStats::bytes_returned`).
    pub bytes_fetched: u64,
    /// Chunk-cache hits (`CacheStats::hits`).
    pub cache_hits: u64,
    /// Chunk-cache misses (`CacheStats::misses`).
    pub cache_misses: u64,
    /// Elements processed by typed compute kernels (process-global).
    pub kernel_elements: u64,
    /// Batched-fetch fallbacks to per-chunk retrieval (APR cumulative).
    pub fallbacks: u64,
    /// Chunks skipped by zone-map predicate pruning (APR cumulative).
    pub chunks_skipped: u64,
    /// `SCC1` codec frames decoded (APR cumulative).
    pub chunks_decoded: u64,
    /// Uncompressed bytes produced by codec decodes (APR cumulative).
    pub bytes_decoded: u64,
}

impl CounterSnapshot {
    /// Field-wise saturating difference `self - earlier`.
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            statements: self.statements.saturating_sub(earlier.statements),
            chunks_fetched: self.chunks_fetched.saturating_sub(earlier.chunks_fetched),
            bytes_fetched: self.bytes_fetched.saturating_sub(earlier.bytes_fetched),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            kernel_elements: self.kernel_elements.saturating_sub(earlier.kernel_elements),
            fallbacks: self.fallbacks.saturating_sub(earlier.fallbacks),
            chunks_skipped: self.chunks_skipped.saturating_sub(earlier.chunks_skipped),
            chunks_decoded: self.chunks_decoded.saturating_sub(earlier.chunks_decoded),
            bytes_decoded: self.bytes_decoded.saturating_sub(earlier.bytes_decoded),
        }
    }

    fn add(&mut self, other: &CounterSnapshot) {
        self.statements += other.statements;
        self.chunks_fetched += other.chunks_fetched;
        self.bytes_fetched += other.bytes_fetched;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.kernel_elements += other.kernel_elements;
        self.fallbacks += other.fallbacks;
        self.chunks_skipped += other.chunks_skipped;
        self.chunks_decoded += other.chunks_decoded;
        self.bytes_decoded += other.bytes_decoded;
    }

    fn render_fields(&self) -> String {
        format!(
            "statements={} chunks={} bytes={} cache_hits={} cache_misses={} kernel_elems={} fallbacks={} skipped={} decoded={} bytes_decoded={}",
            self.statements,
            self.chunks_fetched,
            self.bytes_fetched,
            self.cache_hits,
            self.cache_misses,
            self.kernel_elements,
            self.fallbacks,
            self.chunks_skipped,
            self.chunks_decoded,
            self.bytes_decoded
        )
    }
}

/// One profiled operator: a plan node (or synthetic post-plan stage).
#[derive(Debug, Clone)]
pub struct OpRow {
    /// Operator label, as in `EXPLAIN` (see `algebra::node_label`).
    pub label: String,
    /// Nesting depth at entry (for tree-shaped indentation).
    pub depth: usize,
    pub rows_in: u64,
    pub rows_out: u64,
    /// Inclusive wall time (covers children).
    pub micros: u64,
    /// Exclusive counters: this operator's work minus its children's.
    pub counters: CounterSnapshot,
    /// Planner cardinality estimate for this operator's total output
    /// (per-row estimate × input rows), when one was computed.
    pub est: Option<f64>,
    /// The scan's constant predicate, when it has one — the key the
    /// calibration table learns correction factors under.
    pub predicate: Option<String>,
}

impl OpRow {
    /// Q-error of this operator: `max(est/actual, actual/est)` with a
    /// half-row floor on both sides, `None` when no estimate exists.
    pub fn q_error(&self) -> Option<f64> {
        let est = self.est?.max(0.5);
        let actual = (self.rows_out as f64).max(0.5);
        Some((est / actual).max(actual / est))
    }
}

struct Frame {
    /// Index of this operator's row in `ops`.
    row: usize,
    start: Instant,
    entry: CounterSnapshot,
    /// Sum of completed children's inclusive deltas.
    children: CounterSnapshot,
}

/// Collects one query's phases and operator rows. See the module docs.
pub struct QueryProfiler {
    /// Accumulated phase timings in microseconds, in first-seen order.
    phases: Vec<(&'static str, u64)>,
    ops: Vec<OpRow>,
    stack: Vec<Frame>,
    /// Mid-query re-optimizations triggered by the adaptive executor.
    reopts: u64,
}

impl QueryProfiler {
    /// A fresh profiler; `parse_micros` is the already-measured parse
    /// phase (zero when profiling a pre-parsed statement).
    pub fn new(parse_micros: u64) -> Self {
        QueryProfiler {
            phases: vec![("parse", parse_micros)],
            ops: Vec::new(),
            stack: Vec::new(),
            reopts: 0,
        }
    }

    /// Record one mid-query re-optimization.
    pub fn note_reopt(&mut self) {
        self.reopts += 1;
    }

    /// Mid-query re-optimizations recorded so far.
    pub fn reopts(&self) -> u64 {
        self.reopts
    }

    /// Add time to a named phase (accumulates across calls — a query
    /// with subpatterns rewrites and plans more than once).
    pub fn phase(&mut self, name: &'static str, elapsed: Duration) {
        let micros = elapsed.as_micros() as u64;
        match self.phases.iter_mut().find(|(n, _)| *n == name) {
            Some((_, total)) => *total += micros,
            None => self.phases.push((name, micros)),
        }
    }

    /// Open an operator frame. Pair with [`exit`](Self::exit); frames
    /// left open by an error path are simply never rendered. `est` is
    /// the planner's total-output estimate for the operator and
    /// `predicate` the scan's constant predicate (both feed the
    /// calibration table at query end).
    pub fn enter(
        &mut self,
        label: String,
        snapshot: CounterSnapshot,
        rows_in: u64,
        est: Option<f64>,
        predicate: Option<String>,
    ) {
        let row = self.ops.len();
        self.ops.push(OpRow {
            label,
            depth: self.stack.len(),
            rows_in,
            rows_out: 0,
            micros: 0,
            counters: CounterSnapshot::default(),
            est,
            predicate,
        });
        self.stack.push(Frame {
            row,
            start: Instant::now(),
            entry: snapshot,
            children: CounterSnapshot::default(),
        });
    }

    /// Close the innermost operator frame.
    pub fn exit(&mut self, snapshot: CounterSnapshot, rows_out: u64) {
        let Some(frame) = self.stack.pop() else {
            debug_assert!(false, "profiler exit without enter");
            return;
        };
        let inclusive = snapshot.since(&frame.entry);
        let row = &mut self.ops[frame.row];
        row.rows_out = rows_out;
        row.micros = frame.start.elapsed().as_micros() as u64;
        row.counters = inclusive.since(&frame.children);
        if let Some(parent) = self.stack.last_mut() {
            parent.children.add(&inclusive);
        }
    }

    /// The recorded operator rows (pre-order).
    pub fn ops(&self) -> &[OpRow] {
        &self.ops
    }

    /// Render the profile. `exec_total` is the wall time of execution
    /// (everything after parse); `totals` is the whole-query counter
    /// delta the per-operator rows must sum to.
    pub fn render(&self, exec_total: Duration, totals: &CounterSnapshot) -> String {
        let mut out = String::from("EXPLAIN ANALYZE\n");
        let exec_micros = exec_total.as_micros() as u64;
        let planned: u64 = self
            .phases
            .iter()
            .filter(|(n, _)| *n != "parse")
            .map(|(_, m)| m)
            .sum();
        let parse = self
            .phases
            .iter()
            .find(|(n, _)| *n == "parse")
            .map(|(_, m)| *m)
            .unwrap_or(0);
        out.push_str("phases:");
        for (name, micros) in &self.phases {
            out.push_str(&format!(" {name}_us={micros}"));
        }
        out.push_str(&format!(
            " exec_us={} total_us={} reopts={}\n",
            exec_micros.saturating_sub(planned),
            parse + exec_micros,
            self.reopts
        ));
        out.push_str("operators:\n");
        for op in &self.ops {
            // est/qerr render with decimals on purpose: profile
            // consumers that sum integer fields for the reconciliation
            // invariant skip float-valued columns.
            let feedback = match (op.est, op.q_error()) {
                (Some(est), Some(q)) => {
                    format!(" est={:.1} actual={} qerr={:.2}", est, op.rows_out, q)
                }
                _ => String::new(),
            };
            out.push_str(&format!(
                "{}{} rows_in={} rows_out={} time_us={}{} {}\n",
                "  ".repeat(op.depth + 1),
                op.label,
                op.rows_in,
                op.rows_out,
                op.micros,
                feedback,
                op.counters.render_fields()
            ));
        }
        out.push_str(&format!("totals: {}\n", totals.render_fields()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(statements: u64, chunks: u64) -> CounterSnapshot {
        CounterSnapshot {
            statements,
            chunks_fetched: chunks,
            ..Default::default()
        }
    }

    #[test]
    fn exclusive_counters_subtract_children() {
        let mut p = QueryProfiler::new(10);
        p.enter("Join".into(), snap(0, 0), 1, None, None);
        p.enter("Scan a".into(), snap(0, 0), 1, None, None);
        p.exit(snap(2, 5), 4); // scan a: 2 statements, 5 chunks
        p.enter("Scan b".into(), snap(2, 5), 4, None, None);
        p.exit(snap(3, 6), 2); // scan b: 1 statement, 1 chunk
        p.exit(snap(3, 6), 2); // join itself: nothing beyond children
        let ops = p.ops();
        assert_eq!(ops[0].counters, snap(0, 0));
        assert_eq!(ops[1].counters, snap(2, 5));
        assert_eq!(ops[2].counters, snap(1, 1));
        // Exclusive rows sum to the whole-query delta.
        let mut sum = CounterSnapshot::default();
        for op in ops {
            sum.add(&op.counters);
        }
        assert_eq!(sum, snap(3, 6));
    }

    #[test]
    fn phases_accumulate_and_render() {
        let mut p = QueryProfiler::new(7);
        p.phase("rewrite", Duration::from_micros(3));
        p.phase("plan", Duration::from_micros(5));
        p.phase("rewrite", Duration::from_micros(2));
        let text = p.render(Duration::from_micros(100), &snap(0, 0));
        assert!(text.contains("parse_us=7"));
        assert!(text.contains("rewrite_us=5"));
        assert!(text.contains("plan_us=5"));
        assert!(text.contains("exec_us=90")); // 100 - 5 - 5
        assert!(text.contains("total_us=107"));
        assert!(text.contains("totals: statements=0"));
    }

    #[test]
    fn render_indents_by_depth() {
        let mut p = QueryProfiler::new(0);
        p.enter("Join".into(), snap(0, 0), 1, None, None);
        p.enter("Scan ?s ?p ?o".into(), snap(0, 0), 1, None, None);
        p.exit(snap(0, 0), 3);
        p.exit(snap(0, 0), 3);
        let text = p.render(Duration::from_micros(1), &snap(0, 0));
        assert!(text.contains("\n  Join rows_in=1"));
        assert!(text.contains("\n    Scan ?s ?p ?o rows_in=1 rows_out=3"));
    }
}
