//! Runtime values of SciSPARQL queries.
//!
//! A query variable binds to an RDF term, to an array — resident
//! ([`ssdm_array::NumArray`]) or lazy ([`ssdm_storage::ArrayProxy`]) — or
//! to a functional value (a [`Closure`], thesis §4.3). Proxies keep
//! pending view transformations and are only materialized when element
//! values are demanded.

use std::fmt;

use ssdm_array::{Num, NumArray};
use ssdm_rdf::Term;
use ssdm_storage::ArrayProxy;

use crate::functions::Closure;

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// An RDF term (URIs, literals, resident arrays...).
    Term(Term),
    /// A lazy view over an externally stored array.
    Proxy(ArrayProxy),
    /// A functional value: a (partially applied) function reference.
    Closure(Closure),
}

impl Value {
    pub fn integer(i: i64) -> Value {
        Value::Term(Term::integer(i))
    }

    pub fn double(r: f64) -> Value {
        Value::Term(Term::double(r))
    }

    pub fn number(n: Num) -> Value {
        Value::Term(Term::Number(n))
    }

    pub fn string(s: impl Into<String>) -> Value {
        Value::Term(Term::Str(s.into()))
    }

    pub fn boolean(b: bool) -> Value {
        Value::Term(Term::Bool(b))
    }

    pub fn array(a: NumArray) -> Value {
        Value::Term(Term::Array(a))
    }

    pub fn as_term(&self) -> Option<&Term> {
        match self {
            Value::Term(t) => Some(t),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<Num> {
        match self {
            Value::Term(Term::Number(n)) => Some(*n),
            _ => None,
        }
    }

    /// True when the value is an array of either flavour.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Term(Term::Array(_)) | Value::Proxy(_))
    }

    /// Shape without materializing.
    pub fn array_shape(&self) -> Option<Vec<usize>> {
        match self {
            Value::Term(Term::Array(a)) => Some(a.shape()),
            Value::Proxy(p) => Some(p.shape()),
            _ => None,
        }
    }

    /// SPARQL Effective Boolean Value.
    pub fn effective_bool(&self) -> Option<bool> {
        match self {
            Value::Term(t) => t.effective_bool(),
            Value::Proxy(_) => Some(true),
            Value::Closure(_) => Some(true),
        }
    }

    /// Equality for joins and `=` filters. Proxies compare by identity
    /// of the stored array and view (comparing elements would force
    /// I/O inside a join; the executor materializes first when a filter
    /// demands content equality across flavours).
    pub fn value_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Term(a), Value::Term(b)) => a.value_eq(b),
            (Value::Proxy(a), Value::Proxy(b)) => {
                a.array_id() == b.array_id() && a.view() == b.view()
            }
            (Value::Closure(a), Value::Closure(b)) => a.same_function(b),
            _ => false,
        }
    }

    /// Total order for ORDER BY.
    pub fn order_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Term(a), Value::Term(b)) => a.order_cmp(b),
            (Value::Term(_), _) => Ordering::Less,
            (_, Value::Term(_)) => Ordering::Greater,
            (Value::Proxy(a), Value::Proxy(b)) => a
                .array_id()
                .cmp(&b.array_id())
                .then_with(|| a.view().offset().cmp(&b.view().offset())),
            (Value::Proxy(_), Value::Closure(_)) => Ordering::Less,
            (Value::Closure(_), Value::Proxy(_)) => Ordering::Greater,
            (Value::Closure(a), Value::Closure(b)) => a.name().cmp(b.name()),
        }
    }
}

impl From<Term> for Value {
    fn from(t: Term) -> Self {
        Value::Term(t)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Term(t) => write!(f, "{t}"),
            Value::Proxy(p) => write!(f, "@proxy(array {}, shape {:?})", p.array_id(), p.shape()),
            Value::Closure(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_value_eq_across_types() {
        assert!(Value::integer(2).value_eq(&Value::double(2.0)));
        assert!(!Value::integer(2).value_eq(&Value::string("2")));
    }

    #[test]
    fn array_shape_resident() {
        let v = Value::array(NumArray::from_i64_shaped(vec![1, 2, 3, 4], &[2, 2]).unwrap());
        assert_eq!(v.array_shape(), Some(vec![2, 2]));
        assert!(v.is_array());
    }

    #[test]
    fn effective_bool_of_terms() {
        assert_eq!(Value::integer(0).effective_bool(), Some(false));
        assert_eq!(Value::string("").effective_bool(), Some(false));
        assert_eq!(Value::boolean(true).effective_bool(), Some(true));
    }
}
