//! Optimizer v2: planner configuration, the statistics-fed selectivity
//! model, and the runtime feedback loop.
//!
//! The thesis engine delegates join ordering to Amos II's cost-based
//! conjunctive-predicate optimizer (§5.4). This module is our
//! reproduction's equivalent control plane:
//!
//! * [`PlannerConfig`] / [`PlannerMode`] select the join-enumeration
//!   strategy — `textual` (no reordering), `greedy` (one-shot minimum
//!   cardinality, the pre-v2 behaviour) or `dp` (bottom-up dynamic
//!   programming over connected subsets, the default) — overridable per
//!   process with `SSDM_PLANNER` and per dataset via the public field.
//! * [`filter_selectivity`] replaces the historical hard-coded
//!   `Filter × 0.5` with an expression-aware estimate: equality and
//!   range predicates consult the graph's per-predicate object
//!   histograms ([`ssdm_rdf::NumericHistogram`]), `array_contains` /
//!   `array_*_range` predicates consult the array store's zone maps
//!   through [`ZoneStatsProvider`], and only expressions the model
//!   cannot see fall back to the documented constants in [`consts`].
//! * [`Calibration`] closes the loop: after every profiled query the
//!   dataset folds observed-vs-estimated scan cardinalities into
//!   per-predicate correction factors (EWMA in log space), and refreshes
//!   a per-backend cost-per-statement figure from the process-wide
//!   `ssdm_chunk_fetch_seconds` latency histogram. The planner multiplies
//!   scan estimates by the learned factor, so misestimates shrink with
//!   each observation instead of repeating forever.
//!
//! The mid-query re-optimization protocol (rewriting the unexecuted
//! suffix of a running join when the observed cardinality blows past the
//! estimate by more than [`PlannerConfig::adaptive_qerror`]) lives in
//! `eval`; its knobs are configured here.

use std::collections::HashMap;

use ssdm_rdf::{Graph, Term, TermId};
use ssdm_storage::{ArrayStore, ValuePredicate};

use crate::ast::{CmpOp, Expr};
use crate::dataset::DynChunkStore;

/// Every fallback constant the cost model uses when statistics cannot
/// answer, in one place (historically these were magic numbers strewn
/// through `algebra::estimate`). Each constant is a *default of last
/// resort*: the planner prefers histogram, sketch, zone-map or
/// calibration evidence whenever it exists.
pub mod consts {
    /// Selectivity of a filter expression the model cannot analyze
    /// (the pre-v2 blanket `Filter × 0.5`).
    pub const DEFAULT_FILTER_SELECTIVITY: f64 = 0.5;
    /// Equality comparison against a constant, when no histogram
    /// covers the operand.
    pub const EQ_SELECTIVITY: f64 = 0.1;
    /// One-sided range comparison (`<`, `>`, ...), when no histogram
    /// covers the operand.
    pub const RANGE_SELECTIVITY: f64 = 0.3;
    /// `regex` / `contains` / `strstarts` / `strends` string matching.
    pub const REGEX_SELECTIVITY: f64 = 0.25;
    /// `EXISTS { ... }` (and its negation) — correlated subpatterns
    /// have no static statistics.
    pub const EXISTS_SELECTIVITY: f64 = 0.5;
    /// Floor for any derived selectivity: keeps a product of many
    /// filters from collapsing to zero and freezing the join order.
    pub const MIN_SELECTIVITY: f64 = 1e-3;
    /// Fan-out multiplier for `GRAPH` patterns, whose target graph's
    /// statistics the planner does not consult (pre-v2 `Graph × 2.0`).
    pub const GRAPH_FANOUT: f64 = 2.0;
    /// Fan-out multiplier per start node for property paths.
    pub const PATH_FANOUT: f64 = 2.0;
    /// Floor for a join child's cardinality contribution (pre-v2
    /// `max(0.1)`): an operator is never free, however selective.
    pub const MIN_JOIN_CHILD_CARD: f64 = 0.1;
    /// Floor for a single scan estimate.
    pub const MIN_SCAN_CARD: f64 = 0.01;
    /// Fallback divisor per join variable bound by earlier operators
    /// when the pattern's predicate is unknown (variable or absent): a
    /// bound variable restricts like a constant of unknown value. With
    /// a known predicate the estimator divides by that position's
    /// distinct-value count instead.
    pub const BOUND_VAR_ATTENUATION: f64 = 3.0;
    /// DP join enumeration handles joins up to this many children;
    /// larger conjunctions fall back to greedy (2^n state table).
    pub const DP_MAX_PATTERNS: usize = 10;
    /// Default Q-error bound for mid-query re-optimization: the
    /// unexecuted join suffix is re-ordered when observed cardinality
    /// exceeds the estimate by more than this factor.
    pub const DEFAULT_REOPT_QERROR: f64 = 8.0;
    /// Minimum intermediate rows before re-optimization is considered
    /// (tiny intermediates are cheaper to finish than to re-plan).
    pub const REOPT_MIN_ROWS: usize = 64;
    /// EWMA weight of the newest observation in a calibration factor.
    pub const CALIBRATION_ALPHA: f64 = 0.5;
    /// Clamp on a calibration factor's log-magnitude (`ln 64`): one
    /// pathological observation cannot swing estimates by more than 64×.
    pub const LN_FACTOR_CLAMP: f64 = 4.158883083359672;
    /// Half-row floor used in Q-error and calibration ratios so empty
    /// results stay finite.
    pub const CARD_FLOOR: f64 = 0.5;
    /// Cost per back-end statement (µs) before any latency histogram
    /// observation exists for the process.
    pub const DEFAULT_STATEMENT_COST_US: f64 = 50.0;
}

/// Join-enumeration strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerMode {
    /// Keep children in written order (filters still push down).
    Textual,
    /// One-shot greedy minimum-cardinality ordering (pre-v2 default).
    Greedy,
    /// Bottom-up dynamic programming over connected subsets, greedy
    /// fallback above [`PlannerConfig::dp_max_patterns`] children.
    Dp,
}

impl PlannerMode {
    /// Parse a mode name as accepted by `SSDM_PLANNER` / `--planner`.
    pub fn parse(s: &str) -> Option<PlannerMode> {
        match s.to_ascii_lowercase().as_str() {
            "textual" | "none" => Some(PlannerMode::Textual),
            "greedy" => Some(PlannerMode::Greedy),
            "dp" | "dynamic" => Some(PlannerMode::Dp),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            PlannerMode::Textual => "textual",
            PlannerMode::Greedy => "greedy",
            PlannerMode::Dp => "dp",
        }
    }
}

/// Per-dataset planner configuration (env-seeded, field-overridable).
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    pub mode: PlannerMode,
    /// DP enumeration cutoff; joins with more children use greedy.
    pub dp_max_patterns: usize,
    /// Mid-query re-optimization Q-error bound; `None` disables
    /// adaptivity entirely.
    pub adaptive_qerror: Option<f64>,
    /// Minimum intermediate rows before re-optimization is considered.
    pub adaptive_min_rows: usize,
    /// Whether learned per-predicate correction factors feed estimates.
    pub calibration: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            mode: PlannerMode::Dp,
            dp_max_patterns: consts::DP_MAX_PATTERNS,
            adaptive_qerror: Some(consts::DEFAULT_REOPT_QERROR),
            adaptive_min_rows: consts::REOPT_MIN_ROWS,
            calibration: true,
        }
    }
}

impl PlannerConfig {
    /// The default configuration with environment overrides applied:
    /// `SSDM_PLANNER=textual|greedy|dp`, `SSDM_PLANNER_DP_MAX=<n>`,
    /// `SSDM_REOPT_QERROR=<q>|off`, `SSDM_CALIBRATION=on|off`.
    pub fn from_env() -> Self {
        let mut cfg = PlannerConfig::default();
        if let Ok(v) = std::env::var("SSDM_PLANNER") {
            if let Some(m) = PlannerMode::parse(&v) {
                cfg.mode = m;
            }
        }
        if let Ok(v) = std::env::var("SSDM_PLANNER_DP_MAX") {
            if let Ok(n) = v.parse::<usize>() {
                cfg.dp_max_patterns = n.min(16);
            }
        }
        if let Ok(v) = std::env::var("SSDM_REOPT_QERROR") {
            if v.eq_ignore_ascii_case("off") || v == "0" {
                cfg.adaptive_qerror = None;
            } else if let Ok(q) = v.parse::<f64>() {
                if q.is_finite() && q > 1.0 {
                    cfg.adaptive_qerror = Some(q);
                }
            }
        }
        if let Ok(v) = std::env::var("SSDM_CALIBRATION") {
            cfg.calibration = !matches!(v.to_ascii_lowercase().as_str(), "0" | "off" | "false");
        }
        cfg
    }
}

/// One learned per-predicate correction: an EWMA over `ln(actual/est)`
/// plus the number of observations behind it.
#[derive(Debug, Clone, Copy)]
struct PredFactor {
    ln_factor: f64,
    samples: u64,
}

/// The runtime feedback table: per-predicate cardinality correction
/// factors learned from profiled queries, and a per-backend
/// cost-per-statement figure refreshed from the observability layer's
/// chunk-fetch latency histogram.
#[derive(Debug, Default, Clone)]
pub struct Calibration {
    factors: HashMap<String, PredFactor>,
    cost_per_statement_us: Option<f64>,
}

impl Calibration {
    /// Fold one observed-vs-estimated scan cardinality into the
    /// predicate's correction factor. Ratios are floored at half a row
    /// and clamped in log space so one wild sample cannot dominate.
    pub fn observe(&mut self, predicate: &str, estimated: f64, actual: f64) {
        if !estimated.is_finite() {
            return;
        }
        let ratio = actual.max(consts::CARD_FLOOR) / estimated.max(consts::CARD_FLOOR);
        let ln = ratio
            .ln()
            .clamp(-consts::LN_FACTOR_CLAMP, consts::LN_FACTOR_CLAMP);
        match self.factors.get_mut(predicate) {
            Some(f) => {
                f.ln_factor = (1.0 - consts::CALIBRATION_ALPHA) * f.ln_factor
                    + consts::CALIBRATION_ALPHA * ln;
                f.samples += 1;
            }
            None => {
                self.factors.insert(
                    predicate.to_string(),
                    PredFactor {
                        ln_factor: ln,
                        samples: 1,
                    },
                );
            }
        }
    }

    /// The multiplicative correction for a predicate's scan estimates
    /// (1.0 when nothing has been learned).
    pub fn factor(&self, predicate: &str) -> f64 {
        self.factors
            .get(predicate)
            .map(|f| f.ln_factor.exp())
            .unwrap_or(1.0)
    }

    /// Observations recorded for a predicate.
    pub fn samples(&self, predicate: &str) -> u64 {
        self.factors.get(predicate).map(|f| f.samples).unwrap_or(0)
    }

    /// Number of predicates with learned corrections.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// `(predicate, factor, samples)` rows, unordered (for reports).
    pub fn entries(&self) -> impl Iterator<Item = (&str, f64, u64)> {
        self.factors
            .iter()
            .map(|(k, f)| (k.as_str(), f.ln_factor.exp(), f.samples))
    }

    /// Raw `(predicate, ln_factor, samples)` rows for persistence —
    /// the log-space EWMA itself, so a save/load round trip is exact.
    pub fn export(&self) -> impl Iterator<Item = (&str, f64, u64)> {
        self.factors
            .iter()
            .map(|(k, f)| (k.as_str(), f.ln_factor, f.samples))
    }

    /// Restore one persisted entry (the counterpart of
    /// [`Calibration::export`]). Non-finite factors are dropped and
    /// out-of-range ones clamped, so a hand-edited or corrupt file
    /// cannot plant an unbounded correction.
    pub fn restore(&mut self, predicate: &str, ln_factor: f64, samples: u64) {
        if !ln_factor.is_finite() || samples == 0 {
            return;
        }
        self.factors.insert(
            predicate.to_string(),
            PredFactor {
                ln_factor: ln_factor.clamp(-consts::LN_FACTOR_CLAMP, consts::LN_FACTOR_CLAMP),
                samples,
            },
        );
    }

    /// Refresh the per-backend cost-per-statement from the process-wide
    /// chunk-fetch latency histogram (mean observed fetch, µs).
    pub fn refresh_backend_cost(&mut self) {
        let hist = ssdm_obs::recorder().histogram("ssdm_chunk_fetch_seconds");
        let count = hist.count();
        if count > 0 {
            self.cost_per_statement_us = Some(hist.sum_micros() as f64 / count as f64);
        }
    }

    /// Cost in microseconds the planner charges per back-end statement.
    pub fn cost_per_statement_us(&self) -> f64 {
        self.cost_per_statement_us
            .unwrap_or(consts::DEFAULT_STATEMENT_COST_US)
    }
}

/// Aggregate zone-map answer for one value predicate: how many chunks
/// exist across the store's zone maps and how many could match.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZoneSelectivity {
    pub chunks_total: u64,
    pub chunks_matching: u64,
}

impl ZoneSelectivity {
    /// Matching fraction; 1.0 (no pruning evidence) when no chunk is
    /// summarized.
    pub fn fraction(&self) -> f64 {
        if self.chunks_total == 0 {
            1.0
        } else {
            self.chunks_matching as f64 / self.chunks_total as f64
        }
    }
}

/// Planner-facing view of the array store's zone maps: the expected
/// fraction of chunks an `array_contains` / `array_*_range` predicate
/// must actually decode (the rest are `chunks_skipped`).
pub trait ZoneStatsProvider {
    fn zone_selectivity(&self, pred: &ValuePredicate) -> ZoneSelectivity;
}

impl ZoneStatsProvider for ArrayStore<DynChunkStore> {
    fn zone_selectivity(&self, pred: &ValuePredicate) -> ZoneSelectivity {
        let mut z = ZoneSelectivity::default();
        for zm in self.zone_maps() {
            for (i, s) in zm.summaries.iter().enumerate() {
                z.chunks_total += 1;
                if s.may_match(zm.ty, pred) {
                    z.chunks_matching += 1;
                }
                let _ = i;
            }
        }
        z
    }
}

/// Everything the cost model may consult while planning one query.
/// Statistics sources are optional: a bare `PlannerCtx::new(graph)`
/// plans from graph statistics alone (the `EXPLAIN` / library path),
/// while `eval` builds the full context from the dataset.
pub struct PlannerCtx<'a> {
    pub graph: &'a Graph,
    pub config: PlannerConfig,
    pub calibration: Option<&'a Calibration>,
    pub zones: Option<&'a dyn ZoneStatsProvider>,
}

impl<'a> PlannerCtx<'a> {
    /// Graph-only context with environment-derived configuration.
    pub fn new(graph: &'a Graph) -> Self {
        PlannerCtx {
            graph,
            config: PlannerConfig::from_env(),
            calibration: None,
            zones: None,
        }
    }

    /// Graph-only context with the built-in default configuration (no
    /// environment reads — for hot estimate wrappers).
    pub fn plain(graph: &'a Graph) -> Self {
        PlannerCtx {
            graph,
            config: PlannerConfig::default(),
            calibration: None,
            zones: None,
        }
    }

    /// The learned correction factor for a predicate term (1.0 when
    /// calibration is absent or disabled).
    pub fn factor_for(&self, predicate: &Term) -> f64 {
        if !self.config.calibration {
            return 1.0;
        }
        match self.calibration {
            Some(c) if !c.is_empty() => c.factor(&predicate.to_string()),
            _ => 1.0,
        }
    }
}

/// Expression-aware filter selectivity: the fraction of input rows a
/// `FILTER expr` is expected to keep. `var_preds` maps object-position
/// variables of the surrounding join to the (constant) predicate whose
/// triples bind them, letting comparisons consult that predicate's
/// object-value histogram.
pub fn filter_selectivity(
    expr: &Expr,
    ctx: &PlannerCtx,
    var_preds: &HashMap<String, TermId>,
) -> f64 {
    selectivity(expr, ctx, var_preds).clamp(consts::MIN_SELECTIVITY, 1.0)
}

fn selectivity(expr: &Expr, ctx: &PlannerCtx, var_preds: &HashMap<String, TermId>) -> f64 {
    match expr {
        Expr::Not(e) => 1.0 - selectivity(e, ctx, var_preds),
        Expr::And(a, b) => selectivity(a, ctx, var_preds) * selectivity(b, ctx, var_preds),
        Expr::Or(a, b) => {
            let (sa, sb) = (
                selectivity(a, ctx, var_preds),
                selectivity(b, ctx, var_preds),
            );
            (sa + sb - sa * sb).min(1.0)
        }
        Expr::Cmp(op, a, b) => cmp_selectivity(*op, a, b, ctx, var_preds),
        Expr::InList {
            needle,
            haystack,
            negated,
        } => {
            let eq = if let Expr::Var(v) = &**needle {
                haystack
                    .iter()
                    .map(|h| eq_selectivity(Some(v), const_num(h), ctx, var_preds))
                    .sum::<f64>()
            } else {
                consts::EQ_SELECTIVITY * haystack.len() as f64
            };
            let sel = eq.min(1.0);
            if *negated {
                1.0 - sel
            } else {
                sel
            }
        }
        Expr::Exists { .. } => consts::EXISTS_SELECTIVITY,
        Expr::Call { name, args } => call_selectivity(name, args, ctx),
        _ => consts::DEFAULT_FILTER_SELECTIVITY,
    }
}

fn cmp_selectivity(
    op: CmpOp,
    lhs: &Expr,
    rhs: &Expr,
    ctx: &PlannerCtx,
    var_preds: &HashMap<String, TermId>,
) -> f64 {
    // Comparisons over zone-mapped array predicates: cost by the
    // fraction of chunks the filtered scan cannot skip.
    if let Some(frac) = zone_call_fraction(lhs, ctx).or_else(|| zone_call_fraction(rhs, ctx)) {
        return frac;
    }
    // Normalize to `var op constant`.
    let (var, num, op) = match (lhs, rhs) {
        (Expr::Var(v), e) if const_num(e).is_some() => (Some(v.as_str()), const_num(e), op),
        (e, Expr::Var(v)) if const_num(e).is_some() => (Some(v.as_str()), const_num(e), flip(op)),
        _ => (None, None, op),
    };
    match op {
        CmpOp::Eq => eq_selectivity(var, num, ctx, var_preds),
        CmpOp::Ne => 1.0 - eq_selectivity(var, num, ctx, var_preds),
        CmpOp::Lt | CmpOp::Le => range_selectivity(var, None, num, ctx, var_preds),
        CmpOp::Gt | CmpOp::Ge => range_selectivity(var, num, None, ctx, var_preds),
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

fn const_num(e: &Expr) -> Option<f64> {
    match e {
        Expr::Const(Term::Number(n)) => Some(n.as_f64()),
        Expr::Neg(inner) => const_num(inner).map(|v| -v),
        _ => None,
    }
}

/// Histogram-backed equality selectivity, falling back to
/// [`consts::EQ_SELECTIVITY`].
fn eq_selectivity(
    var: Option<&str>,
    num: Option<f64>,
    ctx: &PlannerCtx,
    var_preds: &HashMap<String, TermId>,
) -> f64 {
    if let (Some(v), Some(n)) = (var, num) {
        if let Some(&p) = var_preds.get(v) {
            if let Some(matches) = ctx.graph.estimate_object_eq(p, n) {
                let total = ctx.graph.estimate_pattern(None, Some(p), None).max(1.0);
                return matches / total;
            }
        }
    }
    consts::EQ_SELECTIVITY
}

/// Histogram-backed range selectivity, falling back to
/// [`consts::RANGE_SELECTIVITY`].
fn range_selectivity(
    var: Option<&str>,
    lo: Option<f64>,
    hi: Option<f64>,
    ctx: &PlannerCtx,
    var_preds: &HashMap<String, TermId>,
) -> f64 {
    if let Some(v) = var {
        if let Some(&p) = var_preds.get(v) {
            if let Some(matches) = ctx.graph.estimate_object_range(p, lo, hi) {
                let total = ctx.graph.estimate_pattern(None, Some(p), None).max(1.0);
                return matches / total;
            }
        }
    }
    consts::RANGE_SELECTIVITY
}

fn call_selectivity(name: &str, args: &[Expr], ctx: &PlannerCtx) -> f64 {
    match name {
        "regex" | "contains" | "strstarts" | "strends" => consts::REGEX_SELECTIVITY,
        "array_contains" | "acontains" => {
            zone_fraction_for(name, args, ctx).unwrap_or(consts::DEFAULT_FILTER_SELECTIVITY)
        }
        _ => consts::DEFAULT_FILTER_SELECTIVITY,
    }
}

/// Zone-map matching fraction for an `array_contains` /
/// `array_*_range` call with constant bounds, when a zone provider is
/// attached and any chunk is summarized.
fn zone_call_fraction(e: &Expr, ctx: &PlannerCtx) -> Option<f64> {
    let Expr::Call { name, args } = e else {
        return None;
    };
    zone_fraction_for(name, args, ctx)
}

fn zone_fraction_for(name: &str, args: &[Expr], ctx: &PlannerCtx) -> Option<f64> {
    let zones = ctx.zones?;
    let pred = match name {
        "array_contains" | "acontains" => {
            let needles: Vec<ssdm_array::Num> = args
                .get(1..)?
                .iter()
                .map(|a| const_num(a).map(ssdm_array::Num::Real))
                .collect::<Option<_>>()?;
            if needles.is_empty() {
                return None;
            }
            ValuePredicate::In(needles)
        }
        "array_sum_range" | "array_avg_range" | "array_min_range" | "array_max_range"
        | "array_count_range" => {
            let lo = const_num(args.get(1)?)?;
            let hi = const_num(args.get(2)?)?;
            ValuePredicate::Range {
                lo: ssdm_array::Num::Real(lo),
                hi: ssdm_array::Num::Real(hi),
            }
        }
        _ => return None,
    };
    let z = zones.zone_selectivity(&pred);
    if z.chunks_total == 0 {
        return None;
    }
    // Never report zero: zone maps prove chunk-level absence, not that
    // the filter is statically false.
    Some(z.fraction().max(consts::MIN_SELECTIVITY))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdm_rdf::Term;

    #[test]
    fn mode_parsing_accepts_aliases() {
        assert_eq!(PlannerMode::parse("dp"), Some(PlannerMode::Dp));
        assert_eq!(PlannerMode::parse("DYNAMIC"), Some(PlannerMode::Dp));
        assert_eq!(PlannerMode::parse("greedy"), Some(PlannerMode::Greedy));
        assert_eq!(PlannerMode::parse("textual"), Some(PlannerMode::Textual));
        assert_eq!(PlannerMode::parse("none"), Some(PlannerMode::Textual));
        assert_eq!(PlannerMode::parse("bogus"), None);
    }

    #[test]
    fn calibration_learns_and_clamps() {
        let mut c = Calibration::default();
        assert_eq!(c.factor("p"), 1.0);
        c.observe("p", 10.0, 200.0); // 20x under-estimate
        assert!(c.factor("p") > 10.0 && c.factor("p") < 30.0);
        // A wild sample is clamped to 64x in log space.
        c.observe("q", 1.0, 1e9);
        assert!(c.factor("q") <= 64.01);
        // EWMA pulls back toward accurate observations.
        for _ in 0..8 {
            c.observe("p", 100.0, 100.0);
        }
        assert!(c.factor("p") < 1.5, "factor {}", c.factor("p"));
        assert_eq!(c.samples("p"), 9);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn filter_selectivity_uses_histograms() {
        let mut g = Graph::new();
        let p = Term::uri("http://ex/value");
        // 90 small values, 10 large ones.
        for i in 0..100i64 {
            let v = if i < 90 { i % 9 } else { 1000 + i };
            g.insert(
                Term::uri(format!("http://ex/s{i}")),
                p.clone(),
                Term::integer(v),
            );
        }
        let pid = g.dictionary().lookup(&p).unwrap();
        let ctx = PlannerCtx::plain(&g);
        let mut vp = HashMap::new();
        vp.insert("x".to_string(), pid);
        let gt = Expr::Cmp(
            CmpOp::Gt,
            Box::new(Expr::Var("x".into())),
            Box::new(Expr::Const(Term::integer(500))),
        );
        let sel = filter_selectivity(&gt, &ctx, &vp);
        assert!(
            sel < 0.25,
            "high-range filter should be selective, got {sel}"
        );
        // Same comparison with no predicate mapping → documented fallback.
        assert_eq!(
            filter_selectivity(&gt, &ctx, &HashMap::new()),
            consts::RANGE_SELECTIVITY
        );
    }

    #[test]
    fn boolean_combinations_compose() {
        let g = Graph::new();
        let ctx = PlannerCtx::plain(&g);
        let vp = HashMap::new();
        let t = |e: &Expr| filter_selectivity(e, &ctx, &vp);
        let eq = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Var("x".into())),
            Box::new(Expr::Const(Term::integer(1))),
        );
        let and = Expr::And(Box::new(eq.clone()), Box::new(eq.clone()));
        let or = Expr::Or(Box::new(eq.clone()), Box::new(eq.clone()));
        let not = Expr::Not(Box::new(eq.clone()));
        assert!(t(&and) < t(&eq));
        assert!(t(&or) > t(&eq));
        assert!((t(&not) - (1.0 - t(&eq))).abs() < 1e-9);
    }
}
