//! Scientific SPARQL (SciSPARQL): the query language of SSDM.
//!
//! SciSPARQL (Andrejev & Risch, ICDE 2012; Andrejev 2016) is a strict
//! superset of W3C SPARQL extended for *RDF with Arrays*: array
//! dereference and slicing syntax, array arithmetic, user-defined
//! functions as parameterized queries, lexical closures, second-order
//! array functions, and foreign functions. This crate implements the
//! full pipeline:
//!
//! * [`parser`] — lexer and recursive-descent parser producing [`ast`];
//! * [`algebra`] — translation into a logical operator tree, with
//!   rewriting (filter pushdown) and statistics-driven join ordering
//!   (the SSDM translation pipeline of thesis §5.4);
//! * [`eval`] — a pull-style executor over [`Dataset`], including
//!   property paths, grouping/aggregation, and lazy array-proxy
//!   resolution through the storage layer's APR;
//! * [`functions`] — built-in scalar and array functions, `DEFINE
//!   FUNCTION` parameterized views, closures, and foreign functions
//!   with cost annotations.
//!
//! # Quickstart
//!
//! ```
//! use scisparql::{Dataset, QueryResult};
//!
//! let mut ds = Dataset::in_memory();
//! ds.load_turtle(r#"
//!     @prefix ex: <http://example.org/> .
//!     ex:m1 ex:temperature ((18 19) (21 24)) ; ex:station "Uppsala" .
//! "#).unwrap();
//! let result = ds.query(r#"
//!     PREFIX ex: <http://example.org/>
//!     SELECT ?st (array_avg(?t[2]) AS ?row2avg)
//!     WHERE { ?m ex:temperature ?t ; ex:station ?st }
//! "#).unwrap();
//! let rows = result.into_rows().unwrap();
//! assert_eq!(rows[0][1].as_ref().unwrap().to_string(), "22.5");
//! ```

pub mod algebra;
pub mod ast;
pub mod dataset;
pub mod eval;
pub mod functions;
pub mod journal;
pub mod parser;
pub mod planner;
pub mod profile;
pub mod update;
pub mod value;

pub use dataset::{Dataset, QueryError, QueryResult};
pub use functions::{Closure, ForeignFunction, FunctionCost, FunctionRegistry};
pub use journal::{JournalEntry, UpdateJournal};
pub use planner::{Calibration, PlannerConfig, PlannerCtx, PlannerMode};
pub use profile::{CounterSnapshot, QueryProfiler};
pub use value::Value;

/// Result alias for query processing.
pub type Result<T> = std::result::Result<T, QueryError>;
