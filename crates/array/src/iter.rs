//! Linear-address run detection over array views.
//!
//! When a view's logical traversal visits ascending, evenly spaced linear
//! addresses, external storage can fetch it with few range reads instead
//! of per-element lookups. [`LinearRuns`] compresses a view's address
//! stream into maximal arithmetic runs — the in-memory counterpart of the
//! Sequence Pattern Detector the storage layer applies to bags of array
//! proxies (thesis §6.2.5).

use crate::view::ArrayView;

/// A maximal arithmetic run of linear addresses:
/// `start, start+step, ..., start+(len-1)*step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    pub start: usize,
    pub step: usize,
    pub len: usize,
}

impl Run {
    /// Last address of the run.
    pub fn end(&self) -> usize {
        self.start + self.step * (self.len.saturating_sub(1))
    }

    /// Smallest half-open byte-free address interval covering the run.
    pub fn covering_range(&self) -> (usize, usize) {
        (self.start, self.end() + 1)
    }
}

/// Compress the logical address stream of a view into maximal
/// constant-step ascending runs.
#[derive(Debug)]
pub struct LinearRuns {
    runs: Vec<Run>,
}

impl LinearRuns {
    pub fn of_view(view: &ArrayView) -> Self {
        let mut runs: Vec<Run> = Vec::new();
        let mut cur: Option<(usize, usize, usize, usize)> = None; // (start, step, len, last)
        view.for_each_address(|a| {
            cur = match cur.take() {
                None => Some((a, 0, 1, a)),
                Some((start, step, len, last)) => {
                    if len == 1 && a > last {
                        Some((start, a - last, 2, a))
                    } else if a > last && a - last == step {
                        Some((start, step, len + 1, a))
                    } else {
                        runs.push(Run { start, step, len });
                        Some((a, 0, 1, a))
                    }
                }
            };
        });
        if let Some((start, step, len, _)) = cur {
            runs.push(Run { start, step, len });
        }
        LinearRuns { runs }
    }

    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Total number of addresses covered.
    pub fn address_count(&self) -> usize {
        self.runs.iter().map(|r| r.len).sum()
    }

    /// Fraction of fetched addresses that are actually needed if each run
    /// is read as one dense range (1.0 = perfectly dense access).
    pub fn density(&self) -> f64 {
        let needed: usize = self.address_count();
        let fetched: usize = self
            .runs
            .iter()
            .map(|r| {
                let (lo, hi) = r.covering_range();
                hi - lo
            })
            .sum();
        if fetched == 0 {
            1.0
        } else {
            needed as f64 / fetched as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_view_is_one_run() {
        let v = ArrayView::contiguous(&[3, 4]);
        let r = LinearRuns::of_view(&v);
        assert_eq!(
            r.runs(),
            &[Run {
                start: 0,
                step: 1,
                len: 12
            }]
        );
        assert_eq!(r.density(), 1.0);
    }

    #[test]
    fn column_view_is_strided_run() {
        let v = ArrayView::contiguous(&[3, 4]).subscript(1, 2).unwrap();
        let r = LinearRuns::of_view(&v);
        assert_eq!(
            r.runs(),
            &[Run {
                start: 2,
                step: 4,
                len: 3
            }]
        );
        assert!(r.density() < 1.0);
    }

    #[test]
    fn row_slice_of_matrix_makes_runs_per_row() {
        // rows 0..2, cols 1..=2 of a 3x4 matrix: addresses 1,2,5,6,9,10
        let v = ArrayView::contiguous(&[3, 4]).slice(1, 1, 1, 2).unwrap();
        let r = LinearRuns::of_view(&v);
        // The stream 1,2,5,6,9,10 compresses to 3 runs of step 1... or
        // the detector may keep (2,5) as a step-3 continuation attempt;
        // verify total coverage instead of exact segmentation.
        assert_eq!(r.address_count(), 6);
        let mut all: Vec<usize> = Vec::new();
        for run in r.runs() {
            for k in 0..run.len {
                all.push(run.start + k * run.step);
            }
        }
        assert_eq!(all, vec![1, 2, 5, 6, 9, 10]);
    }

    #[test]
    fn transposed_view_descending_addresses_split() {
        let v = ArrayView::contiguous(&[2, 2]).transpose();
        // logical order addresses: 0, 2, 1, 3 — the descent 2->1 must split.
        let r = LinearRuns::of_view(&v);
        assert_eq!(r.address_count(), 4);
        assert!(r.runs().len() >= 2);
    }

    #[test]
    fn empty_view() {
        let v = ArrayView::contiguous(&[0]);
        let r = LinearRuns::of_view(&v);
        assert!(r.runs().is_empty());
        assert_eq!(r.density(), 1.0);
    }

    #[test]
    fn scalar_view_single_run() {
        let v = ArrayView::scalar_at(5);
        let r = LinearRuns::of_view(&v);
        assert_eq!(
            r.runs(),
            &[Run {
                start: 5,
                step: 0,
                len: 1
            }]
        );
    }
}
