//! A minimal shared worker-pool / chunked-dispatch helper.
//!
//! Three primitives cover every parallel shape in the workspace, all
//! built on [`std::thread::scope`] so borrowed data flows into workers
//! without `Arc` plumbing and no thread outlives its work:
//!
//! * [`run_scoped`] — spawn `workers` copies of a worker loop and run a
//!   body (e.g. an accept loop) on the calling thread until it returns.
//! * [`dispatch`] — cursor-claimed work distribution over `count`
//!   indexed tasks; the calling thread participates, so `workers == 1`
//!   costs no thread spawn at all.
//! * [`par_chunks_mut`] — split a mutable slice into near-equal
//!   segments and process them concurrently; used by the compute
//!   kernels for large resident arrays.
//!
//! The default worker count is process-global and settable (CLI
//! `--workers`, tests), clamped to the machine's available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};

static COMPUTE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Worker count used by the compute kernels for large resident arrays.
/// `0` (the default) means "auto": available parallelism capped at 8.
pub fn compute_workers() -> usize {
    match COMPUTE_WORKERS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8),
        n => n,
    }
}

/// Override [`compute_workers`] process-wide (`0` restores auto).
pub fn set_compute_workers(workers: usize) {
    COMPUTE_WORKERS.store(workers, Ordering::Relaxed);
}

/// Spawn `workers` scoped threads each running `worker`, then run
/// `body` on the calling thread. Returns `body`'s result once it *and*
/// every worker have finished. `worker` is expected to terminate on its
/// own (e.g. when a channel it drains is closed by `body`).
pub fn run_scoped<R>(workers: usize, worker: impl Fn() + Sync, body: impl FnOnce() -> R) -> R {
    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(&worker);
        }
        body()
    })
}

/// Run `task(i)` for every `i in 0..count`, partitioned across at most
/// `workers` threads by a shared claim cursor (work stealing by
/// exhaustion: a slow task never idles the pool). The calling thread
/// claims work too, so `workers <= 1` degrades to a plain loop.
pub fn dispatch(workers: usize, count: usize, task: impl Fn(usize) + Sync) {
    let workers = workers.clamp(1, count.max(1));
    let cursor = AtomicUsize::new(0);
    let claim = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= count {
            break;
        }
        task(i);
    };
    if workers == 1 {
        claim();
    } else {
        std::thread::scope(|scope| {
            for _ in 1..workers {
                scope.spawn(claim);
            }
            claim();
        });
    }
}

/// Process `data` in parallel as disjoint contiguous segments of at
/// least `min_len` elements: `f(start_offset, segment)`. Segment
/// boundaries depend only on `(len, workers, min_len)`, never on
/// scheduling, so deterministic fills stay deterministic.
pub fn par_chunks_mut<T: Send>(
    workers: usize,
    min_len: usize,
    data: &mut [T],
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let len = data.len();
    let min_len = min_len.max(1);
    let segments = workers
        .clamp(
            1,
            len.max(1) / min_len + usize::from(!len.is_multiple_of(min_len)),
        )
        .max(1);
    if segments == 1 {
        f(0, data);
        return;
    }
    let seg_len = len / segments + usize::from(!len.is_multiple_of(segments));
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut start = 0usize;
        while !rest.is_empty() {
            let take = seg_len.min(rest.len());
            let (seg, tail) = rest.split_at_mut(take);
            let off = start;
            scope.spawn(move || f(off, seg));
            start += take;
            rest = tail;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn dispatch_covers_every_index_once() {
        for workers in [1, 2, 4, 9] {
            let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
            dispatch(workers, hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn dispatch_zero_count_is_fine() {
        dispatch(4, 0, |_| panic!("no work"));
    }

    #[test]
    fn par_chunks_mut_fills_deterministically() {
        for workers in [1, 2, 4] {
            let mut data = vec![0u64; 1000];
            par_chunks_mut(workers, 16, &mut data, |off, seg| {
                for (k, slot) in seg.iter_mut().enumerate() {
                    *slot = (off + k) as u64 * 3;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
        }
    }

    #[test]
    fn par_chunks_mut_respects_min_len() {
        // 10 elements, min 16: must run as a single segment.
        let mut data = vec![0u8; 10];
        let segments = AtomicU64::new(0);
        par_chunks_mut(8, 16, &mut data, |_, _| {
            segments.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(segments.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_scoped_joins_workers() {
        let done = AtomicUsize::new(0);
        let r = run_scoped(
            3,
            || {
                done.fetch_add(1, Ordering::Relaxed);
            },
            || 42,
        );
        assert_eq!(r, 42);
        assert_eq!(done.load(Ordering::Relaxed), 3);
    }
}
