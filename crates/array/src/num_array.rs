//! The resident numeric multidimensional array type.

use std::sync::Arc;

use crate::data::ArrayData;
use crate::dtype::{Num, NumericType};
use crate::error::{ArrayError, Result};
use crate::view::ArrayView;

/// A numeric multidimensional array value: shared immutable element
/// storage plus a logical view. Cloning is O(1); all transformations
/// return new descriptors over the same buffer.
#[derive(Debug, Clone)]
pub struct NumArray {
    data: Arc<ArrayData>,
    view: ArrayView,
}

impl NumArray {
    // ---------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------

    /// Build from a flat row-major buffer and a shape.
    pub fn from_data(data: ArrayData, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(ArrayError::ShapeDataMismatch {
                shape_len: expected,
                data_len: data.len(),
            });
        }
        Ok(NumArray {
            data: Arc::new(data),
            view: ArrayView::contiguous(shape),
        })
    }

    /// A vector (1-D array) of integers.
    pub fn from_i64(values: Vec<i64>) -> Self {
        let n = values.len();
        NumArray::from_data(ArrayData::from_i64(values), &[n])
            .expect("shape matches by construction")
    }

    /// A vector (1-D array) of reals.
    pub fn from_f64(values: Vec<f64>) -> Self {
        let n = values.len();
        NumArray::from_data(ArrayData::from_f64(values), &[n])
            .expect("shape matches by construction")
    }

    /// Reshape a flat integer buffer.
    pub fn from_i64_shaped(values: Vec<i64>, shape: &[usize]) -> Result<Self> {
        NumArray::from_data(ArrayData::from_i64(values), shape)
    }

    /// Reshape a flat real buffer.
    pub fn from_f64_shaped(values: Vec<f64>, shape: &[usize]) -> Result<Self> {
        NumArray::from_data(ArrayData::from_f64(values), shape)
    }

    /// A zero-filled array.
    pub fn zeros(ty: NumericType, shape: &[usize]) -> Self {
        let len = shape.iter().product();
        NumArray::from_data(ArrayData::zeros(ty, len), shape)
            .expect("shape matches by construction")
    }

    /// Build an array by evaluating `f` at every subscript tuple in
    /// row-major order (the `ARRAY_BUILD` second-order primitive).
    pub fn from_shape_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> Num) -> Self {
        let count: usize = shape.iter().product();
        let mut values = Vec::with_capacity(count);
        let mut ix = vec![0usize; shape.len()];
        for _ in 0..count {
            values.push(f(&ix));
            for d in (0..shape.len()).rev() {
                ix[d] += 1;
                if ix[d] < shape[d] {
                    break;
                }
                ix[d] = 0;
            }
        }
        NumArray::from_data(ArrayData::from_nums(&values), shape)
            .expect("shape matches by construction")
    }

    /// Build a (possibly multidimensional) array from nested rows of
    /// values, e.g. `[[1,2],[3,4]]` from an RDF collection `((1 2)(3 4))`.
    /// Errors on ragged nesting.
    pub fn from_nested(nested: &Nested) -> Result<Self> {
        let mut shape = Vec::new();
        infer_shape(nested, &mut shape, 0)?;
        let mut values = Vec::new();
        flatten(nested, &mut values);
        NumArray::from_data(ArrayData::from_nums(&values), &shape)
    }

    /// Assemble from shared parts (used when a storage back-end has
    /// materialized a buffer for an existing logical view).
    pub fn from_parts(data: Arc<ArrayData>, view: ArrayView) -> Self {
        NumArray { data, view }
    }

    // ---------------------------------------------------------------
    // Introspection
    // ---------------------------------------------------------------

    pub fn numeric_type(&self) -> NumericType {
        self.data.numeric_type()
    }

    pub fn view(&self) -> &ArrayView {
        &self.view
    }

    pub fn data(&self) -> &Arc<ArrayData> {
        &self.data
    }

    pub fn shape(&self) -> Vec<usize> {
        self.view.shape()
    }

    pub fn ndims(&self) -> usize {
        self.view.ndims()
    }

    /// Extent of one dimension (0-based dimension index).
    pub fn dim_size(&self, dim: usize) -> Result<usize> {
        self.view
            .dims()
            .get(dim)
            .map(|d| d.size)
            .ok_or(ArrayError::DimensionMismatch {
                expected: self.ndims(),
                got: dim + 1,
            })
    }

    /// Total number of logical elements.
    pub fn element_count(&self) -> usize {
        self.view.element_count()
    }

    /// True when the array is a single element (rank 0, or all dims 1).
    pub fn is_scalar(&self) -> bool {
        self.element_count() == 1
    }

    // ---------------------------------------------------------------
    // Element access
    // ---------------------------------------------------------------

    /// Element at 0-based subscripts.
    pub fn get(&self, ix: &[usize]) -> Result<Num> {
        Ok(self.data.get_linear(self.view.address(ix)?))
    }

    /// Element at SciSPARQL 1-based subscripts (thesis §4.1.1: array
    /// subscripts in queries are 1-based).
    pub fn get1(&self, ix: &[i64]) -> Result<Num> {
        let mut zero_based = Vec::with_capacity(ix.len());
        for (dim, &i) in ix.iter().enumerate() {
            if i < 1 {
                return Err(ArrayError::IndexOutOfBounds {
                    dim,
                    index: i,
                    size: self.dim_size(dim).unwrap_or(0),
                });
            }
            zero_based.push((i - 1) as usize);
        }
        self.get(&zero_based)
    }

    /// The single element of a scalar array.
    pub fn scalar_value(&self) -> Option<Num> {
        if self.is_scalar() {
            let addr = self.view.addresses();
            Some(self.data.get_linear(addr[0]))
        } else {
            None
        }
    }

    /// All elements in logical row-major order.
    pub fn elements(&self) -> Vec<Num> {
        let mut out = Vec::with_capacity(self.element_count());
        self.view
            .for_each_address(|a| out.push(self.data.get_linear(a)));
        out
    }

    /// Visit every element in logical order.
    pub fn for_each(&self, mut f: impl FnMut(Num)) {
        self.view.for_each_address(|a| f(self.data.get_linear(a)));
    }

    // ---------------------------------------------------------------
    // Transformations (O(1), no copying)
    // ---------------------------------------------------------------

    /// Fix dimension `dim` at 0-based `index`, reducing rank.
    pub fn subscript(&self, dim: usize, index: usize) -> Result<NumArray> {
        Ok(NumArray {
            data: Arc::clone(&self.data),
            view: self.view.subscript(dim, index)?,
        })
    }

    /// Restrict dimension `dim` to the 0-based inclusive range
    /// `lo..=hi` stepping by `stride`.
    pub fn slice(&self, dim: usize, lo: usize, stride: usize, hi: usize) -> Result<NumArray> {
        Ok(NumArray {
            data: Arc::clone(&self.data),
            view: self.view.slice(dim, lo, stride, hi)?,
        })
    }

    /// Matrix transposition (swap the two trailing dimensions).
    pub fn transpose(&self) -> NumArray {
        NumArray {
            data: Arc::clone(&self.data),
            view: self.view.transpose(),
        }
    }

    /// Arbitrary dimension permutation.
    pub fn permute(&self, perm: &[usize]) -> Result<NumArray> {
        Ok(NumArray {
            data: Arc::clone(&self.data),
            view: self.view.permute(perm)?,
        })
    }

    /// Apply a full SciSPARQL subscript list, one entry per current
    /// dimension (or fewer — trailing dimensions pass through). Single
    /// subscripts reduce rank; ranges keep it.
    pub fn dereference(&self, subs: &[Subscript]) -> Result<NumArray> {
        if subs.len() > self.ndims() {
            return Err(ArrayError::DimensionMismatch {
                expected: self.ndims(),
                got: subs.len(),
            });
        }
        let mut out = self.clone();
        // Process right-to-left so earlier rank reductions don't shift
        // the dimension numbers of later entries.
        for (dim, sub) in subs.iter().enumerate().rev() {
            out = match *sub {
                Subscript::Index(i) => {
                    let size = out.dim_size(dim)?;
                    let idx = resolve_1based(i, size, dim)?;
                    out.subscript(dim, idx)?
                }
                Subscript::Range { lo, stride, hi } => {
                    let size = out.dim_size(dim)?;
                    let lo0 = match lo {
                        Some(l) => resolve_1based(l, size, dim)?,
                        None => 0,
                    };
                    let hi0 = match hi {
                        Some(h) => resolve_1based(h, size, dim)?,
                        None => size.saturating_sub(1),
                    };
                    if stride <= 0 {
                        return Err(ArrayError::InvalidSlice("stride must be positive".into()));
                    }
                    out.slice(dim, lo0, stride as usize, hi0)?
                }
                Subscript::All => out,
            };
        }
        Ok(out)
    }

    // ---------------------------------------------------------------
    // Materialization and equality
    // ---------------------------------------------------------------

    /// Copy the logical elements into a fresh contiguous buffer.
    pub fn materialize(&self) -> NumArray {
        let shape = self.shape();
        match self.numeric_type() {
            NumericType::Int => {
                let mut v = Vec::with_capacity(self.element_count());
                self.for_each(|n| v.push(n.as_i64()));
                NumArray::from_i64_shaped(v, &shape).expect("element count matches view")
            }
            NumericType::Real => {
                let mut v = Vec::with_capacity(self.element_count());
                self.for_each(|n| v.push(n.as_f64()));
                NumArray::from_f64_shaped(v, &shape).expect("element count matches view")
            }
        }
    }

    /// Deep value equality: same shape and pairwise-equal elements
    /// (integer 2 equals real 2.0, per SciSPARQL array equality §4.1.6).
    pub fn array_eq(&self, other: &NumArray) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        let a = self.elements();
        let b = other.elements();
        a.iter().zip(&b).all(|(x, y)| x == y)
    }
}

/// Resolve a SciSPARQL 1-based, possibly negative-from-end subscript to a
/// 0-based index. `-1` addresses the last element.
fn resolve_1based(i: i64, size: usize, dim: usize) -> Result<usize> {
    let idx = if i >= 1 {
        (i - 1) as usize
    } else if i <= -1 {
        let back = (-i) as usize;
        if back > size {
            return Err(ArrayError::IndexOutOfBounds {
                dim,
                index: i,
                size,
            });
        }
        size - back
    } else {
        return Err(ArrayError::IndexOutOfBounds {
            dim,
            index: 0,
            size,
        });
    };
    if idx >= size {
        return Err(ArrayError::IndexOutOfBounds {
            dim,
            index: i,
            size,
        });
    }
    Ok(idx)
}

/// One entry of a SciSPARQL array dereference list (`?a[i, lo:stride:hi, :]`).
/// Subscripts are 1-based; negative values count from the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subscript {
    /// A single subscript: reduces rank.
    Index(i64),
    /// A `lo:stride:hi` range with optional bounds; keeps rank.
    Range {
        lo: Option<i64>,
        stride: i64,
        hi: Option<i64>,
    },
    /// `:` — the whole dimension.
    All,
}

/// Nested numeric rows, as parsed from RDF collections.
#[derive(Debug, Clone, PartialEq)]
pub enum Nested {
    Leaf(Num),
    Row(Vec<Nested>),
}

fn infer_shape(n: &Nested, shape: &mut Vec<usize>, depth: usize) -> Result<()> {
    match n {
        Nested::Leaf(_) => {
            if shape.len() != depth {
                return Err(ArrayError::RaggedNesting);
            }
            Ok(())
        }
        Nested::Row(rows) => {
            if shape.len() == depth {
                shape.push(rows.len());
            } else if shape[depth] != rows.len() {
                return Err(ArrayError::RaggedNesting);
            }
            for r in rows {
                infer_shape(r, shape, depth + 1)?;
            }
            Ok(())
        }
    }
}

fn flatten(n: &Nested, out: &mut Vec<Num>) {
    match n {
        Nested::Leaf(v) => out.push(*v),
        Nested::Row(rows) => {
            for r in rows {
                flatten(r, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_3x4() -> NumArray {
        NumArray::from_i64_shaped((0..12).collect(), &[3, 4]).unwrap()
    }

    #[test]
    fn construction_checks_shape() {
        assert!(NumArray::from_i64_shaped(vec![1, 2, 3], &[2, 2]).is_err());
        assert!(NumArray::from_i64_shaped(vec![1, 2, 3, 4], &[2, 2]).is_ok());
    }

    #[test]
    fn get_and_get1() {
        let m = matrix_3x4();
        assert_eq!(m.get(&[1, 2]).unwrap(), Num::Int(6));
        assert_eq!(m.get1(&[2, 3]).unwrap(), Num::Int(6));
        assert!(m.get1(&[0, 1]).is_err());
        assert!(m.get1(&[4, 1]).is_err());
    }

    #[test]
    fn subscript_then_slice_views_share_data() {
        let m = matrix_3x4();
        let row = m.subscript(0, 2).unwrap();
        assert_eq!(
            row.elements(),
            vec![8.into(), 9.into(), 10.into(), 11.into()]
        );
        let part = row.slice(0, 1, 2, 3).unwrap();
        assert_eq!(part.elements(), vec![Num::Int(9), Num::Int(11)]);
        assert!(Arc::ptr_eq(m.data(), part.data()));
    }

    #[test]
    fn dereference_mixed_subscripts() {
        let m = matrix_3x4();
        // SciSPARQL ?m[2, 2:2:4] -> row 2 (1-based), columns {2,4}.
        let d = m
            .dereference(&[
                Subscript::Index(2),
                Subscript::Range {
                    lo: Some(2),
                    stride: 2,
                    hi: Some(4),
                },
            ])
            .unwrap();
        assert_eq!(d.shape(), vec![2]);
        assert_eq!(d.elements(), vec![Num::Int(5), Num::Int(7)]);
    }

    #[test]
    fn dereference_negative_from_end() {
        let v = NumArray::from_i64(vec![10, 20, 30, 40]);
        assert_eq!(
            v.dereference(&[Subscript::Index(-1)])
                .unwrap()
                .scalar_value()
                .unwrap(),
            Num::Int(40)
        );
        let tail = v
            .dereference(&[Subscript::Range {
                lo: Some(-2),
                stride: 1,
                hi: None,
            }])
            .unwrap();
        assert_eq!(tail.elements(), vec![Num::Int(30), Num::Int(40)]);
    }

    #[test]
    fn dereference_partial_trailing_passthrough() {
        let m = matrix_3x4();
        let row = m.dereference(&[Subscript::Index(1)]).unwrap();
        assert_eq!(row.shape(), vec![4]);
    }

    #[test]
    fn dereference_all_keeps_dimension() {
        let m = matrix_3x4();
        let col = m
            .dereference(&[Subscript::All, Subscript::Index(1)])
            .unwrap();
        assert_eq!(col.shape(), vec![3]);
        assert_eq!(col.elements(), vec![Num::Int(0), Num::Int(4), Num::Int(8)]);
    }

    #[test]
    fn materialize_compacts_strided_view() {
        let m = matrix_3x4();
        let col = m.subscript(1, 3).unwrap();
        let mat = col.materialize();
        assert!(mat.view().is_contiguous());
        assert_eq!(mat.elements(), col.elements());
        assert!(!Arc::ptr_eq(m.data(), mat.data()));
    }

    #[test]
    fn transpose_round_trip() {
        let m = matrix_3x4();
        let t = m.transpose();
        assert_eq!(t.shape(), vec![4, 3]);
        assert_eq!(t.get(&[3, 0]).unwrap(), m.get(&[0, 3]).unwrap());
        assert!(t.transpose().array_eq(&m));
    }

    #[test]
    fn from_nested_2x2() {
        let n = Nested::Row(vec![
            Nested::Row(vec![Nested::Leaf(1.into()), Nested::Leaf(2.into())]),
            Nested::Row(vec![Nested::Leaf(3.into()), Nested::Leaf(4.into())]),
        ]);
        let a = NumArray::from_nested(&n).unwrap();
        assert_eq!(a.shape(), vec![2, 2]);
        assert_eq!(a.get(&[1, 0]).unwrap(), Num::Int(3));
    }

    #[test]
    fn from_nested_rejects_ragged() {
        let n = Nested::Row(vec![
            Nested::Row(vec![Nested::Leaf(1.into())]),
            Nested::Row(vec![Nested::Leaf(2.into()), Nested::Leaf(3.into())]),
        ]);
        assert_eq!(
            NumArray::from_nested(&n).unwrap_err(),
            ArrayError::RaggedNesting
        );
    }

    #[test]
    fn from_nested_mixed_types_promotes() {
        let n = Nested::Row(vec![Nested::Leaf(1.into()), Nested::Leaf(Num::Real(2.5))]);
        let a = NumArray::from_nested(&n).unwrap();
        assert_eq!(a.numeric_type(), NumericType::Real);
    }

    #[test]
    fn array_eq_across_types() {
        let a = NumArray::from_i64(vec![1, 2, 3]);
        let b = NumArray::from_f64(vec![1.0, 2.0, 3.0]);
        assert!(a.array_eq(&b));
        let c = NumArray::from_f64(vec![1.0, 2.0, 3.5]);
        assert!(!a.array_eq(&c));
        let d = NumArray::from_i64_shaped(vec![1, 2, 3], &[3, 1]).unwrap();
        assert!(!a.array_eq(&d));
    }

    #[test]
    fn from_shape_fn_row_major() {
        let a = NumArray::from_shape_fn(&[2, 2], |ix| ((ix[0] * 10 + ix[1]) as i64).into());
        assert_eq!(
            a.elements(),
            vec![Num::Int(0), Num::Int(1), Num::Int(10), Num::Int(11)]
        );
    }

    #[test]
    fn scalar_value() {
        let a = NumArray::from_i64(vec![42]);
        assert_eq!(a.scalar_value(), Some(Num::Int(42)));
        let m = matrix_3x4();
        assert_eq!(m.scalar_value(), None);
    }
}
