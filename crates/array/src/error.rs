//! Error type for array operations.

use std::fmt;

/// Errors raised by array construction, transformation and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrayError {
    /// A subscript was outside the bounds of its dimension.
    IndexOutOfBounds { dim: usize, index: i64, size: usize },
    /// The number of subscripts did not match the array dimensionality.
    DimensionMismatch { expected: usize, got: usize },
    /// Two arrays combined element-wise had different shapes.
    ShapeMismatch { left: Vec<usize>, right: Vec<usize> },
    /// A slice specification was invalid (zero stride, inverted bounds, ...).
    InvalidSlice(String),
    /// The flat data length did not match the product of the shape.
    ShapeDataMismatch { shape_len: usize, data_len: usize },
    /// Nested-collection input was ragged (rows of differing lengths).
    RaggedNesting,
    /// Integer arithmetic overflowed.
    ArithmeticOverflow,
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// A serialized array payload was malformed.
    Corrupt(String),
}

pub type Result<T> = std::result::Result<T, ArrayError>;

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::IndexOutOfBounds { dim, index, size } => write!(
                f,
                "subscript {index} out of bounds for dimension {dim} of size {size}"
            ),
            ArrayError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} subscripts, got {got}")
            }
            ArrayError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            ArrayError::InvalidSlice(msg) => write!(f, "invalid slice: {msg}"),
            ArrayError::ShapeDataMismatch {
                shape_len,
                data_len,
            } => write!(
                f,
                "shape implies {shape_len} elements but {data_len} were supplied"
            ),
            ArrayError::RaggedNesting => {
                write!(f, "nested collection is ragged; cannot form an array")
            }
            ArrayError::ArithmeticOverflow => write!(f, "integer arithmetic overflow"),
            ArrayError::DivisionByZero => write!(f, "integer division by zero"),
            ArrayError::Corrupt(msg) => write!(f, "corrupt array payload: {msg}"),
        }
    }
}

impl std::error::Error for ArrayError {}
