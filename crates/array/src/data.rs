//! Physical element storage for resident arrays.
//!
//! An [`ArrayData`] is an immutable, reference-counted flat buffer of
//! elements in row-major order, shared by all views derived from it
//! (thesis §5.2.1: "Storage of Resident Arrays").

use crate::dtype::{Num, NumericType};
use crate::error::{ArrayError, Result};

/// The flat element buffer of a resident array.
#[derive(Debug, Clone, PartialEq)]
pub enum Buffer {
    Int(Vec<i64>),
    Real(Vec<f64>),
}

impl Buffer {
    pub fn len(&self) -> usize {
        match self {
            Buffer::Int(v) => v.len(),
            Buffer::Real(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Immutable physical storage of a resident array: element type plus a
/// flat row-major buffer. Logical structure (shape, slicing) lives in
/// [`crate::ArrayView`]; many views may share one `ArrayData`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayData {
    buf: Buffer,
}

impl ArrayData {
    pub fn from_i64(values: Vec<i64>) -> Self {
        ArrayData {
            buf: Buffer::Int(values),
        }
    }

    pub fn from_f64(values: Vec<f64>) -> Self {
        ArrayData {
            buf: Buffer::Real(values),
        }
    }

    pub fn from_nums(values: &[Num]) -> Self {
        let all_int = values.iter().all(|n| matches!(n, Num::Int(_)));
        if all_int {
            ArrayData::from_i64(values.iter().map(|n| n.as_i64()).collect())
        } else {
            ArrayData::from_f64(values.iter().map(|n| n.as_f64()).collect())
        }
    }

    /// A zero-filled buffer of `len` elements of the given type.
    pub fn zeros(ty: NumericType, len: usize) -> Self {
        match ty {
            NumericType::Int => ArrayData::from_i64(vec![0; len]),
            NumericType::Real => ArrayData::from_f64(vec![0.0; len]),
        }
    }

    pub fn numeric_type(&self) -> NumericType {
        match self.buf {
            Buffer::Int(_) => NumericType::Int,
            Buffer::Real(_) => NumericType::Real,
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn buffer(&self) -> &Buffer {
        &self.buf
    }

    /// Element at linear address `addr`.
    #[inline]
    pub fn get_linear(&self, addr: usize) -> Num {
        match &self.buf {
            Buffer::Int(v) => Num::Int(v[addr]),
            Buffer::Real(v) => Num::Real(v[addr]),
        }
    }

    /// Serialize elements `range` into little-endian bytes, 8 bytes per
    /// element. Used by the chunked storage back-ends.
    pub fn serialize_range(&self, start: usize, end: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity((end - start) * 8);
        match &self.buf {
            Buffer::Int(v) => {
                for x in &v[start..end] {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Buffer::Real(v) => {
                for x in &v[start..end] {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
        out
    }

    /// Deserialize a little-endian byte payload produced by
    /// [`ArrayData::serialize_range`].
    pub fn deserialize(ty: NumericType, bytes: &[u8]) -> Result<Self> {
        if !bytes.len().is_multiple_of(8) {
            return Err(ArrayError::Corrupt(format!(
                "payload of {} bytes is not a multiple of 8",
                bytes.len()
            )));
        }
        let n = bytes.len() / 8;
        Ok(match ty {
            NumericType::Int => {
                let mut v = Vec::with_capacity(n);
                for c in bytes.chunks_exact(8) {
                    v.push(i64::from_le_bytes(c.try_into().unwrap()));
                }
                ArrayData::from_i64(v)
            }
            NumericType::Real => {
                let mut v = Vec::with_capacity(n);
                for c in bytes.chunks_exact(8) {
                    v.push(f64::from_le_bytes(c.try_into().unwrap()));
                }
                ArrayData::from_f64(v)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_nums_infers_type() {
        let ints = ArrayData::from_nums(&[Num::Int(1), Num::Int(2)]);
        assert_eq!(ints.numeric_type(), NumericType::Int);
        let mixed = ArrayData::from_nums(&[Num::Int(1), Num::Real(2.5)]);
        assert_eq!(mixed.numeric_type(), NumericType::Real);
        assert_eq!(mixed.get_linear(0), Num::Real(1.0));
    }

    #[test]
    fn serialize_roundtrip_int() {
        let d = ArrayData::from_i64(vec![1, -2, i64::MAX]);
        let bytes = d.serialize_range(0, 3);
        let back = ArrayData::deserialize(NumericType::Int, &bytes).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn serialize_roundtrip_real() {
        let d = ArrayData::from_f64(vec![0.5, -1.25e300, f64::INFINITY]);
        let bytes = d.serialize_range(0, 3);
        let back = ArrayData::deserialize(NumericType::Real, &bytes).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn serialize_subrange() {
        let d = ArrayData::from_i64(vec![10, 20, 30, 40]);
        let bytes = d.serialize_range(1, 3);
        let back = ArrayData::deserialize(NumericType::Int, &bytes).unwrap();
        assert_eq!(back, ArrayData::from_i64(vec![20, 30]));
    }

    #[test]
    fn deserialize_rejects_ragged_payload() {
        assert!(ArrayData::deserialize(NumericType::Int, &[0u8; 7]).is_err());
    }

    #[test]
    fn zeros() {
        let d = ArrayData::zeros(NumericType::Real, 4);
        assert_eq!(d.len(), 4);
        assert_eq!(d.get_linear(3), Num::Real(0.0));
    }
}
