//! Type-specialized dense compute kernels.
//!
//! The generic element-wise and aggregate paths walk one boxed [`Num`]
//! at a time through `BinOp::apply` / per-element folds. This module
//! instead operates directly on the `&[i64]` / `&[f64]` slices inside
//! [`Buffer`], in three layers:
//!
//! * **operand extraction** — a contiguous view borrows its buffer
//!   range directly (the autovectorization-friendly fast path); a
//!   strided/transposed view is gathered once into a dense scratch
//!   vector and then takes the same dense loops.
//! * **dense loops** — monomorphized per element type and broadcast
//!   shape (slice⊗slice, slice⊗scalar, scalar⊗slice), so the inner
//!   loop is a branch-free map the compiler can vectorize. Arrays of
//!   ≥ [`PAR_MIN`] elements split across [`pool::par_chunks_mut`]
//!   segments for the pure (non-erroring) loops.
//! * **checked semantics** — integer overflow is detected per
//!   [`BLOCK`]-sized block rather than per element: the loop
//!   accumulates an overflow flag branch-free and the block boundary
//!   checks it once, so the observable behaviour (same error on the
//!   same inputs) matches the scalar reference path exactly while the
//!   happy path stays vectorizable.
//!
//! # Dispatch rules
//!
//! [`elementwise`] returns `None` (caller falls back to the retained
//! scalar reference path, counted in [`ComputeStats`]) when the result
//! type or error behaviour could not be reproduced slice-wise:
//!
//! * empty arrays — `from_nums(&[])` typing is the reference path's;
//! * `Pow` on two Int operands — per-element `checked_pow` vs `powf`
//!   selection depends on each exponent's value;
//! * `Min`/`Max` on mixed Int/Real operands — the scalar result keeps
//!   the *winning operand's* type per element, so one output buffer
//!   type cannot represent it.
//!
//! Everything else is kernelized, including mixed-type arithmetic
//! (promoted to `f64` exactly like `Num::as_f64`) and comparisons.
//!
//! # Float summation order
//!
//! `f64` Sum/Avg use **pairwise summation** (better error growth than a
//! running sum, and what the parallel chunk-side aggregation needs):
//! the deterministic order is documented on [`pairwise_sum`] and is the
//! *policy* — sequential and parallel aggregation, and every worker
//! count, produce bit-identical results because they all fold each
//! dense lane with this function and combine partials in plan order.
//! Int folds keep exact checked semantics (see [`fold_i64`]).

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::agg::AggregateOp;
use crate::data::{ArrayData, Buffer};
use crate::dtype::{Num, NumericType};
use crate::error::{ArrayError, Result};
use crate::num_array::NumArray;
use crate::ops::BinOp;
use crate::pool;
use crate::view::ArrayView;

/// Block length for block-level integer overflow checking.
pub const BLOCK: usize = 4096;
/// Element count from which pure element-wise loops use the worker pool.
pub const PAR_MIN: usize = 1 << 20;
/// Minimum segment length for pool-parallel element-wise loops.
const PAR_SEG: usize = 1 << 16;

// ---------------------------------------------------------------------------
// ComputeStats
// ---------------------------------------------------------------------------

static KERNEL_INVOCATIONS: AtomicU64 = AtomicU64::new(0);
static ELEMENTS_PROCESSED: AtomicU64 = AtomicU64::new(0);
static SCALAR_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static PARALLEL_FOLDS: AtomicU64 = AtomicU64::new(0);

/// Process-global compute-layer counters, surfaced through
/// `stats_report` / `.stats` / the server `STATS` statement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComputeStats {
    /// Dense kernel executions (element-wise ops and aggregate folds).
    pub kernel_invocations: u64,
    /// Elements processed by dense kernels.
    pub elements_processed: u64,
    /// Operations served by the scalar reference path instead.
    pub scalar_fallbacks: u64,
    /// Per-chunk partial aggregates folded inside parallel fetch workers.
    pub parallel_folds: u64,
}

/// Snapshot the global counters.
pub fn compute_stats() -> ComputeStats {
    ComputeStats {
        kernel_invocations: KERNEL_INVOCATIONS.load(Ordering::Relaxed),
        elements_processed: ELEMENTS_PROCESSED.load(Ordering::Relaxed),
        scalar_fallbacks: SCALAR_FALLBACKS.load(Ordering::Relaxed),
        parallel_folds: PARALLEL_FOLDS.load(Ordering::Relaxed),
    }
}

/// Reset the global counters to zero.
pub fn reset_compute_stats() {
    KERNEL_INVOCATIONS.store(0, Ordering::Relaxed);
    ELEMENTS_PROCESSED.store(0, Ordering::Relaxed);
    SCALAR_FALLBACKS.store(0, Ordering::Relaxed);
    PARALLEL_FOLDS.store(0, Ordering::Relaxed);
}

fn note_kernel(elements: usize) {
    KERNEL_INVOCATIONS.fetch_add(1, Ordering::Relaxed);
    ELEMENTS_PROCESSED.fetch_add(elements as u64, Ordering::Relaxed);
}

pub(crate) fn note_fallback() {
    SCALAR_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

/// Record `count` per-chunk partial folds performed inside parallel
/// fetch workers (called by the storage layer's AAPR pipeline).
pub fn note_parallel_folds(count: u64) {
    PARALLEL_FOLDS.fetch_add(count, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Operand extraction
// ---------------------------------------------------------------------------

/// One side of an element-wise operation: a whole array or a broadcast
/// scalar.
#[derive(Clone, Copy)]
pub(crate) enum Elem<'a> {
    Array(&'a NumArray),
    Scalar(Num),
}

fn operand_type(e: Elem<'_>) -> NumericType {
    match e {
        Elem::Array(a) => a.data().numeric_type(),
        Elem::Scalar(Num::Int(_)) => NumericType::Int,
        Elem::Scalar(Num::Real(_)) => NumericType::Real,
    }
}

/// Dense logical-order elements of `view` over `buf`: a borrow for
/// contiguous views, a one-pass strided gather otherwise.
fn typed_cow<'a, T: Copy>(buf: &'a [T], view: &ArrayView) -> Cow<'a, [T]> {
    let n = view.element_count();
    if view.is_contiguous() {
        Cow::Borrowed(&buf[view.offset()..view.offset() + n])
    } else {
        let mut out = Vec::with_capacity(n);
        view.for_each_address(|a| out.push(buf[a]));
        Cow::Owned(out)
    }
}

/// A kernel operand after extraction: dense data or a broadcast value.
enum CowSrc<'a, T: Copy> {
    Slice(Cow<'a, [T]>),
    Scalar(T),
}

impl<'a, T: Copy> CowSrc<'a, T> {
    fn as_src(&self) -> Src<'_, T> {
        match self {
            CowSrc::Slice(c) => Src::Slice(c),
            CowSrc::Scalar(v) => Src::Scalar(*v),
        }
    }
}

/// Borrowed form the dense loops consume.
#[derive(Clone, Copy)]
enum Src<'a, T: Copy> {
    Slice(&'a [T]),
    Scalar(T),
}

impl<'a, T: Copy> Src<'a, T> {
    #[inline(always)]
    fn at(self, i: usize) -> T {
        match self {
            Src::Slice(s) => s[i],
            Src::Scalar(c) => c,
        }
    }
}

/// Extract an Int operand. Only called when both operands are Int.
fn int_cow(e: Elem<'_>) -> CowSrc<'_, i64> {
    match e {
        Elem::Scalar(s) => CowSrc::Scalar(s.as_i64()),
        Elem::Array(a) => match a.data().buffer() {
            Buffer::Int(v) => CowSrc::Slice(typed_cow(v, a.view())),
            Buffer::Real(_) => unreachable!("int path requires Int operands"),
        },
    }
}

/// Extract an operand promoted to `f64` (exactly `Num::as_f64`).
fn real_cow(e: Elem<'_>) -> CowSrc<'_, f64> {
    match e {
        Elem::Scalar(s) => CowSrc::Scalar(s.as_f64()),
        Elem::Array(a) => match a.data().buffer() {
            Buffer::Real(v) => CowSrc::Slice(typed_cow(v, a.view())),
            Buffer::Int(v) => {
                let view = a.view();
                let n = view.element_count();
                let mut out = Vec::with_capacity(n);
                if view.is_contiguous() {
                    out.extend(
                        v[view.offset()..view.offset() + n]
                            .iter()
                            .map(|&x| x as f64),
                    );
                } else {
                    view.for_each_address(|a| out.push(v[a] as f64));
                }
                CowSrc::Slice(Cow::Owned(out))
            }
        },
    }
}

// ---------------------------------------------------------------------------
// Dense loops
// ---------------------------------------------------------------------------

/// Pure (non-erroring) element-wise map, specialized per broadcast
/// shape; large inputs split across the worker pool (the map is pure,
/// so segmentation cannot change the result).
fn map2<T, U, F>(n: usize, a: Src<'_, T>, b: Src<'_, T>, f: F) -> Vec<U>
where
    T: Copy + Sync,
    U: Copy + Default + Send,
    F: Fn(T, T) -> U + Sync,
{
    let workers = pool::compute_workers();
    if n >= PAR_MIN && workers > 1 {
        let mut out = vec![U::default(); n];
        pool::par_chunks_mut(workers, PAR_SEG, &mut out, |off, seg| {
            for (k, slot) in seg.iter_mut().enumerate() {
                let i = off + k;
                *slot = f(a.at(i), b.at(i));
            }
        });
        return out;
    }
    match (a, b) {
        (Src::Slice(x), Src::Slice(y)) => {
            x[..n].iter().zip(&y[..n]).map(|(&p, &q)| f(p, q)).collect()
        }
        (Src::Slice(x), Src::Scalar(c)) => x[..n].iter().map(|&p| f(p, c)).collect(),
        (Src::Scalar(c), Src::Slice(y)) => y[..n].iter().map(|&q| f(c, q)).collect(),
        (Src::Scalar(p), Src::Scalar(q)) => vec![f(p, q); n],
    }
}

/// Checked element-wise map: `f` yields `(value, fault)`; the fault
/// flag is accumulated branch-free and inspected once per [`BLOCK`], so
/// a faulting block reports `err` before any later block runs — the
/// same positionless error the scalar path raises at the first faulting
/// element.
fn map2_checked<T, U>(
    n: usize,
    a: Src<'_, T>,
    b: Src<'_, T>,
    f: impl Fn(T, T) -> (U, bool),
    err: ArrayError,
) -> Result<Vec<U>>
where
    T: Copy,
{
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    while start < n {
        let end = (start + BLOCK).min(n);
        let mut fault = false;
        out.extend((start..end).map(|i| {
            let (v, o) = f(a.at(i), b.at(i));
            fault |= o;
            v
        }));
        if fault {
            return Err(err);
        }
        start = end;
    }
    Ok(out)
}

fn int_kernel(n: usize, a: Src<'_, i64>, b: Src<'_, i64>, op: BinOp) -> Result<ArrayData> {
    Ok(match op {
        BinOp::Add => ArrayData::from_i64(map2_checked(
            n,
            a,
            b,
            |x, y| x.overflowing_add(y),
            ArrayError::ArithmeticOverflow,
        )?),
        BinOp::Sub => ArrayData::from_i64(map2_checked(
            n,
            a,
            b,
            |x, y| x.overflowing_sub(y),
            ArrayError::ArithmeticOverflow,
        )?),
        BinOp::Mul => ArrayData::from_i64(map2_checked(
            n,
            a,
            b,
            |x, y| x.overflowing_mul(y),
            ArrayError::ArithmeticOverflow,
        )?),
        // Int / Int is Real like the scalar path; 0 divisors fault.
        BinOp::Div => ArrayData::from_f64(map2_checked(
            n,
            a,
            b,
            |x, y| (x as f64 / y as f64, y == 0),
            ArrayError::DivisionByZero,
        )?),
        // wrapping_rem matches checked_rem (i64::MIN % -1 == 0); the
        // dummy divisor only feeds lanes already flagged as faults.
        BinOp::Rem => ArrayData::from_i64(map2_checked(
            n,
            a,
            b,
            |x, y| (x.wrapping_rem(if y == 0 { 1 } else { y }), y == 0),
            ArrayError::DivisionByZero,
        )?),
        BinOp::Pow => unreachable!("Int^Int falls back to the scalar path"),
        BinOp::Eq => ArrayData::from_i64(map2(n, a, b, |x, y| (x == y) as i64)),
        BinOp::Ne => ArrayData::from_i64(map2(n, a, b, |x, y| (x != y) as i64)),
        BinOp::Lt => ArrayData::from_i64(map2(n, a, b, |x, y| (x < y) as i64)),
        BinOp::Le => ArrayData::from_i64(map2(n, a, b, |x, y| (x <= y) as i64)),
        BinOp::Gt => ArrayData::from_i64(map2(n, a, b, |x, y| (x > y) as i64)),
        BinOp::Ge => ArrayData::from_i64(map2(n, a, b, |x, y| (x >= y) as i64)),
        // Num::min keeps self unless strictly greater; same for max.
        BinOp::Min => ArrayData::from_i64(map2(n, a, b, |x, y| if x > y { y } else { x })),
        BinOp::Max => ArrayData::from_i64(map2(n, a, b, |x, y| if x < y { y } else { x })),
    })
}

/// Real-path kernel: never errors (division/remainder follow IEEE 754,
/// matching `Num`'s mixed/Real semantics).
fn real_kernel(n: usize, a: Src<'_, f64>, b: Src<'_, f64>, op: BinOp) -> ArrayData {
    match op {
        BinOp::Add => ArrayData::from_f64(map2(n, a, b, |x, y| x + y)),
        BinOp::Sub => ArrayData::from_f64(map2(n, a, b, |x, y| x - y)),
        BinOp::Mul => ArrayData::from_f64(map2(n, a, b, |x, y| x * y)),
        BinOp::Div => ArrayData::from_f64(map2(n, a, b, |x, y| x / y)),
        BinOp::Rem => ArrayData::from_f64(map2(n, a, b, |x, y| x % y)),
        BinOp::Pow => ArrayData::from_f64(map2(n, a, b, |x, y| x.powf(y))),
        BinOp::Eq => ArrayData::from_i64(map2(n, a, b, |x, y| (x == y) as i64)),
        BinOp::Ne => ArrayData::from_i64(map2(n, a, b, |x, y| (x != y) as i64)),
        BinOp::Lt => ArrayData::from_i64(map2(n, a, b, |x, y| (x < y) as i64)),
        BinOp::Le => ArrayData::from_i64(map2(n, a, b, |x, y| (x <= y) as i64)),
        BinOp::Gt => ArrayData::from_i64(map2(n, a, b, |x, y| (x > y) as i64)),
        BinOp::Ge => ArrayData::from_i64(map2(n, a, b, |x, y| (x >= y) as i64)),
        // NaN comparisons are false, so NaN operands keep the left
        // side — exactly Num::min/max's partial_cmp behaviour.
        BinOp::Min => ArrayData::from_f64(map2(n, a, b, |x, y| if x > y { y } else { x })),
        BinOp::Max => ArrayData::from_f64(map2(n, a, b, |x, y| if x < y { y } else { x })),
    }
}

/// Kernel-dispatched element-wise operation. `None` means "not
/// kernelizable, use the scalar reference path" (see module docs for
/// the dispatch rules); `Some(Err)` is a genuine arithmetic fault.
pub(crate) fn elementwise(
    lhs: Elem<'_>,
    rhs: Elem<'_>,
    op: BinOp,
    shape: &[usize],
) -> Option<Result<NumArray>> {
    let n: usize = shape.iter().product();
    if n == 0 {
        return None;
    }
    let (lt, rt) = (operand_type(lhs), operand_type(rhs));
    let data = if lt == NumericType::Int && rt == NumericType::Int {
        if op == BinOp::Pow {
            return None;
        }
        let (ac, bc) = (int_cow(lhs), int_cow(rhs));
        match int_kernel(n, ac.as_src(), bc.as_src(), op) {
            Ok(d) => d,
            Err(e) => return Some(Err(e)),
        }
    } else {
        if matches!(op, BinOp::Min | BinOp::Max) && lt != rt {
            return None;
        }
        let (ac, bc) = (real_cow(lhs), real_cow(rhs));
        real_kernel(n, ac.as_src(), bc.as_src(), op)
    };
    note_kernel(n);
    Some(NumArray::from_data(data, shape))
}

/// Kernel-dispatched element-wise negation (`None` → reference path).
pub(crate) fn negate(a: &NumArray) -> Option<Result<NumArray>> {
    let n = a.element_count();
    if n == 0 {
        return None;
    }
    let shape = a.shape();
    let data = match a.data().buffer() {
        Buffer::Int(_) => {
            let c = int_cow(Elem::Array(a));
            let v = map2_checked(
                n,
                c.as_src(),
                Src::Scalar(0i64),
                |x, _| (x.wrapping_neg(), x == i64::MIN),
                ArrayError::ArithmeticOverflow,
            );
            match v {
                Ok(v) => ArrayData::from_i64(v),
                Err(e) => return Some(Err(e)),
            }
        }
        Buffer::Real(_) => {
            let c = real_cow(Elem::Array(a));
            ArrayData::from_f64(map2(n, c.as_src(), Src::Scalar(0.0f64), |x, _| -x))
        }
    };
    note_kernel(n);
    Some(NumArray::from_data(data, &shape))
}

// ---------------------------------------------------------------------------
// Aggregate folds
// ---------------------------------------------------------------------------

/// Pairwise summation — **the** deterministic `f64` Sum/Avg fold order
/// for the whole system (resident kernels, sequential AAPR partials and
/// parallel AAPR partials all use it):
///
/// * `len <= 32`: a left-to-right running sum **starting from the first
///   element** (so a 1-element slice returns it bitwise, `-0.0`
///   included);
/// * otherwise: split at `len / 2`, sum the halves recursively, combine
///   `left + right`.
///
/// The order depends only on the slice length, never on worker count or
/// scheduling.
pub fn pairwise_sum(xs: &[f64]) -> f64 {
    match xs.len() {
        0 => 0.0,
        len if len <= 32 => {
            let mut acc = xs[0];
            for &x in &xs[1..] {
                acc += x;
            }
            acc
        }
        len => {
            let mid = len / 2;
            pairwise_sum(&xs[..mid]) + pairwise_sum(&xs[mid..])
        }
    }
}

/// Checked `i64` sum with block-level overflow detection: per block,
/// one fused pass records min/max and a wrapping sum; if
/// `|acc| + block_len * max(|min|, |max|)` provably fits in `i64`, no
/// prefix of the block can overflow and the wrapping sum is exact.
/// Otherwise the block re-runs element-by-element with `checked_add`,
/// reproducing the scalar path's error on the exact faulting prefix
/// (e.g. `[i64::MAX, 1, -2]` must fail even though the total fits).
fn sum_i64_checked(xs: &[i64]) -> Result<i64> {
    let mut acc: i64 = 0;
    for block in xs.chunks(BLOCK) {
        let mut mn = i64::MAX;
        let mut mx = i64::MIN;
        let mut wrapped: i64 = 0;
        for &x in block {
            mn = mn.min(x);
            mx = mx.max(x);
            wrapped = wrapped.wrapping_add(x);
        }
        let bound = mn.unsigned_abs().max(mx.unsigned_abs()) as i128;
        let safe = acc.unsigned_abs() as i128 + block.len() as i128 * bound <= i64::MAX as i128;
        if safe {
            acc += wrapped;
        } else {
            for &x in block {
                acc = acc.checked_add(x).ok_or(ArrayError::ArithmeticOverflow)?;
            }
        }
    }
    Ok(acc)
}

fn empty_fold_err() -> ArrayError {
    ArrayError::InvalidSlice("aggregate over empty array".into())
}

/// Dense partial fold over an `i64` slice. `Avg` folds like `Sum` (the
/// caller divides by the element count); `Count` is the slice length.
/// Overflow errors are bit-identical to the sequential checked fold:
/// starting the sum at `0` instead of the first element cannot change
/// any prefix value (`0 + x0 == x0` exactly).
pub fn fold_i64(xs: &[i64], op: AggregateOp) -> Result<Num> {
    if let AggregateOp::Count = op {
        return Ok(Num::Int(xs.len() as i64));
    }
    if xs.is_empty() {
        return Err(empty_fold_err());
    }
    note_kernel(xs.len());
    Ok(match op {
        AggregateOp::Sum | AggregateOp::Avg => Num::Int(sum_i64_checked(xs)?),
        AggregateOp::Prod => {
            let mut acc = xs[0];
            for &x in &xs[1..] {
                acc = acc.checked_mul(x).ok_or(ArrayError::ArithmeticOverflow)?;
            }
            Num::Int(acc)
        }
        AggregateOp::Min => Num::Int(xs.iter().copied().min().expect("non-empty")),
        AggregateOp::Max => Num::Int(xs.iter().copied().max().expect("non-empty")),
        AggregateOp::Count => unreachable!("handled above"),
    })
}

/// Dense partial fold over an `f64` slice. Sum/Avg use [`pairwise_sum`]
/// (the documented deterministic order); Prod/Min/Max fold left to
/// right from the first element, replicating `Num`'s NaN-keeps-left
/// min/max behaviour.
pub fn fold_f64(xs: &[f64], op: AggregateOp) -> Result<Num> {
    if let AggregateOp::Count = op {
        return Ok(Num::Int(xs.len() as i64));
    }
    if xs.is_empty() {
        return Err(empty_fold_err());
    }
    note_kernel(xs.len());
    Ok(match op {
        AggregateOp::Sum | AggregateOp::Avg => Num::Real(pairwise_sum(xs)),
        AggregateOp::Prod => {
            let mut acc = xs[0];
            for &x in &xs[1..] {
                acc *= x;
            }
            Num::Real(acc)
        }
        AggregateOp::Min => {
            let mut acc = xs[0];
            for &x in &xs[1..] {
                if acc > x {
                    acc = x;
                }
            }
            Num::Real(acc)
        }
        AggregateOp::Max => {
            let mut acc = xs[0];
            for &x in &xs[1..] {
                if acc < x {
                    acc = x;
                }
            }
            Num::Real(acc)
        }
        AggregateOp::Count => unreachable!("handled above"),
    })
}

/// Fold every element of `view` over `data` with the typed kernels
/// (gathering strided views densely first). `Avg` returns the raw sum.
pub(crate) fn aggregate_view(data: &ArrayData, view: &ArrayView, op: AggregateOp) -> Result<Num> {
    match data.buffer() {
        Buffer::Int(v) => fold_i64(&typed_cow(v, view), op),
        Buffer::Real(v) => fold_f64(&typed_cow(v, view), op),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_sum_matches_documented_order() {
        // 70 elements: split 35/35, each <= 32? No — 35 splits 17/18.
        // Reproduce the recursion by hand and compare bitwise.
        let xs: Vec<f64> = (0..70)
            .map(|i| (i as f64) * 0.1 + 1e10 / (i + 1) as f64)
            .collect();
        fn reference(xs: &[f64]) -> f64 {
            if xs.len() <= 32 {
                let mut acc = xs[0];
                for &x in &xs[1..] {
                    acc += x;
                }
                acc
            } else {
                let mid = xs.len() / 2;
                reference(&xs[..mid]) + reference(&xs[mid..])
            }
        }
        assert_eq!(pairwise_sum(&xs).to_bits(), reference(&xs).to_bits());
    }

    #[test]
    fn pairwise_sum_preserves_negative_zero() {
        assert_eq!(pairwise_sum(&[-0.0]).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn block_sum_catches_prefix_overflow() {
        // Total fits in i64 but the prefix overflows: must error like
        // the sequential checked fold.
        assert!(matches!(
            fold_i64(&[i64::MAX, 1, -2], AggregateOp::Sum),
            Err(ArrayError::ArithmeticOverflow)
        ));
        // Same magnitude without the overflowing prefix is fine.
        assert_eq!(
            fold_i64(&[i64::MAX - 1, 1, -2], AggregateOp::Sum).unwrap(),
            Num::Int(i64::MAX - 2)
        );
    }

    #[test]
    fn block_sum_exact_across_blocks() {
        let xs: Vec<i64> = (0..(BLOCK as i64 * 3 + 17)).map(|i| i * 7 - 5).collect();
        let expect: i64 = xs.iter().sum();
        assert_eq!(fold_i64(&xs, AggregateOp::Sum).unwrap(), Num::Int(expect));
    }

    #[test]
    fn fold_f64_min_keeps_left_on_nan() {
        let nan_first = fold_f64(&[f64::NAN, 1.0], AggregateOp::Min).unwrap();
        assert!(nan_first.as_f64().is_nan());
        let nan_later = fold_f64(&[1.0, f64::NAN], AggregateOp::Min).unwrap();
        assert_eq!(nan_later, Num::Real(1.0));
    }

    #[test]
    fn stats_accumulate() {
        // Counters are process-global and other tests run concurrently,
        // so assert growth rather than exact values.
        let before = compute_stats();
        fold_i64(&[1, 2, 3], AggregateOp::Sum).unwrap();
        let after = compute_stats();
        assert!(after.kernel_invocations > before.kernel_invocations);
        assert!(after.elements_processed >= before.elements_processed + 3);
    }
}
