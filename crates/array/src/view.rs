//! Logical views over flat element buffers.
//!
//! An [`ArrayView`] maps logical subscripts to linear buffer addresses via
//! an offset plus per-dimension strides. SSDM represents every derived
//! array (slice, projection, transposition) as such a descriptor over the
//! original storage, deferring element access (thesis §5.2.2, "Array
//! Transformations"). The same descriptor type is reused by the storage
//! layer's array proxies, where the "buffer" is an external chunked store.

use crate::error::{ArrayError, Result};

/// One logical dimension of a view: its extent and the linear-address
/// step between consecutive logical subscripts along it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim {
    pub size: usize,
    pub stride: isize,
}

/// Maps logical subscripts to linear addresses: `addr = offset + Σ ixᵢ·strideᵢ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayView {
    offset: usize,
    dims: Vec<Dim>,
}

impl ArrayView {
    /// A contiguous row-major view of the given shape starting at address 0.
    pub fn contiguous(shape: &[usize]) -> Self {
        let mut dims = vec![Dim { size: 0, stride: 0 }; shape.len()];
        let mut stride: isize = 1;
        for (i, &size) in shape.iter().enumerate().rev() {
            dims[i] = Dim { size, stride };
            stride *= size as isize;
        }
        ArrayView { offset: 0, dims }
    }

    /// A zero-dimensional view addressing the single element at `offset`.
    pub fn scalar_at(offset: usize) -> Self {
        ArrayView {
            offset,
            dims: Vec::new(),
        }
    }

    pub fn from_parts(offset: usize, dims: Vec<Dim>) -> Self {
        ArrayView { offset, dims }
    }

    pub fn offset(&self) -> usize {
        self.offset
    }

    pub fn dims(&self) -> &[Dim] {
        &self.dims
    }

    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    pub fn shape(&self) -> Vec<usize> {
        self.dims.iter().map(|d| d.size).collect()
    }

    /// Number of logical elements addressed by the view.
    pub fn element_count(&self) -> usize {
        self.dims.iter().map(|d| d.size).product()
    }

    /// True when logical order coincides with a gap-free ascending linear
    /// range (so the view can be read with one sequential scan).
    pub fn is_contiguous(&self) -> bool {
        let mut expected: isize = 1;
        for d in self.dims.iter().rev() {
            if d.size > 1 && d.stride != expected {
                return false;
            }
            expected *= d.size as isize;
        }
        true
    }

    /// Linear address of the element at the given logical subscripts
    /// (0-based). Errors on rank or bounds violations.
    pub fn address(&self, ix: &[usize]) -> Result<usize> {
        if ix.len() != self.dims.len() {
            return Err(ArrayError::DimensionMismatch {
                expected: self.dims.len(),
                got: ix.len(),
            });
        }
        let mut addr = self.offset as isize;
        for (dim, (&i, d)) in ix.iter().zip(&self.dims).enumerate() {
            if i >= d.size {
                return Err(ArrayError::IndexOutOfBounds {
                    dim,
                    index: i as i64,
                    size: d.size,
                });
            }
            addr += i as isize * d.stride;
        }
        debug_assert!(addr >= 0, "view address underflow");
        Ok(addr as usize)
    }

    /// Fix dimension `dim` at subscript `index`, reducing rank by one.
    pub fn subscript(&self, dim: usize, index: usize) -> Result<ArrayView> {
        let d = self.check_dim(dim)?;
        if index >= d.size {
            return Err(ArrayError::IndexOutOfBounds {
                dim,
                index: index as i64,
                size: d.size,
            });
        }
        let mut dims = self.dims.clone();
        dims.remove(dim);
        Ok(ArrayView {
            offset: (self.offset as isize + index as isize * d.stride) as usize,
            dims,
        })
    }

    /// Restrict dimension `dim` to `lo..=hi` stepping by `stride`
    /// (0-based, inclusive bounds — the SciSPARQL `lo:stride:hi` range
    /// after 1-based adjustment). Rank is preserved.
    pub fn slice(&self, dim: usize, lo: usize, stride: usize, hi: usize) -> Result<ArrayView> {
        let d = self.check_dim(dim)?;
        if stride == 0 {
            return Err(ArrayError::InvalidSlice("stride must be positive".into()));
        }
        if lo > hi {
            return Err(ArrayError::InvalidSlice(format!(
                "lower bound {lo} exceeds upper bound {hi}"
            )));
        }
        if hi >= d.size {
            return Err(ArrayError::IndexOutOfBounds {
                dim,
                index: hi as i64,
                size: d.size,
            });
        }
        let new_size = (hi - lo) / stride + 1;
        let mut dims = self.dims.clone();
        dims[dim] = Dim {
            size: new_size,
            stride: d.stride * stride as isize,
        };
        Ok(ArrayView {
            offset: (self.offset as isize + lo as isize * d.stride) as usize,
            dims,
        })
    }

    /// Reorder dimensions according to `perm` (a permutation of `0..ndims`).
    pub fn permute(&self, perm: &[usize]) -> Result<ArrayView> {
        if perm.len() != self.dims.len() {
            return Err(ArrayError::DimensionMismatch {
                expected: self.dims.len(),
                got: perm.len(),
            });
        }
        let mut seen = vec![false; perm.len()];
        let mut dims = Vec::with_capacity(perm.len());
        for &p in perm {
            if p >= self.dims.len() || seen[p] {
                return Err(ArrayError::InvalidSlice(format!(
                    "invalid permutation {perm:?}"
                )));
            }
            seen[p] = true;
            dims.push(self.dims[p]);
        }
        Ok(ArrayView {
            offset: self.offset,
            dims,
        })
    }

    /// Swap the two trailing dimensions (matrix transposition). On a
    /// vector this is the identity.
    pub fn transpose(&self) -> ArrayView {
        let mut dims = self.dims.clone();
        let n = dims.len();
        if n >= 2 {
            dims.swap(n - 2, n - 1);
        }
        ArrayView {
            offset: self.offset,
            dims,
        }
    }

    /// Iterate logical subscripts in row-major (odometer) order, calling
    /// `f(linear_address)` for each element.
    pub fn for_each_address(&self, mut f: impl FnMut(usize)) {
        if self.dims.iter().any(|d| d.size == 0) {
            return;
        }
        if self.dims.is_empty() {
            f(self.offset);
            return;
        }
        let mut ix = vec![0usize; self.dims.len()];
        let mut addr = self.offset as isize;
        loop {
            f(addr as usize);
            // Odometer increment with address maintenance.
            let mut d = self.dims.len();
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                ix[d] += 1;
                addr += self.dims[d].stride;
                if ix[d] < self.dims[d].size {
                    break;
                }
                addr -= self.dims[d].size as isize * self.dims[d].stride;
                ix[d] = 0;
            }
        }
    }

    /// All linear addresses in logical order. Convenience for small views
    /// and for the storage layer's proxy resolution.
    pub fn addresses(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.element_count());
        self.for_each_address(|a| out.push(a));
        out
    }

    fn check_dim(&self, dim: usize) -> Result<Dim> {
        self.dims.get(dim).copied().ok_or({
            ArrayError::DimensionMismatch {
                expected: self.dims.len(),
                got: dim + 1,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_strides_row_major() {
        let v = ArrayView::contiguous(&[2, 3, 4]);
        let s: Vec<isize> = v.dims().iter().map(|d| d.stride).collect();
        assert_eq!(s, vec![12, 4, 1]);
        assert_eq!(v.element_count(), 24);
        assert!(v.is_contiguous());
    }

    #[test]
    fn address_computation() {
        let v = ArrayView::contiguous(&[3, 4]);
        assert_eq!(v.address(&[0, 0]).unwrap(), 0);
        assert_eq!(v.address(&[2, 3]).unwrap(), 11);
        assert_eq!(v.address(&[1, 2]).unwrap(), 6);
    }

    #[test]
    fn address_bounds_checked() {
        let v = ArrayView::contiguous(&[3, 4]);
        assert!(matches!(
            v.address(&[3, 0]),
            Err(ArrayError::IndexOutOfBounds { dim: 0, .. })
        ));
        assert!(matches!(
            v.address(&[0]),
            Err(ArrayError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn subscript_reduces_rank() {
        let v = ArrayView::contiguous(&[3, 4]);
        let row = v.subscript(0, 1).unwrap();
        assert_eq!(row.shape(), vec![4]);
        assert_eq!(row.address(&[0]).unwrap(), 4);
        let col = v.subscript(1, 2).unwrap();
        assert_eq!(col.shape(), vec![3]);
        assert_eq!(col.addresses(), vec![2, 6, 10]);
        assert!(!col.is_contiguous());
    }

    #[test]
    fn slice_with_stride() {
        let v = ArrayView::contiguous(&[10]);
        let s = v.slice(0, 1, 3, 9).unwrap();
        assert_eq!(s.shape(), vec![3]);
        assert_eq!(s.addresses(), vec![1, 4, 7]);
    }

    #[test]
    fn slice_errors() {
        let v = ArrayView::contiguous(&[10]);
        assert!(v.slice(0, 0, 0, 5).is_err());
        assert!(v.slice(0, 5, 1, 4).is_err());
        assert!(v.slice(0, 0, 1, 10).is_err());
    }

    #[test]
    fn nested_slice_then_subscript() {
        let v = ArrayView::contiguous(&[4, 6]);
        // rows 1..=3 step 2 -> rows {1,3}; then col slice 2..=5 step 3 -> {2,5}
        let s = v.slice(0, 1, 2, 3).unwrap().slice(1, 2, 3, 5).unwrap();
        assert_eq!(s.shape(), vec![2, 2]);
        assert_eq!(s.addresses(), vec![8, 11, 20, 23]);
    }

    #[test]
    fn transpose_swaps_trailing() {
        let v = ArrayView::contiguous(&[2, 3]);
        let t = v.transpose();
        assert_eq!(t.shape(), vec![3, 2]);
        assert_eq!(t.address(&[2, 1]).unwrap(), v.address(&[1, 2]).unwrap());
    }

    #[test]
    fn permute_validates() {
        let v = ArrayView::contiguous(&[2, 3, 4]);
        let p = v.permute(&[2, 0, 1]).unwrap();
        assert_eq!(p.shape(), vec![4, 2, 3]);
        assert!(v.permute(&[0, 0, 1]).is_err());
        assert!(v.permute(&[0, 1]).is_err());
    }

    #[test]
    fn empty_dimension_yields_no_addresses() {
        let v = ArrayView::contiguous(&[0, 5]);
        assert_eq!(v.addresses(), Vec::<usize>::new());
    }

    #[test]
    fn scalar_view() {
        let v = ArrayView::scalar_at(7);
        assert_eq!(v.element_count(), 1);
        assert_eq!(v.addresses(), vec![7]);
    }

    #[test]
    fn odometer_order_is_row_major() {
        let v = ArrayView::contiguous(&[2, 3]);
        assert_eq!(v.addresses(), vec![0, 1, 2, 3, 4, 5]);
        let t = v.transpose();
        assert_eq!(t.addresses(), vec![0, 3, 1, 4, 2, 5]);
    }
}
