//! Display formatting for arrays.
//!
//! Arrays print in the nested-collection notation SciSPARQL and Turtle
//! use for them: `(1 2 3)` for vectors, `((1 2) (3 4))` for matrices.
//! Large arrays are elided with `...` to keep query output readable.

use std::fmt;

use crate::num_array::NumArray;

/// Maximum elements printed per dimension before eliding.
const MAX_PER_DIM: usize = 16;

impl fmt::Display for NumArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ndims() == 0 {
            return match self.scalar_value() {
                Some(v) => write!(f, "{v}"),
                None => write!(f, "()"),
            };
        }
        fmt_level(self, &mut Vec::new(), f)
    }
}

fn fmt_level(a: &NumArray, prefix: &mut Vec<usize>, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let depth = prefix.len();
    let size = a.shape()[depth];
    let last = depth + 1 == a.ndims();
    write!(f, "(")?;
    for i in 0..size.min(MAX_PER_DIM) {
        if i > 0 {
            write!(f, " ")?;
        }
        prefix.push(i);
        if last {
            let mut full = prefix.clone();
            full.truncate(a.ndims());
            match a.get(&full) {
                Ok(v) => write!(f, "{v}")?,
                Err(_) => write!(f, "?")?,
            }
        } else {
            fmt_level(a, prefix, f)?;
        }
        prefix.pop();
    }
    if size > MAX_PER_DIM {
        write!(f, " ...")?;
    }
    write!(f, ")")
}

#[cfg(test)]
mod tests {
    use crate::num_array::NumArray;

    #[test]
    fn vector_display() {
        let a = NumArray::from_i64(vec![1, 2, 3]);
        assert_eq!(a.to_string(), "(1 2 3)");
    }

    #[test]
    fn matrix_display() {
        let a = NumArray::from_i64_shaped(vec![1, 2, 3, 4], &[2, 2]).unwrap();
        assert_eq!(a.to_string(), "((1 2) (3 4))");
    }

    #[test]
    fn real_display_keeps_marker() {
        let a = NumArray::from_f64(vec![1.0, 2.5]);
        assert_eq!(a.to_string(), "(1.0 2.5)");
    }

    #[test]
    fn large_vector_elided() {
        let a = NumArray::from_i64((0..100).collect());
        let s = a.to_string();
        assert!(s.ends_with("...)"));
        assert!(s.len() < 100);
    }

    #[test]
    fn view_display_follows_logical_order() {
        let m = NumArray::from_i64_shaped((0..6).collect(), &[2, 3]).unwrap();
        assert_eq!(m.transpose().to_string(), "((0 3) (1 4) (2 5))");
    }
}
