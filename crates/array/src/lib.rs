//! Numeric multidimensional arrays for *RDF with Arrays*.
//!
//! This crate implements the array data model of Scientific SPARQL
//! (Andrejev, "Semantic Web Queries over Scientific Data", 2016, ch. 4–5):
//! dense numeric multidimensional arrays of integers or reals that can be
//! attached as values in RDF triples and manipulated by SciSPARQL queries.
//!
//! The central type is [`NumArray`]: a shared, immutable buffer of elements
//! ([`ArrayData`]) combined with a *logical view* ([`ArrayView`]) that maps
//! logical subscripts to linear buffer addresses. All array
//! *transformations* — subscripting a dimension, slicing with
//! `lo:stride:hi` bounds, transposing, projecting — are O(1) descriptor
//! rewrites that never copy elements, mirroring SSDM's lazy array
//! processing (thesis §5.2.2). Elements are only touched when a query
//! actually reads them, and [`NumArray::materialize`] produces a compact
//! contiguous copy on demand.
//!
//! Element-wise arithmetic, comparisons, aggregates, and the second-order
//! functions of the Array Algebra (`map`, `condense`, `build`; thesis
//! §4.3.1) live on [`NumArray`] directly.
//!
//! # Example
//!
//! ```
//! use ssdm_array::NumArray;
//!
//! // A 3x4 integer matrix 0..12 laid out in row-major order.
//! let a = NumArray::from_shape_fn(&[3, 4], |ix| ((ix[0] * 4 + ix[1]) as i64).into());
//! // Row 1 (0-based) as an O(1) view.
//! let row = a.subscript(0, 1).unwrap();
//! assert_eq!(row.shape(), &[4]);
//! assert_eq!(row.get(&[2]).unwrap().as_i64(), 6);
//! // Element-wise arithmetic promotes to reals when needed.
//! let scaled = row.scalar_mul(0.5.into()).unwrap();
//! assert_eq!(scaled.get(&[0]).unwrap().as_f64(), 2.0);
//! ```

mod agg;
mod data;
mod dtype;
mod error;
mod fmt;
mod iter;
pub mod kernel;
mod num_array;
mod ops;
pub mod pool;
mod second_order;
mod view;

pub use agg::AggregateOp;
pub use data::{ArrayData, Buffer};
pub use dtype::{Num, NumericType};
pub use error::{ArrayError, Result};
pub use iter::{LinearRuns, Run};
pub use kernel::{compute_stats, reset_compute_stats, ComputeStats};
pub use num_array::{Nested, NumArray, Subscript};
pub use ops::BinOp;
pub use view::{ArrayView, Dim};
