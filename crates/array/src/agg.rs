//! Array aggregates: built-in functions reducing an array to a scalar
//! or reducing one dimension (thesis §4.1.3, §4.1.5).

use crate::data::{ArrayData, Buffer};
use crate::dtype::Num;
use crate::error::{ArrayError, Result};
use crate::kernel;
use crate::num_array::NumArray;
use crate::view::Dim;

/// A whole-array or per-dimension aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateOp {
    Sum,
    Avg,
    Min,
    Max,
    Prod,
    Count,
}

impl AggregateOp {
    pub fn name(self) -> &'static str {
        match self {
            AggregateOp::Sum => "array_sum",
            AggregateOp::Avg => "array_avg",
            AggregateOp::Min => "array_min",
            AggregateOp::Max => "array_max",
            AggregateOp::Prod => "array_prod",
            AggregateOp::Count => "array_count",
        }
    }
}

impl NumArray {
    /// Aggregate all elements into a scalar. Empty arrays yield an error
    /// for min/max and identity values for sum/prod/count.
    ///
    /// Folds through the typed dense kernels: Int aggregates keep the
    /// checked semantics of the scalar path bit-for-bit (same values,
    /// same overflow errors); `f64` Sum/Avg use the documented
    /// deterministic [`kernel::pairwise_sum`] order.
    pub fn aggregate(&self, op: AggregateOp) -> Result<Num> {
        let n = self.element_count();
        match op {
            AggregateOp::Count => return Ok(Num::Int(n as i64)),
            AggregateOp::Sum if n == 0 => return Ok(Num::Int(0)),
            AggregateOp::Prod if n == 0 => return Ok(Num::Int(1)),
            AggregateOp::Avg | AggregateOp::Min | AggregateOp::Max if n == 0 => {
                return Err(ArrayError::InvalidSlice(
                    "aggregate over empty array".into(),
                ))
            }
            _ => {}
        }
        let total = kernel::aggregate_view(self.data(), self.view(), op)?;
        Ok(match op {
            AggregateOp::Avg => Num::Real(total.as_f64() / n as f64),
            _ => total,
        })
    }

    /// [`aggregate`](Self::aggregate) on the scalar reference path (one
    /// boxed `Num` at a time, running left-to-right fold). Retained as
    /// the semantic ground truth for the differential test suite; note
    /// that for `f64` Sum/Avg the kernel path intentionally differs in
    /// rounding (pairwise vs. running sum) — see DESIGN.md.
    pub fn aggregate_ref(&self, op: AggregateOp) -> Result<Num> {
        let n = self.element_count();
        match op {
            AggregateOp::Count => return Ok(Num::Int(n as i64)),
            AggregateOp::Sum if n == 0 => return Ok(Num::Int(0)),
            AggregateOp::Prod if n == 0 => return Ok(Num::Int(1)),
            AggregateOp::Avg | AggregateOp::Min | AggregateOp::Max if n == 0 => {
                return Err(ArrayError::InvalidSlice(
                    "aggregate over empty array".into(),
                ))
            }
            _ => {}
        }
        let mut acc: Option<Num> = None;
        let mut err: Option<ArrayError> = None;
        self.for_each(|x| {
            if err.is_some() {
                return;
            }
            acc = Some(match acc {
                None => x,
                Some(a) => {
                    let r = match op {
                        AggregateOp::Sum | AggregateOp::Avg => a.checked_add(x),
                        AggregateOp::Prod => a.checked_mul(x),
                        AggregateOp::Min => Ok(a.min(x)),
                        AggregateOp::Max => Ok(a.max(x)),
                        AggregateOp::Count => unreachable!("handled above"),
                    };
                    match r {
                        Ok(v) => v,
                        Err(e) => {
                            err = Some(e);
                            a
                        }
                    }
                }
            });
        });
        if let Some(e) = err {
            return Err(e);
        }
        let total = acc.expect("non-empty checked above");
        Ok(match op {
            AggregateOp::Avg => Num::Real(total.as_f64() / n as f64),
            _ => total,
        })
    }

    pub fn sum(&self) -> Result<Num> {
        self.aggregate(AggregateOp::Sum)
    }

    pub fn avg(&self) -> Result<Num> {
        self.aggregate(AggregateOp::Avg)
    }

    pub fn min_value(&self) -> Result<Num> {
        self.aggregate(AggregateOp::Min)
    }

    pub fn max_value(&self) -> Result<Num> {
        self.aggregate(AggregateOp::Max)
    }

    /// Reduce one dimension with an aggregate, producing an array of rank
    /// `ndims-1` (e.g. per-row sums of a matrix).
    ///
    /// A single strided pass: an odometer walks the kept dimensions
    /// tracking each lane's base address directly, and every lane is
    /// gathered into one reusable scratch vector and folded by the
    /// typed kernels — no per-cell view cloning or re-slicing.
    pub fn aggregate_dim(&self, op: AggregateOp, dim: usize) -> Result<NumArray> {
        let size = self.dim_size(dim)?;
        let mut out_shape = self.shape();
        out_shape.remove(dim);
        let count: usize = out_shape.iter().product();
        if count == 0 {
            return NumArray::from_data(ArrayData::from_nums(&[]), &out_shape);
        }
        // Lanes of a fixed size share one answer for Count and for the
        // empty-lane cases; no element reads needed.
        match op {
            AggregateOp::Count => {
                return NumArray::from_data(
                    ArrayData::from_nums(&vec![Num::Int(size as i64); count]),
                    &out_shape,
                )
            }
            AggregateOp::Sum if size == 0 => {
                return NumArray::from_data(
                    ArrayData::from_nums(&vec![Num::Int(0); count]),
                    &out_shape,
                )
            }
            AggregateOp::Prod if size == 0 => {
                return NumArray::from_data(
                    ArrayData::from_nums(&vec![Num::Int(1); count]),
                    &out_shape,
                )
            }
            _ if size == 0 => {
                return Err(ArrayError::InvalidSlice(
                    "aggregate over empty array".into(),
                ))
            }
            _ => {}
        }
        let dims = self.view().dims();
        let lane_stride = dims[dim].stride;
        let kept: Vec<Dim> = dims
            .iter()
            .enumerate()
            .filter(|&(d, _)| d != dim)
            .map(|(_, &d)| d)
            .collect();
        let mut ix = vec![0usize; kept.len()];
        let mut base = self.view().offset() as isize;
        let mut values = Vec::with_capacity(count);
        // One pass per output cell in row-major order over the kept
        // dimensions (the same order the per-lane subscripting used).
        let mut cell = |fold: &mut dyn FnMut(isize) -> Result<Num>| -> Result<()> {
            for _ in 0..count {
                let total = fold(base)?;
                values.push(match op {
                    AggregateOp::Avg => Num::Real(total.as_f64() / size as f64),
                    _ => total,
                });
                for d in (0..kept.len()).rev() {
                    ix[d] += 1;
                    if ix[d] < kept[d].size {
                        base += kept[d].stride;
                        break;
                    }
                    ix[d] = 0;
                    base -= kept[d].stride * (kept[d].size as isize - 1);
                }
            }
            Ok(())
        };
        match self.data().buffer() {
            Buffer::Int(buf) => {
                let mut scratch: Vec<i64> = Vec::with_capacity(size);
                cell(&mut |start| {
                    scratch.clear();
                    let mut a = start;
                    for _ in 0..size {
                        scratch.push(buf[a as usize]);
                        a += lane_stride;
                    }
                    kernel::fold_i64(&scratch, op)
                })?;
            }
            Buffer::Real(buf) => {
                let mut scratch: Vec<f64> = Vec::with_capacity(size);
                cell(&mut |start| {
                    scratch.clear();
                    let mut a = start;
                    for _ in 0..size {
                        scratch.push(buf[a as usize]);
                        a += lane_stride;
                    }
                    kernel::fold_f64(&scratch, op)
                })?;
            }
        }
        NumArray::from_data(ArrayData::from_nums(&values), &out_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_array_aggregates() {
        let a = NumArray::from_i64(vec![3, 1, 4, 1, 5]);
        assert_eq!(a.sum().unwrap(), Num::Int(14));
        assert_eq!(a.avg().unwrap(), Num::Real(2.8));
        assert_eq!(a.min_value().unwrap(), Num::Int(1));
        assert_eq!(a.max_value().unwrap(), Num::Int(5));
        assert_eq!(a.aggregate(AggregateOp::Prod).unwrap(), Num::Int(60));
        assert_eq!(a.aggregate(AggregateOp::Count).unwrap(), Num::Int(5));
    }

    #[test]
    fn aggregates_respect_views() {
        let m = NumArray::from_i64_shaped((0..12).collect(), &[3, 4]).unwrap();
        let row1 = m.subscript(0, 1).unwrap(); // 4,5,6,7
        assert_eq!(row1.sum().unwrap(), Num::Int(22));
        let col2 = m.subscript(1, 2).unwrap(); // 2,6,10
        assert_eq!(col2.avg().unwrap(), Num::Real(6.0));
    }

    #[test]
    fn empty_array_aggregates() {
        let a = NumArray::from_i64(vec![]);
        assert_eq!(a.sum().unwrap(), Num::Int(0));
        assert_eq!(a.aggregate(AggregateOp::Count).unwrap(), Num::Int(0));
        assert!(a.avg().is_err());
        assert!(a.min_value().is_err());
    }

    #[test]
    fn sum_overflow_detected() {
        let a = NumArray::from_i64(vec![i64::MAX, 1]);
        assert!(a.sum().is_err());
    }

    #[test]
    fn real_aggregates() {
        let a = NumArray::from_f64(vec![0.5, 1.5]);
        assert_eq!(a.sum().unwrap(), Num::Real(2.0));
        assert_eq!(a.avg().unwrap(), Num::Real(1.0));
    }

    #[test]
    fn aggregate_dim_rows_and_cols() {
        let m = NumArray::from_i64_shaped((0..6).collect(), &[2, 3]).unwrap();
        // Sum over columns (dim 1) -> per-row sums.
        let rows = m.aggregate_dim(AggregateOp::Sum, 1).unwrap();
        assert_eq!(rows.elements(), vec![Num::Int(3), Num::Int(12)]);
        // Sum over rows (dim 0) -> per-column sums.
        let cols = m.aggregate_dim(AggregateOp::Sum, 0).unwrap();
        assert_eq!(cols.elements(), vec![Num::Int(3), Num::Int(5), Num::Int(7)]);
    }

    #[test]
    fn aggregate_dim_3d() {
        let c = NumArray::from_i64_shaped((0..24).collect(), &[2, 3, 4]).unwrap();
        let r = c.aggregate_dim(AggregateOp::Max, 2).unwrap();
        assert_eq!(r.shape(), vec![2, 3]);
        assert_eq!(r.get(&[0, 0]).unwrap(), Num::Int(3));
        assert_eq!(r.get(&[1, 2]).unwrap(), Num::Int(23));
    }

    #[test]
    fn aggregate_dim_bad_dim() {
        let a = NumArray::from_i64(vec![1, 2]);
        assert!(a.aggregate_dim(AggregateOp::Sum, 1).is_err());
    }
}
