//! Array aggregates: built-in functions reducing an array to a scalar
//! or reducing one dimension (thesis §4.1.3, §4.1.5).

use crate::data::ArrayData;
use crate::dtype::Num;
use crate::error::{ArrayError, Result};
use crate::num_array::NumArray;

/// A whole-array or per-dimension aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateOp {
    Sum,
    Avg,
    Min,
    Max,
    Prod,
    Count,
}

impl AggregateOp {
    pub fn name(self) -> &'static str {
        match self {
            AggregateOp::Sum => "array_sum",
            AggregateOp::Avg => "array_avg",
            AggregateOp::Min => "array_min",
            AggregateOp::Max => "array_max",
            AggregateOp::Prod => "array_prod",
            AggregateOp::Count => "array_count",
        }
    }
}

impl NumArray {
    /// Aggregate all elements into a scalar. Empty arrays yield an error
    /// for min/max and identity values for sum/prod/count.
    pub fn aggregate(&self, op: AggregateOp) -> Result<Num> {
        let n = self.element_count();
        match op {
            AggregateOp::Count => return Ok(Num::Int(n as i64)),
            AggregateOp::Sum if n == 0 => return Ok(Num::Int(0)),
            AggregateOp::Prod if n == 0 => return Ok(Num::Int(1)),
            AggregateOp::Avg | AggregateOp::Min | AggregateOp::Max if n == 0 => {
                return Err(ArrayError::InvalidSlice(
                    "aggregate over empty array".into(),
                ))
            }
            _ => {}
        }
        let mut acc: Option<Num> = None;
        let mut err: Option<ArrayError> = None;
        self.for_each(|x| {
            if err.is_some() {
                return;
            }
            acc = Some(match acc {
                None => x,
                Some(a) => {
                    let r = match op {
                        AggregateOp::Sum | AggregateOp::Avg => a.checked_add(x),
                        AggregateOp::Prod => a.checked_mul(x),
                        AggregateOp::Min => Ok(a.min(x)),
                        AggregateOp::Max => Ok(a.max(x)),
                        AggregateOp::Count => unreachable!("handled above"),
                    };
                    match r {
                        Ok(v) => v,
                        Err(e) => {
                            err = Some(e);
                            a
                        }
                    }
                }
            });
        });
        if let Some(e) = err {
            return Err(e);
        }
        let total = acc.expect("non-empty checked above");
        Ok(match op {
            AggregateOp::Avg => Num::Real(total.as_f64() / n as f64),
            _ => total,
        })
    }

    pub fn sum(&self) -> Result<Num> {
        self.aggregate(AggregateOp::Sum)
    }

    pub fn avg(&self) -> Result<Num> {
        self.aggregate(AggregateOp::Avg)
    }

    pub fn min_value(&self) -> Result<Num> {
        self.aggregate(AggregateOp::Min)
    }

    pub fn max_value(&self) -> Result<Num> {
        self.aggregate(AggregateOp::Max)
    }

    /// Reduce one dimension with an aggregate, producing an array of rank
    /// `ndims-1` (e.g. per-row sums of a matrix).
    pub fn aggregate_dim(&self, op: AggregateOp, dim: usize) -> Result<NumArray> {
        let size = self.dim_size(dim)?;
        let mut out_shape = self.shape();
        out_shape.remove(dim);
        let count: usize = out_shape.iter().product();
        let mut values = Vec::with_capacity(count);
        // Iterate the reduced shape; for each output cell aggregate the
        // vector along `dim` as a rank-1 view.
        let mut ix = vec![0usize; out_shape.len()];
        for _ in 0..count.max(1) {
            if count == 0 {
                break;
            }
            // Fix every dimension except `dim`, highest source dimension
            // first so removals don't shift the remaining positions.
            let mut lane = self.clone();
            for d in (0..out_shape.len()).rev() {
                let src_dim = if d >= dim { d + 1 } else { d };
                lane = lane.subscript(src_dim, ix[d])?;
            }
            debug_assert_eq!(lane.ndims(), 1);
            debug_assert_eq!(lane.element_count(), size);
            values.push(lane.aggregate(op)?);
            for d in (0..out_shape.len()).rev() {
                ix[d] += 1;
                if ix[d] < out_shape[d] {
                    break;
                }
                ix[d] = 0;
            }
        }
        NumArray::from_data(ArrayData::from_nums(&values), &out_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_array_aggregates() {
        let a = NumArray::from_i64(vec![3, 1, 4, 1, 5]);
        assert_eq!(a.sum().unwrap(), Num::Int(14));
        assert_eq!(a.avg().unwrap(), Num::Real(2.8));
        assert_eq!(a.min_value().unwrap(), Num::Int(1));
        assert_eq!(a.max_value().unwrap(), Num::Int(5));
        assert_eq!(a.aggregate(AggregateOp::Prod).unwrap(), Num::Int(60));
        assert_eq!(a.aggregate(AggregateOp::Count).unwrap(), Num::Int(5));
    }

    #[test]
    fn aggregates_respect_views() {
        let m = NumArray::from_i64_shaped((0..12).collect(), &[3, 4]).unwrap();
        let row1 = m.subscript(0, 1).unwrap(); // 4,5,6,7
        assert_eq!(row1.sum().unwrap(), Num::Int(22));
        let col2 = m.subscript(1, 2).unwrap(); // 2,6,10
        assert_eq!(col2.avg().unwrap(), Num::Real(6.0));
    }

    #[test]
    fn empty_array_aggregates() {
        let a = NumArray::from_i64(vec![]);
        assert_eq!(a.sum().unwrap(), Num::Int(0));
        assert_eq!(a.aggregate(AggregateOp::Count).unwrap(), Num::Int(0));
        assert!(a.avg().is_err());
        assert!(a.min_value().is_err());
    }

    #[test]
    fn sum_overflow_detected() {
        let a = NumArray::from_i64(vec![i64::MAX, 1]);
        assert!(a.sum().is_err());
    }

    #[test]
    fn real_aggregates() {
        let a = NumArray::from_f64(vec![0.5, 1.5]);
        assert_eq!(a.sum().unwrap(), Num::Real(2.0));
        assert_eq!(a.avg().unwrap(), Num::Real(1.0));
    }

    #[test]
    fn aggregate_dim_rows_and_cols() {
        let m = NumArray::from_i64_shaped((0..6).collect(), &[2, 3]).unwrap();
        // Sum over columns (dim 1) -> per-row sums.
        let rows = m.aggregate_dim(AggregateOp::Sum, 1).unwrap();
        assert_eq!(rows.elements(), vec![Num::Int(3), Num::Int(12)]);
        // Sum over rows (dim 0) -> per-column sums.
        let cols = m.aggregate_dim(AggregateOp::Sum, 0).unwrap();
        assert_eq!(cols.elements(), vec![Num::Int(3), Num::Int(5), Num::Int(7)]);
    }

    #[test]
    fn aggregate_dim_3d() {
        let c = NumArray::from_i64_shaped((0..24).collect(), &[2, 3, 4]).unwrap();
        let r = c.aggregate_dim(AggregateOp::Max, 2).unwrap();
        assert_eq!(r.shape(), vec![2, 3]);
        assert_eq!(r.get(&[0, 0]).unwrap(), Num::Int(3));
        assert_eq!(r.get(&[1, 2]).unwrap(), Num::Int(23));
    }

    #[test]
    fn aggregate_dim_bad_dim() {
        let a = NumArray::from_i64(vec![1, 2]);
        assert!(a.aggregate_dim(AggregateOp::Sum, 1).is_err());
    }
}
