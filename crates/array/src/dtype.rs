//! Scalar numeric values and element types.
//!
//! SciSPARQL arrays hold either integers or reals (thesis §4.1); mixed
//! arithmetic promotes integers to reals, matching the language's scalar
//! arithmetic extension (§4.1.4).

use std::cmp::Ordering;
use std::fmt;

use crate::error::{ArrayError, Result};

/// Element type of a numeric array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumericType {
    /// 64-bit signed integers (`xsd:integer` elements).
    Int,
    /// 64-bit IEEE-754 reals (`xsd:double` elements).
    Real,
}

impl NumericType {
    /// The type that results from combining two operand types:
    /// integer arithmetic stays integer, anything involving a real is real.
    pub fn promote(self, other: NumericType) -> NumericType {
        match (self, other) {
            (NumericType::Int, NumericType::Int) => NumericType::Int,
            _ => NumericType::Real,
        }
    }

    /// Size of one element in bytes in serialized form.
    pub fn element_size(self) -> usize {
        8
    }
}

impl fmt::Display for NumericType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericType::Int => write!(f, "Integer"),
            NumericType::Real => write!(f, "Real"),
        }
    }
}

/// A scalar numeric value: one element of an array, or a scalar operand
/// in array arithmetic.
#[derive(Debug, Clone, Copy)]
pub enum Num {
    Int(i64),
    Real(f64),
}

impl Num {
    pub fn numeric_type(self) -> NumericType {
        match self {
            Num::Int(_) => NumericType::Int,
            Num::Real(_) => NumericType::Real,
        }
    }

    /// The value as a real, converting integers.
    pub fn as_f64(self) -> f64 {
        match self {
            Num::Int(i) => i as f64,
            Num::Real(r) => r,
        }
    }

    /// The value as an integer; reals are truncated toward zero.
    pub fn as_i64(self) -> i64 {
        match self {
            Num::Int(i) => i,
            Num::Real(r) => r as i64,
        }
    }

    /// True unless the value is integer zero, real zero, or NaN
    /// (the Effective Boolean Value of a numeric, SPARQL §17.2.2).
    pub fn effective_bool(self) -> bool {
        match self {
            Num::Int(i) => i != 0,
            Num::Real(r) => r != 0.0 && !r.is_nan(),
        }
    }

    pub fn is_nan(self) -> bool {
        matches!(self, Num::Real(r) if r.is_nan())
    }

    pub fn checked_add(self, rhs: Num) -> Result<Num> {
        match (self, rhs) {
            (Num::Int(a), Num::Int(b)) => a
                .checked_add(b)
                .map(Num::Int)
                .ok_or(ArrayError::ArithmeticOverflow),
            _ => Ok(Num::Real(self.as_f64() + rhs.as_f64())),
        }
    }

    pub fn checked_sub(self, rhs: Num) -> Result<Num> {
        match (self, rhs) {
            (Num::Int(a), Num::Int(b)) => a
                .checked_sub(b)
                .map(Num::Int)
                .ok_or(ArrayError::ArithmeticOverflow),
            _ => Ok(Num::Real(self.as_f64() - rhs.as_f64())),
        }
    }

    pub fn checked_mul(self, rhs: Num) -> Result<Num> {
        match (self, rhs) {
            (Num::Int(a), Num::Int(b)) => a
                .checked_mul(b)
                .map(Num::Int)
                .ok_or(ArrayError::ArithmeticOverflow),
            _ => Ok(Num::Real(self.as_f64() * rhs.as_f64())),
        }
    }

    /// Division always yields a real, per SPARQL's `xsd:decimal`-style
    /// semantics adapted to SciSPARQL numerics; integer division by zero
    /// is an error rather than infinity.
    pub fn checked_div(self, rhs: Num) -> Result<Num> {
        match (self, rhs) {
            (Num::Int(_), Num::Int(0)) => Err(ArrayError::DivisionByZero),
            _ => Ok(Num::Real(self.as_f64() / rhs.as_f64())),
        }
    }

    /// Remainder; integer on integer operands.
    pub fn checked_rem(self, rhs: Num) -> Result<Num> {
        match (self, rhs) {
            (Num::Int(_), Num::Int(0)) => Err(ArrayError::DivisionByZero),
            (Num::Int(a), Num::Int(b)) => Ok(Num::Int(a.wrapping_rem(b))),
            _ => Ok(Num::Real(self.as_f64() % rhs.as_f64())),
        }
    }

    pub fn checked_neg(self) -> Result<Num> {
        match self {
            Num::Int(i) => i
                .checked_neg()
                .map(Num::Int)
                .ok_or(ArrayError::ArithmeticOverflow),
            Num::Real(r) => Ok(Num::Real(-r)),
        }
    }

    pub fn pow(self, rhs: Num) -> Result<Num> {
        match (self, rhs) {
            (Num::Int(a), Num::Int(b)) if (0..=u32::MAX as i64).contains(&b) => a
                .checked_pow(b as u32)
                .map(Num::Int)
                .ok_or(ArrayError::ArithmeticOverflow),
            _ => Ok(Num::Real(self.as_f64().powf(rhs.as_f64()))),
        }
    }

    pub fn abs(self) -> Num {
        match self {
            Num::Int(i) => Num::Int(i.saturating_abs()),
            Num::Real(r) => Num::Real(r.abs()),
        }
    }

    pub fn min(self, rhs: Num) -> Num {
        match self.partial_cmp(&rhs) {
            Some(Ordering::Greater) => rhs,
            _ => self,
        }
    }

    pub fn max(self, rhs: Num) -> Num {
        match self.partial_cmp(&rhs) {
            Some(Ordering::Less) => rhs,
            _ => self,
        }
    }
}

impl PartialEq for Num {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Num::Int(a), Num::Int(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl PartialOrd for Num {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self, other) {
            (Num::Int(a), Num::Int(b)) => Some(a.cmp(b)),
            _ => self.as_f64().partial_cmp(&other.as_f64()),
        }
    }
}

impl From<i64> for Num {
    fn from(v: i64) -> Self {
        Num::Int(v)
    }
}

impl From<f64> for Num {
    fn from(v: f64) -> Self {
        Num::Real(v)
    }
}

impl fmt::Display for Num {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Num::Int(i) => write!(f, "{i}"),
            Num::Real(r) => {
                if r.fract() == 0.0 && r.is_finite() && r.abs() < 1e15 {
                    // Keep a trailing ".0" so reals stay distinguishable
                    // from integers in query results and Turtle output.
                    write!(f, "{r:.1}")
                } else {
                    write!(f, "{r}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_rules() {
        assert_eq!(NumericType::Int.promote(NumericType::Int), NumericType::Int);
        assert_eq!(
            NumericType::Int.promote(NumericType::Real),
            NumericType::Real
        );
        assert_eq!(
            NumericType::Real.promote(NumericType::Int),
            NumericType::Real
        );
    }

    #[test]
    fn int_arithmetic_stays_int() {
        let r = Num::Int(6).checked_mul(Num::Int(7)).unwrap();
        assert!(matches!(r, Num::Int(42)));
    }

    #[test]
    fn mixed_arithmetic_promotes() {
        let r = Num::Int(1).checked_add(Num::Real(0.5)).unwrap();
        assert!(matches!(r, Num::Real(v) if v == 1.5));
    }

    #[test]
    fn division_yields_real() {
        let r = Num::Int(1).checked_div(Num::Int(2)).unwrap();
        assert_eq!(r.as_f64(), 0.5);
    }

    #[test]
    fn int_division_by_zero_errors() {
        assert!(Num::Int(1).checked_div(Num::Int(0)).is_err());
        assert!(Num::Int(1).checked_rem(Num::Int(0)).is_err());
    }

    #[test]
    fn real_division_by_zero_is_inf() {
        let r = Num::Real(1.0).checked_div(Num::Int(0)).unwrap();
        assert!(r.as_f64().is_infinite());
    }

    #[test]
    fn overflow_detected() {
        assert!(Num::Int(i64::MAX).checked_add(Num::Int(1)).is_err());
        assert!(Num::Int(i64::MIN).checked_neg().is_err());
    }

    #[test]
    fn cross_type_equality() {
        assert_eq!(Num::Int(2), Num::Real(2.0));
        assert_ne!(Num::Int(2), Num::Real(2.5));
    }

    #[test]
    fn ordering_mixed() {
        assert!(Num::Int(1) < Num::Real(1.5));
        assert!(Num::Real(2.5) > Num::Int(2));
        assert!(Num::Real(f64::NAN).partial_cmp(&Num::Int(0)).is_none());
    }

    #[test]
    fn effective_bool() {
        assert!(Num::Int(3).effective_bool());
        assert!(!Num::Int(0).effective_bool());
        assert!(!Num::Real(0.0).effective_bool());
        assert!(!Num::Real(f64::NAN).effective_bool());
        assert!(Num::Real(-0.5).effective_bool());
    }

    #[test]
    fn display_keeps_real_marker() {
        assert_eq!(Num::Real(2.0).to_string(), "2.0");
        assert_eq!(Num::Int(2).to_string(), "2");
        assert_eq!(Num::Real(2.5).to_string(), "2.5");
    }

    #[test]
    fn pow_semantics() {
        assert_eq!(Num::Int(2).pow(Num::Int(10)).unwrap(), Num::Int(1024));
        assert_eq!(Num::Int(2).pow(Num::Int(-1)).unwrap(), Num::Real(0.5));
        assert_eq!(Num::Real(4.0).pow(Num::Real(0.5)).unwrap(), Num::Real(2.0));
    }
}
