//! Second-order array functions of the Array Algebra (thesis §4.3.1,
//! and the SciSPARQL primitives introduced in the Rasdaman-integration
//! work): `map`, `condense`, and `build` take functional values — in the
//! query language, lexical closures — and apply them across arrays.

use crate::data::ArrayData;
use crate::dtype::Num;
use crate::error::{ArrayError, Result};
use crate::num_array::NumArray;

/// A unary element function, as passed to `map`.
pub type UnaryNumFn<'a> = dyn Fn(Num) -> Result<Num> + 'a;

/// A binary combining function, as passed to `condense`.
pub type BinaryNumFn<'a> = dyn Fn(Num, Num) -> Result<Num> + 'a;

impl NumArray {
    /// `MAP(f, A)`: apply `f` to every element, preserving shape.
    pub fn map(&self, f: &UnaryNumFn<'_>) -> Result<NumArray> {
        let shape = self.shape();
        let mut out = Vec::with_capacity(self.element_count());
        let mut err = None;
        self.for_each(|x| {
            if err.is_none() {
                match f(x) {
                    Ok(v) => out.push(v),
                    Err(e) => err = Some(e),
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        NumArray::from_data(ArrayData::from_nums(&out), &shape)
    }

    /// `MAP(f, A, B)`: apply a binary `f` pairwise over two same-shape
    /// arrays.
    pub fn map2(&self, other: &NumArray, f: &BinaryNumFn<'_>) -> Result<NumArray> {
        let shape = self.shape();
        if shape != other.shape() {
            return Err(ArrayError::ShapeMismatch {
                left: shape,
                right: other.shape(),
            });
        }
        let a = self.elements();
        let b = other.elements();
        let mut out = Vec::with_capacity(a.len());
        for (x, y) in a.into_iter().zip(b) {
            out.push(f(x, y)?);
        }
        NumArray::from_data(ArrayData::from_nums(&out), &shape)
    }

    /// `CONDENSE(f, A)`: fold all elements with the associative combiner
    /// `f` (Array Algebra's condenser). Empty arrays are an error since
    /// no identity element is supplied.
    pub fn condense(&self, f: &BinaryNumFn<'_>) -> Result<Num> {
        let mut acc: Option<Num> = None;
        let mut err: Option<ArrayError> = None;
        self.for_each(|x| {
            if err.is_some() {
                return;
            }
            acc = Some(match acc {
                None => x,
                Some(a) => match f(a, x) {
                    Ok(v) => v,
                    Err(e) => {
                        err = Some(e);
                        a
                    }
                },
            });
        });
        if let Some(e) = err {
            return Err(e);
        }
        acc.ok_or_else(|| ArrayError::InvalidSlice("condense over empty array".into()))
    }

    /// `CONDENSE(f, A, init)`: fold with an explicit initial value, so
    /// empty arrays yield `init`.
    pub fn condense_with(&self, init: Num, f: &BinaryNumFn<'_>) -> Result<Num> {
        let mut acc = init;
        let mut err: Option<ArrayError> = None;
        self.for_each(|x| {
            if err.is_some() {
                return;
            }
            match f(acc, x) {
                Ok(v) => acc = v,
                Err(e) => err = Some(e),
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        Ok(acc)
    }

    /// `ARRAY_BUILD(shape, f)`: construct an array by evaluating `f` at
    /// every 1-based subscript tuple (the language-level counterpart of
    /// [`NumArray::from_shape_fn`], which is 0-based).
    pub fn build1(shape: &[usize], f: &dyn Fn(&[i64]) -> Result<Num>) -> Result<NumArray> {
        let count: usize = shape.iter().product();
        let mut values = Vec::with_capacity(count);
        let mut ix: Vec<i64> = vec![1; shape.len()];
        for _ in 0..count {
            values.push(f(&ix)?);
            for d in (0..shape.len()).rev() {
                ix[d] += 1;
                if ix[d] <= shape[d] as i64 {
                    break;
                }
                ix[d] = 1;
            }
        }
        NumArray::from_data(ArrayData::from_nums(&values), shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_square() {
        let a = NumArray::from_i64(vec![1, 2, 3]);
        let sq = a.map(&|x| x.checked_mul(x)).unwrap();
        assert_eq!(sq.elements(), vec![Num::Int(1), Num::Int(4), Num::Int(9)]);
    }

    #[test]
    fn map_preserves_view_shape() {
        let m = NumArray::from_i64_shaped((0..12).collect(), &[3, 4]).unwrap();
        let sub = m.slice(0, 0, 2, 2).unwrap(); // rows {0,2}
        let r = sub.map(&|x| Ok(Num::Real(x.as_f64() / 2.0))).unwrap();
        assert_eq!(r.shape(), vec![2, 4]);
        assert_eq!(r.get(&[1, 0]).unwrap(), Num::Real(4.0));
    }

    #[test]
    fn map_error_propagates() {
        let a = NumArray::from_i64(vec![1, 0, 3]);
        let r = a.map(&|x| Num::Int(6).checked_div(x));
        assert_eq!(r.unwrap_err(), ArrayError::DivisionByZero);
    }

    #[test]
    fn map2_pairwise() {
        let a = NumArray::from_i64(vec![1, 2, 3]);
        let b = NumArray::from_i64(vec![4, 5, 6]);
        let r = a.map2(&b, &|x, y| Ok(x.max(y))).unwrap();
        assert_eq!(r.elements(), vec![Num::Int(4), Num::Int(5), Num::Int(6)]);
    }

    #[test]
    fn condense_sum_matches_aggregate() {
        let a = NumArray::from_f64(vec![0.5, 1.0, 1.5]);
        let c = a.condense(&|x, y| x.checked_add(y)).unwrap();
        assert_eq!(c, a.sum().unwrap());
    }

    #[test]
    fn condense_empty() {
        let a = NumArray::from_i64(vec![]);
        assert!(a.condense(&|x, y| x.checked_add(y)).is_err());
        assert_eq!(
            a.condense_with(Num::Int(7), &|x, y| x.checked_add(y))
                .unwrap(),
            Num::Int(7)
        );
    }

    #[test]
    fn build1_is_one_based() {
        let a = NumArray::build1(&[2, 3], &|ix| Ok(Num::Int(ix[0] * 10 + ix[1]))).unwrap();
        assert_eq!(a.get(&[0, 0]).unwrap(), Num::Int(11));
        assert_eq!(a.get(&[1, 2]).unwrap(), Num::Int(23));
    }
}
