//! Element-wise array arithmetic and comparisons (thesis §4.1.4).
//!
//! SciSPARQL extends the scalar arithmetic of SPARQL to arrays:
//! `A + B` combines same-shape arrays element-wise, `A + s` broadcasts a
//! scalar, and comparison operators yield integer 0/1 arrays usable in
//! filters (via their effective boolean value) or further arithmetic.

use crate::data::ArrayData;
use crate::dtype::Num;
use crate::error::{ArrayError, Result};
use crate::kernel::{self, Elem};
use crate::num_array::NumArray;

/// A binary element-wise operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Pow,
    /// Comparisons produce 0/1 integer elements.
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Min,
    Max,
}

impl BinOp {
    /// Apply to two scalars.
    pub fn apply(self, a: Num, b: Num) -> Result<Num> {
        Ok(match self {
            BinOp::Add => a.checked_add(b)?,
            BinOp::Sub => a.checked_sub(b)?,
            BinOp::Mul => a.checked_mul(b)?,
            BinOp::Div => a.checked_div(b)?,
            BinOp::Rem => a.checked_rem(b)?,
            BinOp::Pow => a.pow(b)?,
            BinOp::Eq => Num::Int((a == b) as i64),
            BinOp::Ne => Num::Int((a != b) as i64),
            BinOp::Lt => Num::Int((a < b) as i64),
            BinOp::Le => Num::Int((a <= b) as i64),
            BinOp::Gt => Num::Int((a > b) as i64),
            BinOp::Ge => Num::Int((a >= b) as i64),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        })
    }

    /// True for operators that are commutative on numerics.
    pub fn commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::Eq | BinOp::Ne | BinOp::Min | BinOp::Max
        )
    }
}

/// The single element-wise entry point: every broadcast shape (array ⊗
/// array, array ⊗ scalar, scalar ⊗ array) routes here, so broadcast
/// direction cannot drift semantically between call sites. Dispatches
/// to the typed dense kernels; operations the kernels decline (see
/// `kernel` module docs) take the retained scalar reference path.
fn elementwise(lhs: Elem<'_>, rhs: Elem<'_>, op: BinOp, shape: &[usize]) -> Result<NumArray> {
    match kernel::elementwise(lhs, rhs, op, shape) {
        Some(r) => r,
        None => {
            kernel::note_fallback();
            elementwise_ref(lhs, rhs, op, shape)
        }
    }
}

/// The scalar reference path: one `BinOp::apply` per element in logical
/// order, first error wins. Retained (and exercised by the differential
/// test suite) as the semantic ground truth for the kernels.
fn elementwise_ref(lhs: Elem<'_>, rhs: Elem<'_>, op: BinOp, shape: &[usize]) -> Result<NumArray> {
    enum Vals {
        Many(Vec<Num>),
        One(Num),
    }
    impl Vals {
        fn at(&self, i: usize) -> Num {
            match self {
                Vals::Many(v) => v[i],
                Vals::One(s) => *s,
            }
        }
    }
    let fetch = |e: Elem<'_>| match e {
        Elem::Array(a) => Vals::Many(a.elements()),
        Elem::Scalar(s) => Vals::One(s),
    };
    let (a, b) = (fetch(lhs), fetch(rhs));
    let n: usize = shape.iter().product();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(op.apply(a.at(i), b.at(i))?);
    }
    NumArray::from_data(ArrayData::from_nums(&out), shape)
}

impl NumArray {
    fn zip_shape(&self, other: &NumArray) -> Result<Vec<usize>> {
        let shape = self.shape();
        if shape != other.shape() {
            return Err(ArrayError::ShapeMismatch {
                left: shape,
                right: other.shape(),
            });
        }
        Ok(shape)
    }

    /// Element-wise combination of two same-shape arrays.
    pub fn zip_with(&self, other: &NumArray, op: BinOp) -> Result<NumArray> {
        let shape = self.zip_shape(other)?;
        elementwise(Elem::Array(self), Elem::Array(other), op, &shape)
    }

    /// [`zip_with`](Self::zip_with) on the scalar reference path,
    /// bypassing the kernels. For differential testing.
    pub fn zip_with_ref(&self, other: &NumArray, op: BinOp) -> Result<NumArray> {
        let shape = self.zip_shape(other)?;
        elementwise_ref(Elem::Array(self), Elem::Array(other), op, &shape)
    }

    /// Element-wise `self op scalar`.
    pub fn scalar_op(&self, scalar: Num, op: BinOp) -> Result<NumArray> {
        elementwise(Elem::Array(self), Elem::Scalar(scalar), op, &self.shape())
    }

    /// [`scalar_op`](Self::scalar_op) on the scalar reference path.
    pub fn scalar_op_ref(&self, scalar: Num, op: BinOp) -> Result<NumArray> {
        elementwise_ref(Elem::Array(self), Elem::Scalar(scalar), op, &self.shape())
    }

    /// Element-wise `scalar op self` (for non-commutative operators).
    pub fn scalar_op_rev(&self, scalar: Num, op: BinOp) -> Result<NumArray> {
        elementwise(Elem::Scalar(scalar), Elem::Array(self), op, &self.shape())
    }

    /// [`scalar_op_rev`](Self::scalar_op_rev) on the scalar reference path.
    pub fn scalar_op_rev_ref(&self, scalar: Num, op: BinOp) -> Result<NumArray> {
        elementwise_ref(Elem::Scalar(scalar), Elem::Array(self), op, &self.shape())
    }

    /// Element-wise negation.
    pub fn negate(&self) -> Result<NumArray> {
        match kernel::negate(self) {
            Some(r) => r,
            None => {
                kernel::note_fallback();
                self.negate_ref()
            }
        }
    }

    /// [`negate`](Self::negate) on the scalar reference path.
    pub fn negate_ref(&self) -> Result<NumArray> {
        let shape = self.shape();
        let mut out = Vec::with_capacity(self.element_count());
        let mut err = None;
        self.for_each(|x| {
            if err.is_none() {
                match x.checked_neg() {
                    Ok(v) => out.push(v),
                    Err(e) => err = Some(e),
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        NumArray::from_data(ArrayData::from_nums(&out), &shape)
    }

    pub fn add(&self, other: &NumArray) -> Result<NumArray> {
        self.zip_with(other, BinOp::Add)
    }

    pub fn sub(&self, other: &NumArray) -> Result<NumArray> {
        self.zip_with(other, BinOp::Sub)
    }

    pub fn mul(&self, other: &NumArray) -> Result<NumArray> {
        self.zip_with(other, BinOp::Mul)
    }

    pub fn div(&self, other: &NumArray) -> Result<NumArray> {
        self.zip_with(other, BinOp::Div)
    }

    pub fn scalar_add(&self, s: Num) -> Result<NumArray> {
        self.scalar_op(s, BinOp::Add)
    }

    pub fn scalar_mul(&self, s: Num) -> Result<NumArray> {
        self.scalar_op(s, BinOp::Mul)
    }

    /// Matrix product of two 2-D arrays (`A` is m×k, `B` is k×n).
    /// Provided as a built-in array function (thesis §4.1.3).
    pub fn matmul(&self, other: &NumArray) -> Result<NumArray> {
        let (sa, sb) = (self.shape(), other.shape());
        if sa.len() != 2 || sb.len() != 2 || sa[1] != sb[0] {
            return Err(ArrayError::ShapeMismatch {
                left: sa,
                right: sb,
            });
        }
        let (m, k, n) = (sa[0], sa[1], sb[1]);
        let mut out = vec![0.0f64; m * n];
        // Materialize operands so the inner loop reads contiguous buffers.
        let a = self.materialize();
        let b = other.materialize();
        let av = a.elements();
        let bv = b.elements();
        for i in 0..m {
            for p in 0..k {
                let aip = av[i * k + p].as_f64();
                for j in 0..n {
                    out[i * n + j] += aip * bv[p * n + j].as_f64();
                }
            }
        }
        NumArray::from_f64_shaped(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_same_shape() {
        let a = NumArray::from_i64(vec![1, 2, 3]);
        let b = NumArray::from_i64(vec![10, 20, 30]);
        let c = a.add(&b).unwrap();
        assert_eq!(c.elements(), vec![Num::Int(11), Num::Int(22), Num::Int(33)]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = NumArray::from_i64(vec![1, 2, 3]);
        let b = NumArray::from_i64(vec![1, 2]);
        assert!(matches!(a.add(&b), Err(ArrayError::ShapeMismatch { .. })));
    }

    #[test]
    fn scalar_broadcast() {
        let a = NumArray::from_i64(vec![1, 2, 3]);
        let c = a.scalar_mul(Num::Real(0.5)).unwrap();
        assert_eq!(
            c.elements(),
            vec![Num::Real(0.5), Num::Real(1.0), Num::Real(1.5)]
        );
    }

    #[test]
    fn scalar_rev_subtraction() {
        let a = NumArray::from_i64(vec![1, 2, 3]);
        let c = a.scalar_op_rev(Num::Int(10), BinOp::Sub).unwrap();
        assert_eq!(c.elements(), vec![Num::Int(9), Num::Int(8), Num::Int(7)]);
    }

    #[test]
    fn comparison_yields_01() {
        let a = NumArray::from_i64(vec![1, 5, 3]);
        let c = a.scalar_op(Num::Int(3), BinOp::Ge).unwrap();
        assert_eq!(c.elements(), vec![Num::Int(0), Num::Int(1), Num::Int(1)]);
    }

    #[test]
    fn ops_respect_views() {
        let m = NumArray::from_i64_shaped((0..12).collect(), &[3, 4]).unwrap();
        let col0 = m.subscript(1, 0).unwrap(); // [0, 4, 8]
        let col1 = m.subscript(1, 1).unwrap(); // [1, 5, 9]
        let s = col0.add(&col1).unwrap();
        assert_eq!(s.elements(), vec![Num::Int(1), Num::Int(9), Num::Int(17)]);
    }

    #[test]
    fn negate() {
        let a = NumArray::from_i64(vec![1, -2]);
        assert_eq!(
            a.negate().unwrap().elements(),
            vec![Num::Int(-1), Num::Int(2)]
        );
    }

    #[test]
    fn int_overflow_propagates() {
        let a = NumArray::from_i64(vec![i64::MAX]);
        assert!(a.scalar_add(Num::Int(1)).is_err());
    }

    #[test]
    fn matmul_2x2() {
        let a = NumArray::from_i64_shaped(vec![1, 2, 3, 4], &[2, 2]).unwrap();
        let b = NumArray::from_i64_shaped(vec![5, 6, 7, 8], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c.elements(),
            vec![
                Num::Real(19.0),
                Num::Real(22.0),
                Num::Real(43.0),
                Num::Real(50.0)
            ]
        );
    }

    #[test]
    fn matmul_shape_check() {
        let a = NumArray::from_i64_shaped(vec![1, 2, 3, 4], &[2, 2]).unwrap();
        let v = NumArray::from_i64(vec![1, 2]);
        assert!(a.matmul(&v).is_err());
    }

    #[test]
    fn matmul_transposed_view() {
        let a = NumArray::from_i64_shaped(vec![1, 2, 3, 4, 5, 6], &[2, 3]).unwrap();
        let at = a.transpose(); // 3x2
        let c = at.matmul(&a).unwrap(); // 3x3
        assert_eq!(c.shape(), vec![3, 3]);
        assert_eq!(c.get(&[0, 0]).unwrap(), Num::Real(17.0)); // 1*1+4*4
    }
}
