//! Property-based tests for the array data model invariants.

use proptest::prelude::*;
use ssdm_array::{ArrayView, LinearRuns, Num, NumArray, Subscript};

/// Strategy: a shape with 1..=3 dimensions, each of extent 1..=8.
fn shapes() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=8, 1..=3)
}

/// Strategy: a shape plus matching flat i64 data.
fn arrays() -> impl Strategy<Value = NumArray> {
    shapes().prop_flat_map(|shape| {
        let n: usize = shape.iter().product();
        prop::collection::vec(-1000i64..1000, n)
            .prop_map(move |data| NumArray::from_i64_shaped(data, &shape).unwrap())
    })
}

proptest! {
    /// Materializing a view never changes its logical contents.
    #[test]
    fn materialize_preserves_elements(a in arrays()) {
        let m = a.materialize();
        prop_assert_eq!(a.shape(), m.shape());
        prop_assert!(a.array_eq(&m));
    }

    /// Transposing twice is the identity on 2-D arrays.
    #[test]
    fn transpose_involution(a in arrays()) {
        let t2 = a.transpose().transpose();
        prop_assert!(t2.array_eq(&a));
    }

    /// Subscripting every index of dim 0 and re-concatenating elements
    /// reproduces row-major element order.
    #[test]
    fn subscript_partitions_elements(a in arrays()) {
        prop_assume!(a.ndims() >= 2);
        let mut collected = Vec::new();
        for i in 0..a.shape()[0] {
            collected.extend(a.subscript(0, i).unwrap().elements());
        }
        prop_assert_eq!(collected, a.elements());
    }

    /// The address function agrees with the odometer traversal order.
    #[test]
    fn addresses_match_explicit_indexing(shape in shapes()) {
        let v = ArrayView::contiguous(&shape);
        let addrs = v.addresses();
        // Walk the odometer manually.
        let count: usize = shape.iter().product();
        let mut ix = vec![0usize; shape.len()];
        for (k, addr) in addrs.iter().enumerate().take(count) {
            prop_assert_eq!(*addr, v.address(&ix).unwrap(), "at step {}", k);
            for d in (0..shape.len()).rev() {
                ix[d] += 1;
                if ix[d] < shape[d] { break; }
                ix[d] = 0;
            }
        }
    }

    /// Slicing then materializing equals filtering elements by subscript.
    #[test]
    fn slice_semantics(len in 1usize..40, lo in 0usize..40, stride in 1usize..5, hi in 0usize..40) {
        let lo = lo.min(len - 1);
        let hi = hi.min(len - 1);
        prop_assume!(lo <= hi);
        let a = NumArray::from_i64((0..len as i64).collect());
        let s = a.slice(0, lo, stride, hi).unwrap();
        let expected: Vec<Num> = (lo..=hi).step_by(stride).map(|i| Num::Int(i as i64)).collect();
        prop_assert_eq!(s.elements(), expected);
    }

    /// Element-wise addition commutes and matches scalar arithmetic.
    #[test]
    fn add_commutes(a in arrays()) {
        let b = a.scalar_mul(Num::Int(3)).unwrap();
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert!(ab.array_eq(&ba));
        // a + 3a == 4a element-wise
        let quad = a.scalar_mul(Num::Int(4)).unwrap();
        prop_assert!(ab.array_eq(&quad));
    }

    /// Aggregate sum equals the sum of the element vector.
    #[test]
    fn sum_matches_elements(a in arrays()) {
        let s = a.sum().unwrap().as_i64();
        let expected: i64 = a.elements().iter().map(|n| n.as_i64()).sum();
        prop_assert_eq!(s, expected);
    }

    /// aggregate_dim then aggregate equals whole-array aggregate for sums.
    #[test]
    fn dim_aggregate_composes(a in arrays()) {
        prop_assume!(a.ndims() >= 2);
        let per_row = a.aggregate_dim(ssdm_array::AggregateOp::Sum, a.ndims() - 1).unwrap();
        prop_assert_eq!(per_row.sum().unwrap().as_i64(), a.sum().unwrap().as_i64());
    }

    /// LinearRuns reproduces exactly the view's address stream.
    #[test]
    fn linear_runs_lossless(a in arrays()) {
        let view = a.view();
        let runs = LinearRuns::of_view(view);
        let mut expanded = Vec::new();
        for r in runs.runs() {
            for k in 0..r.len {
                expanded.push(r.start + k * r.step);
            }
        }
        prop_assert_eq!(expanded, view.addresses());
    }

    /// Dereference with full index lists hits the same element as get1.
    #[test]
    fn dereference_matches_get1(a in arrays(), seed in 0u64..1000) {
        let shape = a.shape();
        let ix1: Vec<i64> = shape.iter().enumerate()
            .map(|(d, &s)| 1 + ((seed >> (4 * d)) as usize % s) as i64)
            .collect();
        let subs: Vec<Subscript> = ix1.iter().map(|&i| Subscript::Index(i)).collect();
        let d = a.dereference(&subs).unwrap();
        prop_assert_eq!(d.scalar_value().unwrap(), a.get1(&ix1).unwrap());
    }

    /// map with the identity function preserves the array.
    #[test]
    fn map_identity(a in arrays()) {
        let m = a.map(&Ok).unwrap();
        prop_assert!(m.array_eq(&a));
    }

    /// Serialization of a materialized array round-trips.
    #[test]
    fn serialize_roundtrip(a in arrays()) {
        let m = a.materialize();
        let bytes = m.data().serialize_range(0, m.element_count());
        let back = ssdm_array::ArrayData::deserialize(m.numeric_type(), &bytes).unwrap();
        let rebuilt = NumArray::from_data(back, &m.shape()).unwrap();
        prop_assert!(rebuilt.array_eq(&a));
    }
}
