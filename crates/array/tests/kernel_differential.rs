//! Differential tests: the typed kernels must agree with the retained
//! scalar reference implementations (`*_ref`).
//!
//! * **Int** results are bit-identical, *including* errors: the same
//!   inputs produce the same `ArithmeticOverflow` / `DivisionByZero`.
//! * **Real** elementwise results are bit-identical (`f64::to_bits`).
//! * **Real** Sum/Avg follow the documented pairwise fold order, so
//!   they are compared against a test-local pairwise reference rather
//!   than the sequential `aggregate_ref` fold (DESIGN.md, compute
//!   layer). All other Real aggregates fold sequentially and must
//!   match `aggregate_ref` exactly.
//!
//! Shapes cover empty, one element, around the 4096-element overflow
//! check block, contiguous and strided and transposed views, and both
//! scalar broadcast directions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssdm_array::{AggregateOp, ArrayError, BinOp, Num, NumArray};

const SIZES: &[usize] = &[0, 1, 31, 32, 33, 4095, 4096, 4097];

const BINOPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Pow,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Min,
    BinOp::Max,
];

const AGGS: &[AggregateOp] = &[
    AggregateOp::Sum,
    AggregateOp::Avg,
    AggregateOp::Min,
    AggregateOp::Max,
    AggregateOp::Prod,
    AggregateOp::Count,
];

/// Deterministic Int data salted with the edge values that trip the
/// checked paths (overflow near the extremes, zero divisors).
fn int_data(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| match i % 17 {
            0 => 0,
            1 => i64::MAX,
            2 => i64::MIN,
            3 => -1,
            4 => 1,
            _ => rng.gen_range(-1_000_000..1_000_000),
        })
        .collect()
}

/// Tamer Int data for which elementwise Add/Sub never overflows, so
/// the success path gets exercised on every op too.
fn small_int_data(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i % 11 == 0 {
                0
            } else {
                rng.gen_range(-1000..1000)
            }
        })
        .collect()
}

fn real_data(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| match i % 13 {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            _ => (rng.gen::<f64>() - 0.5) * 1e6,
        })
        .collect()
}

/// Bit-exact equality for non-NaN reals (distinguishes -0.0 from 0.0
/// and the infinities); NaNs compare equal to each other regardless of
/// payload. IEEE 754 leaves NaN sign/payload propagation unspecified
/// and LLVM exploits `fmul`/`fadd` commutativity, so two NaN-producing
/// folds with identical source-level order can legitimately yield
/// different NaN bit patterns.
fn f64_bits_eq(x: f64, y: f64) -> bool {
    (x.is_nan() && y.is_nan()) || x.to_bits() == y.to_bits()
}

fn num_bits_eq(a: &Num, b: &Num) -> bool {
    match (a, b) {
        (Num::Int(x), Num::Int(y)) => x == y,
        (Num::Real(x), Num::Real(y)) => f64_bits_eq(*x, *y),
        _ => false,
    }
}

fn assert_arrays_eq(
    got: &Result<NumArray, ArrayError>,
    want: &Result<NumArray, ArrayError>,
    ctx: &str,
) {
    match (got, want) {
        (Ok(g), Ok(w)) => {
            assert_eq!(g.shape(), w.shape(), "{ctx}: shape");
            assert_eq!(
                g.numeric_type(),
                w.numeric_type(),
                "{ctx}: result buffer type"
            );
            let (ge, we) = (g.elements(), w.elements());
            for (i, (x, y)) in ge.iter().zip(&we).enumerate() {
                assert!(num_bits_eq(x, y), "{ctx}: element {i}: {x:?} vs {y:?}");
            }
        }
        (Err(g), Err(w)) => assert_eq!(g, w, "{ctx}: error"),
        (g, w) => panic!("{ctx}: kernel {g:?} vs reference {w:?}"),
    }
}

fn assert_nums_eq(got: &Result<Num, ArrayError>, want: &Result<Num, ArrayError>, ctx: &str) {
    match (got, want) {
        (Ok(g), Ok(w)) => assert!(num_bits_eq(g, w), "{ctx}: {g:?} vs {w:?}"),
        (Err(g), Err(w)) => assert_eq!(g, w, "{ctx}: error"),
        (g, w) => panic!("{ctx}: kernel {g:?} vs reference {w:?}"),
    }
}

/// The documented system-wide Real Sum order: pairwise split at
/// `len / 2` with sequential base cases of at most 32 elements,
/// starting from the first element.
fn pairwise_ref(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    if xs.len() <= 32 {
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc += x;
        }
        return acc;
    }
    let (lo, hi) = xs.split_at(xs.len() / 2);
    pairwise_ref(lo) + pairwise_ref(hi)
}

/// Every view shape a kernel can see for a given 1-D payload:
/// contiguous, reversed-ish strided slice, 2-D reshape, and its
/// transpose (non-contiguous, stride order inverted).
fn views_of(a: &NumArray) -> Vec<(String, NumArray)> {
    let n = a.element_count();
    let mut out = vec![("contiguous".to_string(), a.clone())];
    if n >= 4 {
        out.push((
            "strided".to_string(),
            a.slice(0, 1, 2, n - 1).expect("strided slice"),
        ));
    }
    if n >= 6 && n.is_multiple_of(2) {
        if let Ok(two_d) = reshape2(a, 2, n / 2) {
            out.push(("matrix".to_string(), two_d.clone()));
            out.push(("transposed".to_string(), two_d.transpose()));
        }
    }
    out
}

fn reshape2(a: &NumArray, rows: usize, cols: usize) -> Result<NumArray, ArrayError> {
    let elems = a.elements();
    let all_int = elems.iter().all(|e| matches!(e, Num::Int(_)));
    if all_int {
        NumArray::from_i64_shaped(
            elems
                .iter()
                .map(|e| match e {
                    Num::Int(v) => *v,
                    Num::Real(_) => unreachable!(),
                })
                .collect(),
            &[rows, cols],
        )
    } else {
        NumArray::from_f64_shaped(elems.iter().map(|e| e.as_f64()).collect(), &[rows, cols])
    }
}

fn int_array(n: usize, seed: u64) -> NumArray {
    NumArray::from_i64(int_data(n, seed))
}

fn real_array(n: usize, seed: u64) -> NumArray {
    NumArray::from_f64(real_data(n, seed))
}

#[test]
fn elementwise_int_matches_reference_bit_identically() {
    for &n in SIZES {
        let a = int_array(n, 11);
        let b = int_array(n, 23);
        for (vn, va) in views_of(&a) {
            for (wn, vb) in views_of(&b) {
                if va.shape() != vb.shape() {
                    continue;
                }
                for &op in BINOPS {
                    let ctx = format!("int {op:?} n={n} {vn}x{wn}");
                    assert_arrays_eq(&va.zip_with(&vb, op), &va.zip_with_ref(&vb, op), &ctx);
                }
            }
        }
    }
}

#[test]
fn elementwise_int_success_paths_match() {
    // Tame data: Add/Sub/Mul stay in range, so the non-error results
    // (not just the errors) are compared for every op.
    for &n in SIZES {
        let a = NumArray::from_i64(small_int_data(n, 31));
        let b = NumArray::from_i64(small_int_data(n, 47));
        for &op in BINOPS {
            let ctx = format!("small int {op:?} n={n}");
            assert_arrays_eq(&a.zip_with(&b, op), &a.zip_with_ref(&b, op), &ctx);
        }
    }
}

#[test]
fn elementwise_real_matches_reference_bit_identically() {
    for &n in SIZES {
        let a = real_array(n, 5);
        let b = real_array(n, 7);
        for (vn, va) in views_of(&a) {
            for (wn, vb) in views_of(&b) {
                if va.shape() != vb.shape() {
                    continue;
                }
                for &op in BINOPS {
                    let ctx = format!("real {op:?} n={n} {vn}x{wn}");
                    assert_arrays_eq(&va.zip_with(&vb, op), &va.zip_with_ref(&vb, op), &ctx);
                }
            }
        }
    }
}

#[test]
fn elementwise_mixed_types_match() {
    for &n in SIZES {
        let a = int_array(n, 13);
        let b = real_array(n, 17);
        for &op in BINOPS {
            let ctx = format!("mixed {op:?} n={n}");
            assert_arrays_eq(&a.zip_with(&b, op), &a.zip_with_ref(&b, op), &ctx);
            let ctx = format!("mixed-rev {op:?} n={n}");
            assert_arrays_eq(&b.zip_with(&a, op), &b.zip_with_ref(&a, op), &ctx);
        }
    }
}

#[test]
fn scalar_broadcast_both_directions_match() {
    let scalars = [
        Num::Int(3),
        Num::Int(0),
        Num::Int(i64::MAX),
        Num::Real(2.5),
        Num::Real(0.0),
        Num::Real(f64::NAN),
    ];
    for &n in SIZES {
        for base in [int_array(n, 41), real_array(n, 43)] {
            for (vn, v) in views_of(&base) {
                for s in scalars {
                    for &op in BINOPS {
                        let ctx = format!("scalar {op:?} {s:?} n={n} {vn}");
                        assert_arrays_eq(&v.scalar_op(s, op), &v.scalar_op_ref(s, op), &ctx);
                        let ctx = format!("scalar-rev {op:?} {s:?} n={n} {vn}");
                        assert_arrays_eq(
                            &v.scalar_op_rev(s, op),
                            &v.scalar_op_rev_ref(s, op),
                            &ctx,
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn negate_matches_reference() {
    for &n in SIZES {
        for base in [int_array(n, 53), real_array(n, 59)] {
            for (vn, v) in views_of(&base) {
                let ctx = format!("negate n={n} {vn}");
                assert_arrays_eq(&v.negate(), &v.negate_ref(), &ctx);
            }
        }
    }
    // i64::MIN is the one Int value whose negation overflows.
    let edge = NumArray::from_i64(vec![1, i64::MIN, 2]);
    assert_arrays_eq(&edge.negate(), &edge.negate_ref(), "negate i64::MIN");
}

#[test]
fn aggregate_int_matches_reference_including_errors() {
    for &n in SIZES {
        for seed in [61, 67] {
            let a = int_array(n, seed);
            for (vn, v) in views_of(&a) {
                for &op in AGGS {
                    let ctx = format!("int agg {op:?} n={n} {vn} seed={seed}");
                    assert_nums_eq(&v.aggregate(op), &v.aggregate_ref(op), &ctx);
                }
            }
        }
    }
    // Prefix overflow the block-level bound cannot prove safe: the
    // wrapping total is fine but the sequential checked fold errors.
    let tricky = NumArray::from_i64(vec![i64::MAX, 1, -2]);
    assert_nums_eq(
        &tricky.aggregate(AggregateOp::Sum),
        &tricky.aggregate_ref(AggregateOp::Sum),
        "prefix-overflow sum",
    );
}

#[test]
fn aggregate_real_matches_documented_fold_order() {
    for &n in SIZES {
        let a = real_array(n, 71);
        for (vn, v) in views_of(&a) {
            // Sum/Avg: pairwise order, compared against the test-local
            // pairwise reference over the view's elements.
            let elems: Vec<f64> = v.elements().iter().map(|e| e.as_f64()).collect();
            if elems.is_empty() {
                // Empty-array typing/errors delegate to the reference.
                for op in [AggregateOp::Sum, AggregateOp::Avg] {
                    let ctx = format!("real empty agg {op:?} {vn}");
                    assert_nums_eq(&v.aggregate(op), &v.aggregate_ref(op), &ctx);
                }
            } else {
                match v.aggregate(AggregateOp::Sum) {
                    Ok(Num::Real(got)) => {
                        let want = pairwise_ref(&elems);
                        assert!(
                            f64_bits_eq(got, want),
                            "real sum n={n} {vn}: {got} vs {want}"
                        );
                    }
                    other => panic!("real sum n={n} {vn}: unexpected {other:?}"),
                }
                match v.aggregate(AggregateOp::Avg) {
                    Ok(Num::Real(got)) => {
                        let want = pairwise_ref(&elems) / elems.len() as f64;
                        assert!(
                            f64_bits_eq(got, want),
                            "real avg n={n} {vn}: {got} vs {want}"
                        );
                    }
                    other => panic!("real avg n={n} {vn}: unexpected {other:?}"),
                }
            }
            // Everything else folds sequentially like the reference.
            for op in [
                AggregateOp::Min,
                AggregateOp::Max,
                AggregateOp::Prod,
                AggregateOp::Count,
            ] {
                let ctx = format!("real agg {op:?} n={n} {vn}");
                assert_nums_eq(&v.aggregate(op), &v.aggregate_ref(op), &ctx);
            }
        }
    }
}

#[test]
fn aggregate_dim_matches_per_lane_aggregate() {
    // Each output element of aggregate_dim must equal aggregating the
    // corresponding lane extracted by subscript — same kernel, same
    // fold order, so bit-identical even for Real Sum/Avg.
    for (rows, cols) in [(0usize, 3usize), (1, 1), (2, 3), (4, 8), (7, 5), (3, 4096)] {
        let n = rows * cols;
        for base in [
            NumArray::from_i64_shaped(int_data(n, 73), &[rows, cols]).unwrap(),
            NumArray::from_f64_shaped(real_data(n, 79), &[rows, cols]).unwrap(),
        ] {
            for m in [base.clone(), base.transpose()] {
                let shape = m.shape();
                for dim in 0..2 {
                    for &op in AGGS {
                        let got = m.aggregate_dim(op, dim);
                        // The kept dimension indexes the lanes.
                        let kept = shape[1 - dim];
                        let mut want: Result<Vec<Num>, ArrayError> = Ok(Vec::new());
                        for i in 0..kept {
                            let lane = m.subscript(1 - dim, i).expect("lane");
                            match (&mut want, lane.aggregate(op)) {
                                (Ok(v), Ok(x)) => v.push(x),
                                (Ok(_), Err(e)) => want = Err(e),
                                (Err(_), _) => break,
                            }
                        }
                        let ctx = format!("aggregate_dim {op:?} dim={dim} shape={shape:?}");
                        match (got, want) {
                            (Ok(g), Ok(w)) => {
                                let ge = g.elements();
                                assert_eq!(ge.len(), w.len(), "{ctx}: length");
                                for (i, (x, y)) in ge.iter().zip(&w).enumerate() {
                                    assert!(num_bits_eq(x, y), "{ctx}: lane {i}: {x:?} vs {y:?}");
                                }
                            }
                            (Err(g), Err(w)) => assert_eq!(g, w, "{ctx}: error"),
                            (g, w) => panic!("{ctx}: {g:?} vs {w:?}"),
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn mixed_min_max_picks_operands_not_promoted_values() {
    // Min/Max over mixed Int/Real operands picks the *operand* per
    // element rather than computing a promoted f64, so the kernel must
    // defer to the reference (per-element result typing feeds the
    // `from_nums` buffer-type decision) and agree exactly.
    let a = NumArray::from_i64(vec![1, 5, -3, 7]);
    let b = NumArray::from_f64(vec![2.0, 4.0, -3.5, 7.0]);
    for op in [BinOp::Min, BinOp::Max] {
        let got = a.zip_with(&b, op).unwrap();
        let want = a.zip_with_ref(&b, op).unwrap();
        assert_eq!(got.numeric_type(), want.numeric_type(), "{op:?} type");
        for (i, (x, y)) in got.elements().iter().zip(&want.elements()).enumerate() {
            assert!(
                num_bits_eq(x, y),
                "mixed {op:?} element {i}: {x:?} vs {y:?}"
            );
        }
    }
    // Spot-check the operand-picking semantics: min(Int 5, Real 4.0)
    // is 4.0, not min(5.0, 4.0) computed then re-typed — visible when
    // the Int side wins: min(Int 1, Real 2.0) keeps the value 1.
    let got = a.zip_with(&b, BinOp::Min).unwrap().elements();
    assert!(
        num_bits_eq(&got[0], &Num::Real(1.0)),
        "element 0: {:?}",
        got[0]
    );
    assert!(
        num_bits_eq(&got[1], &Num::Real(4.0)),
        "element 1: {:?}",
        got[1]
    );
}

#[test]
fn division_always_yields_real_and_flags_zero() {
    let a = NumArray::from_i64(vec![6, 7, 8]);
    let b = NumArray::from_i64(vec![2, 0, 4]);
    let got = a.zip_with(&b, BinOp::Div);
    let want = a.zip_with_ref(&b, BinOp::Div);
    assert_arrays_eq(&got, &want, "int div by zero");
    assert_eq!(got.unwrap_err(), ArrayError::DivisionByZero);
    // Real division by zero does not error (IEEE semantics).
    let c = NumArray::from_f64(vec![1.0, -1.0, 0.0]);
    let d = NumArray::from_f64(vec![0.0, 0.0, 0.0]);
    assert_arrays_eq(
        &c.zip_with(&d, BinOp::Div),
        &c.zip_with_ref(&d, BinOp::Div),
        "real div by zero",
    );
}
