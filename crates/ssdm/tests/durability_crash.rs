//! Crash-point recovery test: for a crash injected at *any* byte
//! boundary of the write-ahead log, recovery must produce a
//! prefix-consistent state — every acknowledged update present, no
//! partial update visible, and the recovered state equal to the state
//! after some prefix of the update schedule.
//!
//! The schedule mixes scalar inserts, array loads above the
//! externalization threshold, deletes, and a mid-sequence checkpoint.
//! A crash-free dry run measures the total raw bytes the WAL writes;
//! the test then sweeps crash budgets across that range (every
//! boundary for small logs, a seeded stride sample otherwise), each
//! time applying the schedule against a fresh durable directory with a
//! [`CrashPlan`], recovering, and matching the recovered signature
//! against the reference prefix states.
//!
//! `SSDM_CRASH_SEED` varies the schedule's values, the torn-sector
//! garbage, and the offset sample (CI runs a small seed matrix).

use std::path::PathBuf;

use ssdm::{Backend, CrashPlan, DurableOptions, Ssdm};
use ssdm_storage::wal::SEGMENT_HEADER;

/// Mirror of `FaultPlan::seed_from_env`, for the crash matrix.
fn seed_from_env(default: u64) -> u64 {
    std::env::var("SSDM_CRASH_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ssdm-crash-{name}-{}-{}",
        std::process::id(),
        seed_from_env(7)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One step of the deterministic update schedule.
enum Op {
    /// A SPARQL update statement (INSERT DATA / DELETE DATA).
    Update(String),
    /// A Turtle load whose collection externalizes into chunk storage.
    Load(String),
    /// A checkpoint: no logical state change, but snapshot + WAL
    /// truncation races with the crash budget.
    Checkpoint,
}

/// Fixed op structure, values varied by the seed. Deletes target the
/// values actually inserted, so they really shrink the state.
fn schedule(seed: u64) -> Vec<Op> {
    let mut rng = seed;
    let mut val = || 1 + splitmix64(&mut rng) % 50;
    let (v0, v1, v2, v3, v4, v5) = (val(), val(), val(), val(), val(), val());
    let arr = |rng: &mut u64, len: usize| {
        (0..len)
            .map(|_| (splitmix64(rng) % 100).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    vec![
        Op::Update(format!("INSERT DATA {{ <http://s0> <http://p> {v0} . }}")),
        Op::Load(format!(
            "<http://a0> <http://arr> ( {} ) .",
            arr(&mut rng, 8)
        )),
        Op::Update(format!("INSERT DATA {{ <http://s1> <http://p> {v1} . }}")),
        Op::Update(format!("DELETE DATA {{ <http://s0> <http://p> {v0} . }}")),
        Op::Checkpoint,
        Op::Update(format!("INSERT DATA {{ <http://s2> <http://p> {v2} . }}")),
        Op::Load(format!(
            "<http://a1> <http://arr> ( {} ) .\n<http://s3> <http://p> {v3} .",
            arr(&mut rng, 12),
        )),
        Op::Update(format!("INSERT DATA {{ <http://s4> <http://p> {v4} . }}")),
        Op::Update(format!("DELETE DATA {{ <http://s2> <http://p> {v2} . }}")),
        Op::Update(format!("INSERT DATA {{ <http://s5> <http://p> {v5} . }}")),
    ]
}

/// Apply one op; `Ok(true)` means the op mutates state and was
/// acknowledged. Errors (journal veto after the simulated crash) are
/// swallowed: a real client would see them and know the update is not
/// durable.
fn apply(db: &mut Ssdm, op: &Op) -> bool {
    match op {
        Op::Update(q) => db.query(q).is_ok(),
        Op::Load(t) => db.load_turtle(t).is_ok(),
        Op::Checkpoint => {
            let _ = db.checkpoint();
            false
        }
    }
}

/// Placement-independent state signature: scalar triples plus array
/// sums and counts, sorted.
fn signature(db: &mut Ssdm) -> Vec<String> {
    let mut sig = Vec::new();
    for (query, tag) in [
        ("SELECT ?s ?o WHERE { ?s <http://p> ?o }", "p"),
        (
            "SELECT ?s (array_sum(?v) AS ?sum) (array_count(?v) AS ?n) \
             WHERE { ?s <http://arr> ?v }",
            "arr",
        ),
    ] {
        let rows = db
            .query(query)
            .expect("signature query")
            .into_rows()
            .expect("rows");
        for row in rows {
            let cells: Vec<String> = row
                .iter()
                .map(|c| c.as_ref().map(|v| v.to_string()).unwrap_or_default())
                .collect();
            sig.push(format!("{tag}:{}", cells.join("|")));
        }
    }
    sig.sort();
    sig
}

/// Reference states after each mutating prefix of the schedule, built
/// on the volatile memory backend (checkpoints are state-neutral and
/// skipped).
fn reference_prefixes(ops: &[Op]) -> Vec<Vec<String>> {
    let mutating = ops
        .iter()
        .filter(|op| !matches!(op, Op::Checkpoint))
        .count();
    let mut prefixes = Vec::with_capacity(mutating + 1);
    for k in 0..=mutating {
        let mut db = Ssdm::open(Backend::Memory);
        db.set_externalize_threshold(4, 64);
        let mut applied = 0;
        for op in ops {
            if applied == k {
                break;
            }
            match op {
                Op::Update(q) => {
                    let _ = db.query(q);
                    applied += 1;
                }
                Op::Load(t) => {
                    db.load_turtle(t).expect("reference load");
                    applied += 1;
                }
                Op::Checkpoint => {}
            }
        }
        prefixes.push(signature(&mut db));
    }
    prefixes
}

#[test]
fn recovery_is_prefix_consistent_at_every_crash_point() {
    let seed = seed_from_env(7);
    let ops = schedule(seed);
    let prefixes = reference_prefixes(&ops);

    // Crash-free dry run: learn the total raw bytes the WAL writes
    // (segment headers + framed records) and check full recovery.
    let dry = tmp_dir("dry");
    let total_bytes = {
        let mut db = Ssdm::open_durable(&dry).unwrap();
        db.set_externalize_threshold(4, 64);
        let mut acked = 0;
        for op in &ops {
            if apply(&mut db, op) {
                acked += 1;
            }
        }
        assert_eq!(acked + 1, prefixes.len(), "crash-free run acks everything");
        let stats = db.durability_stats().unwrap();
        SEGMENT_HEADER as u64 * (1 + stats.wal.segments_rotated) + stats.wal.bytes_appended
    };
    {
        let mut db = Ssdm::open_durable(&dry).unwrap();
        assert_eq!(
            signature(&mut db),
            *prefixes.last().unwrap(),
            "crash-free recovery must reproduce the full schedule"
        );
    }
    let _ = std::fs::remove_dir_all(&dry);

    // Sweep crash budgets: every byte for small logs, otherwise the
    // boundaries plus a seeded stride sample.
    let mut offsets: Vec<u64> = if total_bytes <= 256 {
        (0..=total_bytes).collect()
    } else {
        let mut rng = seed ^ 0xC0FF_EE00;
        let mut offs: Vec<u64> = vec![0, 1, total_bytes - 1, total_bytes];
        let step = (total_bytes / 48).max(1);
        let mut at = 0;
        while at < total_bytes {
            offs.push(at + splitmix64(&mut rng) % step);
            at += step;
        }
        offs
    };
    offsets.sort_unstable();
    offsets.dedup();
    offsets.retain(|&o| o <= total_bytes);

    for &at_bytes in &offsets {
        let dir = tmp_dir("pt");
        let options = DurableOptions {
            crash_plan: Some(CrashPlan {
                at_bytes,
                garbage: at_bytes % 2 == 0,
                seed: seed.wrapping_add(at_bytes),
            }),
            ..DurableOptions::default()
        };
        let acked = match Ssdm::open_durable_with(&dir, options) {
            Ok(mut db) => {
                db.set_externalize_threshold(4, 64);
                let mut acked = 0;
                for op in &ops {
                    if apply(&mut db, op) {
                        acked += 1;
                    }
                }
                acked
            }
            // The crash fired while creating the first segment: nothing
            // was ever acknowledged.
            Err(_) => 0,
        };

        // Recovery must always succeed, whatever the tear looks like.
        let mut db = Ssdm::open_durable(&dir)
            .unwrap_or_else(|e| panic!("recovery failed after crash at byte {at_bytes}: {e}"));
        let recovered = signature(&mut db);
        // rposition: if two prefixes happen to share a signature, credit
        // the larger one so the k >= acked check cannot spuriously fail.
        let matched = prefixes.iter().rposition(|p| *p == recovered);
        let k = matched.unwrap_or_else(|| {
            panic!(
                "crash at byte {at_bytes}: recovered state {recovered:?} \
                 is not any schedule prefix"
            )
        });
        assert!(
            k >= acked,
            "crash at byte {at_bytes}: lost acknowledged updates \
             (recovered prefix {k}, acknowledged {acked})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
