//! Property tests: snapshots round-trip arbitrary engine states —
//! exotic IRIs and literals, empty graphs, Int and Real arrays
//! (including negative zero, bitwise), and the external-array catalog
//! over a reopened file back-end.

use proptest::prelude::*;
use ssdm::{Backend, Ssdm};
use ssdm_array::NumArray;
use ssdm_rdf::{Graph, Term};

/// IRI tail characters: plain ASCII, percent-encodings-as-text,
/// punctuation legal inside an IRIREF, and non-ASCII letters.
const IRI_CHARS: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', '.', '_', '~', '-', '%', '/', '#', '?', '=', 'é', 'λ', '日',
    'ф',
];

/// Literal characters: the escape set (`"`, `\`, newline, carriage
/// return, tab), spaces, ASCII, and non-ASCII.
const STR_CHARS: &[char] = &[
    '"', '\\', '\n', '\r', '\t', ' ', 'a', 'Z', '0', '\'', '<', '>', '{', '}', '^', '@', 'é', 'λ',
    '日', '𝄞',
];

fn chars_from(table: &'static [char], range: std::ops::Range<usize>) -> BoxedStrategy<String> {
    prop::collection::vec(0usize..table.len(), range)
        .prop_map(move |ix| ix.into_iter().map(|i| table[i]).collect())
        .boxed()
}

fn iris() -> BoxedStrategy<String> {
    chars_from(IRI_CHARS, 1..12)
        .prop_map(|tail| format!("http://ex.org/{tail}"))
        .boxed()
}

/// A random object term: exotic strings, language-tagged and typed
/// literals, numbers (finite reals only), booleans, and Int/Real
/// arrays. Real candidates include negative zero.
fn reals() -> BoxedStrategy<f64> {
    prop_oneof![-1.0e12f64..1.0e12, Just(-0.0f64), Just(0.0f64)].boxed()
}

fn objects() -> BoxedStrategy<Term> {
    prop_oneof![
        iris().prop_map(Term::uri),
        chars_from(STR_CHARS, 0..16).prop_map(Term::Str),
        (chars_from(STR_CHARS, 0..10), "[a-z]{2}")
            .prop_map(|(value, lang)| Term::LangStr { value, lang }),
        (chars_from(STR_CHARS, 0..10), iris())
            .prop_map(|(value, datatype)| Term::Typed { value, datatype }),
        any::<i64>().prop_map(Term::integer),
        reals().prop_map(Term::double),
        any::<bool>().prop_map(Term::Bool),
        prop::collection::vec(-1000i64..1000, 1..10)
            .prop_map(|v| Term::Array(NumArray::from_i64(v))),
        prop::collection::vec(reals(), 1..10).prop_map(|v| Term::Array(NumArray::from_f64(v))),
    ]
    .boxed()
}

type Triples = Vec<(String, String, Term)>;

fn triple_sets() -> BoxedStrategy<Triples> {
    prop::collection::vec((iris(), iris(), objects()), 0..12).boxed()
}

fn fill(graph: &mut Graph, triples: &Triples) {
    for (s, p, o) in triples {
        graph.insert(Term::uri(s.clone()), Term::uri(p.clone()), o.clone());
    }
}

fn graphs_equivalent(a: &Graph, b: &Graph) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().all(|t| {
        let (s, p, o) = (a.term(t.s), a.term(t.p), a.term(t.o));
        b.iter()
            .any(|u| b.term(u.s).value_eq(s) && b.term(u.p).value_eq(p) && b.term(u.o).value_eq(o))
    })
}

fn tmp(name: &str, case: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ssdm-psnap-{name}-{}-{case}", std::process::id()))
}

/// Case counter so concurrent proptest cases never share a path.
fn case_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any combination of default graph, named graphs (possibly empty),
    /// and literal shapes survives save → load into a fresh instance.
    #[test]
    fn snapshot_round_trips_random_graphs(
        default in triple_sets(),
        named_list in prop::collection::vec((iris(), triple_sets()), 0..3),
    ) {
        let path = tmp("graphs", case_id());
        let mut db = Ssdm::open(Backend::Memory);
        fill(&mut db.dataset.graph, &default);
        // Duplicate names collapse into one graph, like repeated loads.
        let named: std::collections::BTreeMap<String, Triples> =
            named_list.into_iter().collect();
        for (name, triples) in &named {
            let graph = db.dataset.named_graphs.entry(name.clone()).or_default();
            fill(graph, triples); // may stay empty: empty graphs must survive too
        }
        db.save_snapshot(&path).unwrap();

        let mut back = Ssdm::open(Backend::Memory);
        back.load_snapshot(&path).unwrap();
        prop_assert!(
            graphs_equivalent(&db.dataset.graph, &back.dataset.graph),
            "default graph diverged"
        );
        prop_assert_eq!(db.dataset.named_graphs.len(), back.dataset.named_graphs.len());
        for (name, graph) in &db.dataset.named_graphs {
            let restored = back.dataset.named_graphs.get(name);
            prop_assert!(restored.is_some(), "named graph {} lost", name);
            prop_assert!(
                graphs_equivalent(graph, restored.unwrap()),
                "named graph {} diverged", name
            );
        }
        std::fs::remove_file(&path).ok();
    }

    /// Real arrays round-trip bit-for-bit — `-0.0` keeps its sign.
    #[test]
    fn real_arrays_round_trip_bitwise(
        values in prop::collection::vec(
            prop_oneof![-1.0e9f64..1.0e9, Just(-0.0f64), Just(0.0f64)],
            1..12,
        ),
    ) {
        let path = tmp("bits", case_id());
        let mut db = Ssdm::open(Backend::Memory);
        db.dataset.graph.insert(
            Term::uri("http://s"),
            Term::uri("http://p"),
            Term::Array(NumArray::from_f64(values.clone())),
        );
        db.save_snapshot(&path).unwrap();

        let mut back = Ssdm::open(Backend::Memory);
        back.load_snapshot(&path).unwrap();
        let graph = &back.dataset.graph;
        let restored: Vec<f64> = graph
            .iter()
            .find_map(|t| match graph.term(t.o) {
                Term::Array(a) => Some(
                    (0..values.len())
                        .map(|i| a.get(&[i]).unwrap().as_f64())
                        .collect(),
                ),
                _ => None,
            })
            .expect("array triple restored");
        let got: Vec<u64> = restored.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, want, "bit patterns diverged (values {:?})", values);
        std::fs::remove_file(&path).ok();
    }

    /// The external-array catalog round-trips over a reopened file
    /// back-end: a fresh instance on the same chunk directory restores
    /// proxies that resolve to the original data.
    #[test]
    fn external_catalog_round_trips_over_file_backend(
        values in prop::collection::vec(-10_000i64..10_000, 5..40),
        chunk_bytes in prop_oneof![Just(16usize), Just(64usize), Just(256usize)],
    ) {
        let case = case_id();
        let dir = tmp("chunks", case);
        let path = tmp("external", case);
        let list = values
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        {
            let mut db = Ssdm::open(Backend::File(dir.clone()));
            db.set_externalize_threshold(4, chunk_bytes);
            db.load_turtle(&format!("<http://r> <http://data> ( {list} ) ."))
                .unwrap();
            prop_assert_eq!(db.dataset.arrays.catalog().count(), 1, "array must externalize");
            db.save_snapshot(&path).unwrap();
        }
        let mut back = Ssdm::open(Backend::File(dir.clone()));
        back.load_snapshot(&path).unwrap();
        let rows = back
            .query("SELECT (array_sum(?v) AS ?s) (array_count(?v) AS ?n) \
                    WHERE { <http://r> <http://data> ?v }")
            .unwrap()
            .into_rows()
            .unwrap();
        let sum: i64 = values.iter().sum();
        prop_assert_eq!(rows[0][0].as_ref().unwrap().to_string(), sum.to_string());
        prop_assert_eq!(
            rows[0][1].as_ref().unwrap().to_string(),
            values.len().to_string()
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&dir).ok();
    }
}
