//! End-to-end multi-tenant serving: lifecycle and isolation over both
//! front ends, quota exhaustion and recovery, deterministic fair-share
//! under a synthetic hog, and per-tenant accounting in `/metrics`.
//!
//! Fairness and rate-limit behaviour are asserted against the public
//! admission surfaces (`TenantRegistry::admit` with synthetic
//! `Instant`s, `FairDispatch` pop order) so no test depends on
//! wall-clock sleeps.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use ssdm::server::{Client, Server, ServerConfig};
use ssdm::tenant::{
    FairDispatch, RateLimit, Rejection, TenantCaps, TenantQuotas, TenantRegistry, DEFAULT_QUANTUM,
};
use ssdm::{Backend, Ssdm};

fn start_server(
    tenants: &[(&str, TenantQuotas)],
) -> (SocketAddr, SocketAddr, std::thread::JoinHandle<()>) {
    let mut server = Server::bind_with(
        "127.0.0.1:0",
        Ssdm::open(Backend::Memory),
        ServerConfig::default(),
    )
    .unwrap();
    for (name, quotas) in tenants {
        server
            .add_tenant(name, Ssdm::open(Backend::Memory), *quotas)
            .unwrap();
    }
    let http = server.enable_http("127.0.0.1:0").unwrap();
    let framed = server.local_addr().unwrap();
    let join = std::thread::spawn(move || server.serve().unwrap());
    (framed, http, join)
}

/// One `Connection: close` HTTP exchange; returns (status, body).
fn http_request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf).to_string();
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    http_request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

#[test]
fn framed_tenant_lifecycle_and_isolation() {
    let (framed, _http, join) = start_server(&[
        ("alice", TenantQuotas::default()),
        ("bob", TenantQuotas::default()),
    ]);

    let mut c1 = Client::connect(framed).unwrap();
    assert_eq!(c1.current_tenant().unwrap(), "default");
    c1.use_tenant("alice").unwrap();
    assert_eq!(c1.current_tenant().unwrap(), "alice");
    c1.query("INSERT DATA { <http://s> <http://p> 7 }").unwrap();
    assert!(c1
        .query("ASK { <http://s> <http://p> 7 }")
        .unwrap()
        .contains("true"));

    // Bob and the default tenant run isolated engines: neither sees
    // Alice's row.
    let mut c2 = Client::connect(framed).unwrap();
    assert!(c2
        .query("ASK { <http://s> <http://p> 7 }")
        .unwrap()
        .contains("false"));
    c2.use_tenant("bob").unwrap();
    assert!(c2
        .query("ASK { <http://s> <http://p> 7 }")
        .unwrap()
        .contains("false"));

    // Switching to an unknown tenant fails and leaves the session put.
    assert!(c2.use_tenant("nobody").is_err());
    assert_eq!(c2.current_tenant().unwrap(), "bob");

    // STATS carries the per-tenant admission section.
    assert!(c1.query("STATS").unwrap().contains("tenant"));

    c1.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn http_tenant_routes_and_protocol_conformance() {
    let (framed, http, join) = start_server(&[("alice", TenantQuotas::default())]);

    // Seed Alice through her update endpoint.
    let body = "INSERT DATA { <http://s> <http://p> 9 }";
    let (status, _) = http_request(
        http,
        &format!(
            "POST /tenants/alice/update HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             Content-Type: application/sparql-update\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        ),
    );
    assert_eq!(status, 200);

    // Alice sees her row at her path; the default path does not.
    let ask = "/query?query=ASK%20%7B%20%3Chttp%3A%2F%2Fs%3E%20%3Chttp%3A%2F%2Fp%3E%209%20%7D";
    let (status, body) = http_get(http, &format!("/tenants/alice{ask}"));
    assert_eq!(status, 200);
    assert!(body.contains("true"));
    let (status, body) = http_get(http, ask);
    assert_eq!(status, 200);
    assert!(body.contains("false"));

    // Unknown tenants and unknown tenant endpoints are 404.
    assert_eq!(
        http_get(http, "/tenants/nobody/query?query=ASK%7B%7D").0,
        404
    );
    assert_eq!(http_get(http, "/tenants/alice/metrics").0, 404);

    // Conformance: dataset-scope params and duplicate statement
    // params are refused, parameterized Content-Type is accepted.
    let (status, body) = http_get(
        http,
        "/query?query=ASK%7B%7D&named-graph-uri=http%3A%2F%2Fg",
    );
    assert_eq!(status, 400);
    assert!(body.contains("named-graph-uri"));
    assert_eq!(
        http_get(http, "/query?query=ASK%7B%7D&query=ASK%7B%7D").0,
        400
    );
    let form = "query=ASK%20%7B%7D";
    let (status, _) = http_request(
        http,
        &format!(
            "POST /tenants/alice/query HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             Content-Type: application/x-www-form-urlencoded; charset=UTF-8\r\n\
             Content-Length: {}\r\n\r\n{}",
            form.len(),
            form
        ),
    );
    assert_eq!(status, 200);

    // Per-tenant stats page exists for named tenants.
    assert_eq!(http_get(http, "/tenants/alice/stats").0, 200);

    let mut c = Client::connect(framed).unwrap();
    c.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn rate_quota_rejects_with_429_then_recovers() {
    let registry = TenantRegistry::new(Ssdm::open(Backend::Memory), TenantQuotas::default());
    registry
        .add(
            "alice",
            Ssdm::open(Backend::Memory),
            TenantQuotas {
                rate: Some(RateLimit {
                    per_sec: 1.0,
                    burst: 1.0,
                }),
                ..TenantQuotas::default()
            },
        )
        .unwrap();

    // Synthetic clock: the burst token admits one request, the second
    // at the same instant is over quota, and 1.5 simulated seconds
    // later the bucket has refilled.
    let t0 = Instant::now();
    assert!(registry.admit(Some("alice"), t0).is_ok());
    let why = match registry.admit(Some("alice"), t0) {
        Err(why) => why,
        Ok(_) => panic!("second admission at t0 should be over quota"),
    };
    assert!(matches!(why, Rejection::RateLimited(_)));
    assert_eq!(why.http_status(), 429);
    assert!(registry
        .admit(Some("alice"), t0 + Duration::from_millis(1500))
        .is_ok());

    // The rejection was counted against Alice only.
    let alice = registry.get("alice").unwrap();
    assert_eq!(
        alice
            .counters
            .rejected_rate
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}

#[test]
fn concurrency_quota_rejects_then_recovers_after_finish() {
    let dispatch: FairDispatch<u32> = FairDispatch::new(DEFAULT_QUANTUM, 64);
    let caps = TenantCaps {
        max_concurrent: 1,
        max_queued: 1,
    };

    dispatch.push("alice", caps, 1, 1).unwrap();
    let (name, _) = dispatch.pop().unwrap(); // now active: 1
    assert_eq!(name, "alice");
    dispatch.push("alice", caps, 1, 2).unwrap(); // waiting: 1
    let why = dispatch.push("alice", caps, 1, 3).unwrap_err();
    assert!(matches!(why, Rejection::QuotaExceeded(_)));
    assert_eq!(why.http_status(), 429);

    // Finishing the active job frees an in-flight slot.
    dispatch.finish("alice");
    dispatch.push("alice", caps, 1, 3).unwrap();
}

#[test]
fn fair_share_serves_interactive_tenant_under_synthetic_hog() {
    let dispatch: FairDispatch<usize> = FairDispatch::new(DEFAULT_QUANTUM, 0);
    let caps = TenantCaps {
        max_concurrent: 64,
        max_queued: 64,
    };

    // A hog floods the queue with 20 quantum-sized jobs before the
    // interactive tenant's two small ones arrive.
    for i in 0..20 {
        dispatch.push("hog", caps, DEFAULT_QUANTUM, i).unwrap();
    }
    dispatch.push("mouse", caps, 1, 100).unwrap();
    dispatch.push("mouse", caps, 1, 101).unwrap();

    let mut order = Vec::new();
    for _ in 0..22 {
        let (name, _) = dispatch.pop().unwrap();
        dispatch.finish(&name);
        order.push(name);
    }
    // Deficit round robin interleaves by byte budget: both interactive
    // jobs are served within the first round instead of queueing
    // behind the hog's backlog (FIFO would put them at positions
    // 21-22).
    let last_mouse = order.iter().rposition(|n| n == "mouse").unwrap();
    assert!(
        last_mouse <= 4,
        "interactive tenant starved: pop order {order:?}"
    );
}

#[test]
fn per_tenant_counters_reconcile_in_metrics() {
    let (framed, http, join) = start_server(&[("alice", TenantQuotas::default())]);

    let ok = "/tenants/alice/query?query=ASK%7B%7D";
    assert_eq!(http_get(http, ok).0, 200);
    assert_eq!(http_get(http, ok).0, 200);
    // A parse error executes and fails: counted as an error, not a
    // rejection.
    assert_eq!(
        http_get(http, "/tenants/alice/query?query=NOT%20SPARQL").0,
        400
    );
    assert_eq!(http_get(http, "/query?query=ASK%7B%7D").0, 200);

    let (status, metrics) = http_get(http, "/metrics");
    assert_eq!(status, 200);
    let series = |name: &str, tenant: &str| -> u64 {
        let needle = format!("{name}{{tenant=\"{tenant}\"}} ");
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&needle))
            .unwrap_or_else(|| panic!("missing series {needle} in:\n{metrics}"))
            .trim()
            .parse()
            .unwrap()
    };

    // Alice: 3 admitted, 2 completed, 1 error; nothing timed out or
    // rejected. The books balance exactly.
    assert_eq!(series("ssdm_tenant_admitted_total", "alice"), 3);
    assert_eq!(series("ssdm_tenant_completed_total", "alice"), 2);
    assert_eq!(series("ssdm_tenant_errors_total", "alice"), 1);
    assert_eq!(series("ssdm_tenant_timed_out_total", "alice"), 0);
    assert_eq!(series("ssdm_tenant_rejected_rate_total", "alice"), 0);

    // The default tenant's one finished query reconciles too; the
    // in-flight /metrics request itself is the only unfinished one.
    let admitted = series("ssdm_tenant_admitted_total", "default");
    let done = series("ssdm_tenant_completed_total", "default")
        + series("ssdm_tenant_errors_total", "default")
        + series("ssdm_tenant_timed_out_total", "default");
    assert_eq!(admitted, done + 1);

    let mut c = Client::connect(framed).unwrap();
    c.shutdown().unwrap();
    join.join().unwrap();
}
