//! Data loaders (thesis §5.3).
//!
//! * Turtle documents and files, with nested-collection consolidation
//!   into arrays (§5.3.2) — both at parse time (condensed syntax) and
//!   as a post-pass over `rdf:first`/`rdf:rest` lists;
//! * **file links** (§5.3.1): arrays already sitting in external binary
//!   files are *linked* into the RDF graph as proxies without loading
//!   their elements — the mediator scenario of ch. 6.

use std::path::Path;

use scisparql::QueryError;
use ssdm_array::NumericType;
use ssdm_rdf::{consolidate_collections, ConsolidationReport, Term};
use ssdm_storage::{ArrayMeta, Chunking};

use crate::Ssdm;

impl Ssdm {
    /// Load a Turtle file from disk.
    pub fn load_turtle_file(&mut self, path: &Path) -> Result<usize, QueryError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| QueryError::Eval(format!("cannot read {}: {e}", path.display())))?;
        self.load_turtle(&text)
    }

    /// Run the collection-consolidation pass over the loaded graph:
    /// numeric rectangular `rdf:first`/`rdf:rest` lists become array
    /// values. Useful after importing N-Triples exports.
    pub fn consolidate_collections(&mut self) -> ConsolidationReport {
        let report = consolidate_collections(&mut self.dataset.graph);
        // Newly created arrays may exceed the externalization threshold.
        let _ = self.dataset.externalize_large_arrays();
        report
    }

    /// Link an array that already exists in the back-end (written by an
    /// external tool) into the graph: `subject predicate -> proxy`.
    /// The elements are never loaded; queries resolve them lazily.
    pub fn link_external_array(
        &mut self,
        subject: Term,
        predicate: Term,
        array_id: u64,
        numeric_type: NumericType,
        shape: Vec<usize>,
        chunk_bytes: usize,
    ) -> Result<(), QueryError> {
        let total: usize = shape.iter().product();
        let meta = ArrayMeta {
            array_id,
            numeric_type,
            shape,
            chunking: Chunking::new(chunk_bytes, total),
            // External tools write raw little-endian elements, not
            // SCC1 codec frames.
            encoded: false,
        };
        let proxy = self.dataset.arrays.link_external(meta);
        self.dataset
            .graph
            .insert(subject, predicate, Term::ArrayRef(proxy.array_id()));
        Ok(())
    }

    /// Store a resident array in the back-end and link it under
    /// `subject predicate`. Returns the array id.
    pub fn store_linked_array(
        &mut self,
        subject: Term,
        predicate: Term,
        array: &ssdm_array::NumArray,
    ) -> Result<u64, QueryError> {
        let chunk_bytes = self.dataset.chunk_bytes;
        let proxy = self.dataset.arrays.store_array(array, chunk_bytes)?;
        let id = proxy.array_id();
        self.dataset
            .graph
            .insert(subject, predicate, Term::ArrayRef(id));
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;
    use ssdm_array::NumArray;
    use ssdm_storage::ChunkStore;

    #[test]
    fn consolidation_pass_after_ntriples_import() {
        let mut db = Ssdm::open(Backend::Memory);
        // Simulate an N-Triples import: expanded list form.
        let mut g = ssdm_rdf::Graph::new();
        ssdm_rdf::turtle::parse_into_with(
            &mut g,
            "<http://s> <http://p> (1 2 3 4) .",
            ssdm_rdf::turtle::ParseOptions {
                consolidate_arrays: false,
            },
        )
        .unwrap();
        let text = ssdm_rdf::ntriples::serialize(&g);
        db.load_turtle(&text).unwrap();
        assert!(db.dataset.graph.len() > 1);
        let report = db.consolidate_collections();
        assert_eq!(report.arrays, 1);
        assert_eq!(db.dataset.graph.len(), 1);
    }

    #[test]
    fn file_link_mediator_scenario() {
        let dir = std::env::temp_dir().join(format!("ssdm-link-{}", std::process::id()));
        let mut db = Ssdm::open(Backend::File(dir.clone()));
        // An external tool wrote array 42 directly into the store.
        let chunking = Chunking::new(16, 6);
        db.dataset.arrays.backend_mut().begin_array(42, 16).unwrap();
        for c in 0..chunking.chunk_count() {
            let (s, e) = chunking.chunk_span(c);
            let bytes: Vec<u8> = (s..e)
                .flat_map(|i| ((i * i) as i64).to_le_bytes())
                .collect();
            db.dataset
                .arrays
                .backend_mut()
                .put_chunk(42, c, &bytes)
                .unwrap();
        }
        db.link_external_array(
            Term::uri("http://exp1"),
            Term::uri("http://result"),
            42,
            NumericType::Int,
            vec![6],
            16,
        )
        .unwrap();
        let rows = db
            .query("SELECT (?r[3] AS ?v) (array_sum(?r) AS ?s) WHERE { <http://exp1> <http://result> ?r }")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "4");
        assert_eq!(rows[0][1].as_ref().unwrap().to_string(), "55");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_linked_array_round_trip() {
        let mut db = Ssdm::open(Backend::Relational);
        let a = NumArray::from_f64((0..50).map(|i| i as f64 / 2.0).collect());
        db.store_linked_array(Term::uri("http://r"), Term::uri("http://v"), &a)
            .unwrap();
        let rows = db
            .query("SELECT (array_max(?v) AS ?m) WHERE { <http://r> <http://v> ?v }")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "24.5");
    }
}
