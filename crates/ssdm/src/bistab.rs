//! The BISTAB application (thesis §6.4).
//!
//! BISTAB is a computational-biology parameter study of a bistable
//! genetic toggle switch: thousands of stochastic-simulation *tasks*,
//! each defined by reaction-rate parameters `k_1`, `k_a`, `k_d`, `k_4`,
//! a `realization` number, and producing a `result` flag plus numeric
//! trajectory arrays (Fig. 2/3: tasks × variables, with array-valued
//! instances). The original dataset is not redistributable, so this
//! module generates a synthetic instance with the same schema,
//! cardinalities and value distributions, modelled as *RDF with Arrays*
//! exactly as §6.4.2 describes: one node per task, one property per
//! variable, trajectory arrays as values.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scisparql::QueryError;
use ssdm_array::NumArray;
use ssdm_rdf::Term;

use crate::Ssdm;

pub const NS: &str = "http://udbl.uu.se/bistab#";

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct BistabConfig {
    /// Number of simulation tasks.
    pub tasks: usize,
    /// Realizations per parameter point.
    pub realizations: usize,
    /// Trajectory length (time steps) per task.
    pub trajectory_len: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for BistabConfig {
    fn default() -> Self {
        BistabConfig {
            tasks: 100,
            realizations: 4,
            trajectory_len: 256,
            seed: 7,
        }
    }
}

fn uri(local: &str) -> Term {
    Term::uri(format!("{NS}{local}"))
}

/// Load a synthetic BISTAB experiment into an SSDM instance. Returns
/// the number of tasks created. Trajectory arrays follow the dataset's
/// externalization threshold (call
/// [`Ssdm::set_externalize_threshold`] first to store them externally).
pub fn load_bistab(db: &mut Ssdm, config: &BistabConfig) -> Result<usize, QueryError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let task_p = uri("task");
    let experiment = uri("experiment1");
    for t in 0..config.tasks {
        let task = uri(&format!("task{t}"));
        // Parameter point (log-uniform-ish positive rates, like the
        // thesis' example magnitudes: k_1 ~ 30, k_a ~ 70, k_d ~ 1e8).
        let k1 = 10.0 + rng.gen::<f64>() * 40.0;
        let ka = 30.0 + rng.gen::<f64>() * 60.0;
        let kd = 1.0e8 * (0.5 + rng.gen::<f64>() * 9.5);
        let k4 = 40.0 + rng.gen::<f64>() * 40.0;
        let realization = (t % config.realizations) as i64 + 1;
        // Simulate a toggle-switch trajectory: a birth–death walk that
        // settles into one of two stable levels; `result` records
        // whether it switched.
        let high = k1 * 4.0;
        let low = k4 / 8.0;
        let switched = rng.gen::<f64>() < 0.5;
        let target = if switched { high } else { low };
        let mut level = (high + low) / 2.0;
        let mut traj = Vec::with_capacity(config.trajectory_len);
        for _ in 0..config.trajectory_len {
            let noise = (rng.gen::<f64>() - 0.5) * target.max(1.0) * 0.1;
            level += (target - level) * 0.1 + noise;
            traj.push(level.max(0.0));
        }
        let trajectory = NumArray::from_f64(traj);

        let g = &mut db.dataset.graph;
        g.insert(experiment.clone(), task_p.clone(), task.clone());
        g.insert(task.clone(), uri("k_1"), Term::double(k1));
        g.insert(task.clone(), uri("k_a"), Term::double(ka));
        g.insert(task.clone(), uri("k_d"), Term::double(kd));
        g.insert(task.clone(), uri("k_4"), Term::double(k4));
        g.insert(task.clone(), uri("realization"), Term::integer(realization));
        g.insert(
            task.clone(),
            uri("result"),
            Term::integer(i64::from(switched)),
        );
        g.insert(task.clone(), uri("trajectory"), Term::Array(trajectory));
    }
    db.dataset.externalize_large_arrays()?;
    Ok(config.tasks)
}

/// The four BISTAB application queries (§6.4.4), parameterized by the
/// vocabulary prefix. Q1 filters on metadata only; Q2 fetches single
/// array elements; Q3 aggregates an array slice per matching task; Q4
/// combines a metadata join with whole-trajectory aggregation.
pub fn queries() -> Vec<(&'static str, String)> {
    let prologue = format!("PREFIX b: <{NS}>\n");
    vec![
        (
            "Q1",
            format!(
                "{prologue}SELECT ?task ?k1 WHERE {{
                   ?task b:k_1 ?k1 ; b:result 1 .
                   FILTER (?k1 > 30)
                 }}"
            ),
        ),
        (
            "Q2",
            format!(
                "{prologue}SELECT ?task (?tr[1] AS ?first) (?tr[-1] AS ?last) WHERE {{
                   ?task b:trajectory ?tr ; b:realization 1 .
                 }}"
            ),
        ),
        (
            "Q3",
            format!(
                "{prologue}SELECT ?task (array_avg(?tr[1:32]) AS ?early) WHERE {{
                   ?task b:trajectory ?tr ; b:result 1 .
                 }}"
            ),
        ),
        (
            "Q4",
            format!(
                "{prologue}SELECT (AVG(?m) AS ?avgmax) (COUNT(?task) AS ?n) WHERE {{
                   ?task b:k_1 ?k1 ; b:trajectory ?tr .
                   FILTER (?k1 > 25)
                   BIND (array_max(?tr) AS ?m)
                 }}"
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;

    fn small() -> BistabConfig {
        BistabConfig {
            tasks: 20,
            realizations: 4,
            trajectory_len: 64,
            seed: 1,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = Ssdm::open(Backend::Memory);
        let mut b = Ssdm::open(Backend::Memory);
        load_bistab(&mut a, &small()).unwrap();
        load_bistab(&mut b, &small()).unwrap();
        assert_eq!(a.dataset.graph.len(), b.dataset.graph.len());
        let q = "PREFIX b: <http://udbl.uu.se/bistab#>
                 SELECT (SUM(?k) AS ?s) WHERE { ?t b:k_1 ?k }";
        let ra = a.query(q).unwrap().into_rows().unwrap();
        let rb = b.query(q).unwrap().into_rows().unwrap();
        assert_eq!(
            ra[0][0].as_ref().unwrap().to_string(),
            rb[0][0].as_ref().unwrap().to_string()
        );
    }

    #[test]
    fn schema_shape() {
        let mut db = Ssdm::open(Backend::Memory);
        load_bistab(&mut db, &small()).unwrap();
        // 8 triples per task (incl. experiment membership).
        assert_eq!(db.dataset.graph.len(), 20 * 8);
    }

    #[test]
    fn all_queries_run_on_all_backends() {
        for backend in [Backend::Memory, Backend::Relational] {
            let mut db = Ssdm::open(backend);
            db.set_externalize_threshold(32, 128);
            load_bistab(&mut db, &small()).unwrap();
            for (name, q) in queries() {
                let rows = db
                    .query(&q)
                    .unwrap_or_else(|e| panic!("{name} failed: {e}"))
                    .into_rows()
                    .unwrap();
                assert!(!rows.is_empty(), "{name} returned no rows");
            }
        }
    }

    #[test]
    fn externalized_matches_resident_results() {
        let mut resident = Ssdm::open(Backend::Memory);
        load_bistab(&mut resident, &small()).unwrap();
        let mut external = Ssdm::open(Backend::Relational);
        external.set_externalize_threshold(16, 64);
        load_bistab(&mut external, &small()).unwrap();
        for (name, q) in queries() {
            let a = resident.query(&q).unwrap().into_rows().unwrap();
            let b = external.query(&q).unwrap().into_rows().unwrap();
            assert_eq!(a.len(), b.len(), "{name} row count");
            let render = |rows: &Vec<Vec<Option<scisparql::Value>>>| {
                let mut v: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        r.iter()
                            .map(|c| c.as_ref().map(|x| x.to_string()).unwrap_or_default())
                            .collect::<Vec<_>>()
                            .join("|")
                    })
                    .collect();
                v.sort();
                v
            };
            // Real aggregates fold pairwise over resident lanes but
            // per-chunk on the streamed path, so sums/averages may
            // differ in the last few ulps (DESIGN.md, compute layer).
            // Everything non-numeric must match exactly; numbers match
            // to a tight relative tolerance.
            let (ra, rb) = (render(&a), render(&b));
            for (x, y) in ra.iter().zip(&rb) {
                if x == y {
                    continue;
                }
                let (cx, cy): (Vec<&str>, Vec<&str>) =
                    (x.split('|').collect(), y.split('|').collect());
                assert_eq!(cx.len(), cy.len(), "{name} column count");
                for (fx, fy) in cx.iter().zip(&cy) {
                    if fx == fy {
                        continue;
                    }
                    let (px, py): (f64, f64) = (
                        fx.parse().unwrap_or_else(|_| {
                            panic!("{name}: non-numeric field differs: {fx} vs {fy}")
                        }),
                        fy.parse().unwrap_or_else(|_| {
                            panic!("{name}: non-numeric field differs: {fx} vs {fy}")
                        }),
                    );
                    let scale = px.abs().max(py.abs()).max(1.0);
                    assert!(
                        (px - py).abs() <= scale * 1e-12,
                        "{name}: {fx} vs {fy} beyond fold-order tolerance"
                    );
                }
            }
        }
    }
}
