//! Client–server deployment over TCP (thesis §5.1, ch. 7).
//!
//! SSDM "can be utilized as a stand-alone system, a client-server
//! system, or a cluster of processes"; the Matlab integration of ch. 7
//! speaks to an SSDM server over TCP. This module implements that wire
//! layer with a minimal framed protocol:
//!
//! * request: `u32` length (LE) + UTF-8 SciSPARQL statement;
//! * response: `u8` status (0 = ok, 1 = error) + `u32` length + UTF-8
//!   payload. SELECT results serialize as TSV (header line of variable
//!   names, then one row per solution, arrays in collection notation);
//!   ASK returns `true`/`false`; updates return `inserted N deleted M`.
//!
//! Six statements are handled by the wire layer itself: `SHUTDOWN`
//! stops the server, `STATS` returns the session tenant's back-end /
//! cache / resilience / APR / durability statistics plus the
//! per-tenant admission counters, `METRICS` returns the Prometheus
//! dump (tenant-labelled series included), `CHECKPOINT` runs a
//! durability checkpoint on the session tenant's engine (an error on
//! non-durable engines), `USE <tenant>` switches the session to a
//! registered tenant, and `TENANT` reports the session's current
//! tenant.
//!
//! An optional HTTP front end ([`Server::enable_http`], the `--http`
//! flag of `ssdm-server`; [`Server::enable_metrics`]/`--metrics` is an
//! alias) serves the SPARQL 1.1 Protocol plus the same Prometheus dump
//! over [`crate::http`]'s event-loop core, sharing this server's engine
//! and graceful drain.
//!
//! # Concurrency and fairness
//!
//! Each accepted connection gets its own thread (capped at
//! [`ServerConfig::max_connections`]; over-cap connections get a flat
//! status-1 busy reply), but statement *execution* is bounded by
//! [`ServerConfig::workers`] slots handed out by a deficit-round-robin
//! [`FairGate`] keyed on the session's tenant — so a tenant bursting
//! hundreds of statements cannot starve another tenant's interactive
//! queries, which used to be possible with the FIFO worker handoff.
//! Per tenant, evaluation serializes on that tenant's engine mutex
//! (the concurrency model of a main-memory DBMS with one query engine
//! per tenant); different tenants' statements genuinely run in
//! parallel. A slow or stalled *client* occupies one connection
//! thread, never an execution slot.
//!
//! # Hardening
//!
//! A production server must survive misbehaving peers and its own query
//! engine (the storage back-end may already be degraded under faults):
//!
//! * per-connection **read/write timeouts** so a stalled client cannot
//!   pin its worker thread forever;
//! * **frame caps in both directions** — an oversized *request* gets a
//!   status-1 reply and the connection is dropped (the stream can no
//!   longer be trusted to be in frame sync); an oversized *response* is
//!   replaced server-side by a status-1 "response too large" frame so
//!   client framing never desynchronizes;
//! * a cap on **consecutive protocol errors** (non-UTF-8 statements)
//!   before the peer is dropped;
//! * **panic isolation**: a query-engine panic is caught and turned into
//!   a status-1 response for that connection; the process and other
//!   sessions keep running (a poisoned engine mutex is recovered — the
//!   engine holds no cross-statement invariants over a panic edge).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use scisparql::{QueryError, QueryResult};

use crate::http::{HttpConfig, HttpServer};
use crate::tenant::{FairGate, Rejection, Tenant, TenantQuotas, TenantRegistry};
use crate::Ssdm;

/// Default protocol limit: 64 MiB per message.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Knobs of the hardened server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Largest request or response payload, in bytes.
    pub max_frame: u32,
    /// Per-connection read timeout (None = block forever).
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout.
    pub write_timeout: Option<Duration>,
    /// Consecutive protocol errors (malformed statements) tolerated on
    /// one connection before it is dropped.
    pub max_protocol_errors: u32,
    /// Statement-execution slots (minimum 1), handed out in
    /// deficit-round-robin order across tenants.
    pub workers: usize,
    /// Concurrent connections served (each on its own thread);
    /// connections beyond this get a status-1 busy reply and are
    /// dropped.
    pub max_connections: usize,
    /// Graceful-drain bound after `SHUTDOWN`: in-flight requests finish
    /// and get their responses, idle connections close, and a peer
    /// stalled mid-frame is abandoned once this much drain time has
    /// elapsed — so `serve` returns within roughly this bound plus the
    /// longest in-flight statement.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_frame: MAX_FRAME,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_protocol_errors: 3,
            workers: 4,
            max_connections: 1024,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Shared shutdown-drain state: flipped by the worker that receives
/// `SHUTDOWN` (or by the HTTP front end on SIGTERM), observed by every
/// connection loop.
pub(crate) struct DrainState {
    draining: AtomicBool,
    deadline: Mutex<Option<Instant>>,
}

impl DrainState {
    pub(crate) fn new() -> Self {
        DrainState {
            draining: AtomicBool::new(false),
            deadline: Mutex::new(None),
        }
    }

    pub(crate) fn begin(&self, timeout: Duration) {
        *self.deadline.lock().expect("drain deadline") = Some(Instant::now() + timeout);
        self.draining.store(true, Ordering::SeqCst);
    }

    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Drain time left, floored so an expired deadline still gives the
    /// socket a non-zero (i.e. not "block forever") timeout.
    pub(crate) fn remaining(&self) -> Option<Duration> {
        if !self.draining() {
            return None;
        }
        let deadline = self.deadline.lock().expect("drain deadline");
        Some(
            deadline
                .map(|d| d.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::ZERO)
                .max(Duration::from_millis(10)),
        )
    }
}

/// A running SSDM server.
pub struct Server {
    listener: TcpListener,
    db: Ssdm,
    config: ServerConfig,
    /// HTTP front ends ([`Server::enable_http`], [`Server::enable_metrics`])
    /// sharing the framed server's tenant registry; started by
    /// [`Server::serve`].
    http: Vec<HttpServer>,
    /// Additional named tenants registered before serving
    /// ([`Server::add_tenant`]); `db` becomes the default tenant.
    tenants: Vec<(String, Ssdm, TenantQuotas)>,
    /// Quotas applied to the default tenant.
    default_quotas: TenantQuotas,
}

/// What reading one request frame produced.
enum Frame {
    /// Peer closed (or timed out — either way the connection ends).
    Closed,
    Payload(Vec<u8>),
    /// Peer announced a frame over the cap; the stream is out of sync.
    TooLarge(u32),
}

impl Server {
    /// Bind to an address (use port 0 for an ephemeral port) with
    /// default hardening limits.
    pub fn bind(addr: impl ToSocketAddrs, db: Ssdm) -> std::io::Result<Server> {
        Self::bind_with(addr, db, ServerConfig::default())
    }

    /// Bind with explicit [`ServerConfig`] limits.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        db: Ssdm,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            db,
            config,
            http: Vec::new(),
            tenants: Vec::new(),
            default_quotas: TenantQuotas::default(),
        })
    }

    /// Quotas for the default tenant (the engine passed to
    /// [`Server::bind`]). Generous by default.
    pub fn set_default_quotas(&mut self, quotas: TenantQuotas) {
        self.default_quotas = quotas;
    }

    /// Register an additional named tenant with its own engine and
    /// quotas, served by both the framed wire (`USE <name>`) and HTTP
    /// (`/tenants/<name>/...`) once [`Server::serve`] starts.
    pub fn add_tenant(&mut self, name: &str, db: Ssdm, quotas: TenantQuotas) -> Result<(), String> {
        if name == crate::tenant::DEFAULT_TENANT || self.tenants.iter().any(|(n, _, _)| n == name) {
            return Err(format!("tenant {name:?} already exists"));
        }
        self.tenants.push((name.to_string(), db, quotas));
        Ok(())
    }

    /// The bound address (to hand to clients).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Bind a SPARQL 1.1 Protocol HTTP front end (use port 0 for an
    /// ephemeral port); returns the bound address. The endpoint starts
    /// with [`Server::serve`], shares the framed server's engine, and
    /// drains gracefully with it: `SHUTDOWN` over the framed wire also
    /// drains HTTP, and a SIGTERM caught by the HTTP front end (see
    /// [`crate::http::prepare_signal_drain`]) also drains the framed
    /// side.
    pub fn enable_http(
        &mut self,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<std::net::SocketAddr> {
        self.enable_http_with(addr, HttpConfig::default())
    }

    /// [`Server::enable_http`] with explicit [`HttpConfig`] knobs.
    pub fn enable_http_with(
        &mut self,
        addr: impl ToSocketAddrs,
        config: HttpConfig,
    ) -> std::io::Result<std::net::SocketAddr> {
        let server = HttpServer::bind(addr, config)?;
        let bound = server.local_addr()?;
        self.http.push(server);
        Ok(bound)
    }

    /// Bind a Prometheus metrics endpoint (use port 0 for an ephemeral
    /// port); returns the bound address. An alias for
    /// [`Server::enable_http`] kept for the `--metrics` flag: the
    /// endpoint is a full HTTP front end, so `/metrics` scrapes ride
    /// the same event loop (and graceful drain) as `/query`.
    pub fn enable_metrics(
        &mut self,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<std::net::SocketAddr> {
        self.enable_http(addr)
    }

    /// Serve connections until a client sends the statement `SHUTDOWN`.
    ///
    /// Each accepted connection runs on its own thread (capped at
    /// [`ServerConfig::max_connections`]) and carries any number of
    /// statements until the peer closes it; statement execution is
    /// bounded by [`ServerConfig::workers`] slots granted in
    /// deficit-round-robin order across tenants. A connection-level
    /// I/O error drops that connection only — the server keeps
    /// serving. On SHUTDOWN the server drains gracefully: the acceptor
    /// stops taking connections, requests already in flight finish and
    /// get their responses, idle connections close within one poll
    /// slice, and peers stalled mid-frame are abandoned after
    /// [`ServerConfig::drain_timeout`] — so this returns within
    /// roughly that bound plus the longest in-flight statement.
    pub fn serve(self) -> std::io::Result<()> {
        let Server {
            listener,
            db,
            config,
            http,
            tenants,
            default_quotas,
        } = self;
        let engine = Arc::new(Mutex::new(db));
        let registry = Arc::new(TenantRegistry::from_shared(
            Arc::clone(&engine),
            default_quotas,
        ));
        for (name, db, quotas) in tenants {
            registry
                .add(&name, db, quotas)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        }
        let gate = Arc::new(FairGate::new(config.workers.max(1)));
        let shutdown = Arc::new(AtomicBool::new(false));
        let drain = Arc::new(DrainState::new());
        let wake_addr = listener.local_addr()?;
        // Start each HTTP front end on its own thread. Whichever side
        // stops first (SHUTDOWN over the framed wire, a SIGTERM caught
        // by an HTTP signal fd, or a ShutdownHandle) drags the other
        // into its graceful drain.
        let mut http_handles = Vec::new();
        let mut http_joins = Vec::new();
        for server in http {
            http_handles.push(server.shutdown_handle()?);
            let registry = Arc::clone(&registry);
            let shutdown = Arc::clone(&shutdown);
            let drain = Arc::clone(&drain);
            let drain_timeout = config.drain_timeout;
            http_joins.push(std::thread::spawn(move || {
                let result = server.serve_registry(registry);
                if !shutdown.swap(true, Ordering::SeqCst) {
                    // The HTTP side went down first: drain the framed
                    // side too (the acceptor may be blocked in accept).
                    drain.begin(drain_timeout);
                    let _ = TcpStream::connect(wake_addr);
                }
                result
            }));
        }
        let live = Arc::new(AtomicUsize::new(0));
        let mut joins: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let framed = loop {
            let stream = match listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(e) => break Err(e),
            };
            if shutdown.load(Ordering::SeqCst) {
                break Ok(());
            }
            // Reap finished connection threads so the handle list stays
            // proportional to live connections, not total served.
            joins.retain(|j| !j.is_finished());
            if live.load(Ordering::SeqCst) >= config.max_connections {
                let mut stream = stream;
                let _ = write_response(
                    &mut stream,
                    1,
                    "503 server busy: connection limit reached",
                    config.max_frame,
                );
                continue;
            }
            live.fetch_add(1, Ordering::SeqCst);
            let registry = Arc::clone(&registry);
            let gate = Arc::clone(&gate);
            let drain = Arc::clone(&drain);
            let shutdown = Arc::clone(&shutdown);
            let live = Arc::clone(&live);
            joins.push(std::thread::spawn(move || {
                let outcome = handle_connection(stream, &registry, &gate, &config, &drain);
                live.fetch_sub(1, Ordering::SeqCst);
                if let Ok(true) = outcome {
                    drain.begin(config.drain_timeout);
                    shutdown.store(true, Ordering::SeqCst);
                    // The acceptor may be blocked in accept(): poke it
                    // with a throwaway connection so it notices.
                    let _ = TcpStream::connect(wake_addr);
                }
            }));
        };
        // In-flight connections finish their drain before we return.
        for join in joins {
            let _ = join.join();
        }
        // Framed side done: drain the HTTP front ends (a no-op for any
        // that initiated the shutdown and already returned).
        for handle in &http_handles {
            handle.shutdown();
        }
        let mut http_error = None;
        for join in http_joins {
            match join.join() {
                Ok(Err(e)) if http_error.is_none() => http_error = Some(e),
                _ => {}
            }
        }
        match (framed, http_error) {
            (Err(e), _) => Err(e),
            (Ok(()), Some(e)) => Err(e),
            (Ok(()), None) => Ok(()),
        }
    }
}

/// How often an idle connection re-checks its idle deadline and the
/// shutdown-drain flag while waiting for request bytes.
const POLL_SLICE: Duration = Duration::from_millis(50);

/// Wait until the connection has request bytes pending, the peer
/// closes, the idle read timeout expires, or a shutdown drain begins —
/// whichever comes first. Returns whether a request is arriving.
///
/// Polling with `peek` (which never consumes) lets the timeout fire
/// between frames only; once bytes are pending, `read_frame` reads them
/// with exact blocking reads and the framing cannot tear. This is also
/// what lets an *idle* connection notice `SHUTDOWN` within one poll
/// slice instead of pinning its worker — and the whole server — for the
/// full idle timeout.
fn await_request(
    stream: &TcpStream,
    config: &ServerConfig,
    drain: &DrainState,
) -> std::io::Result<bool> {
    use std::io::ErrorKind;
    let idle_deadline = config.read_timeout.map(|t| Instant::now() + t);
    loop {
        if drain.draining() {
            // Nothing of this connection's is in flight (bytes already
            // pending won the peek on an earlier iteration): close.
            return Ok(false);
        }
        let mut slice = POLL_SLICE;
        if let Some(deadline) = idle_deadline {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Ok(false); // idle too long, same as peer closing
            }
            slice = slice.min(left.max(Duration::from_millis(10)));
        }
        stream.set_read_timeout(Some(slice))?;
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return Ok(false), // peer closed
            Ok(_) => return Ok(true),  // a frame is arriving
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) => return Err(e),
        }
    }
}

/// Serve one connection against the tenant registry. The session
/// starts on the default tenant; `USE <name>` switches it. Returns
/// true when a SHUTDOWN was received.
fn handle_connection(
    mut stream: TcpStream,
    registry: &TenantRegistry,
    gate: &FairGate,
    config: &ServerConfig,
    drain: &DrainState,
) -> std::io::Result<bool> {
    stream.set_write_timeout(config.write_timeout)?;
    // The framed wire sends status, length, and payload as separate
    // small writes; Nagle + delayed ACK would add ~40 ms per boundary.
    let _ = stream.set_nodelay(true);
    let max = config.max_frame;
    let mut protocol_errors = 0u32;
    let mut tenant: Arc<Tenant> = registry.default_tenant();
    loop {
        if !await_request(&stream, config, drain)? {
            return Ok(false);
        }
        // Frame reads run under the configured stall bound, tightened
        // to the remaining drain budget once a shutdown is in progress
        // (a peer mid-frame gets that long to finish sending).
        let stall_bound = match drain.remaining() {
            Some(left) => Some(config.read_timeout.map_or(left, |t| t.min(left))),
            None => config.read_timeout,
        };
        stream.set_read_timeout(stall_bound)?;
        let request = match read_frame(&mut stream, max)? {
            Frame::Closed => return Ok(false),
            Frame::TooLarge(len) => {
                // The unread payload makes the stream unframeable:
                // answer once, then drop the connection.
                write_response(
                    &mut stream,
                    1,
                    &format!("request too large: {len} bytes > {max} max"),
                    max,
                )?;
                return Ok(false);
            }
            Frame::Payload(p) => p,
        };
        let text = match String::from_utf8(request) {
            Ok(t) => t,
            Err(_) => {
                protocol_errors += 1;
                if protocol_errors >= config.max_protocol_errors {
                    write_response(&mut stream, 1, "too many protocol errors", max)?;
                    return Ok(false);
                }
                write_response(&mut stream, 1, "request is not UTF-8", max)?;
                continue;
            }
        };
        protocol_errors = 0;
        let trimmed = text.trim();
        if trimmed.eq_ignore_ascii_case("SHUTDOWN") {
            write_response(&mut stream, 0, "bye", max)?;
            return Ok(true);
        }
        if trimmed.eq_ignore_ascii_case("TENANT") {
            write_response(&mut stream, 0, &tenant.name, max)?;
            continue;
        }
        if trimmed.len() >= 4 && trimmed[..4].eq_ignore_ascii_case("USE ") {
            let name = trimmed[4..].trim();
            match registry.get(name) {
                Some(next) => {
                    tenant = next;
                    write_response(&mut stream, 0, &format!("tenant {name}"), max)?;
                }
                None => write_response(&mut stream, 1, &format!("unknown tenant: {name}"), max)?,
            }
            continue;
        }
        if trimmed.eq_ignore_ascii_case("STATS") {
            let report = registry.stats_text(&tenant);
            write_response(&mut stream, 0, &report, max)?;
            continue;
        }
        if trimmed.eq_ignore_ascii_case("METRICS") {
            let metrics = registry.metrics_prometheus();
            write_response(&mut stream, 0, &metrics, max)?;
            continue;
        }
        if trimmed.eq_ignore_ascii_case("CHECKPOINT") {
            let outcome = tenant
                .engine()
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .checkpoint();
            match outcome {
                Ok(()) => write_response(&mut stream, 0, "checkpoint complete", max)?,
                Err(e) => write_response(&mut stream, 1, &e.to_string(), max)?,
            }
            continue;
        }
        // Admission: spend a rate token, then queue for an execution
        // slot under the tenant's DRR queue. Rejections are flat
        // status-1 replies carrying the HTTP-equivalent code.
        if !tenant.rate_admit(Instant::now()) {
            let why = Rejection::RateLimited(tenant.name.clone());
            tenant.note_rejected(&why);
            write_response(&mut stream, 1, &format!("429 {}", why.message()), max)?;
            continue;
        }
        let slot = match gate.acquire(&tenant.name, tenant.caps(), text.len() as u64) {
            Ok(slot) => slot,
            Err(why) => {
                tenant.note_rejected(&why);
                write_response(
                    &mut stream,
                    1,
                    &format!("{} {}", why.http_status(), why.message()),
                    max,
                )?;
                continue;
            }
        };
        tenant.note_admitted();
        // Panic isolation: a query-engine panic poisons only this
        // response. The engine is a main-memory evaluator without
        // cross-statement invariants held over a panic edge, so
        // recovering the poisoned mutex and continuing with the same
        // instance is sound. The lock is taken *inside* the unwind
        // boundary and held per statement: rendering and I/O happen
        // with the engine free for other sessions.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut db = tenant
                .engine()
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            db.query(&text)
        }));
        drop(slot);
        match outcome {
            Ok(Ok(result)) => {
                tenant.note_done(true);
                write_response(&mut stream, 0, &render(&result), max)?;
            }
            Ok(Err(e)) => {
                tenant.note_done(false);
                write_response(&mut stream, 1, &e.to_string(), max)?;
            }
            Err(panic) => {
                tenant.note_done(false);
                let what = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".into());
                write_response(
                    &mut stream,
                    1,
                    &format!("internal error: query engine panicked: {what}"),
                    max,
                )?;
            }
        }
    }
}

/// Serialize a result for the wire.
fn render(result: &QueryResult) -> String {
    match result {
        QueryResult::Solutions { vars, rows } => {
            let mut out = vars.join("\t");
            out.push('\n');
            for row in rows {
                let cells: Vec<String> = row
                    .iter()
                    .map(|c| c.as_ref().map(|v| v.to_string()).unwrap_or_default())
                    .collect();
                out.push_str(&cells.join("\t"));
                out.push('\n');
            }
            out
        }
        QueryResult::Boolean(b) => format!("{b}\n"),
        QueryResult::Graph(g) => ssdm_rdf::ntriples::serialize(g),
        QueryResult::Updated { inserted, deleted } => {
            format!("inserted {inserted} deleted {deleted}\n")
        }
        QueryResult::Text(t) => t.clone(),
    }
}

fn read_frame(stream: &mut impl Read, max_frame: u32) -> std::io::Result<Frame> {
    use std::io::ErrorKind;
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e)
            if matches!(
                e.kind(),
                ErrorKind::UnexpectedEof | ErrorKind::WouldBlock | ErrorKind::TimedOut
            ) =>
        {
            return Ok(Frame::Closed)
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max_frame {
        return Ok(Frame::TooLarge(len));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    Ok(Frame::Payload(buf))
}

/// Write one response frame, never exceeding `max_frame`: an oversized
/// payload is replaced by a status-1 "response too large" frame so the
/// client-side framing stays in sync.
fn write_response(
    stream: &mut impl Write,
    status: u8,
    payload: &str,
    max_frame: u32,
) -> std::io::Result<()> {
    if payload.len() > max_frame as usize {
        let mut msg = format!(
            "response too large: {} bytes > {max_frame} max; refine the query",
            payload.len()
        );
        msg.truncate(max_frame as usize); // ASCII, safe to cut anywhere
        return write_raw(stream, 1, msg.as_bytes());
    }
    write_raw(stream, status, payload.as_bytes())
}

fn write_raw(stream: &mut impl Write, status: u8, payload: &[u8]) -> std::io::Result<()> {
    stream.write_all(&[status])?;
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// A client connection to an SSDM server — what the Matlab interface of
/// ch. 7 uses under the hood.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request frames are written as length + payload; without
        // nodelay the second write waits out the peer's delayed ACK.
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Send one statement; returns the rendered payload or the server's
    /// error message.
    pub fn query(&mut self, text: &str) -> Result<String, QueryError> {
        let send = |stream: &mut TcpStream| -> std::io::Result<(u8, String)> {
            stream.write_all(&(text.len() as u32).to_le_bytes())?;
            stream.write_all(text.as_bytes())?;
            stream.flush()?;
            let mut status = [0u8; 1];
            stream.read_exact(&mut status)?;
            let mut len_buf = [0u8; 4];
            stream.read_exact(&mut len_buf)?;
            let len = u32::from_le_bytes(len_buf);
            if len > MAX_FRAME {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "response too large",
                ));
            }
            let mut buf = vec![0u8; len as usize];
            stream.read_exact(&mut buf)?;
            Ok((
                status[0],
                String::from_utf8(buf).unwrap_or_else(|_| "<binary>".into()),
            ))
        };
        match send(&mut self.stream) {
            Ok((0, payload)) => Ok(payload),
            Ok((_, message)) => Err(QueryError::Eval(message)),
            Err(e) => Err(QueryError::Eval(format!("connection error: {e}"))),
        }
    }

    /// TSV convenience: parse a SELECT payload into (vars, rows).
    pub fn query_rows(
        &mut self,
        text: &str,
    ) -> Result<(Vec<String>, Vec<Vec<String>>), QueryError> {
        let payload = self.query(text)?;
        let mut lines = payload.lines();
        let vars: Vec<String> = lines
            .next()
            .unwrap_or_default()
            .split('\t')
            .map(str::to_string)
            .collect();
        let rows = lines
            .map(|l| l.split('\t').map(str::to_string).collect())
            .collect();
        Ok((vars, rows))
    }

    /// Switch this session to a named tenant (`USE <name>` on the
    /// wire); subsequent statements run against that tenant's engine.
    pub fn use_tenant(&mut self, name: &str) -> Result<(), QueryError> {
        self.query(&format!("USE {name}")).map(|_| ())
    }

    /// The session's current tenant (`TENANT` on the wire).
    pub fn current_tenant(&mut self) -> Result<String, QueryError> {
        self.query("TENANT")
    }

    /// Ask the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), QueryError> {
        self.query("SHUTDOWN").map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;
    use std::sync::mpsc;

    fn spawn_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let mut db = Ssdm::open(Backend::Memory);
        db.load_turtle(
            r#"@prefix ex: <http://e#> .
               ex:a ex:v (1 2 3) ; ex:name "alpha" .
               ex:b ex:v (4 5 6) ; ex:name "beta" ."#,
        )
        .unwrap();
        let server = Server::bind("127.0.0.1:0", db).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());
        (addr, handle)
    }

    #[test]
    fn select_over_the_wire() {
        let (addr, handle) = spawn_server();
        let mut client = Client::connect(addr).unwrap();
        let (vars, rows) = client
            .query_rows(
                "PREFIX ex: <http://e#>
                 SELECT ?name (array_sum(?v) AS ?s) WHERE { ?x ex:name ?name ; ex:v ?v }
                 ORDER BY ?name",
            )
            .unwrap();
        assert_eq!(vars, vec!["name", "s"]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec!["\"alpha\"", "6"]);
        assert_eq!(rows[1], vec!["\"beta\"", "15"]);
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn updates_and_errors_over_the_wire() {
        let (addr, handle) = spawn_server();
        let mut client = Client::connect(addr).unwrap();
        let r = client
            .query("PREFIX ex: <http://e#> INSERT DATA { ex:c ex:name \"gamma\" . }")
            .unwrap();
        assert!(r.contains("inserted 1"));
        // The update persists across statements on the same session.
        let (_, rows) = client
            .query_rows("PREFIX ex: <http://e#> SELECT ?n WHERE { ?x ex:name ?n }")
            .unwrap();
        assert_eq!(rows.len(), 3);
        // A bad query returns an error, not a dead connection.
        let err = client.query("SELECT garbage").unwrap_err();
        assert!(err.to_string().contains("error"));
        let (_, rows) = client
            .query_rows("PREFIX ex: <http://e#> SELECT ?n WHERE { ?x ex:name ?n }")
            .unwrap();
        assert_eq!(rows.len(), 3, "connection survives query errors");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn oversized_response_becomes_status1_frame() {
        // A tiny max_frame forces the cap on an ordinary payload.
        let mut wire = Vec::new();
        write_response(&mut wire, 0, "a perfectly ordinary response", 8).unwrap();
        assert_eq!(wire[0], 1, "status flips to error");
        let len = u32::from_le_bytes(wire[1..5].try_into().unwrap());
        assert!(len <= 8, "capped frame respects max_frame, got {len}");
        assert_eq!(wire.len(), 5 + len as usize, "framing stays in sync");
    }

    #[test]
    fn small_responses_pass_untouched() {
        let mut wire = Vec::new();
        write_response(&mut wire, 0, "ok", MAX_FRAME).unwrap();
        assert_eq!(wire, [&[0u8][..], &2u32.to_le_bytes(), b"ok"].concat());
    }

    #[test]
    fn oversized_request_is_answered_then_dropped() {
        let mut db = Ssdm::open(Backend::Memory);
        db.load_turtle("@prefix ex: <http://e#> . ex:a ex:p 1 .")
            .unwrap();
        let server = Server::bind_with(
            "127.0.0.1:0",
            db,
            ServerConfig {
                max_frame: 1024,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());

        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&(2048u32).to_le_bytes()).unwrap(); // over the cap
        raw.flush().unwrap();
        let mut status = [0u8; 1];
        raw.read_exact(&mut status).unwrap();
        assert_eq!(status[0], 1);
        let mut len_buf = [0u8; 4];
        raw.read_exact(&mut len_buf).unwrap();
        let mut msg = vec![0u8; u32::from_le_bytes(len_buf) as usize];
        raw.read_exact(&mut msg).unwrap();
        assert!(String::from_utf8(msg)
            .unwrap()
            .contains("request too large"));
        // The server dropped us: further reads see EOF.
        assert_eq!(raw.read(&mut [0u8; 1]).unwrap(), 0);

        // ...but keeps serving new connections.
        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn repeated_protocol_errors_drop_the_connection() {
        let db = Ssdm::open(Backend::Memory);
        let server = Server::bind_with(
            "127.0.0.1:0",
            db,
            ServerConfig {
                max_protocol_errors: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());

        let mut raw = TcpStream::connect(addr).unwrap();
        let garbage = [0xFFu8, 0xFE, 0xFD];
        let mut statuses = Vec::new();
        for _ in 0..2 {
            raw.write_all(&(garbage.len() as u32).to_le_bytes())
                .unwrap();
            raw.write_all(&garbage).unwrap();
            raw.flush().unwrap();
            let mut status = [0u8; 1];
            raw.read_exact(&mut status).unwrap();
            let mut len_buf = [0u8; 4];
            raw.read_exact(&mut len_buf).unwrap();
            let mut msg = vec![0u8; u32::from_le_bytes(len_buf) as usize];
            raw.read_exact(&mut msg).unwrap();
            statuses.push(status[0]);
        }
        assert_eq!(statuses, vec![1, 1]);
        // Second strike hit the cap: connection is gone.
        assert_eq!(raw.read(&mut [0u8; 1]).unwrap(), 0);

        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn stalled_client_is_timed_out_not_forever() {
        let db = Ssdm::open(Backend::Memory);
        let server = Server::bind_with(
            "127.0.0.1:0",
            db,
            ServerConfig {
                read_timeout: Some(Duration::from_millis(100)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());

        // Connect and go silent: the server must give up on us and
        // accept the next connection.
        let _stalled = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        let mut client = Client::connect(addr).unwrap();
        client.query("ASK { }").unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn concurrent_clients_are_served_while_one_stays_connected() {
        let (addr, handle) = spawn_server();
        // Hold a session open mid-conversation...
        let mut parked = Client::connect(addr).unwrap();
        parked.query("ASK { }").unwrap();
        // ...and several other clients must still get answers — under
        // the old one-at-a-time accept loop these would block until
        // `parked` disconnected.
        let others: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let (_, rows) = c
                        .query_rows("PREFIX ex: <http://e#> SELECT ?n WHERE { ?x ex:name ?n }")
                        .unwrap();
                    rows.len()
                })
            })
            .collect();
        for t in others {
            assert_eq!(t.join().unwrap(), 2);
        }
        // The parked session still works afterwards.
        parked.query("ASK { }").unwrap();
        parked.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn stats_statement_reports_counters_over_the_wire() {
        let (addr, handle) = spawn_server();
        let mut client = Client::connect(addr).unwrap();
        client
            .query(
                "PREFIX ex: <http://e#>
                 SELECT (array_sum(?v) AS ?s) WHERE { ex:a ex:v ?v }",
            )
            .unwrap();
        let report = client.query("STATS").unwrap();
        for section in [
            "backend[cumulative]:",
            "cache[cumulative]:",
            "resilience[cumulative]:",
            "apr[cumulative]:",
            "apr[last_op]:",
            "compute[cumulative]:",
            "durability[cumulative]:",
        ] {
            assert!(report.contains(section), "missing {section} in {report}");
        }
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn metrics_statement_returns_valid_prometheus_text() {
        let (addr, handle) = spawn_server();
        let mut client = Client::connect(addr).unwrap();
        client
            .query(
                "PREFIX ex: <http://e#>
                 SELECT (array_sum(?v) AS ?s) WHERE { ex:a ex:v ?v }",
            )
            .unwrap();
        let metrics = client.query("METRICS").unwrap();
        ssdm_obs::validate_prometheus_text(&metrics)
            .unwrap_or_else(|e| panic!("invalid Prometheus text: {e}\n{metrics}"));
        for series in [
            "ssdm_backend_statements_total",
            "ssdm_cache_hits_total",
            "ssdm_compute_elements_total",
            "ssdm_chunk_fetch_seconds",
            "ssdm_wal_fsync_seconds",
            "ssdm_query_seconds_count",
        ] {
            assert!(metrics.contains(series), "missing {series} in:\n{metrics}");
        }
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn explain_analyze_over_the_wire() {
        let (addr, handle) = spawn_server();
        let mut client = Client::connect(addr).unwrap();
        let profile = client
            .query(
                "PREFIX ex: <http://e#>
                 EXPLAIN ANALYZE SELECT (array_sum(?v) AS ?s) WHERE { ex:a ex:v ?v }",
            )
            .unwrap();
        for needle in [
            "EXPLAIN ANALYZE",
            "phases:",
            "operators:",
            "totals:",
            "time_us=",
        ] {
            assert!(profile.contains(needle), "missing {needle} in:\n{profile}");
        }
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn http_metrics_endpoint_serves_prometheus_dump() {
        let db = Ssdm::open(Backend::Memory);
        let mut server = Server::bind("127.0.0.1:0", db).unwrap();
        let addr = server.local_addr().unwrap();
        let metrics_addr = server.enable_metrics("127.0.0.1:0").unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());

        let mut http = TcpStream::connect(metrics_addr).unwrap();
        http.write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n")
            .unwrap();
        http.flush().unwrap();
        let mut response = String::new();
        http.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: text/plain"), "{response}");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b)
            .unwrap_or_default();
        ssdm_obs::validate_prometheus_text(body)
            .unwrap_or_else(|e| panic!("invalid Prometheus text: {e}\n{body}"));
        assert!(body.contains("ssdm_backend_statements_total"), "{body}");

        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn checkpoint_statement_over_the_wire() {
        // Non-durable engine: CHECKPOINT is a clean error.
        let (addr, handle) = spawn_server();
        let mut client = Client::connect(addr).unwrap();
        let err = client.query("CHECKPOINT").unwrap_err();
        assert!(err.to_string().contains("durable"), "got: {err}");
        client.shutdown().unwrap();
        handle.join().unwrap();

        // Durable engine: CHECKPOINT truncates the WAL and the state
        // survives a server restart over the same directory.
        let dir = std::env::temp_dir().join(format!("ssdm-srv-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Ssdm::open_durable(&dir).unwrap();
        let server = Server::bind("127.0.0.1:0", db).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());
        let mut client = Client::connect(addr).unwrap();
        client
            .query("INSERT DATA { <http://s> <http://p> 1 . }")
            .unwrap();
        assert_eq!(client.query("CHECKPOINT").unwrap(), "checkpoint complete");
        let report = client.query("STATS").unwrap();
        assert!(report.contains("checkpoints=1"), "report: {report}");
        client.shutdown().unwrap();
        handle.join().unwrap();

        let mut db = Ssdm::open_durable(&dir).unwrap();
        let rows = db
            .query("SELECT ?o WHERE { <http://s> <http://p> ?o }")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_in_flight_query_completes_during_shutdown() {
        use ssdm_storage::RelChunkStore;

        // A back-end charging 150 ms per statement makes the query
        // reliably still in flight when SHUTDOWN lands.
        let mut rel = RelChunkStore::open_memory().unwrap();
        rel.db_mut().set_latency(relstore::LatencyModel {
            per_statement: Duration::from_millis(150),
            per_row: Duration::ZERO,
            per_kib: Duration::ZERO,
        });
        let mut db = Ssdm::from_dataset(scisparql::Dataset::with_backend(Box::new(rel)));
        db.set_externalize_threshold(8, 64);
        let values: Vec<String> = (1..=64).map(|i| i.to_string()).collect();
        db.load_turtle(&format!(
            "@prefix ex: <http://e#> . ex:a ex:v ({}) .",
            values.join(" ")
        ))
        .unwrap();

        let server = Server::bind("127.0.0.1:0", db).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());

        let slow = std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.query_rows(
                "PREFIX ex: <http://e#>
                 SELECT (array_sum(?v) AS ?s) WHERE { ex:a ex:v ?v }",
            )
            .unwrap()
        });
        // Let the slow query get read and start evaluating, then pull
        // the plug from another session.
        std::thread::sleep(Duration::from_millis(50));
        let mut killer = Client::connect(addr).unwrap();
        killer.shutdown().unwrap();

        // The drain must deliver the in-flight response, complete and
        // correct, before the server exits.
        let (_, rows) = slow.join().unwrap();
        assert_eq!(rows, vec![vec![(1..=64).sum::<i64>().to_string()]]);
        handle.join().unwrap();
    }

    #[test]
    fn parked_idle_connection_does_not_pin_shutdown() {
        let db = Ssdm::open(Backend::Memory);
        let server = Server::bind_with(
            "127.0.0.1:0",
            db,
            ServerConfig {
                // The old behavior pinned serve() on this for 30 s.
                read_timeout: Some(Duration::from_secs(30)),
                drain_timeout: Duration::from_millis(300),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());

        // A healthy session that then just sits there, holding its
        // connection open with no request in flight.
        let mut parked = Client::connect(addr).unwrap();
        parked.query("ASK { }").unwrap();

        let mut killer = Client::connect(addr).unwrap();
        let started = Instant::now();
        killer.shutdown().unwrap();

        // serve() must return promptly despite the parked connection;
        // join through a channel so a regression fails instead of
        // hanging the test suite.
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(handle.join());
        });
        rx.recv_timeout(Duration::from_secs(5))
            .expect("serve() still pinned by the parked connection")
            .unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "drain took {:?}",
            started.elapsed()
        );
        drop(parked);
    }

    #[test]
    fn tenant_statement_round_trip_over_the_wire() {
        let mut server = Server::bind("127.0.0.1:0", Ssdm::open(Backend::Memory)).unwrap();
        server
            .add_tenant(
                "alice",
                Ssdm::open(Backend::Memory),
                crate::tenant::TenantQuotas::default(),
            )
            .unwrap();
        assert!(
            server
                .add_tenant(
                    "alice",
                    Ssdm::open(Backend::Memory),
                    crate::tenant::TenantQuotas::default()
                )
                .is_err(),
            "duplicate tenant rejected at registration"
        );
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());

        let mut client = Client::connect(addr).unwrap();
        // Sessions start on the default tenant.
        assert_eq!(client.current_tenant().unwrap(), "default");
        // Data written on the default tenant...
        client.query("INSERT DATA { <urn:s> <urn:p> 1 . }").unwrap();
        // ...is invisible after switching to alice.
        client.use_tenant("alice").unwrap();
        assert_eq!(client.current_tenant().unwrap(), "alice");
        let (_, rows) = client
            .query_rows("SELECT ?o WHERE { <urn:s> <urn:p> ?o }")
            .unwrap();
        assert!(
            rows.is_empty() || rows == vec![vec![String::new()]],
            "{rows:?}"
        );
        // Unknown tenants are a clean error; the session stays put.
        let err = client.use_tenant("nobody").unwrap_err();
        assert!(err.to_string().contains("unknown tenant"), "{err}");
        assert_eq!(client.current_tenant().unwrap(), "alice");
        // STATS carries the tenant-labelled admission counters.
        let stats = client.query("STATS").unwrap();
        assert!(stats.contains("tenant[cumulative]:"), "{stats}");
        assert!(stats.contains("admitted{tenant=alice}"), "{stats}");
        // METRICS carries the labelled Prometheus series.
        let metrics = client.query("METRICS").unwrap();
        assert!(
            metrics.contains("ssdm_tenant_admitted_total{tenant=\"alice\"}"),
            "{metrics}"
        );
        // A second session sees the default tenant's data untouched.
        let mut other = Client::connect(addr).unwrap();
        let (_, rows) = other
            .query_rows("SELECT ?o WHERE { <urn:s> <urn:p> ?o }")
            .unwrap();
        assert_eq!(rows.len(), 1);
        other.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn framed_rate_quota_rejects_with_429_then_recovers() {
        use crate::tenant::{RateLimit, TenantQuotas};
        let mut server = Server::bind("127.0.0.1:0", Ssdm::open(Backend::Memory)).unwrap();
        server
            .add_tenant(
                "limited",
                Ssdm::open(Backend::Memory),
                TenantQuotas {
                    rate: Some(RateLimit {
                        per_sec: 1000.0, // refills fast: recovery within ms
                        burst: 1.0,
                    }),
                    ..TenantQuotas::default()
                },
            )
            .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());

        let mut client = Client::connect(addr).unwrap();
        client.use_tenant("limited").unwrap();
        // Burst of 1: fire statements back-to-back until one is
        // rejected with the flat 429 reply.
        let mut saw_429 = false;
        for _ in 0..50 {
            match client.query("ASK { }") {
                Ok(_) => {}
                Err(e) => {
                    assert!(e.to_string().contains("429"), "unexpected error: {e}");
                    saw_429 = true;
                    break;
                }
            }
        }
        assert!(saw_429, "burst never hit the rate quota");
        // The bucket refills at 1000/s: the tenant recovers.
        std::thread::sleep(Duration::from_millis(20));
        client.query("ASK { }").unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn sequential_clients() {
        let (addr, handle) = spawn_server();
        {
            let mut c1 = Client::connect(addr).unwrap();
            c1.query("PREFIX ex: <http://e#> INSERT DATA { ex:z ex:name \"zeta\" . }")
                .unwrap();
        } // c1 disconnects
        let mut c2 = Client::connect(addr).unwrap();
        let (_, rows) = c2
            .query_rows("PREFIX ex: <http://e#> SELECT ?n WHERE { ?x ex:name ?n }")
            .unwrap();
        assert_eq!(rows.len(), 3, "state persists across connections");
        c2.shutdown().unwrap();
        handle.join().unwrap();
    }
}
