//! Client–server deployment over TCP (thesis §5.1, ch. 7).
//!
//! SSDM "can be utilized as a stand-alone system, a client-server
//! system, or a cluster of processes"; the Matlab integration of ch. 7
//! speaks to an SSDM server over TCP. This module implements that wire
//! layer with a minimal framed protocol:
//!
//! * request: `u32` length (LE) + UTF-8 SciSPARQL statement;
//! * response: `u8` status (0 = ok, 1 = error) + `u32` length + UTF-8
//!   payload. SELECT results serialize as TSV (header line of variable
//!   names, then one row per solution, arrays in collection notation);
//!   ASK returns `true`/`false`; updates return `inserted N deleted M`.
//!
//! Four statements are handled by the wire layer itself: `SHUTDOWN`
//! stops the server, `STATS` returns the engine's back-end / cache /
//! resilience / APR / durability statistics ([`Ssdm::stats_report`]),
//! `METRICS` returns the same counters plus the process-wide latency
//! histograms in Prometheus text format ([`Ssdm::metrics_prometheus`]),
//! and `CHECKPOINT` runs a durability checkpoint
//! ([`Ssdm::checkpoint`]; an error on non-durable engines).
//!
//! An optional HTTP front end ([`Server::enable_http`], the `--http`
//! flag of `ssdm-server`; [`Server::enable_metrics`]/`--metrics` is an
//! alias) serves the SPARQL 1.1 Protocol plus the same Prometheus dump
//! over [`crate::http`]'s event-loop core, sharing this server's engine
//! and graceful drain.
//!
//! # Concurrency
//!
//! A bounded pool of [`ServerConfig::workers`] threads serves accepted
//! connections against one shared [`Ssdm`] engine behind a mutex:
//! connections make progress concurrently (frame parsing, waiting on
//! slow peers, rendering results) while query evaluation itself is a
//! per-statement critical section — the concurrency model of a
//! main-memory DBMS with a single query engine. A slow or stalled
//! *client* therefore occupies one worker, not the whole server.
//!
//! # Hardening
//!
//! A production server must survive misbehaving peers and its own query
//! engine (the storage back-end may already be degraded under faults):
//!
//! * per-connection **read/write timeouts** so a stalled client cannot
//!   pin its worker thread forever;
//! * **frame caps in both directions** — an oversized *request* gets a
//!   status-1 reply and the connection is dropped (the stream can no
//!   longer be trusted to be in frame sync); an oversized *response* is
//!   replaced server-side by a status-1 "response too large" frame so
//!   client framing never desynchronizes;
//! * a cap on **consecutive protocol errors** (non-UTF-8 statements)
//!   before the peer is dropped;
//! * **panic isolation**: a query-engine panic is caught and turned into
//!   a status-1 response for that connection; the process and other
//!   sessions keep running (a poisoned engine mutex is recovered — the
//!   engine holds no cross-statement invariants over a panic edge).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use scisparql::{QueryError, QueryResult};

use crate::http::{HttpConfig, HttpServer};
use crate::Ssdm;

/// Default protocol limit: 64 MiB per message.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Knobs of the hardened server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Largest request or response payload, in bytes.
    pub max_frame: u32,
    /// Per-connection read timeout (None = block forever).
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout.
    pub write_timeout: Option<Duration>,
    /// Consecutive protocol errors (malformed statements) tolerated on
    /// one connection before it is dropped.
    pub max_protocol_errors: u32,
    /// Connection-handling worker threads (minimum 1). Connections
    /// beyond this many queue in the accept backlog.
    pub workers: usize,
    /// Graceful-drain bound after `SHUTDOWN`: in-flight requests finish
    /// and get their responses, idle connections close, and a peer
    /// stalled mid-frame is abandoned once this much drain time has
    /// elapsed — so `serve` returns within roughly this bound plus the
    /// longest in-flight statement.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_frame: MAX_FRAME,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_protocol_errors: 3,
            workers: 4,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Shared shutdown-drain state: flipped by the worker that receives
/// `SHUTDOWN` (or by the HTTP front end on SIGTERM), observed by every
/// connection loop.
pub(crate) struct DrainState {
    draining: AtomicBool,
    deadline: Mutex<Option<Instant>>,
}

impl DrainState {
    pub(crate) fn new() -> Self {
        DrainState {
            draining: AtomicBool::new(false),
            deadline: Mutex::new(None),
        }
    }

    pub(crate) fn begin(&self, timeout: Duration) {
        *self.deadline.lock().expect("drain deadline") = Some(Instant::now() + timeout);
        self.draining.store(true, Ordering::SeqCst);
    }

    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Drain time left, floored so an expired deadline still gives the
    /// socket a non-zero (i.e. not "block forever") timeout.
    pub(crate) fn remaining(&self) -> Option<Duration> {
        if !self.draining() {
            return None;
        }
        let deadline = self.deadline.lock().expect("drain deadline");
        Some(
            deadline
                .map(|d| d.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::ZERO)
                .max(Duration::from_millis(10)),
        )
    }
}

/// A running SSDM server.
pub struct Server {
    listener: TcpListener,
    db: Ssdm,
    config: ServerConfig,
    /// HTTP front ends ([`Server::enable_http`], [`Server::enable_metrics`])
    /// sharing the framed server's engine; started by [`Server::serve`].
    http: Vec<HttpServer>,
}

/// What reading one request frame produced.
enum Frame {
    /// Peer closed (or timed out — either way the connection ends).
    Closed,
    Payload(Vec<u8>),
    /// Peer announced a frame over the cap; the stream is out of sync.
    TooLarge(u32),
}

impl Server {
    /// Bind to an address (use port 0 for an ephemeral port) with
    /// default hardening limits.
    pub fn bind(addr: impl ToSocketAddrs, db: Ssdm) -> std::io::Result<Server> {
        Self::bind_with(addr, db, ServerConfig::default())
    }

    /// Bind with explicit [`ServerConfig`] limits.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        db: Ssdm,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            db,
            config,
            http: Vec::new(),
        })
    }

    /// The bound address (to hand to clients).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Bind a SPARQL 1.1 Protocol HTTP front end (use port 0 for an
    /// ephemeral port); returns the bound address. The endpoint starts
    /// with [`Server::serve`], shares the framed server's engine, and
    /// drains gracefully with it: `SHUTDOWN` over the framed wire also
    /// drains HTTP, and a SIGTERM caught by the HTTP front end (see
    /// [`crate::http::prepare_signal_drain`]) also drains the framed
    /// side.
    pub fn enable_http(
        &mut self,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<std::net::SocketAddr> {
        self.enable_http_with(addr, HttpConfig::default())
    }

    /// [`Server::enable_http`] with explicit [`HttpConfig`] knobs.
    pub fn enable_http_with(
        &mut self,
        addr: impl ToSocketAddrs,
        config: HttpConfig,
    ) -> std::io::Result<std::net::SocketAddr> {
        let server = HttpServer::bind(addr, config)?;
        let bound = server.local_addr()?;
        self.http.push(server);
        Ok(bound)
    }

    /// Bind a Prometheus metrics endpoint (use port 0 for an ephemeral
    /// port); returns the bound address. An alias for
    /// [`Server::enable_http`] kept for the `--metrics` flag: the
    /// endpoint is a full HTTP front end, so `/metrics` scrapes ride
    /// the same event loop (and graceful drain) as `/query`.
    pub fn enable_metrics(
        &mut self,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<std::net::SocketAddr> {
        self.enable_http(addr)
    }

    /// Serve connections until a client sends the statement `SHUTDOWN`.
    ///
    /// Accepted connections are dispatched to a bounded pool of
    /// [`ServerConfig::workers`] threads sharing one engine; each
    /// connection carries any number of statements until the peer
    /// closes it. A connection-level I/O error drops that connection
    /// only — the pool keeps serving. On SHUTDOWN the server drains
    /// gracefully: the acceptor stops taking connections, requests
    /// already in flight finish and get their responses, idle
    /// connections close within one poll slice, and peers stalled
    /// mid-frame are abandoned after [`ServerConfig::drain_timeout`] —
    /// so this returns within roughly that bound plus the longest
    /// in-flight statement.
    pub fn serve(self) -> std::io::Result<()> {
        let Server {
            listener,
            db,
            config,
            http,
        } = self;
        let engine = Arc::new(Mutex::new(db));
        let shutdown = Arc::new(AtomicBool::new(false));
        let drain = Arc::new(DrainState::new());
        let wake_addr = listener.local_addr()?;
        // Start each HTTP front end on its own thread. Whichever side
        // stops first (SHUTDOWN over the framed wire, a SIGTERM caught
        // by an HTTP signal fd, or a ShutdownHandle) drags the other
        // into its graceful drain.
        let mut http_handles = Vec::new();
        let mut http_joins = Vec::new();
        for server in http {
            http_handles.push(server.shutdown_handle()?);
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&shutdown);
            let drain = Arc::clone(&drain);
            let drain_timeout = config.drain_timeout;
            http_joins.push(std::thread::spawn(move || {
                let result = server.serve(engine);
                if !shutdown.swap(true, Ordering::SeqCst) {
                    // The HTTP side went down first: drain the framed
                    // side too (the acceptor may be blocked in accept).
                    drain.begin(drain_timeout);
                    let _ = TcpStream::connect(wake_addr);
                }
                result
            }));
        }
        let workers = config.workers.max(1);
        // Rendezvous-ish queue: a small bound keeps accepted-but-unserved
        // sockets from piling up beyond what the pool can absorb.
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(workers);
        let rx = Mutex::new(rx);
        // The shared scoped worker-pool helper runs the acceptor on the
        // calling thread and joins the workers when it returns.
        let framed = ssdm_array::pool::run_scoped(
            workers,
            || loop {
                // Hold the receiver lock only while waiting for a
                // stream, not while serving it.
                let next = rx.lock().expect("connection queue").recv();
                let Ok(stream) = next else { break };
                match handle_connection(stream, &engine, &config, &drain) {
                    Ok(true) => {
                        drain.begin(config.drain_timeout);
                        shutdown.store(true, Ordering::SeqCst);
                        // The acceptor may be blocked in accept():
                        // poke it with a throwaway connection so it
                        // notices the flag.
                        let _ = TcpStream::connect(wake_addr);
                    }
                    Ok(false) => {}
                    Err(_) => {} // peer broke mid-frame
                }
            },
            || {
                let result = loop {
                    let stream = match listener.accept() {
                        Ok((stream, _peer)) => stream,
                        Err(e) => break Err(e),
                    };
                    if shutdown.load(Ordering::SeqCst) {
                        break Ok(());
                    }
                    if tx.send(stream).is_err() {
                        break Ok(()); // all workers gone
                    }
                };
                // Closing the channel lets idle workers exit; busy ones
                // finish their connection first (the pool joins them).
                drop(tx);
                result
            },
        );
        // Framed side done: drain the HTTP front ends (a no-op for any
        // that initiated the shutdown and already returned).
        for handle in &http_handles {
            handle.shutdown();
        }
        let mut http_error = None;
        for join in http_joins {
            match join.join() {
                Ok(Err(e)) if http_error.is_none() => http_error = Some(e),
                _ => {}
            }
        }
        match (framed, http_error) {
            (Err(e), _) => Err(e),
            (Ok(()), Some(e)) => Err(e),
            (Ok(()), None) => Ok(()),
        }
    }
}

/// How often an idle connection re-checks its idle deadline and the
/// shutdown-drain flag while waiting for request bytes.
const POLL_SLICE: Duration = Duration::from_millis(50);

/// Wait until the connection has request bytes pending, the peer
/// closes, the idle read timeout expires, or a shutdown drain begins —
/// whichever comes first. Returns whether a request is arriving.
///
/// Polling with `peek` (which never consumes) lets the timeout fire
/// between frames only; once bytes are pending, `read_frame` reads them
/// with exact blocking reads and the framing cannot tear. This is also
/// what lets an *idle* connection notice `SHUTDOWN` within one poll
/// slice instead of pinning its worker — and the whole server — for the
/// full idle timeout.
fn await_request(
    stream: &TcpStream,
    config: &ServerConfig,
    drain: &DrainState,
) -> std::io::Result<bool> {
    use std::io::ErrorKind;
    let idle_deadline = config.read_timeout.map(|t| Instant::now() + t);
    loop {
        if drain.draining() {
            // Nothing of this connection's is in flight (bytes already
            // pending won the peek on an earlier iteration): close.
            return Ok(false);
        }
        let mut slice = POLL_SLICE;
        if let Some(deadline) = idle_deadline {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Ok(false); // idle too long, same as peer closing
            }
            slice = slice.min(left.max(Duration::from_millis(10)));
        }
        stream.set_read_timeout(Some(slice))?;
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return Ok(false), // peer closed
            Ok(_) => return Ok(true),  // a frame is arriving
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) => return Err(e),
        }
    }
}

/// Serve one connection against the shared engine. Returns true when a
/// SHUTDOWN was received.
fn handle_connection(
    mut stream: TcpStream,
    engine: &Mutex<Ssdm>,
    config: &ServerConfig,
    drain: &DrainState,
) -> std::io::Result<bool> {
    stream.set_write_timeout(config.write_timeout)?;
    // The framed wire sends status, length, and payload as separate
    // small writes; Nagle + delayed ACK would add ~40 ms per boundary.
    let _ = stream.set_nodelay(true);
    let max = config.max_frame;
    let mut protocol_errors = 0u32;
    loop {
        if !await_request(&stream, config, drain)? {
            return Ok(false);
        }
        // Frame reads run under the configured stall bound, tightened
        // to the remaining drain budget once a shutdown is in progress
        // (a peer mid-frame gets that long to finish sending).
        let stall_bound = match drain.remaining() {
            Some(left) => Some(config.read_timeout.map_or(left, |t| t.min(left))),
            None => config.read_timeout,
        };
        stream.set_read_timeout(stall_bound)?;
        let request = match read_frame(&mut stream, max)? {
            Frame::Closed => return Ok(false),
            Frame::TooLarge(len) => {
                // The unread payload makes the stream unframeable:
                // answer once, then drop the connection.
                write_response(
                    &mut stream,
                    1,
                    &format!("request too large: {len} bytes > {max} max"),
                    max,
                )?;
                return Ok(false);
            }
            Frame::Payload(p) => p,
        };
        let text = match String::from_utf8(request) {
            Ok(t) => t,
            Err(_) => {
                protocol_errors += 1;
                if protocol_errors >= config.max_protocol_errors {
                    write_response(&mut stream, 1, "too many protocol errors", max)?;
                    return Ok(false);
                }
                write_response(&mut stream, 1, "request is not UTF-8", max)?;
                continue;
            }
        };
        protocol_errors = 0;
        if text.trim().eq_ignore_ascii_case("SHUTDOWN") {
            write_response(&mut stream, 0, "bye", max)?;
            return Ok(true);
        }
        if text.trim().eq_ignore_ascii_case("STATS") {
            let report = engine
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .stats_report();
            write_response(&mut stream, 0, &report, max)?;
            continue;
        }
        if text.trim().eq_ignore_ascii_case("METRICS") {
            let metrics = engine
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .metrics_prometheus();
            write_response(&mut stream, 0, &metrics, max)?;
            continue;
        }
        if text.trim().eq_ignore_ascii_case("CHECKPOINT") {
            let outcome = engine
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .checkpoint();
            match outcome {
                Ok(()) => write_response(&mut stream, 0, "checkpoint complete", max)?,
                Err(e) => write_response(&mut stream, 1, &e.to_string(), max)?,
            }
            continue;
        }
        // Panic isolation: a query-engine panic poisons only this
        // response. The engine is a main-memory evaluator without
        // cross-statement invariants held over a panic edge, so
        // recovering the poisoned mutex and continuing with the same
        // instance is sound. The lock is taken *inside* the unwind
        // boundary and held per statement: rendering and I/O happen
        // with the engine free for other workers.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut db = engine.lock().unwrap_or_else(PoisonError::into_inner);
            db.query(&text)
        }));
        match outcome {
            Ok(Ok(result)) => write_response(&mut stream, 0, &render(&result), max)?,
            Ok(Err(e)) => write_response(&mut stream, 1, &e.to_string(), max)?,
            Err(panic) => {
                let what = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".into());
                write_response(
                    &mut stream,
                    1,
                    &format!("internal error: query engine panicked: {what}"),
                    max,
                )?;
            }
        }
    }
}

/// Serialize a result for the wire.
fn render(result: &QueryResult) -> String {
    match result {
        QueryResult::Solutions { vars, rows } => {
            let mut out = vars.join("\t");
            out.push('\n');
            for row in rows {
                let cells: Vec<String> = row
                    .iter()
                    .map(|c| c.as_ref().map(|v| v.to_string()).unwrap_or_default())
                    .collect();
                out.push_str(&cells.join("\t"));
                out.push('\n');
            }
            out
        }
        QueryResult::Boolean(b) => format!("{b}\n"),
        QueryResult::Graph(g) => ssdm_rdf::ntriples::serialize(g),
        QueryResult::Updated { inserted, deleted } => {
            format!("inserted {inserted} deleted {deleted}\n")
        }
        QueryResult::Text(t) => t.clone(),
    }
}

fn read_frame(stream: &mut impl Read, max_frame: u32) -> std::io::Result<Frame> {
    use std::io::ErrorKind;
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e)
            if matches!(
                e.kind(),
                ErrorKind::UnexpectedEof | ErrorKind::WouldBlock | ErrorKind::TimedOut
            ) =>
        {
            return Ok(Frame::Closed)
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max_frame {
        return Ok(Frame::TooLarge(len));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    Ok(Frame::Payload(buf))
}

/// Write one response frame, never exceeding `max_frame`: an oversized
/// payload is replaced by a status-1 "response too large" frame so the
/// client-side framing stays in sync.
fn write_response(
    stream: &mut impl Write,
    status: u8,
    payload: &str,
    max_frame: u32,
) -> std::io::Result<()> {
    if payload.len() > max_frame as usize {
        let mut msg = format!(
            "response too large: {} bytes > {max_frame} max; refine the query",
            payload.len()
        );
        msg.truncate(max_frame as usize); // ASCII, safe to cut anywhere
        return write_raw(stream, 1, msg.as_bytes());
    }
    write_raw(stream, status, payload.as_bytes())
}

fn write_raw(stream: &mut impl Write, status: u8, payload: &[u8]) -> std::io::Result<()> {
    stream.write_all(&[status])?;
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// A client connection to an SSDM server — what the Matlab interface of
/// ch. 7 uses under the hood.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request frames are written as length + payload; without
        // nodelay the second write waits out the peer's delayed ACK.
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Send one statement; returns the rendered payload or the server's
    /// error message.
    pub fn query(&mut self, text: &str) -> Result<String, QueryError> {
        let send = |stream: &mut TcpStream| -> std::io::Result<(u8, String)> {
            stream.write_all(&(text.len() as u32).to_le_bytes())?;
            stream.write_all(text.as_bytes())?;
            stream.flush()?;
            let mut status = [0u8; 1];
            stream.read_exact(&mut status)?;
            let mut len_buf = [0u8; 4];
            stream.read_exact(&mut len_buf)?;
            let len = u32::from_le_bytes(len_buf);
            if len > MAX_FRAME {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "response too large",
                ));
            }
            let mut buf = vec![0u8; len as usize];
            stream.read_exact(&mut buf)?;
            Ok((
                status[0],
                String::from_utf8(buf).unwrap_or_else(|_| "<binary>".into()),
            ))
        };
        match send(&mut self.stream) {
            Ok((0, payload)) => Ok(payload),
            Ok((_, message)) => Err(QueryError::Eval(message)),
            Err(e) => Err(QueryError::Eval(format!("connection error: {e}"))),
        }
    }

    /// TSV convenience: parse a SELECT payload into (vars, rows).
    pub fn query_rows(
        &mut self,
        text: &str,
    ) -> Result<(Vec<String>, Vec<Vec<String>>), QueryError> {
        let payload = self.query(text)?;
        let mut lines = payload.lines();
        let vars: Vec<String> = lines
            .next()
            .unwrap_or_default()
            .split('\t')
            .map(str::to_string)
            .collect();
        let rows = lines
            .map(|l| l.split('\t').map(str::to_string).collect())
            .collect();
        Ok((vars, rows))
    }

    /// Ask the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), QueryError> {
        self.query("SHUTDOWN").map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;

    fn spawn_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let mut db = Ssdm::open(Backend::Memory);
        db.load_turtle(
            r#"@prefix ex: <http://e#> .
               ex:a ex:v (1 2 3) ; ex:name "alpha" .
               ex:b ex:v (4 5 6) ; ex:name "beta" ."#,
        )
        .unwrap();
        let server = Server::bind("127.0.0.1:0", db).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());
        (addr, handle)
    }

    #[test]
    fn select_over_the_wire() {
        let (addr, handle) = spawn_server();
        let mut client = Client::connect(addr).unwrap();
        let (vars, rows) = client
            .query_rows(
                "PREFIX ex: <http://e#>
                 SELECT ?name (array_sum(?v) AS ?s) WHERE { ?x ex:name ?name ; ex:v ?v }
                 ORDER BY ?name",
            )
            .unwrap();
        assert_eq!(vars, vec!["name", "s"]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec!["\"alpha\"", "6"]);
        assert_eq!(rows[1], vec!["\"beta\"", "15"]);
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn updates_and_errors_over_the_wire() {
        let (addr, handle) = spawn_server();
        let mut client = Client::connect(addr).unwrap();
        let r = client
            .query("PREFIX ex: <http://e#> INSERT DATA { ex:c ex:name \"gamma\" . }")
            .unwrap();
        assert!(r.contains("inserted 1"));
        // The update persists across statements on the same session.
        let (_, rows) = client
            .query_rows("PREFIX ex: <http://e#> SELECT ?n WHERE { ?x ex:name ?n }")
            .unwrap();
        assert_eq!(rows.len(), 3);
        // A bad query returns an error, not a dead connection.
        let err = client.query("SELECT garbage").unwrap_err();
        assert!(err.to_string().contains("error"));
        let (_, rows) = client
            .query_rows("PREFIX ex: <http://e#> SELECT ?n WHERE { ?x ex:name ?n }")
            .unwrap();
        assert_eq!(rows.len(), 3, "connection survives query errors");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn oversized_response_becomes_status1_frame() {
        // A tiny max_frame forces the cap on an ordinary payload.
        let mut wire = Vec::new();
        write_response(&mut wire, 0, "a perfectly ordinary response", 8).unwrap();
        assert_eq!(wire[0], 1, "status flips to error");
        let len = u32::from_le_bytes(wire[1..5].try_into().unwrap());
        assert!(len <= 8, "capped frame respects max_frame, got {len}");
        assert_eq!(wire.len(), 5 + len as usize, "framing stays in sync");
    }

    #[test]
    fn small_responses_pass_untouched() {
        let mut wire = Vec::new();
        write_response(&mut wire, 0, "ok", MAX_FRAME).unwrap();
        assert_eq!(wire, [&[0u8][..], &2u32.to_le_bytes(), b"ok"].concat());
    }

    #[test]
    fn oversized_request_is_answered_then_dropped() {
        let mut db = Ssdm::open(Backend::Memory);
        db.load_turtle("@prefix ex: <http://e#> . ex:a ex:p 1 .")
            .unwrap();
        let server = Server::bind_with(
            "127.0.0.1:0",
            db,
            ServerConfig {
                max_frame: 1024,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());

        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&(2048u32).to_le_bytes()).unwrap(); // over the cap
        raw.flush().unwrap();
        let mut status = [0u8; 1];
        raw.read_exact(&mut status).unwrap();
        assert_eq!(status[0], 1);
        let mut len_buf = [0u8; 4];
        raw.read_exact(&mut len_buf).unwrap();
        let mut msg = vec![0u8; u32::from_le_bytes(len_buf) as usize];
        raw.read_exact(&mut msg).unwrap();
        assert!(String::from_utf8(msg)
            .unwrap()
            .contains("request too large"));
        // The server dropped us: further reads see EOF.
        assert_eq!(raw.read(&mut [0u8; 1]).unwrap(), 0);

        // ...but keeps serving new connections.
        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn repeated_protocol_errors_drop_the_connection() {
        let db = Ssdm::open(Backend::Memory);
        let server = Server::bind_with(
            "127.0.0.1:0",
            db,
            ServerConfig {
                max_protocol_errors: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());

        let mut raw = TcpStream::connect(addr).unwrap();
        let garbage = [0xFFu8, 0xFE, 0xFD];
        let mut statuses = Vec::new();
        for _ in 0..2 {
            raw.write_all(&(garbage.len() as u32).to_le_bytes())
                .unwrap();
            raw.write_all(&garbage).unwrap();
            raw.flush().unwrap();
            let mut status = [0u8; 1];
            raw.read_exact(&mut status).unwrap();
            let mut len_buf = [0u8; 4];
            raw.read_exact(&mut len_buf).unwrap();
            let mut msg = vec![0u8; u32::from_le_bytes(len_buf) as usize];
            raw.read_exact(&mut msg).unwrap();
            statuses.push(status[0]);
        }
        assert_eq!(statuses, vec![1, 1]);
        // Second strike hit the cap: connection is gone.
        assert_eq!(raw.read(&mut [0u8; 1]).unwrap(), 0);

        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn stalled_client_is_timed_out_not_forever() {
        let db = Ssdm::open(Backend::Memory);
        let server = Server::bind_with(
            "127.0.0.1:0",
            db,
            ServerConfig {
                read_timeout: Some(Duration::from_millis(100)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());

        // Connect and go silent: the server must give up on us and
        // accept the next connection.
        let _stalled = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        let mut client = Client::connect(addr).unwrap();
        client.query("ASK { }").unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn concurrent_clients_are_served_while_one_stays_connected() {
        let (addr, handle) = spawn_server();
        // Hold a session open mid-conversation...
        let mut parked = Client::connect(addr).unwrap();
        parked.query("ASK { }").unwrap();
        // ...and several other clients must still get answers — under
        // the old one-at-a-time accept loop these would block until
        // `parked` disconnected.
        let others: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let (_, rows) = c
                        .query_rows("PREFIX ex: <http://e#> SELECT ?n WHERE { ?x ex:name ?n }")
                        .unwrap();
                    rows.len()
                })
            })
            .collect();
        for t in others {
            assert_eq!(t.join().unwrap(), 2);
        }
        // The parked session still works afterwards.
        parked.query("ASK { }").unwrap();
        parked.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn stats_statement_reports_counters_over_the_wire() {
        let (addr, handle) = spawn_server();
        let mut client = Client::connect(addr).unwrap();
        client
            .query(
                "PREFIX ex: <http://e#>
                 SELECT (array_sum(?v) AS ?s) WHERE { ex:a ex:v ?v }",
            )
            .unwrap();
        let report = client.query("STATS").unwrap();
        for section in [
            "backend[cumulative]:",
            "cache[cumulative]:",
            "resilience[cumulative]:",
            "apr[cumulative]:",
            "apr[last_op]:",
            "compute[cumulative]:",
            "durability[cumulative]:",
        ] {
            assert!(report.contains(section), "missing {section} in {report}");
        }
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn metrics_statement_returns_valid_prometheus_text() {
        let (addr, handle) = spawn_server();
        let mut client = Client::connect(addr).unwrap();
        client
            .query(
                "PREFIX ex: <http://e#>
                 SELECT (array_sum(?v) AS ?s) WHERE { ex:a ex:v ?v }",
            )
            .unwrap();
        let metrics = client.query("METRICS").unwrap();
        ssdm_obs::validate_prometheus_text(&metrics)
            .unwrap_or_else(|e| panic!("invalid Prometheus text: {e}\n{metrics}"));
        for series in [
            "ssdm_backend_statements_total",
            "ssdm_cache_hits_total",
            "ssdm_compute_elements_total",
            "ssdm_chunk_fetch_seconds",
            "ssdm_wal_fsync_seconds",
            "ssdm_query_seconds_count",
        ] {
            assert!(metrics.contains(series), "missing {series} in:\n{metrics}");
        }
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn explain_analyze_over_the_wire() {
        let (addr, handle) = spawn_server();
        let mut client = Client::connect(addr).unwrap();
        let profile = client
            .query(
                "PREFIX ex: <http://e#>
                 EXPLAIN ANALYZE SELECT (array_sum(?v) AS ?s) WHERE { ex:a ex:v ?v }",
            )
            .unwrap();
        for needle in [
            "EXPLAIN ANALYZE",
            "phases:",
            "operators:",
            "totals:",
            "time_us=",
        ] {
            assert!(profile.contains(needle), "missing {needle} in:\n{profile}");
        }
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn http_metrics_endpoint_serves_prometheus_dump() {
        let db = Ssdm::open(Backend::Memory);
        let mut server = Server::bind("127.0.0.1:0", db).unwrap();
        let addr = server.local_addr().unwrap();
        let metrics_addr = server.enable_metrics("127.0.0.1:0").unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());

        let mut http = TcpStream::connect(metrics_addr).unwrap();
        http.write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n")
            .unwrap();
        http.flush().unwrap();
        let mut response = String::new();
        http.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: text/plain"), "{response}");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b)
            .unwrap_or_default();
        ssdm_obs::validate_prometheus_text(body)
            .unwrap_or_else(|e| panic!("invalid Prometheus text: {e}\n{body}"));
        assert!(body.contains("ssdm_backend_statements_total"), "{body}");

        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn checkpoint_statement_over_the_wire() {
        // Non-durable engine: CHECKPOINT is a clean error.
        let (addr, handle) = spawn_server();
        let mut client = Client::connect(addr).unwrap();
        let err = client.query("CHECKPOINT").unwrap_err();
        assert!(err.to_string().contains("durable"), "got: {err}");
        client.shutdown().unwrap();
        handle.join().unwrap();

        // Durable engine: CHECKPOINT truncates the WAL and the state
        // survives a server restart over the same directory.
        let dir = std::env::temp_dir().join(format!("ssdm-srv-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Ssdm::open_durable(&dir).unwrap();
        let server = Server::bind("127.0.0.1:0", db).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());
        let mut client = Client::connect(addr).unwrap();
        client
            .query("INSERT DATA { <http://s> <http://p> 1 . }")
            .unwrap();
        assert_eq!(client.query("CHECKPOINT").unwrap(), "checkpoint complete");
        let report = client.query("STATS").unwrap();
        assert!(report.contains("checkpoints=1"), "report: {report}");
        client.shutdown().unwrap();
        handle.join().unwrap();

        let mut db = Ssdm::open_durable(&dir).unwrap();
        let rows = db
            .query("SELECT ?o WHERE { <http://s> <http://p> ?o }")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_in_flight_query_completes_during_shutdown() {
        use ssdm_storage::RelChunkStore;

        // A back-end charging 150 ms per statement makes the query
        // reliably still in flight when SHUTDOWN lands.
        let mut rel = RelChunkStore::open_memory().unwrap();
        rel.db_mut().set_latency(relstore::LatencyModel {
            per_statement: Duration::from_millis(150),
            per_row: Duration::ZERO,
            per_kib: Duration::ZERO,
        });
        let mut db = Ssdm::from_dataset(scisparql::Dataset::with_backend(Box::new(rel)));
        db.set_externalize_threshold(8, 64);
        let values: Vec<String> = (1..=64).map(|i| i.to_string()).collect();
        db.load_turtle(&format!(
            "@prefix ex: <http://e#> . ex:a ex:v ({}) .",
            values.join(" ")
        ))
        .unwrap();

        let server = Server::bind("127.0.0.1:0", db).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());

        let slow = std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.query_rows(
                "PREFIX ex: <http://e#>
                 SELECT (array_sum(?v) AS ?s) WHERE { ex:a ex:v ?v }",
            )
            .unwrap()
        });
        // Let the slow query get read and start evaluating, then pull
        // the plug from another session.
        std::thread::sleep(Duration::from_millis(50));
        let mut killer = Client::connect(addr).unwrap();
        killer.shutdown().unwrap();

        // The drain must deliver the in-flight response, complete and
        // correct, before the server exits.
        let (_, rows) = slow.join().unwrap();
        assert_eq!(rows, vec![vec![(1..=64).sum::<i64>().to_string()]]);
        handle.join().unwrap();
    }

    #[test]
    fn parked_idle_connection_does_not_pin_shutdown() {
        let db = Ssdm::open(Backend::Memory);
        let server = Server::bind_with(
            "127.0.0.1:0",
            db,
            ServerConfig {
                // The old behavior pinned serve() on this for 30 s.
                read_timeout: Some(Duration::from_secs(30)),
                drain_timeout: Duration::from_millis(300),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());

        // A healthy session that then just sits there, holding its
        // connection open with no request in flight.
        let mut parked = Client::connect(addr).unwrap();
        parked.query("ASK { }").unwrap();

        let mut killer = Client::connect(addr).unwrap();
        let started = Instant::now();
        killer.shutdown().unwrap();

        // serve() must return promptly despite the parked connection;
        // join through a channel so a regression fails instead of
        // hanging the test suite.
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(handle.join());
        });
        rx.recv_timeout(Duration::from_secs(5))
            .expect("serve() still pinned by the parked connection")
            .unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "drain took {:?}",
            started.elapsed()
        );
        drop(parked);
    }

    #[test]
    fn sequential_clients() {
        let (addr, handle) = spawn_server();
        {
            let mut c1 = Client::connect(addr).unwrap();
            c1.query("PREFIX ex: <http://e#> INSERT DATA { ex:z ex:name \"zeta\" . }")
                .unwrap();
        } // c1 disconnects
        let mut c2 = Client::connect(addr).unwrap();
        let (_, rows) = c2
            .query_rows("PREFIX ex: <http://e#> SELECT ?n WHERE { ?x ex:name ?n }")
            .unwrap();
        assert_eq!(rows.len(), 3, "state persists across connections");
        c2.shutdown().unwrap();
        handle.join().unwrap();
    }
}
