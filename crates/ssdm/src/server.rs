//! Client–server deployment over TCP (thesis §5.1, ch. 7).
//!
//! SSDM "can be utilized as a stand-alone system, a client-server
//! system, or a cluster of processes"; the Matlab integration of ch. 7
//! speaks to an SSDM server over TCP. This module implements that wire
//! layer with a minimal framed protocol:
//!
//! * request: `u32` length (LE) + UTF-8 SciSPARQL statement;
//! * response: `u8` status (0 = ok, 1 = error) + `u32` length + UTF-8
//!   payload. SELECT results serialize as TSV (header line of variable
//!   names, then one row per solution, arrays in collection notation);
//!   ASK returns `true`/`false`; updates return `inserted N deleted M`.
//!
//! The server owns its [`Ssdm`] instance and serializes queries — the
//! concurrency model of a main-memory DBMS with a single query engine.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

use scisparql::{QueryError, QueryResult};

use crate::Ssdm;

/// Protocol limit: 64 MiB per message.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// A running SSDM server.
pub struct Server {
    listener: TcpListener,
    db: Ssdm,
}

impl Server {
    /// Bind to an address (use port 0 for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs, db: Ssdm) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            db,
        })
    }

    /// The bound address (to hand to clients).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve connections until a client sends the statement `SHUTDOWN`.
    /// Connections are handled sequentially; each carries any number of
    /// statements until the peer closes it.
    pub fn serve(mut self) -> std::io::Result<()> {
        loop {
            let (stream, _peer) = self.listener.accept()?;
            if self.handle_connection(stream)? {
                return Ok(());
            }
        }
    }

    /// Returns true when a SHUTDOWN was received.
    fn handle_connection(&mut self, mut stream: TcpStream) -> std::io::Result<bool> {
        loop {
            let Some(request) = read_frame(&mut stream)? else {
                return Ok(false); // peer closed
            };
            let text = match String::from_utf8(request) {
                Ok(t) => t,
                Err(_) => {
                    write_response(&mut stream, 1, "request is not UTF-8")?;
                    continue;
                }
            };
            if text.trim().eq_ignore_ascii_case("SHUTDOWN") {
                write_response(&mut stream, 0, "bye")?;
                return Ok(true);
            }
            match self.db.query(&text) {
                Ok(result) => write_response(&mut stream, 0, &render(&result))?,
                Err(e) => write_response(&mut stream, 1, &e.to_string())?,
            }
        }
    }
}

/// Serialize a result for the wire.
fn render(result: &QueryResult) -> String {
    match result {
        QueryResult::Solutions { vars, rows } => {
            let mut out = vars.join("\t");
            out.push('\n');
            for row in rows {
                let cells: Vec<String> = row
                    .iter()
                    .map(|c| c.as_ref().map(|v| v.to_string()).unwrap_or_default())
                    .collect();
                out.push_str(&cells.join("\t"));
                out.push('\n');
            }
            out
        }
        QueryResult::Boolean(b) => format!("{b}\n"),
        QueryResult::Graph(g) => ssdm_rdf::ntriples::serialize(g),
        QueryResult::Updated { inserted, deleted } => {
            format!("inserted {inserted} deleted {deleted}\n")
        }
        QueryResult::Text(t) => t.clone(),
    }
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    Ok(Some(buf))
}

fn write_response(stream: &mut TcpStream, status: u8, payload: &str) -> std::io::Result<()> {
    stream.write_all(&[status])?;
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()
}

/// A client connection to an SSDM server — what the Matlab interface of
/// ch. 7 uses under the hood.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Send one statement; returns the rendered payload or the server's
    /// error message.
    pub fn query(&mut self, text: &str) -> Result<String, QueryError> {
        let send = |stream: &mut TcpStream| -> std::io::Result<(u8, String)> {
            stream.write_all(&(text.len() as u32).to_le_bytes())?;
            stream.write_all(text.as_bytes())?;
            stream.flush()?;
            let mut status = [0u8; 1];
            stream.read_exact(&mut status)?;
            let mut len_buf = [0u8; 4];
            stream.read_exact(&mut len_buf)?;
            let len = u32::from_le_bytes(len_buf);
            if len > MAX_FRAME {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "response too large",
                ));
            }
            let mut buf = vec![0u8; len as usize];
            stream.read_exact(&mut buf)?;
            Ok((
                status[0],
                String::from_utf8(buf).unwrap_or_else(|_| "<binary>".into()),
            ))
        };
        match send(&mut self.stream) {
            Ok((0, payload)) => Ok(payload),
            Ok((_, message)) => Err(QueryError::Eval(message)),
            Err(e) => Err(QueryError::Eval(format!("connection error: {e}"))),
        }
    }

    /// TSV convenience: parse a SELECT payload into (vars, rows).
    pub fn query_rows(
        &mut self,
        text: &str,
    ) -> Result<(Vec<String>, Vec<Vec<String>>), QueryError> {
        let payload = self.query(text)?;
        let mut lines = payload.lines();
        let vars: Vec<String> = lines
            .next()
            .unwrap_or_default()
            .split('\t')
            .map(str::to_string)
            .collect();
        let rows = lines
            .map(|l| l.split('\t').map(str::to_string).collect())
            .collect();
        Ok((vars, rows))
    }

    /// Ask the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), QueryError> {
        self.query("SHUTDOWN").map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;

    fn spawn_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let mut db = Ssdm::open(Backend::Memory);
        db.load_turtle(
            r#"@prefix ex: <http://e#> .
               ex:a ex:v (1 2 3) ; ex:name "alpha" .
               ex:b ex:v (4 5 6) ; ex:name "beta" ."#,
        )
        .unwrap();
        let server = Server::bind("127.0.0.1:0", db).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().unwrap());
        (addr, handle)
    }

    #[test]
    fn select_over_the_wire() {
        let (addr, handle) = spawn_server();
        let mut client = Client::connect(addr).unwrap();
        let (vars, rows) = client
            .query_rows(
                "PREFIX ex: <http://e#>
                 SELECT ?name (array_sum(?v) AS ?s) WHERE { ?x ex:name ?name ; ex:v ?v }
                 ORDER BY ?name",
            )
            .unwrap();
        assert_eq!(vars, vec!["name", "s"]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec!["\"alpha\"", "6"]);
        assert_eq!(rows[1], vec!["\"beta\"", "15"]);
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn updates_and_errors_over_the_wire() {
        let (addr, handle) = spawn_server();
        let mut client = Client::connect(addr).unwrap();
        let r = client
            .query("PREFIX ex: <http://e#> INSERT DATA { ex:c ex:name \"gamma\" . }")
            .unwrap();
        assert!(r.contains("inserted 1"));
        // The update persists across statements on the same session.
        let (_, rows) = client
            .query_rows("PREFIX ex: <http://e#> SELECT ?n WHERE { ?x ex:name ?n }")
            .unwrap();
        assert_eq!(rows.len(), 3);
        // A bad query returns an error, not a dead connection.
        let err = client.query("SELECT garbage").unwrap_err();
        assert!(err.to_string().contains("error"));
        let (_, rows) = client
            .query_rows("PREFIX ex: <http://e#> SELECT ?n WHERE { ?x ex:name ?n }")
            .unwrap();
        assert_eq!(rows.len(), 3, "connection survives query errors");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn sequential_clients() {
        let (addr, handle) = spawn_server();
        {
            let mut c1 = Client::connect(addr).unwrap();
            c1.query("PREFIX ex: <http://e#> INSERT DATA { ex:z ex:name \"zeta\" . }")
                .unwrap();
        } // c1 disconnects
        let mut c2 = Client::connect(addr).unwrap();
        let (_, rows) = c2
            .query_rows("PREFIX ex: <http://e#> SELECT ?n WHERE { ?x ex:name ?n }")
            .unwrap();
        assert_eq!(rows.len(), 3, "state persists across connections");
        c2.shutdown().unwrap();
        handle.join().unwrap();
    }
}
