//! Multi-tenant serving: named [`Ssdm`] engines behind one server,
//! per-tenant quotas enforced at admission, and deficit-round-robin
//! (DRR) fair-share dispatch so one tenant's burst cannot starve the
//! others.
//!
//! The pieces, bottom-up:
//!
//! * [`TokenBucket`] — an optional per-tenant req/s limiter. Time is a
//!   parameter (`try_take(now)`), so tests drive it with synthetic
//!   instants instead of sleeping.
//! * [`DrrCore`] — the scheduling heart: one FIFO per tenant plus a
//!   deficit counter, served round-robin with a byte quantum. Costs are
//!   statement byte lengths (clamped), so a tenant draining many small
//!   queries and a tenant posting few huge ones get comparable service.
//!   Tenants at their `max_concurrent` cap are skipped without spending
//!   their deficit; per-tenant and global queue caps are enforced on
//!   push. Pure data structure — no locks, no clocks — so fairness is
//!   testable as a pop-sequence property.
//! * [`FairDispatch`] — a blocking MPMC queue around [`DrrCore`] (the
//!   replacement for the `mpsc::sync_channel` FIFO that used to feed
//!   the HTTP worker pool).
//! * [`FairGate`] — DRR-ordered execution slots for the framed server:
//!   connection threads queue a ticket per statement and run when
//!   granted, so the framed side shares the same fairness policy
//!   without a job queue.
//! * [`Tenant`] / [`TenantRegistry`] — a named engine with quotas and
//!   admission counters, and the registry both front ends resolve
//!   against. Counters ride the obs [`Report`] as `tenant="..."`
//!   labelled series in `/metrics`, `.stats`, and `STATS`.
//!
//! Admission outcomes map onto flat protocol replies: unknown tenant →
//! 404, rate/quota rejection → 429, global overload → 503
//! ([`Rejection::http_status`]).

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::Instant;

use ssdm_obs::{Report, Scope};

use crate::{Backend, DurableOptions, Ssdm};

/// The tenant requests without an explicit tenant route resolve to.
pub const DEFAULT_TENANT: &str = "default";

/// DRR service quantum in cost units (statement bytes) added to a
/// tenant's deficit per round.
pub const DEFAULT_QUANTUM: u64 = 1024;

/// Costs are clamped to `DEFAULT_QUANTUM * COST_CLAMP_QUANTA` so a
/// pathological statement cannot stall the ring for more than a bounded
/// number of rounds.
pub const COST_CLAMP_QUANTA: u64 = 64;

// ---------------------------------------------------------------------------
// Quotas and admission outcomes
// ---------------------------------------------------------------------------

/// Optional request-rate quota: a token bucket refilled at `per_sec`
/// with capacity `burst`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    pub per_sec: f64,
    pub burst: f64,
}

/// Per-tenant admission quotas. The cache-byte budget is part of the
/// tenant's engine construction ([`TenantSpec`]), not checked here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuotas {
    /// Statements a tenant may have executing at once.
    pub max_concurrent: usize,
    /// Statements a tenant may have waiting beyond the executing ones;
    /// `max_concurrent + max_queued` bounds total in-flight work.
    pub max_queued: usize,
    /// Optional req/s token bucket.
    pub rate: Option<RateLimit>,
}

impl Default for TenantQuotas {
    fn default() -> Self {
        TenantQuotas {
            max_concurrent: 4,
            max_queued: 64,
            rate: None,
        }
    }
}

/// The subset of quotas the scheduler enforces per push/pop.
#[derive(Debug, Clone, Copy)]
pub struct TenantCaps {
    pub max_concurrent: usize,
    pub max_queued: usize,
}

impl From<&TenantQuotas> for TenantCaps {
    fn from(q: &TenantQuotas) -> Self {
        TenantCaps {
            max_concurrent: q.max_concurrent.max(1),
            max_queued: q.max_queued,
        }
    }
}

/// Why a request was refused at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// No such tenant registered (HTTP 404).
    UnknownTenant(String),
    /// The tenant's req/s token bucket is empty (HTTP 429).
    RateLimited(String),
    /// The tenant is at its in-flight cap `max_concurrent + max_queued`
    /// (HTTP 429).
    QuotaExceeded(String),
    /// The server-wide dispatch queue is full or shutting down
    /// (HTTP 503).
    Overloaded,
}

impl Rejection {
    pub fn http_status(&self) -> u16 {
        match self {
            Rejection::UnknownTenant(_) => 404,
            Rejection::RateLimited(_) | Rejection::QuotaExceeded(_) => 429,
            Rejection::Overloaded => 503,
        }
    }

    pub fn message(&self) -> String {
        match self {
            Rejection::UnknownTenant(t) => format!("unknown tenant: {t}"),
            Rejection::RateLimited(t) => {
                format!("tenant {t} over request-rate quota; retry later")
            }
            Rejection::QuotaExceeded(t) => {
                format!("tenant {t} at max in-flight quota; retry later")
            }
            Rejection::Overloaded => "server overloaded".to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// Token bucket
// ---------------------------------------------------------------------------

/// A token bucket with injectable time: `try_take(now)` refills from
/// the previously observed instant, so tests pass synthetic instants
/// and never sleep.
#[derive(Debug)]
pub struct TokenBucket {
    capacity: f64,
    per_sec: f64,
    tokens: f64,
    last: Option<Instant>,
}

impl TokenBucket {
    pub fn new(limit: RateLimit) -> TokenBucket {
        let capacity = limit.burst.max(1.0);
        TokenBucket {
            capacity,
            per_sec: limit.per_sec.max(0.0),
            tokens: capacity,
            last: None,
        }
    }

    /// Take one token if available at `now`; `false` means rate-limited.
    pub fn try_take(&mut self, now: Instant) -> bool {
        if let Some(last) = self.last {
            if let Some(dt) = now.checked_duration_since(last) {
                self.tokens = (self.tokens + self.per_sec * dt.as_secs_f64()).min(self.capacity);
                self.last = Some(now);
            }
            // `now` before `last` (callers racing on the clock): keep
            // the newer refill point, just try the balance.
        } else {
            self.last = Some(now);
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Deficit round robin core
// ---------------------------------------------------------------------------

struct TenantQueue<T> {
    items: VecDeque<(u64, T)>,
    deficit: u64,
    active: usize,
    caps: TenantCaps,
}

/// The DRR scheduler state: per-tenant FIFOs served round-robin with a
/// deficit counter. Plain data — callers provide locking
/// ([`FairDispatch`], [`FairGate`]).
pub struct DrrCore<T> {
    queues: BTreeMap<String, TenantQueue<T>>,
    /// Round-robin order over tenants with waiting items.
    ring: VecDeque<String>,
    quantum: u64,
    /// Total waiting items across tenants.
    queued: usize,
    /// Server-wide cap on waiting items; 0 = unbounded.
    global_cap: usize,
    closed: bool,
}

impl<T> DrrCore<T> {
    pub fn new(quantum: u64, global_cap: usize) -> DrrCore<T> {
        DrrCore {
            queues: BTreeMap::new(),
            ring: VecDeque::new(),
            quantum: quantum.max(1),
            queued: 0,
            global_cap,
            closed: false,
        }
    }

    pub fn len(&self) -> usize {
        self.queued
    }

    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    pub fn close(&mut self) {
        self.closed = true;
    }

    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Enqueue `item` for `tenant` at `cost` (clamped), enforcing the
    /// global cap (→ [`Rejection::Overloaded`]) and the tenant's
    /// in-flight cap (→ [`Rejection::QuotaExceeded`]). `caps` is
    /// re-recorded on every push so quota changes take effect live.
    pub fn push(
        &mut self,
        tenant: &str,
        caps: TenantCaps,
        cost: u64,
        item: T,
    ) -> Result<(), Rejection> {
        if self.closed {
            return Err(Rejection::Overloaded);
        }
        if self.global_cap > 0 && self.queued >= self.global_cap {
            return Err(Rejection::Overloaded);
        }
        let q = self
            .queues
            .entry(tenant.to_string())
            .or_insert_with(|| TenantQueue {
                items: VecDeque::new(),
                deficit: 0,
                active: 0,
                caps,
            });
        q.caps = caps;
        if q.active + q.items.len() >= caps.max_concurrent + caps.max_queued {
            // Drop the placeholder entry if this push created it.
            if q.items.is_empty() && q.active == 0 {
                self.queues.remove(tenant);
            }
            return Err(Rejection::QuotaExceeded(tenant.to_string()));
        }
        let cost = cost.clamp(1, self.quantum * COST_CLAMP_QUANTA);
        let was_empty = q.items.is_empty();
        q.items.push_back((cost, item));
        if was_empty {
            q.deficit = 0;
            self.ring.push_back(tenant.to_string());
        }
        self.queued += 1;
        Ok(())
    }

    /// Dequeue the next item under DRR, skipping tenants at their
    /// `max_concurrent` cap (without spending their deficit). Returns
    /// `None` when nothing is runnable — either empty, or every tenant
    /// with waiting work is at its cap (callers wait for
    /// [`DrrCore::finish`]).
    pub fn pop(&mut self) -> Option<(String, T)> {
        if self.queued == 0 {
            return None;
        }
        // Each full pass adds `quantum` to every unblocked tenant at
        // the front, so after COST_CLAMP_QUANTA passes any unblocked
        // head is affordable; +1 pass detects the all-blocked case.
        for _ in 0..=COST_CLAMP_QUANTA {
            let mut any_runnable = false;
            for _ in 0..self.ring.len() {
                let name = self.ring.front().cloned()?;
                let q = self.queues.get_mut(&name).expect("ring tenant has queue");
                if q.active >= q.caps.max_concurrent {
                    self.ring.rotate_left(1);
                    continue;
                }
                any_runnable = true;
                let head_cost = q
                    .items
                    .front()
                    .map(|(c, _)| *c)
                    .expect("ring tenant nonempty");
                if q.deficit >= head_cost {
                    q.deficit -= head_cost;
                    let (_, item) = q.items.pop_front().expect("head exists");
                    q.active += 1;
                    self.queued -= 1;
                    if q.items.is_empty() {
                        q.deficit = 0;
                        self.ring.pop_front();
                    }
                    return Some((name, item));
                }
                q.deficit += self.quantum;
                self.ring.rotate_left(1);
            }
            if !any_runnable {
                return None;
            }
        }
        unreachable!("DRR deficit must cover a clamped cost within the pass bound");
    }

    /// Record that an item popped for `tenant` finished executing,
    /// releasing one of its `max_concurrent` slots.
    pub fn finish(&mut self, tenant: &str) {
        if let Some(q) = self.queues.get_mut(tenant) {
            q.active = q.active.saturating_sub(1);
            if q.items.is_empty() && q.active == 0 {
                self.queues.remove(tenant);
            }
        }
    }

    /// Waiting items for one tenant (tests / introspection).
    pub fn queued_for(&self, tenant: &str) -> usize {
        self.queues.get(tenant).map_or(0, |q| q.items.len())
    }
}

// ---------------------------------------------------------------------------
// Blocking fair dispatch queue (HTTP worker feed)
// ---------------------------------------------------------------------------

/// A blocking MPMC queue with DRR ordering: producers `push` (rejected
/// with quota/overload errors), workers `pop` (blocks until runnable
/// work or close) and must call `finish` when done executing.
pub struct FairDispatch<T> {
    core: Mutex<DrrCore<T>>,
    cv: Condvar,
}

fn lock_core<T>(core: &Mutex<DrrCore<T>>) -> MutexGuard<'_, DrrCore<T>> {
    // The core holds plain scheduler state; a panicked pusher cannot
    // leave it inconsistent, so recover rather than cascade.
    core.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> FairDispatch<T> {
    pub fn new(quantum: u64, global_cap: usize) -> FairDispatch<T> {
        FairDispatch {
            core: Mutex::new(DrrCore::new(quantum, global_cap)),
            cv: Condvar::new(),
        }
    }

    pub fn push(
        &self,
        tenant: &str,
        caps: TenantCaps,
        cost: u64,
        item: T,
    ) -> Result<(), Rejection> {
        lock_core(&self.core).push(tenant, caps, cost, item)?;
        self.cv.notify_one();
        Ok(())
    }

    /// Block until an item is runnable; `None` means closed and fully
    /// drained (queued items are still served after close).
    pub fn pop(&self) -> Option<(String, T)> {
        let mut core = lock_core(&self.core);
        loop {
            if let Some(out) = core.pop() {
                return Some(out);
            }
            if core.is_closed() && core.is_empty() {
                return None;
            }
            core = self.cv.wait(core).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub fn finish(&self, tenant: &str) {
        lock_core(&self.core).finish(tenant);
        self.cv.notify_all();
    }

    pub fn close(&self) {
        lock_core(&self.core).close();
        self.cv.notify_all();
    }

    pub fn len(&self) -> usize {
        lock_core(&self.core).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Fair gate (framed server execution slots)
// ---------------------------------------------------------------------------

struct GateTicket {
    granted: Mutex<bool>,
    cv: Condvar,
}

/// DRR-ordered execution slots: the framed server's replacement for
/// FIFO worker handoff. Each statement acquires a slot (queuing a
/// ticket under the tenant's DRR queue); the returned guard releases
/// the slot and grants the next eligible ticket on drop.
pub struct FairGate {
    dispatch: FairDispatch<Arc<GateTicket>>,
    slots: Mutex<usize>,
}

/// An execution slot held for one statement; release on drop.
pub struct GateGuard<'a> {
    gate: &'a FairGate,
    tenant: String,
}

impl FairGate {
    pub fn new(slots: usize) -> FairGate {
        FairGate {
            // No global cap: per-tenant caps bound the ticket queue.
            dispatch: FairDispatch::new(DEFAULT_QUANTUM, 0),
            slots: Mutex::new(slots.max(1)),
        }
    }

    /// Queue for an execution slot and block until granted. Fails fast
    /// with [`Rejection::QuotaExceeded`] when the tenant is at its
    /// in-flight cap.
    pub fn acquire(
        &self,
        tenant: &str,
        caps: TenantCaps,
        cost: u64,
    ) -> Result<GateGuard<'_>, Rejection> {
        let ticket = Arc::new(GateTicket {
            granted: Mutex::new(false),
            cv: Condvar::new(),
        });
        self.dispatch
            .push(tenant, caps, cost, Arc::clone(&ticket))?;
        self.pump();
        let mut granted = ticket.granted.lock().unwrap_or_else(|e| e.into_inner());
        while !*granted {
            granted = ticket.cv.wait(granted).unwrap_or_else(|e| e.into_inner());
        }
        Ok(GateGuard {
            gate: self,
            tenant: tenant.to_string(),
        })
    }

    /// Grant tickets while free slots and runnable tickets exist.
    fn pump(&self) {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        while *slots > 0 {
            let mut core = lock_core(&self.dispatch.core);
            let Some((_, ticket)) = core.pop() else { break };
            drop(core);
            *slots -= 1;
            let mut granted = ticket.granted.lock().unwrap_or_else(|e| e.into_inner());
            *granted = true;
            ticket.cv.notify_one();
        }
    }
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.gate.dispatch.finish(&self.tenant);
        {
            let mut slots = self.gate.slots.lock().unwrap_or_else(|e| e.into_inner());
            *slots += 1;
        }
        self.gate.pump();
    }
}

// ---------------------------------------------------------------------------
// Tenant
// ---------------------------------------------------------------------------

/// Monotonic per-tenant admission/outcome counters. `admitted` counts
/// statements accepted into a dispatch queue or gate; every admitted
/// statement ends as exactly one of `completed`, `errors`, or
/// `timed_out` — the reconciliation `repro_tenants` asserts.
#[derive(Default)]
pub struct TenantCounters {
    pub admitted: AtomicU64,
    pub completed: AtomicU64,
    pub errors: AtomicU64,
    pub timed_out: AtomicU64,
    pub rejected_rate: AtomicU64,
    pub rejected_quota: AtomicU64,
    pub rejected_overload: AtomicU64,
}

impl TenantCounters {
    fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// One named engine with quotas and counters.
pub struct Tenant {
    pub name: String,
    engine: Arc<Mutex<Ssdm>>,
    quotas: Mutex<TenantQuotas>,
    bucket: Mutex<Option<TokenBucket>>,
    pub counters: TenantCounters,
}

impl Tenant {
    fn new(name: String, engine: Arc<Mutex<Ssdm>>, quotas: TenantQuotas) -> Tenant {
        Tenant {
            name,
            engine,
            bucket: Mutex::new(quotas.rate.map(TokenBucket::new)),
            quotas: Mutex::new(quotas),
            counters: TenantCounters::default(),
        }
    }

    /// The engine mutex — shared with any front end serving this
    /// tenant, so framed and HTTP traffic see one consistent dataset.
    pub fn engine(&self) -> &Arc<Mutex<Ssdm>> {
        &self.engine
    }

    pub fn quotas(&self) -> TenantQuotas {
        *self.quotas.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn set_quotas(&self, quotas: TenantQuotas) {
        *self.bucket.lock().unwrap_or_else(|e| e.into_inner()) = quotas.rate.map(TokenBucket::new);
        *self.quotas.lock().unwrap_or_else(|e| e.into_inner()) = quotas;
    }

    pub fn caps(&self) -> TenantCaps {
        TenantCaps::from(&self.quotas())
    }

    /// Spend one rate token at `now`; `true` when no rate quota is set.
    pub fn rate_admit(&self, now: Instant) -> bool {
        match self
            .bucket
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            Some(bucket) => bucket.try_take(now),
            None => true,
        }
    }

    pub fn note_admitted(&self) {
        TenantCounters::bump(&self.counters.admitted);
    }

    pub fn note_done(&self, ok: bool) {
        TenantCounters::bump(if ok {
            &self.counters.completed
        } else {
            &self.counters.errors
        });
    }

    pub fn note_timed_out(&self) {
        TenantCounters::bump(&self.counters.timed_out);
    }

    pub fn note_rejected(&self, why: &Rejection) {
        TenantCounters::bump(match why {
            Rejection::RateLimited(_) => &self.counters.rejected_rate,
            Rejection::QuotaExceeded(_) => &self.counters.rejected_quota,
            _ => &self.counters.rejected_overload,
        });
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The set of tenants one server hosts. Always contains the
/// [`DEFAULT_TENANT`]; the default tenant cannot be evicted.
pub struct TenantRegistry {
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

impl TenantRegistry {
    /// A registry whose default tenant owns `engine`.
    pub fn new(engine: Ssdm, quotas: TenantQuotas) -> TenantRegistry {
        Self::from_shared(Arc::new(Mutex::new(engine)), quotas)
    }

    /// A registry whose default tenant shares an existing engine handle
    /// (how the framed and HTTP front ends serve one dataset).
    pub fn from_shared(engine: Arc<Mutex<Ssdm>>, quotas: TenantQuotas) -> TenantRegistry {
        let mut tenants = BTreeMap::new();
        tenants.insert(
            DEFAULT_TENANT.to_string(),
            Arc::new(Tenant::new(DEFAULT_TENANT.to_string(), engine, quotas)),
        );
        TenantRegistry {
            tenants: RwLock::new(tenants),
        }
    }

    fn map(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<Tenant>>> {
        self.tenants.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a new tenant with its own engine.
    pub fn add(
        &self,
        name: &str,
        engine: Ssdm,
        quotas: TenantQuotas,
    ) -> Result<Arc<Tenant>, String> {
        self.add_shared(name, Arc::new(Mutex::new(engine)), quotas)
    }

    /// Register a new tenant over a shared engine handle.
    pub fn add_shared(
        &self,
        name: &str,
        engine: Arc<Mutex<Ssdm>>,
        quotas: TenantQuotas,
    ) -> Result<Arc<Tenant>, String> {
        if !valid_name(name) {
            return Err(format!(
                "invalid tenant name {name:?}: use 1-64 chars from [A-Za-z0-9_-]"
            ));
        }
        let mut map = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        if map.contains_key(name) {
            return Err(format!("tenant {name:?} already exists"));
        }
        let tenant = Arc::new(Tenant::new(name.to_string(), engine, quotas));
        map.insert(name.to_string(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Remove a tenant. In-flight statements holding the engine `Arc`
    /// finish normally; new requests get 404.
    pub fn evict(&self, name: &str) -> Result<(), String> {
        if name == DEFAULT_TENANT {
            return Err("the default tenant cannot be evicted".to_string());
        }
        let mut map = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        map.remove(name)
            .map(|_| ())
            .ok_or_else(|| format!("tenant {name:?} not found"))
    }

    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.map().get(name).cloned()
    }

    pub fn default_tenant(&self) -> Arc<Tenant> {
        self.get(DEFAULT_TENANT)
            .expect("default tenant always present")
    }

    pub fn names(&self) -> Vec<String> {
        self.map().keys().cloned().collect()
    }

    /// Resolve `None` to the default tenant, `Some(name)` to that
    /// tenant or [`Rejection::UnknownTenant`].
    pub fn resolve(&self, name: Option<&str>) -> Result<Arc<Tenant>, Rejection> {
        let name = name.unwrap_or(DEFAULT_TENANT);
        self.get(name)
            .ok_or_else(|| Rejection::UnknownTenant(name.to_string()))
    }

    /// Resolve + spend a rate token: the common admission prefix for
    /// both front ends. Queue/slot caps are enforced later, at
    /// [`FairDispatch::push`] / [`FairGate::acquire`].
    pub fn admit(&self, name: Option<&str>, now: Instant) -> Result<Arc<Tenant>, Rejection> {
        let tenant = self.resolve(name)?;
        if !tenant.rate_admit(now) {
            let why = Rejection::RateLimited(tenant.name.clone());
            tenant.note_rejected(&why);
            return Err(why);
        }
        Ok(tenant)
    }

    /// Per-tenant admission counters as `tenant="..."` labelled series.
    pub fn report(&self) -> Report {
        let mut r = Report::default();
        for (name, t) in self.map().iter() {
            let c = &t.counters;
            for (metric, value) in [
                ("admitted", &c.admitted),
                ("completed", &c.completed),
                ("errors", &c.errors),
                ("timed_out", &c.timed_out),
                ("rejected_rate", &c.rejected_rate),
                ("rejected_quota", &c.rejected_quota),
                ("rejected_overload", &c.rejected_overload),
            ] {
                r.push_labeled_int(
                    "tenant",
                    Scope::Cumulative,
                    metric,
                    ("tenant", name.clone()),
                    value.load(Ordering::Relaxed),
                );
            }
        }
        r
    }

    /// The `/metrics` / `METRICS` body: the default tenant's engine
    /// report, the tenant-labelled admission counters, and the process
    /// recorder, in one Prometheus text page.
    pub fn metrics_prometheus(&self) -> String {
        let engine_part = {
            let engine = self.default_tenant();
            let guard = engine.engine().lock().unwrap_or_else(|e| e.into_inner());
            guard.report().render_prometheus()
        };
        format!(
            "{}{}{}",
            engine_part,
            self.report().render_prometheus(),
            ssdm_obs::recorder().prometheus_text()
        )
    }

    /// The `.stats` / `STATS` body for one tenant: its engine report
    /// plus the registry's tenant section.
    pub fn stats_text(&self, tenant: &Tenant) -> String {
        let engine_part = {
            let guard = tenant.engine().lock().unwrap_or_else(|e| e.into_inner());
            guard.report().render_text()
        };
        format!("{}{}", engine_part, self.report().render_text())
    }
}

// ---------------------------------------------------------------------------
// Tenant spec (CLI / config surface)
// ---------------------------------------------------------------------------

/// How a tenant's engine is opened.
#[derive(Debug, Clone, PartialEq)]
pub enum TenantBackend {
    Memory,
    Relational,
    File(PathBuf),
    /// WAL + snapshot durability rooted at the directory
    /// (per-tenant snapshot/recovery wiring).
    Durable(PathBuf),
}

/// A parsed `--tenants` entry: backend root, cache budget, and quotas
/// for one named tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    pub name: String,
    pub backend: TenantBackend,
    pub cache_bytes: usize,
    pub quotas: TenantQuotas,
}

fn parse_bytes(s: &str) -> Result<usize, String> {
    let s = s.trim().to_ascii_lowercase();
    let (digits, mult) = match s.strip_suffix(['k', 'm', 'g']) {
        Some(d) if s.ends_with('k') => (d, 1usize << 10),
        Some(d) if s.ends_with('m') => (d, 1usize << 20),
        Some(d) => (d, 1usize << 30),
        None => (s.as_str(), 1),
    };
    digits
        .trim()
        .parse::<usize>()
        .map(|n| n * mult)
        .map_err(|_| format!("bad byte size {s:?} (use N, Nk, Nm, or Ng)"))
}

impl TenantSpec {
    /// Parse `name[:key=value]...` where keys are `mem`, `rel`,
    /// `file=DIR`, `durable=DIR`, `cache=BYTES`, `conc=N`, `queue=N`,
    /// `rate=PER_SEC`, `burst=N`. Example:
    /// `alice:file=/data/alice:cache=64m:conc=2:rate=100:burst=20`.
    pub fn parse(s: &str) -> Result<TenantSpec, String> {
        let mut parts = s.split(':');
        let name = parts.next().unwrap_or("").trim().to_string();
        if !valid_name(&name) {
            return Err(format!(
                "invalid tenant name {name:?}: use 1-64 chars from [A-Za-z0-9_-]"
            ));
        }
        let mut spec = TenantSpec {
            name,
            backend: TenantBackend::Memory,
            cache_bytes: 0,
            quotas: TenantQuotas::default(),
        };
        let mut rate: Option<f64> = None;
        let mut burst: Option<f64> = None;
        for part in parts {
            let (key, value) = match part.split_once('=') {
                Some((k, v)) => (k.trim(), v.trim()),
                None => (part.trim(), ""),
            };
            match key {
                "mem" => spec.backend = TenantBackend::Memory,
                "rel" => spec.backend = TenantBackend::Relational,
                "file" => spec.backend = TenantBackend::File(PathBuf::from(value)),
                "durable" => spec.backend = TenantBackend::Durable(PathBuf::from(value)),
                "cache" => spec.cache_bytes = parse_bytes(value)?,
                "conc" => {
                    spec.quotas.max_concurrent = value
                        .parse()
                        .map_err(|_| format!("bad conc value {value:?}"))?;
                }
                "queue" => {
                    spec.quotas.max_queued = value
                        .parse()
                        .map_err(|_| format!("bad queue value {value:?}"))?;
                }
                "rate" => {
                    rate = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad rate value {value:?}"))?,
                    );
                }
                "burst" => {
                    burst = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad burst value {value:?}"))?,
                    );
                }
                other => return Err(format!("unknown tenant option {other:?} in {s:?}")),
            }
        }
        if let Some(per_sec) = rate {
            spec.quotas.rate = Some(RateLimit {
                per_sec,
                burst: burst.unwrap_or(per_sec.max(1.0)),
            });
        } else if burst.is_some() {
            return Err(format!("tenant option burst requires rate in {s:?}"));
        }
        Ok(spec)
    }

    /// Open this tenant's engine.
    pub fn open(&self) -> Result<Ssdm, String> {
        match &self.backend {
            TenantBackend::Memory => Ok(Ssdm::open_with_cache(Backend::Memory, self.cache_bytes)),
            TenantBackend::Relational => {
                Ok(Ssdm::open_with_cache(Backend::Relational, self.cache_bytes))
            }
            TenantBackend::File(dir) => Ok(Ssdm::open_with_cache(
                Backend::File(dir.clone()),
                self.cache_bytes,
            )),
            TenantBackend::Durable(dir) => Ssdm::open_durable_with(
                dir,
                DurableOptions {
                    cache_bytes: self.cache_bytes,
                    ..DurableOptions::default()
                },
            )
            .map_err(|e| format!("tenant {}: {e:?}", self.name)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn caps(max_concurrent: usize, max_queued: usize) -> TenantCaps {
        TenantCaps {
            max_concurrent,
            max_queued,
        }
    }

    #[test]
    fn token_bucket_refills_with_synthetic_time() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(RateLimit {
            per_sec: 1.0,
            burst: 2.0,
        });
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0), "burst exhausted");
        assert!(!b.try_take(t0 + Duration::from_millis(100)));
        assert!(b.try_take(t0 + Duration::from_secs(2)), "refilled");
        // Refill caps at burst: 100s later there are 2 tokens, not 100.
        let later = t0 + Duration::from_secs(102);
        assert!(b.try_take(later));
        assert!(b.try_take(later));
        assert!(!b.try_take(later));
    }

    #[test]
    fn drr_interleaves_hog_and_mouse() {
        // A hog with 100 queued statements and a mouse with 3, equal
        // costs: DRR must serve the mouse's statements interleaved at
        // the front, not after the hog drains.
        let mut core = DrrCore::new(8, 0);
        for i in 0..100u32 {
            core.push("hog", caps(64, 1024), 8, ("hog", i)).unwrap();
        }
        for i in 0..3u32 {
            core.push("mouse", caps(64, 1024), 8, ("mouse", i)).unwrap();
        }
        let mut order = Vec::new();
        while let Some((name, _)) = core.pop() {
            core.finish(&name);
            order.push(name);
        }
        assert_eq!(order.len(), 103);
        let mouse_positions: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, n)| n.as_str() == "mouse")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(mouse_positions.len(), 3);
        assert!(
            *mouse_positions.last().unwrap() <= 6,
            "mouse served within the first rounds, got positions {mouse_positions:?}"
        );
    }

    #[test]
    fn drr_weighs_cost_not_count() {
        // Tenant "big" posts statements 8x the size of "small"; per
        // byte served they should come out roughly even, i.e. small
        // pops ~8 items per big item.
        let mut core = DrrCore::new(64, 0);
        for i in 0..10u32 {
            core.push("big", caps(64, 1024), 512, i).unwrap();
        }
        for i in 0..80u32 {
            core.push("small", caps(64, 1024), 64, i).unwrap();
        }
        let mut first_20 = Vec::new();
        for _ in 0..20 {
            let (name, _) = core.pop().unwrap();
            core.finish(&name);
            first_20.push(name);
        }
        let big = first_20.iter().filter(|n| n.as_str() == "big").count();
        let small = first_20.len() - big;
        // Fair per byte: small pops ~8 items (8*64 bytes) per big item
        // (512 bytes), so bytes served stay within 2x of each other.
        let (small_bytes, big_bytes) = (small as u64 * 64, big as u64 * 512);
        assert!(
            big >= 1 && small_bytes <= 2 * big_bytes && big_bytes <= 2 * small_bytes,
            "expected byte-fair service, got small={small} ({small_bytes}B) big={big} ({big_bytes}B)"
        );
    }

    #[test]
    fn drr_skips_tenants_at_concurrency_cap() {
        let mut core = DrrCore::new(8, 0);
        core.push("a", caps(1, 8), 1, 1).unwrap();
        core.push("a", caps(1, 8), 1, 2).unwrap();
        core.push("b", caps(1, 8), 1, 10).unwrap();
        let (n1, v1) = core.pop().unwrap();
        assert_eq!((n1.as_str(), v1), ("a", 1));
        // "a" is now at max_concurrent=1: its second item must wait,
        // "b" runs instead.
        let (n2, v2) = core.pop().unwrap();
        assert_eq!((n2.as_str(), v2), ("b", 10));
        // Everything left is capped.
        assert!(core.pop().is_none());
        assert_eq!(core.len(), 1);
        core.finish("a");
        let (n3, v3) = core.pop().unwrap();
        assert_eq!((n3.as_str(), v3), ("a", 2));
    }

    #[test]
    fn push_enforces_tenant_and_global_caps() {
        let mut core = DrrCore::new(8, 3);
        // Tenant cap: max_concurrent 1 + max_queued 1 → 2 in flight.
        core.push("a", caps(1, 1), 1, 1).unwrap();
        core.push("a", caps(1, 1), 1, 2).unwrap();
        assert_eq!(
            core.push("a", caps(1, 1), 1, 3),
            Err(Rejection::QuotaExceeded("a".to_string()))
        );
        // Global cap: 3 waiting total.
        core.push("b", caps(8, 8), 1, 1).unwrap();
        assert_eq!(core.push("c", caps(8, 8), 1, 1), Err(Rejection::Overloaded));
        // Draining "a" frees both caps.
        let (name, _) = core.pop().unwrap();
        assert_eq!(name, "a");
        core.push("c", caps(8, 8), 1, 1).unwrap();
    }

    #[test]
    fn rejected_push_does_not_leak_placeholder_state() {
        let mut core: DrrCore<u32> = DrrCore::new(8, 0);
        assert_eq!(
            core.push("ghost", caps(1, 0), 1, 1).err(),
            None,
            "first push within caps"
        );
        let (name, _) = core.pop().unwrap();
        assert_eq!(name, "ghost");
        // At max_concurrent with nothing queued: next push rejected and
        // must not corrupt the active count tracked for "ghost".
        assert!(core.push("ghost", caps(1, 0), 1, 2).is_err());
        core.finish("ghost");
        assert!(core.queues.is_empty(), "state reclaimed after finish");
    }

    #[test]
    fn fair_dispatch_close_drains_then_unblocks() {
        let d: Arc<FairDispatch<u32>> = Arc::new(FairDispatch::new(8, 0));
        d.push("a", caps(4, 16), 1, 7).unwrap();
        d.close();
        // Queued items still served after close…
        let (name, v) = d.pop().unwrap();
        assert_eq!((name.as_str(), v), ("a", 7));
        d.finish("a");
        // …then pop reports closed.
        assert!(d.pop().is_none());
        // A blocked worker wakes on close.
        let d2: Arc<FairDispatch<u32>> = Arc::new(FairDispatch::new(8, 0));
        let d2c = Arc::clone(&d2);
        let worker = std::thread::spawn(move || d2c.pop());
        d2.close();
        assert!(worker.join().unwrap().is_none());
    }

    #[test]
    fn fair_gate_grants_in_drr_order_and_releases() {
        let gate = Arc::new(FairGate::new(1));
        let guard = gate.acquire("a", caps(4, 16), 1).unwrap();
        // Queue two more acquirers; they block until the slot frees.
        let (tx, rx) = std::sync::mpsc::channel();
        let mut handles = Vec::new();
        for name in ["b", "c"] {
            let gate = Arc::clone(&gate);
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                let g = gate.acquire(name, caps(4, 16), 1).unwrap();
                tx.send(name).unwrap();
                drop(g);
            }));
        }
        // Wait until both tickets are queued before releasing, so the
        // grant order is decided by DRR, not thread-start timing.
        while gate.dispatch.len() < 2 {
            std::thread::yield_now();
        }
        drop(guard);
        let first = rx.recv().unwrap();
        let second = rx.recv().unwrap();
        assert_eq!(
            {
                let mut got = [first, second];
                got.sort();
                got
            },
            ["b", "c"]
        );
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn fair_gate_rejects_over_quota() {
        let gate = FairGate::new(1);
        let _g = gate.acquire("a", caps(1, 0), 1).unwrap();
        // One executing, zero queueable: fail fast.
        assert_eq!(
            gate.acquire("a", caps(1, 0), 1).err(),
            Some(Rejection::QuotaExceeded("a".to_string()))
        );
    }

    #[test]
    fn registry_lifecycle_create_route_evict() {
        let reg = TenantRegistry::new(Ssdm::open(Backend::Memory), TenantQuotas::default());
        assert_eq!(reg.names(), vec![DEFAULT_TENANT.to_string()]);
        reg.add(
            "alice",
            Ssdm::open(Backend::Memory),
            TenantQuotas::default(),
        )
        .unwrap();
        assert!(reg
            .add(
                "alice",
                Ssdm::open(Backend::Memory),
                TenantQuotas::default()
            )
            .is_err());
        assert!(reg
            .add(
                "bad name",
                Ssdm::open(Backend::Memory),
                TenantQuotas::default()
            )
            .is_err());
        assert_eq!(reg.resolve(Some("alice")).unwrap().name, "alice");
        assert_eq!(reg.resolve(None).unwrap().name, DEFAULT_TENANT);
        assert_eq!(
            reg.resolve(Some("bob")).err(),
            Some(Rejection::UnknownTenant("bob".to_string()))
        );
        assert!(reg.evict(DEFAULT_TENANT).is_err());
        reg.evict("alice").unwrap();
        assert!(reg.get("alice").is_none());
        assert!(reg.evict("alice").is_err());
    }

    #[test]
    fn tenants_have_isolated_datasets() {
        let reg = TenantRegistry::new(Ssdm::open(Backend::Memory), TenantQuotas::default());
        let alice = reg
            .add(
                "alice",
                Ssdm::open(Backend::Memory),
                TenantQuotas::default(),
            )
            .unwrap();
        let bob = reg
            .add("bob", Ssdm::open(Backend::Memory), TenantQuotas::default())
            .unwrap();
        alice
            .engine()
            .lock()
            .unwrap()
            .query("INSERT DATA { <urn:a> <urn:p> 1 }")
            .unwrap();
        let count = |t: &Arc<Tenant>| {
            let mut e = t.engine().lock().unwrap();
            match e
                .query("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }")
                .unwrap()
            {
                crate::QueryResult::Solutions { rows, .. } => format!("{:?}", rows[0][0]),
                other => panic!("unexpected result {other:?}"),
            }
        };
        assert!(count(&alice).contains("Int(1)"), "{}", count(&alice));
        assert!(count(&bob).contains("Int(0)"), "{}", count(&bob));
    }

    #[test]
    fn admit_rate_limits_then_recovers() {
        let reg = TenantRegistry::new(Ssdm::open(Backend::Memory), TenantQuotas::default());
        reg.add(
            "limited",
            Ssdm::open(Backend::Memory),
            TenantQuotas {
                rate: Some(RateLimit {
                    per_sec: 1.0,
                    burst: 1.0,
                }),
                ..TenantQuotas::default()
            },
        )
        .unwrap();
        let t0 = Instant::now();
        assert!(reg.admit(Some("limited"), t0).is_ok());
        assert_eq!(
            reg.admit(Some("limited"), t0).err(),
            Some(Rejection::RateLimited("limited".to_string()))
        );
        assert!(reg
            .admit(Some("limited"), t0 + Duration::from_secs(2))
            .is_ok());
        let report = reg.report();
        assert_eq!(
            report.get_labeled("tenant", "rejected_rate", "limited"),
            Some(ssdm_obs::MetricValue::Int(1))
        );
    }

    #[test]
    fn registry_report_labels_every_tenant() {
        let reg = TenantRegistry::new(Ssdm::open(Backend::Memory), TenantQuotas::default());
        let alice = reg
            .add(
                "alice",
                Ssdm::open(Backend::Memory),
                TenantQuotas::default(),
            )
            .unwrap();
        alice.note_admitted();
        alice.note_done(true);
        alice.note_admitted();
        alice.note_done(false);
        let report = reg.report();
        assert_eq!(
            report.get_labeled("tenant", "admitted", "alice"),
            Some(ssdm_obs::MetricValue::Int(2))
        );
        assert_eq!(
            report.get_labeled("tenant", "completed", "alice"),
            Some(ssdm_obs::MetricValue::Int(1))
        );
        assert_eq!(
            report.get_labeled("tenant", "errors", "alice"),
            Some(ssdm_obs::MetricValue::Int(1))
        );
        assert_eq!(
            report.get_labeled("tenant", "admitted", DEFAULT_TENANT),
            Some(ssdm_obs::MetricValue::Int(0))
        );
        let prom = reg.metrics_prometheus();
        ssdm_obs::validate_prometheus_text(&prom).unwrap();
        assert!(prom.contains("ssdm_tenant_admitted_total{tenant=\"alice\"} 2"));
    }

    #[test]
    fn tenant_spec_parses_options() {
        let spec =
            TenantSpec::parse("alice:file=/data/a:cache=64m:conc=2:queue=8:rate=100:burst=20")
                .unwrap();
        assert_eq!(spec.name, "alice");
        assert_eq!(spec.backend, TenantBackend::File(PathBuf::from("/data/a")));
        assert_eq!(spec.cache_bytes, 64 << 20);
        assert_eq!(spec.quotas.max_concurrent, 2);
        assert_eq!(spec.quotas.max_queued, 8);
        assert_eq!(
            spec.quotas.rate,
            Some(RateLimit {
                per_sec: 100.0,
                burst: 20.0
            })
        );
        assert_eq!(
            TenantSpec::parse("bob").unwrap().backend,
            TenantBackend::Memory
        );
        assert!(TenantSpec::parse("bad name").is_err());
        assert!(TenantSpec::parse("x:nope=1").is_err());
        assert!(
            TenantSpec::parse("x:burst=5").is_err(),
            "burst without rate"
        );
        assert!(TenantSpec::parse("x:cache=zz").is_err());
    }
}
