//! The SSDM TCP server: serve SciSPARQL over the framed wire protocol
//! (thesis §5.1 client-server deployment; the ch. 7 Matlab client's
//! peer).
//!
//! ```text
//! ssdm-server [--listen ADDR:PORT] [--backend memory|relational|file:DIR]
//!             [--load FILE.ttl]... [--threshold N --chunk BYTES]
//!             [--workers N] [--apr-workers N] [--cache BYTES]
//!             [--shards N] [--replicas K] [--codec raw|delta-bp|rle|auto]
//!             [--durable DIR] [--fsync always|interval[:MS]|off]
//!             [--http ADDR:PORT] [--metrics ADDR:PORT]
//!             [--tenants SPEC[,SPEC]...]
//!             [--slow-query-ms N] [--planner textual|greedy|dp]
//! ```
//!
//! `--codec` picks the chunk compression policy for newly externalized
//! arrays (default `auto`, or the `SSDM_CODEC` environment variable);
//! every policy reads every frame, so mixed stores are fine.
//!
//! `--durable DIR` serves a crash-safe instance: committed updates are
//! write-ahead logged under `DIR` and recovered on the next start;
//! clients trigger checkpoints with the `CHECKPOINT` wire statement.
//! `--durable` replaces `--backend`/`--cache` (the durable instance
//! manages its own chunk store).
//!
//! `--shards N` spreads externalized arrays over N back-ends of the
//! chosen kind; `--replicas K` adds K WAL-shipping read replicas per
//! shard, with automatic failover (counters under `STATS` and the
//! Prometheus dump). Not combinable with `--durable`.
//!
//! Send the statement `SHUTDOWN` to stop the server, `STATS` for
//! back-end/cache/resilience/durability statistics, `METRICS` for the
//! Prometheus text dump.
//!
//! `--http` serves the SPARQL 1.1 Protocol over HTTP on the event-loop
//! core of `ssdm::http`: GET/POST `/query` with content-negotiated
//! JSON/XML/CSV/TSV results, POST `/update`, plus `/metrics` and
//! `/stats`. `--metrics` is an alias that binds the same front end
//! (scrapers just hit `/metrics`). With either flag, SIGTERM/SIGINT
//! drain both the HTTP and framed sides gracefully before exit.
//! `--slow-query-ms N` logs an `EXPLAIN ANALYZE` profile to stderr for
//! every statement taking ≥ N ms.
//!
//! `--planner` forces the join-enumeration mode (default `dp`;
//! equivalent to the `SSDM_PLANNER` environment variable, flag wins).
//!
//! `--tenants` hosts additional isolated engines behind the same
//! sockets, each with its own backend, cache budget, and admission
//! quotas. A spec is `name[:key=value]...` with keys `mem`, `rel`,
//! `file=DIR`, `durable=DIR`, `cache=BYTES[k|m|g]`, `conc=N`,
//! `queue=N`, `rate=PER_SEC`, `burst=N`; e.g.
//! `--tenants alice:file=/data/alice:cache=64m:conc=2,bob:mem:rate=50`.
//! HTTP clients reach a tenant at `/tenants/<name>/query|update|stats`;
//! framed clients switch with the `USE <name>` statement. The flags
//! above configure only the default tenant, which keeps serving at the
//! bare paths.

use std::path::PathBuf;

use ssdm::server::{Server, ServerConfig};
use ssdm::{Backend, DurableOptions, FsyncPolicy, Ssdm};

fn usage() -> ! {
    eprintln!(
        "usage: ssdm-server [--listen ADDR:PORT] [--backend memory|relational|file:DIR]\n\
         \x20                  [--load FILE.ttl]... [--threshold N --chunk BYTES]\n\
         \x20                  [--workers N] [--apr-workers N] [--cache BYTES]\n\
         \x20                  [--shards N] [--replicas K]\n\
         \x20                  [--codec raw|delta-bp|rle|auto]\n\
         \x20                  [--durable DIR] [--fsync always|interval[:MS]|off]\n\
         \x20                  [--http ADDR:PORT] [--metrics ADDR:PORT]\n\
         \x20                  [--tenants NAME[:key=value]...[,NAME...]]\n\
         \x20                  [--slow-query-ms N] [--planner textual|greedy|dp]"
    );
    std::process::exit(2)
}

fn main() {
    let mut listen = "127.0.0.1:8580".to_string();
    let mut backend = Backend::Memory;
    let mut loads: Vec<PathBuf> = Vec::new();
    let mut threshold: Option<usize> = None;
    let mut chunk: usize = 64 * 1024;
    let mut config = ServerConfig::default();
    let mut cache_bytes: usize = 0;
    let mut apr_workers: usize = 1;
    let mut durable: Option<PathBuf> = None;
    let mut fsync = FsyncPolicy::Always;
    let mut http: Vec<String> = Vec::new();
    let mut metrics: Option<String> = None;
    let mut slow_query_ms: Option<u64> = None;
    let mut planner: Option<scisparql::PlannerMode> = None;
    let mut shards: usize = 1;
    let mut replicas: usize = 0;
    let mut codec: Option<ssdm_storage::CodecPolicy> = None;
    let mut tenants: Vec<ssdm::tenant::TenantSpec> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().unwrap_or_else(|| usage()),
            "--workers" => {
                config.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--apr-workers" => {
                apr_workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--cache" => {
                cache_bytes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--backend" => {
                let v = args.next().unwrap_or_else(|| usage());
                backend = match v.as_str() {
                    "memory" => Backend::Memory,
                    "relational" => Backend::Relational,
                    other => match other.strip_prefix("file:") {
                        Some(dir) => Backend::File(PathBuf::from(dir)),
                        None => usage(),
                    },
                };
            }
            "--load" => loads.push(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--threshold" => {
                threshold = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--chunk" => {
                chunk = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--durable" => durable = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--fsync" => {
                fsync = args
                    .next()
                    .as_deref()
                    .and_then(FsyncPolicy::parse)
                    .unwrap_or_else(|| usage())
            }
            "--http" => http.push(args.next().unwrap_or_else(|| usage())),
            "--tenants" => {
                let specs = args.next().unwrap_or_else(|| usage());
                for spec in specs.split(',').filter(|s| !s.trim().is_empty()) {
                    match ssdm::tenant::TenantSpec::parse(spec) {
                        Ok(s) => tenants.push(s),
                        Err(e) => {
                            eprintln!("bad --tenants entry {spec:?}: {e}");
                            std::process::exit(2);
                        }
                    }
                }
            }
            "--metrics" => metrics = Some(args.next().unwrap_or_else(|| usage())),
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--replicas" => {
                replicas = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--slow-query-ms" => {
                slow_query_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--codec" => {
                codec = Some(
                    args.next()
                        .as_deref()
                        .and_then(ssdm_storage::CodecPolicy::parse)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--planner" => {
                planner = Some(
                    args.next()
                        .as_deref()
                        .and_then(scisparql::PlannerMode::parse)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }

    if durable.is_some() && (shards > 1 || replicas > 0) {
        eprintln!("--shards/--replicas cannot be combined with --durable");
        std::process::exit(2);
    }
    // Block SIGTERM/SIGINT and obtain the signal fd *before* anything
    // spawns a thread, so every later thread inherits the mask and the
    // HTTP event loop is the one place the signals surface (as a
    // graceful drain of both front ends).
    let mut signal_fd = if http.is_empty() && metrics.is_none() {
        None
    } else {
        match ssdm::http::prepare_signal_drain(&[ssdm::http::SIGTERM, ssdm::http::SIGINT]) {
            Ok(fd) => Some(fd),
            Err(e) => {
                eprintln!("signal-driven drain unavailable ({e}); use SHUTDOWN over the wire");
                None
            }
        }
    };
    let mut db = match &durable {
        Some(dir) => {
            let options = DurableOptions {
                fsync,
                cache_bytes,
                ..DurableOptions::default()
            };
            match Ssdm::open_durable_with(dir, options) {
                Ok(db) => {
                    let stats = db.durability_stats().expect("durable instance");
                    eprintln!(
                        "durable dir {} recovered: {} wal records replayed in {:.1} ms",
                        dir.display(),
                        stats.replayed_records,
                        stats.replay_ms,
                    );
                    db
                }
                Err(e) => {
                    eprintln!("cannot open durable dir {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
        None if shards > 1 || replicas > 0 => {
            Ssdm::open_sharded(backend, shards, replicas, cache_bytes)
        }
        None => Ssdm::open_with_cache(backend, cache_bytes),
    };
    db.set_parallel_workers(apr_workers);
    if let Some(c) = codec {
        db.set_codec(c);
    }
    if let Some(m) = planner {
        db.dataset.planner.mode = m;
    }
    if let Some(t) = threshold {
        db.set_externalize_threshold(t, chunk);
    }
    for path in &loads {
        match db.load_turtle_file(path) {
            Ok(n) => eprintln!("loaded {n} triples from {}", path.display()),
            Err(e) => {
                eprintln!("error loading {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    db.set_slow_query_ms(slow_query_ms);
    let mut server = match Server::bind_with(&listen, db, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    for spec in &tenants {
        let tenant_db = match spec.open() {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cannot open tenant {}: {e}", spec.name);
                std::process::exit(1);
            }
        };
        if let Err(e) = server.add_tenant(&spec.name, tenant_db, spec.quotas) {
            eprintln!("cannot add tenant {}: {e}", spec.name);
            std::process::exit(1);
        }
        eprintln!("tenant {} ready ({:?})", spec.name, spec.backend);
    }
    for addr in http.iter().chain(&metrics) {
        // The signal fd goes to the first front end; one signal
        // listener drains every side.
        let config = ssdm::http::HttpConfig {
            signal_fd: signal_fd.take(),
            ..ssdm::http::HttpConfig::default()
        };
        match server.enable_http_with(addr, config) {
            Ok(bound) => eprintln!("http endpoint on http://{bound}/ (query, update, metrics)"),
            Err(e) => {
                eprintln!("cannot bind http endpoint {addr}: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!(
        "SSDM server listening on {}",
        server.local_addr().map(|a| a.to_string()).unwrap_or(listen)
    );
    if let Err(e) = server.serve() {
        eprintln!("server error: {e}");
        std::process::exit(1);
    }
    eprintln!("server shut down");
}
