//! The SSDM command-line shell: load RDF-with-Arrays data and run
//! SciSPARQL statements interactively or from files.
//!
//! ```text
//! ssdm-cli [--backend memory|relational|file:DIR] [--load FILE.ttl]...
//!          [--threshold N --chunk BYTES] [--cache BYTES] [--workers N]
//!          [--shards N] [--replicas K] [--codec raw|delta-bp|rle|auto]
//!          [--exec 'QUERY'] [--snapshot FILE]
//!          [--durable DIR] [--fsync always|interval[:MS]|off]
//!          [--slow-query-ms N] [--planner textual|greedy|dp]
//! ```
//!
//! `--codec` picks the chunk compression policy for newly externalized
//! arrays (`auto`, the default, chooses per chunk; the `SSDM_CODEC`
//! environment variable sets the same default process-wide). Every
//! policy reads every frame, so mixed stores are fine.
//!
//! `--durable DIR` opens a crash-safe instance: updates are write-ahead
//! logged under `DIR` and recovered (snapshot + WAL replay) on the next
//! start; `--fsync` picks the durability/latency trade-off. `--durable`
//! replaces `--backend`/`--cache`/`--snapshot` (the instance manages
//! its own chunk store and checkpoints — use `.checkpoint`).
//!
//! `--shards N` spreads externalized arrays over N back-ends of the
//! chosen kind by rendezvous placement; `--replicas K` adds K
//! WAL-shipping read replicas per shard (failover and breaker counters
//! show under `.stats`). Not combinable with `--durable`, whose
//! statement journal manages a single store.
//!
//! Without `--exec`, reads statements from stdin; a statement ends at a
//! line containing only `;;` (queries may span lines). Meta-commands:
//! `.load FILE`, `.save FILE`, `.checkpoint`, `.stats`, `.metrics`,
//! `.profile on|off` (print an `EXPLAIN ANALYZE` profile after every
//! statement), `.help`, `.quit`. `--slow-query-ms N` profiles only
//! statements taking ≥ N ms.
//!
//! `--planner` forces the join-enumeration mode (`dp` is the default:
//! dynamic-programming enumeration with greedy fallback on large
//! conjunctions). Equivalent to the `SSDM_PLANNER` environment
//! variable; the flag wins.

use std::io::{BufRead, Write};
use std::path::PathBuf;

use ssdm::{Backend, DurableOptions, FsyncPolicy, Ssdm};

fn usage() -> ! {
    eprintln!(
        "usage: ssdm-cli [--backend memory|relational|file:DIR]\n\
         \x20               [--load FILE.ttl]... [--threshold N --chunk BYTES]\n\
         \x20               [--cache BYTES] [--workers N] [--snapshot FILE]\n\
         \x20               [--shards N] [--replicas K]\n\
         \x20               [--codec raw|delta-bp|rle|auto]\n\
         \x20               [--durable DIR] [--fsync always|interval[:MS]|off]\n\
         \x20               [--slow-query-ms N] [--planner textual|greedy|dp]\n\
         \x20               [--exec 'STATEMENT']"
    );
    std::process::exit(2)
}

fn main() {
    let mut backend = Backend::Memory;
    let mut loads: Vec<PathBuf> = Vec::new();
    let mut threshold: Option<usize> = None;
    let mut chunk: usize = 64 * 1024;
    let mut cache_bytes: usize = 0;
    let mut workers: usize = 1;
    let mut exec: Vec<String> = Vec::new();
    let mut snapshot: Option<PathBuf> = None;
    let mut durable: Option<PathBuf> = None;
    let mut fsync = FsyncPolicy::Always;
    let mut slow_query_ms: Option<u64> = None;
    let mut shards: usize = 1;
    let mut replicas: usize = 0;
    let mut codec: Option<ssdm_storage::CodecPolicy> = None;
    let mut planner: Option<scisparql::PlannerMode> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => {
                let v = args.next().unwrap_or_else(|| usage());
                backend = match v.as_str() {
                    "memory" => Backend::Memory,
                    "relational" => Backend::Relational,
                    other => match other.strip_prefix("file:") {
                        Some(dir) => Backend::File(PathBuf::from(dir)),
                        None => usage(),
                    },
                };
            }
            "--load" => loads.push(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--threshold" => {
                threshold = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--chunk" => {
                chunk = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--cache" => {
                cache_bytes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--exec" => exec.push(args.next().unwrap_or_else(|| usage())),
            "--snapshot" => snapshot = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--durable" => durable = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--fsync" => {
                fsync = args
                    .next()
                    .as_deref()
                    .and_then(FsyncPolicy::parse)
                    .unwrap_or_else(|| usage())
            }
            "--slow-query-ms" => {
                slow_query_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--replicas" => {
                replicas = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--codec" => {
                codec = Some(
                    args.next()
                        .as_deref()
                        .and_then(ssdm_storage::CodecPolicy::parse)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--planner" => {
                planner = Some(
                    args.next()
                        .as_deref()
                        .and_then(scisparql::PlannerMode::parse)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }

    if durable.is_some() && (shards > 1 || replicas > 0) {
        eprintln!("--shards/--replicas cannot be combined with --durable");
        std::process::exit(2);
    }
    let mut db = match &durable {
        Some(dir) => {
            let options = DurableOptions {
                fsync,
                cache_bytes,
                ..DurableOptions::default()
            };
            match Ssdm::open_durable_with(dir, options) {
                Ok(db) => {
                    let stats = db.durability_stats().expect("durable instance");
                    eprintln!(
                        "durable dir {} recovered: {} wal records replayed in {:.1} ms{}",
                        dir.display(),
                        stats.replayed_records,
                        stats.replay_ms,
                        if stats.torn_tail_truncations > 0 {
                            " (torn tail truncated)"
                        } else {
                            ""
                        },
                    );
                    db
                }
                Err(e) => {
                    eprintln!("cannot open durable dir {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
        None if shards > 1 || replicas > 0 => {
            Ssdm::open_sharded(backend, shards, replicas, cache_bytes)
        }
        None => Ssdm::open_with_cache(backend, cache_bytes),
    };
    db.set_parallel_workers(workers);
    db.set_slow_query_ms(slow_query_ms);
    if let Some(c) = codec {
        db.set_codec(c);
    }
    if let Some(m) = planner {
        db.dataset.planner.mode = m;
    }
    if let Some(t) = threshold {
        db.set_externalize_threshold(t, chunk);
    }
    if let Some(snap) = &snapshot {
        if snap.exists() {
            match db.load_snapshot(snap) {
                Ok(()) => eprintln!("loaded snapshot {}", snap.display()),
                Err(e) => {
                    eprintln!("cannot load snapshot: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    for path in &loads {
        match db.load_turtle_file(path) {
            Ok(n) => eprintln!("loaded {n} triples from {}", path.display()),
            Err(e) => {
                eprintln!("error loading {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    if !exec.is_empty() {
        for statement in exec {
            run(&mut db, &statement, false);
        }
        save_snapshot_if(&db, &snapshot);
        return;
    }

    // Interactive / piped mode.
    eprintln!("SSDM shell — end statements with a line ';;', '.help' for commands");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut profile = false;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            let mut parts = trimmed.splitn(2, ' ');
            match (parts.next().unwrap_or(""), parts.next()) {
                (".quit", _) | (".exit", _) => break,
                (".help", _) => eprintln!(
                    ".load FILE       load a Turtle file\n\
                     .save FILE       write a snapshot\n\
                     .checkpoint      durability checkpoint (snapshot + WAL truncate)\n\
                     .stats           graph and back-end statistics\n\
                     .metrics         Prometheus text-format counter dump\n\
                     .profile on|off  print an EXPLAIN ANALYZE profile per statement\n\
                     .quit            exit"
                ),
                (".load", Some(f)) => match db.load_turtle_file(std::path::Path::new(f)) {
                    Ok(n) => eprintln!("loaded {n} triples"),
                    Err(e) => eprintln!("error: {e}"),
                },
                (".save", Some(f)) => match db.save_snapshot(std::path::Path::new(f)) {
                    Ok(()) => eprintln!("snapshot written to {f}"),
                    Err(e) => eprintln!("error: {e}"),
                },
                (".checkpoint", _) => match db.checkpoint() {
                    Ok(()) => eprintln!("checkpoint complete"),
                    Err(e) => eprintln!("error: {e}"),
                },
                (".stats", _) => {
                    let st = db.dataset.graph.stats();
                    eprintln!(
                        "graph: {} triples, {} predicates; named graphs: {}",
                        st.triples,
                        st.predicates,
                        db.dataset.named_graphs.len(),
                    );
                    eprint!("{}", db.stats_report());
                }
                (".metrics", _) => eprint!("{}", db.metrics_prometheus()),
                (".profile", mode) => match mode.map(str::trim) {
                    Some("on") => {
                        profile = true;
                        eprintln!("profiling on: every statement prints its profile");
                    }
                    Some("off") => {
                        profile = false;
                        eprintln!("profiling off");
                    }
                    _ => eprintln!("usage: .profile on|off"),
                },
                other => eprintln!("unknown command {other:?}; try .help"),
            }
            continue;
        }
        if trimmed == ";;" {
            if !buffer.trim().is_empty() {
                run(&mut db, &buffer, profile);
            }
            buffer.clear();
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
    }
    if !buffer.trim().is_empty() {
        run(&mut db, &buffer, profile);
    }
    save_snapshot_if(&db, &snapshot);
}

fn run(db: &mut Ssdm, statement: &str, profile: bool) {
    if profile {
        match db.dataset.query_profiled(statement) {
            Ok((result, profile)) => {
                print!("{}", result.to_table());
                std::io::stdout().flush().ok();
                eprint!("{profile}");
            }
            Err(e) => eprintln!("error: {e}"),
        }
        return;
    }
    match db.query(statement) {
        Ok(result) => {
            print!("{}", result.to_table());
            std::io::stdout().flush().ok();
        }
        Err(e) => eprintln!("error: {e}"),
    }
}

fn save_snapshot_if(db: &Ssdm, snapshot: &Option<PathBuf>) {
    if let Some(snap) = snapshot {
        match db.save_snapshot(snap) {
            Ok(()) => eprintln!("snapshot written to {}", snap.display()),
            Err(e) => eprintln!("cannot write snapshot: {e}"),
        }
    }
}
