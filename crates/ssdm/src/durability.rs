//! The durability subsystem: write-ahead logging, checkpointing and
//! crash recovery for an [`Ssdm`] instance.
//!
//! The thesis treats persistence as "a memory snapshot can typically be
//! dumped to disk and loaded back" (§2.2.3); this module upgrades that
//! to a real recovery story. A durable instance lives in one directory:
//!
//! ```text
//! <dir>/chunks/          externalized array chunks (FileChunkStore)
//! <dir>/wal/             segmented write-ahead log (ssdm_storage::wal)
//! <dir>/snapshot.ssdm    latest checkpoint snapshot (atomic rename)
//! ```
//!
//! **Commit path.** Every committed update — SPARQL updates and Turtle
//! loads — is offered to the WAL through the core's
//! [`UpdateJournal`] hook *after* it executes and *before* it is
//! acknowledged; the fsync policy decides how durable the record is at
//! acknowledgement time. A journal failure surfaces as a query error,
//! so no acknowledged update can be missing from the log.
//!
//! **Checkpoint protocol** ([`Ssdm::checkpoint`]):
//!
//! 1. capture the recovery LSN (`next_lsn`);
//! 2. fsync the chunk back-end, so data the catalog references is on
//!    media before a snapshot naming it exists;
//! 3. atomically publish the snapshot with the LSN embedded
//!    (`[wal N]` line — temp file, fsync, rename, dir fsync);
//! 4. rotate the WAL and delete segments wholly below the LSN.
//!
//! A crash between any two steps is safe: either the old snapshot and
//! the full log survive, or the new snapshot plus a log whose replay
//! skips everything below its embedded LSN.
//!
//! **Recovery** ([`Ssdm::open_durable`]): load the snapshot if present,
//! scan the WAL (truncating a torn tail at the first bad CRC — see
//! [`ssdm_storage::wal`] for why tears are confined to the tail), and
//! re-execute every record at or above the snapshot's LSN. Replay runs
//! with no journal attached, then the WAL writer is installed as the
//! dataset's journal.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use scisparql::journal::{JournalEntry, UpdateJournal};
use scisparql::{Dataset, QueryError};
use ssdm_storage::wal::DEFAULT_SEGMENT_BYTES;
use ssdm_storage::{
    CachedChunkStore, ChunkStore, CrashPlan, FileChunkStore, FsyncPolicy, WalOptions, WalRecord,
    WalStats, WalWriter,
};

use crate::Ssdm;

const SNAPSHOT_FILE: &str = "snapshot.ssdm";
const WAL_DIR: &str = "wal";
const CHUNKS_DIR: &str = "chunks";

/// Configuration for [`Ssdm::open_durable_with`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// When WAL appends (and chunk writes) reach durable media.
    pub fsync: FsyncPolicy,
    /// WAL segment rotation threshold.
    pub segment_bytes: u64,
    /// LRU chunk cache over the file back-end; 0 disables.
    pub cache_bytes: usize,
    /// Deterministic crash injection for recovery testing.
    pub crash_plan: Option<CrashPlan>,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            fsync: FsyncPolicy::Always,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            cache_bytes: 0,
            crash_plan: None,
        }
    }
}

/// Counters the durability subsystem surfaces through
/// [`Ssdm::stats_report`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DurabilityStats {
    /// Log-writer counters (appends, fsyncs, rotations, checkpoints).
    pub wal: WalStats,
    /// Live WAL segments.
    pub segments: u64,
    /// Recovery passes performed by this instance (1 per durable open).
    pub replays: u64,
    /// Records re-executed during recovery.
    pub replayed_records: u64,
    /// Wall-clock milliseconds the last recovery replay took.
    pub replay_ms: f64,
    /// Torn WAL tails (or torn segment headers) truncated at open.
    pub torn_tail_truncations: u64,
    /// Wall-clock milliseconds the last checkpoint took (0 if none).
    pub last_checkpoint_ms: f64,
}

/// Per-instance durability state hung off [`Ssdm`].
pub(crate) struct DurableState {
    dir: PathBuf,
    writer: Arc<Mutex<WalWriter>>,
    replays: u64,
    replayed_records: u64,
    replay_ms: f64,
    torn_tail_truncations: u64,
    last_checkpoint_ms: f64,
}

fn lock(writer: &Mutex<WalWriter>) -> MutexGuard<'_, WalWriter> {
    // A poisoned mutex means a panic mid-append; the writer's own state
    // is still consistent (appends are single write calls), so keep
    // going rather than poisoning every later query.
    writer.lock().unwrap_or_else(|e| e.into_inner())
}

/// The WAL appender installed as the dataset's [`UpdateJournal`]: one
/// committed update becomes one log record.
struct WalJournal {
    writer: Arc<Mutex<WalWriter>>,
}

impl UpdateJournal for WalJournal {
    fn record(&mut self, entry: JournalEntry<'_>) -> Result<(), String> {
        let record = match entry {
            JournalEntry::Statement(text) => WalRecord::Statement(text.to_string()),
            JournalEntry::TurtleDefault(text) => WalRecord::TurtleDefault(text.to_string()),
            JournalEntry::TurtleNamed { graph, text } => WalRecord::TurtleNamed {
                graph: graph.to_string(),
                text: text.to_string(),
            },
        };
        lock(&self.writer)
            .append(&record)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }
}

impl Ssdm {
    /// Open (or recover) a durable instance in `dir` with the default
    /// options (`fsync always`, no cache). See the module docs for the
    /// directory layout and recovery protocol.
    pub fn open_durable(dir: impl AsRef<Path>) -> Result<Ssdm, QueryError> {
        Ssdm::open_durable_with(dir, DurableOptions::default())
    }

    /// [`Ssdm::open_durable`] with explicit options.
    pub fn open_durable_with(
        dir: impl AsRef<Path>,
        options: DurableOptions,
    ) -> Result<Ssdm, QueryError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| QueryError::Eval(format!("cannot create durable dir: {e}")))?;
        let mut chunks = FileChunkStore::new(dir.join(CHUNKS_DIR)).map_err(QueryError::Storage)?;
        chunks.set_sync_writes(options.fsync == FsyncPolicy::Always);
        let backend: scisparql::dataset::DynChunkStore = if options.cache_bytes > 0 {
            Box::new(CachedChunkStore::new(chunks, options.cache_bytes))
        } else {
            Box::new(chunks)
        };
        let mut db = Ssdm::from_dataset(Dataset::with_backend(backend));

        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let snapshot_lsn = if snapshot_path.exists() {
            db.load_snapshot_contents(&snapshot_path)?
        } else {
            0
        };

        let started = Instant::now();
        let (mut writer, recovery) = WalWriter::open(
            &dir.join(WAL_DIR),
            WalOptions {
                policy: options.fsync,
                segment_bytes: options.segment_bytes,
                crash: options.crash_plan,
            },
        )
        .map_err(QueryError::Storage)?;
        writer.ensure_lsn_at_least(snapshot_lsn);

        // Replay with no journal attached: recovery must not re-log.
        let mut replayed_records = 0u64;
        for (lsn, record) in &recovery.records {
            if *lsn < snapshot_lsn {
                continue; // already contained in the snapshot
            }
            match record {
                WalRecord::Statement(text) => {
                    db.dataset.query(text)?;
                }
                WalRecord::TurtleDefault(text) => {
                    db.dataset.load_turtle(text)?;
                }
                WalRecord::TurtleNamed { graph, text } => {
                    db.dataset.load_turtle_named(graph, text)?;
                }
                WalRecord::Checkpoint { .. } => {}
                // Chunk-level records belong to shard-replication WALs
                // (`ShardedChunkStore`), never to the statement journal;
                // skip them rather than fail recovery if one strays in.
                WalRecord::BeginArray { .. }
                | WalRecord::PutChunk { .. }
                | WalRecord::DeleteArray { .. } => {}
            }
            replayed_records += 1;
        }
        let replay_ms = started.elapsed().as_secs_f64() * 1e3;

        let writer = Arc::new(Mutex::new(writer));
        db.dataset.journal = Some(Box::new(WalJournal {
            writer: Arc::clone(&writer),
        }));
        db.durable = Some(DurableState {
            dir,
            writer,
            replays: 1,
            replayed_records,
            replay_ms,
            torn_tail_truncations: u64::from(recovery.truncated_tail),
            last_checkpoint_ms: 0.0,
        });
        Ok(db)
    }

    /// Whether this instance was opened with [`Ssdm::open_durable`].
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Run a checkpoint: fsync chunk data, atomically publish a
    /// snapshot embedding the current WAL LSN, then rotate and truncate
    /// the log. Errors if the instance is not durable.
    pub fn checkpoint(&mut self) -> Result<(), QueryError> {
        let state = self.durable.as_ref().ok_or_else(|| {
            QueryError::Eval("checkpoint: not a durable instance (use open_durable)".into())
        })?;
        let dir = state.dir.clone();
        let writer = Arc::clone(&state.writer);
        let started = Instant::now();
        let lsn = lock(&writer).next_lsn();
        self.dataset
            .arrays
            .backend_mut()
            .sync()
            .map_err(QueryError::Storage)?;
        self.save_snapshot_with_lsn(&dir.join(SNAPSHOT_FILE), Some(lsn))?;
        lock(&writer)
            .checkpoint_truncate(lsn)
            .map_err(QueryError::Storage)?;
        let ms = started.elapsed().as_secs_f64() * 1e3;
        self.durable
            .as_mut()
            .expect("checked above")
            .last_checkpoint_ms = ms;
        Ok(())
    }

    /// Durability counters, if this instance is durable.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        self.durable.as_ref().map(|state| {
            let writer = lock(&state.writer);
            DurabilityStats {
                wal: writer.stats(),
                segments: writer.segment_count(),
                replays: state.replays,
                replayed_records: state.replayed_records,
                replay_ms: state.replay_ms,
                torn_tail_truncations: state.torn_tail_truncations,
                last_checkpoint_ms: state.last_checkpoint_ms,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdm_storage::wal::SEGMENT_HEADER;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ssdm-dur-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn count(db: &mut Ssdm) -> usize {
        db.query("SELECT ?s ?o WHERE { ?s <http://p> ?o }")
            .unwrap()
            .into_rows()
            .unwrap()
            .len()
    }

    #[test]
    fn updates_survive_reopen_via_replay() {
        let dir = tmp_dir("reopen");
        {
            let mut db = Ssdm::open_durable(&dir).unwrap();
            db.query("INSERT DATA { <http://s1> <http://p> 1 . }")
                .unwrap();
            db.query("INSERT DATA { <http://s2> <http://p> 2 . }")
                .unwrap();
            db.query("DELETE DATA { <http://s1> <http://p> 1 . }")
                .unwrap();
            let stats = db.durability_stats().unwrap();
            assert_eq!(stats.wal.records_appended, 3);
            assert_eq!(stats.wal.fsyncs, 3);
        }
        let mut db = Ssdm::open_durable(&dir).unwrap();
        assert_eq!(count(&mut db), 1);
        let stats = db.durability_stats().unwrap();
        assert_eq!(stats.replayed_records, 3);
        assert_eq!(stats.replays, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn turtle_loads_are_journaled_and_replayed() {
        let dir = tmp_dir("turtle");
        {
            let mut db = Ssdm::open_durable(&dir).unwrap();
            db.load_turtle("<http://s> <http://p> ( 1 2 3 ) .").unwrap();
            db.load_turtle_named("http://g", "<http://n> <http://q> 7 .")
                .unwrap();
        }
        let mut db = Ssdm::open_durable(&dir).unwrap();
        let rows = db
            .query("SELECT (array_sum(?v) AS ?s) WHERE { <http://s> <http://p> ?v }")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "6");
        let rows = db
            .query("SELECT ?o WHERE { GRAPH <http://g> { ?s <http://q> ?o } }")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "7");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_wal_and_recovery_prefers_snapshot() {
        let dir = tmp_dir("checkpoint");
        {
            let mut db = Ssdm::open_durable(&dir).unwrap();
            for i in 0..5 {
                db.query(&format!("INSERT DATA {{ <http://s{i}> <http://p> {i} . }}"))
                    .unwrap();
            }
            db.checkpoint().unwrap();
            db.query("INSERT DATA { <http://post> <http://p> 99 . }")
                .unwrap();
            let stats = db.durability_stats().unwrap();
            assert_eq!(stats.wal.checkpoints, 1);
            assert!(stats.last_checkpoint_ms > 0.0);
        }
        let mut db = Ssdm::open_durable(&dir).unwrap();
        assert_eq!(count(&mut db), 6);
        let stats = db.durability_stats().unwrap();
        // Only the checkpoint marker and the post-checkpoint insert are
        // in the log; the first five came from the snapshot.
        assert_eq!(stats.replayed_records, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn externalized_arrays_survive_checkpoint_and_recovery() {
        let dir = tmp_dir("external");
        {
            let mut db = Ssdm::open_durable(&dir).unwrap();
            db.set_externalize_threshold(4, 64);
            db.load_turtle("<http://a> <http://data> ( 1 2 3 4 5 6 7 8 ) .")
                .unwrap();
            db.checkpoint().unwrap();
        }
        let mut db = Ssdm::open_durable(&dir).unwrap();
        // The array came back through snapshot catalog + chunk files,
        // not through replay.
        assert_eq!(db.durability_stats().unwrap().replayed_records, 1);
        let rows = db
            .query("SELECT (array_sum(?v) AS ?s) WHERE { <http://a> <http://data> ?v }")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "36");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_failure_vetoes_acknowledgement() {
        let dir = tmp_dir("veto");
        let record_overhead = SEGMENT_HEADER as u64 + 256;
        let mut db = Ssdm::open_durable_with(
            &dir,
            DurableOptions {
                crash_plan: Some(CrashPlan {
                    at_bytes: record_overhead,
                    garbage: false,
                    seed: 3,
                }),
                ..DurableOptions::default()
            },
        )
        .unwrap();
        let mut acked = 0;
        for i in 0..50 {
            if db
                .query(&format!("INSERT DATA {{ <http://s{i}> <http://p> {i} . }}"))
                .is_ok()
            {
                acked += 1;
            }
        }
        assert!(acked < 50, "crash plan must eventually fire");
        drop(db);
        let mut db = Ssdm::open_durable(&dir).unwrap();
        // Recovery may surface the torn (unacknowledged) update or not,
        // but every acknowledged one must be present.
        assert!(count(&mut db) >= acked);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_on_non_durable_instance_errors() {
        let mut db = Ssdm::open(crate::Backend::Memory);
        assert!(!db.is_durable());
        assert!(db.checkpoint().is_err());
        assert!(db.durability_stats().is_none());
    }
}
