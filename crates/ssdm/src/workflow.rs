//! The workflow client API (thesis ch. 7).
//!
//! Chapter 7 integrates SciSPARQL into Matlab: computational results
//! (matrices) are *stored* under URIs together with Semantic-Web
//! metadata, then later *found* by querying the metadata and *fetched*
//! lazily. [`Session`] reproduces that client surface for algorithmic
//! languages (here Rust standing in for Matlab; §4.5 "Calling SciSPARQL
//! from algorithmic languages"): `store` ≈ writing a `.mat` file +
//! annotation, `query` ≈ the Matlab `ssdm_query` call, and `fetch`
//! materializes a result array on demand.

use scisparql::{QueryError, QueryResult, Value};
use ssdm_array::NumArray;
use ssdm_rdf::Term;

use crate::Ssdm;

/// A client session against an SSDM instance (in-process; the thesis
/// version speaks the same protocol over TCP to the server).
pub struct Session<'a> {
    db: &'a mut Ssdm,
}

impl<'a> Session<'a> {
    pub fn connect(db: &'a mut Ssdm) -> Self {
        Session { db }
    }

    /// Store a numeric result under `uri` and annotate it with
    /// `(property, value)` metadata triples — the ch. 7 workflow's
    /// "save + annotate" step. The array is linked via the back-end,
    /// not copied into the graph.
    pub fn store(
        &mut self,
        uri: &str,
        array: &NumArray,
        metadata: &[(Term, Term)],
    ) -> Result<u64, QueryError> {
        let subject = Term::uri(uri);
        let id = self
            .db
            .store_linked_array(subject.clone(), Term::uri("urn:ssdm:value"), array)?;
        for (p, o) in metadata {
            self.db
                .dataset
                .graph
                .insert(subject.clone(), p.clone(), o.clone());
        }
        Ok(id)
    }

    /// Run a SciSPARQL query (select/ask/construct/update/define).
    pub fn query(&mut self, text: &str) -> Result<QueryResult, QueryError> {
        self.db.query(text)
    }

    /// Fetch the array stored under `uri`, materializing it.
    pub fn fetch(&mut self, uri: &str) -> Result<NumArray, QueryError> {
        let subject = Term::uri(uri);
        let value_p = Term::uri("urn:ssdm:value");
        let (Some(s), Some(p)) = (
            self.db.dataset.graph.dictionary().lookup(&subject),
            self.db.dataset.graph.dictionary().lookup(&value_p),
        ) else {
            return Err(QueryError::Eval(format!("no stored array at <{uri}>")));
        };
        let Some(t) = self
            .db
            .dataset
            .graph
            .match_pattern(Some(s), Some(p), None)
            .next()
        else {
            return Err(QueryError::Eval(format!("no stored array at <{uri}>")));
        };
        let term = self.db.dataset.graph.term(t.o).clone();
        let value = self.db.dataset.term_to_value(&term);
        self.db.dataset.force_array(&value)
    }

    /// Find stored-result URIs whose metadata matches a SciSPARQL
    /// WHERE fragment binding `?r` (the "search by annotation" step).
    pub fn find(&mut self, where_fragment: &str) -> Result<Vec<String>, QueryError> {
        let q = format!("SELECT ?r WHERE {{ {where_fragment} }}");
        let rows = self
            .db
            .query(&q)?
            .into_rows()
            .ok_or_else(|| QueryError::Eval("find: expected SELECT".into()))?;
        Ok(rows
            .into_iter()
            .filter_map(|r| match r.into_iter().next().flatten() {
                Some(Value::Term(Term::Uri(u))) => Some(u),
                _ => None,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;

    #[test]
    fn store_annotate_find_fetch_workflow() {
        let mut db = Ssdm::open(Backend::Relational);
        db.dataset.chunk_bytes = 64;
        let mut session = Session::connect(&mut db);

        // A "Matlab user" saves two computation results with metadata.
        let a = NumArray::from_f64_shaped((0..100).map(|i| i as f64).collect(), &[10, 10]).unwrap();
        session
            .store(
                "http://results/run1",
                &a,
                &[
                    (Term::uri("http://meta/method"), Term::str("jacobi")),
                    (Term::uri("http://meta/tolerance"), Term::double(1e-6)),
                ],
            )
            .unwrap();
        let b = NumArray::from_f64(vec![9.0, 8.0, 7.0]);
        session
            .store(
                "http://results/run2",
                &b,
                &[(Term::uri("http://meta/method"), Term::str("gauss"))],
            )
            .unwrap();

        // A collaborator searches by metadata...
        let found = session.find(r#"?r <http://meta/method> "jacobi""#).unwrap();
        assert_eq!(found, vec!["http://results/run1"]);

        // ...queries over the stored array without fetching it all...
        let rows = session
            .query(
                r#"SELECT (array_avg(?v[1]) AS ?m) WHERE {
                     ?r <http://meta/method> "jacobi" ; urn_value ?v
                   }"#,
            )
            .err(); // urn scheme needs angle brackets; use full form below
        assert!(rows.is_some());
        let rows = session
            .query(
                r#"SELECT (array_avg(?v) AS ?m) WHERE {
                     ?r <http://meta/method> "jacobi" ; <urn:ssdm:value> ?v
                   }"#,
            )
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "49.5");

        // ...and finally fetches the full matrix.
        let fetched = session.fetch("http://results/run1").unwrap();
        assert!(fetched.array_eq(&a));
    }

    #[test]
    fn fetch_missing_is_error() {
        let mut db = Ssdm::open(Backend::Memory);
        let mut session = Session::connect(&mut db);
        assert!(session.fetch("http://nothing").is_err());
    }
}
