//! SSDM — the Scientific SPARQL Database Manager.
//!
//! The user-facing layer of the system (thesis ch. 5–7): an [`Ssdm`]
//! instance owns a [`scisparql::Dataset`] configured with one of the
//! storage back-ends, and adds:
//!
//! * **data loaders** ([`loaders`]): Turtle files with collection
//!   consolidation, linking of pre-existing binary array files into the
//!   graph (*file links*, the mediator scenario), and RDF Data Cube
//!   consolidation ([`datacube`], thesis §5.3.3);
//! * the **BISTAB** synthetic application ([`bistab`]) reproducing the
//!   computational-biology evaluation of §6.4;
//! * a **workflow client API** ([`workflow`]) mirroring the Matlab
//!   integration of ch. 7: store numeric results under a URI, annotate
//!   them with metadata triples, and query them back with SciSPARQL.
//!
//! # Choosing a back-end
//!
//! ```
//! use ssdm::{Backend, Ssdm};
//!
//! let mut db = Ssdm::open(Backend::Memory);
//! db.load_turtle("@prefix ex: <http://example.org/> . ex:a ex:v (1 2 3) .").unwrap();
//! let rows = db.query("PREFIX ex: <http://example.org/> \
//!                      SELECT (array_sum(?v) AS ?s) WHERE { ex:a ex:v ?v }").unwrap()
//!     .into_rows().unwrap();
//! assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "6");
//! ```

pub mod bistab;
pub mod datacube;
pub mod durability;
pub mod http;
pub mod loaders;
pub mod server;
pub mod snapshot;
pub mod tabular;
pub mod tenant;
pub mod workflow;

use std::path::PathBuf;

use scisparql::{Dataset, QueryError, QueryResult};
use ssdm_storage::{
    CachedChunkStore, ChunkStore, FileChunkStore, MemoryChunkStore, RelChunkStore,
    ShardedChunkStore, SharedChunkStore,
};

pub use durability::{DurabilityStats, DurableOptions};
pub use ssdm_storage::{CrashPlan, FsyncPolicy, ShardOptions, ShardStats};

/// Storage back-end selection for externalized arrays.
pub enum Backend {
    /// In-process chunk map (the resident baseline).
    Memory,
    /// Binary files under a directory (one file per array).
    File(PathBuf),
    /// The embedded relational substrate, in memory.
    Relational,
    /// The embedded relational substrate, file-backed, with options.
    RelationalFile(PathBuf, relstore::DbOptions),
}

/// An SSDM instance.
pub struct Ssdm {
    /// The underlying dataset; public for advanced use (registry,
    /// strategy, thresholds).
    pub dataset: Dataset,
    /// Durability state when opened via [`Ssdm::open_durable`]
    /// (WAL writer, recovery counters); `None` for volatile instances.
    pub(crate) durable: Option<durability::DurableState>,
    /// Slow-query threshold: statements taking at least this many
    /// milliseconds run with the profiler attached and log their
    /// profile to stderr. `None` (default) disables the log.
    slow_query_ms: Option<u64>,
}

impl Ssdm {
    /// Wrap an already-configured dataset (no durability).
    pub fn from_dataset(dataset: Dataset) -> Self {
        Ssdm {
            dataset,
            durable: None,
            slow_query_ms: None,
        }
    }

    /// Open an instance over the chosen back-end.
    pub fn open(backend: Backend) -> Self {
        Ssdm::from_dataset(Dataset::with_backend(raw_store(backend)))
    }

    /// Open an instance whose back-end is wrapped in a shared LRU chunk
    /// cache of `cache_bytes` ([`CachedChunkStore`]), so repeated array
    /// accesses skip back-end round trips. `cache_bytes == 0` disables
    /// caching (equivalent to [`Ssdm::open`]).
    pub fn open_with_cache(backend: Backend, cache_bytes: usize) -> Self {
        if cache_bytes == 0 {
            return Self::open(backend);
        }
        let cached: scisparql::dataset::DynChunkStore =
            Box::new(CachedChunkStore::new(raw_store(backend), cache_bytes));
        Ssdm::from_dataset(Dataset::with_backend(cached))
    }

    /// Open an instance whose arrays are spread across `shards`
    /// independent back-ends of the chosen kind by rendezvous placement
    /// on `(array_id, chunk_id)`, each shard optionally carrying
    /// `replicas` WAL-shipping read replicas ([`ShardedChunkStore`]).
    /// `cache_bytes > 0` fronts the whole cluster with the shared LRU
    /// chunk cache, exactly as [`Ssdm::open_with_cache`] does for a
    /// single back-end. `shards <= 1` with no replicas degenerates to
    /// the unsharded open (results are bit-identical either way).
    pub fn open_sharded(
        backend: Backend,
        shards: usize,
        replicas: usize,
        cache_bytes: usize,
    ) -> Self {
        let shards = shards.max(1);
        if shards == 1 && replicas == 0 {
            return Self::open_with_cache(backend, cache_bytes);
        }
        let opts = ShardOptions {
            replicas,
            ..ShardOptions::default()
        };
        let store = sharded_store(backend, shards, opts);
        let boxed: scisparql::dataset::DynChunkStore = if cache_bytes == 0 {
            Box::new(store)
        } else {
            Box::new(CachedChunkStore::new(store, cache_bytes))
        };
        Ssdm::from_dataset(Dataset::with_backend(boxed))
    }

    /// Every counter the instance exposes, as one structured
    /// [`ssdm_obs::Report`]. Lifetime counters carry the `cumulative`
    /// scope; the array-proxy-resolution section is pushed twice — once
    /// cumulative, once `last_op` (the most recent retrieval) — so the
    /// two can never be silently conflated again.
    pub fn report(&self) -> ssdm_obs::Report {
        use ssdm_obs::Scope::{Cumulative, LastOp};
        let backend = self.dataset.arrays.backend();
        let io = backend.io_stats();
        let cache = backend.cache_stats();
        let res = backend.resilience_stats();
        let compute = ssdm_array::compute_stats();
        let mut r = ssdm_obs::Report::default();

        r.push_int("backend", Cumulative, "statements", io.statements);
        r.push_int("backend", Cumulative, "chunks", io.chunks_returned);
        r.push_int("backend", Cumulative, "bytes", io.bytes_returned);

        r.push_int("cache", Cumulative, "hits", cache.hits);
        r.push_int("cache", Cumulative, "misses", cache.misses);
        r.push_float("cache", Cumulative, "hit_rate", cache.hit_rate());
        r.push_int("cache", Cumulative, "evictions", cache.evictions);
        r.push_int("cache", LastOp, "resident_bytes", cache.resident_bytes);
        r.push_int("cache", LastOp, "capacity_bytes", cache.capacity_bytes);

        r.push_int("resilience", Cumulative, "retries", res.retries);
        r.push_int(
            "resilience",
            Cumulative,
            "transient",
            res.transient_failures,
        );
        r.push_int(
            "resilience",
            Cumulative,
            "permanent",
            res.permanent_failures,
        );
        r.push_int(
            "resilience",
            Cumulative,
            "corruption_detected",
            res.corruption_detected,
        );
        r.push_int(
            "resilience",
            Cumulative,
            "corruption_repaired",
            res.corruption_repaired,
        );
        r.push_int("resilience", Cumulative, "short_reads", res.short_reads);
        r.push_int("resilience", Cumulative, "giveups", res.giveups);

        for (scope, apr) in [
            (Cumulative, self.dataset.arrays.cumulative_stats()),
            (LastOp, self.dataset.arrays.last_stats()),
        ] {
            r.push_int("apr", scope, "statements", apr.statements);
            r.push_int("apr", scope, "chunks", apr.chunks_fetched);
            r.push_int("apr", scope, "bytes", apr.bytes_fetched);
            r.push_int("apr", scope, "elements", apr.elements_resolved);
            r.push_int("apr", scope, "fallbacks", apr.fallbacks);
            r.push_int("apr", scope, "retries", apr.retries);
            r.push_int("apr", scope, "repaired", apr.corruption_repaired);
            r.push_int("apr", scope, "chunks_skipped", apr.chunks_skipped);
            r.push_int("apr", scope, "chunks_decoded", apr.chunks_decoded);
            r.push_int("apr", scope, "bytes_decoded", apr.bytes_decoded);
        }

        r.push_int(
            "compute",
            Cumulative,
            "kernel_invocations",
            compute.kernel_invocations,
        );
        r.push_int(
            "compute",
            Cumulative,
            "elements",
            compute.elements_processed,
        );
        r.push_int(
            "compute",
            Cumulative,
            "scalar_fallbacks",
            compute.scalar_fallbacks,
        );
        r.push_int(
            "compute",
            Cumulative,
            "parallel_folds",
            compute.parallel_folds,
        );

        // Optimizer state: active enumeration mode plus what the
        // feedback loop has learned so far.
        let planner = &self.dataset.planner;
        r.push_int(
            "planner",
            LastOp,
            interned(format!("mode_{}", planner.mode.name())),
            1,
        );
        r.push_int(
            "planner",
            LastOp,
            "dp_max_patterns",
            planner.dp_max_patterns as u64,
        );
        r.push_float(
            "planner",
            LastOp,
            "reopt_qerror",
            planner.adaptive_qerror.unwrap_or(0.0),
        );
        r.push_int(
            "planner",
            LastOp,
            "calibration_enabled",
            u64::from(planner.calibration),
        );
        r.push_int(
            "planner",
            Cumulative,
            "calibration_entries",
            self.dataset.calibration.len() as u64,
        );
        r.push_float(
            "planner",
            Cumulative,
            "cost_per_statement_us",
            self.dataset.calibration.cost_per_statement_us(),
        );

        match self.durability_stats() {
            None => r.push_int("durability", Cumulative, "enabled", 0),
            Some(d) => {
                r.push_int("durability", Cumulative, "enabled", 1);
                r.push_int("durability", Cumulative, "records", d.wal.records_appended);
                r.push_int(
                    "durability",
                    Cumulative,
                    "bytes_appended",
                    d.wal.bytes_appended,
                );
                r.push_int("durability", Cumulative, "fsyncs", d.wal.fsyncs);
                r.push_int(
                    "durability",
                    Cumulative,
                    "bytes_fsynced",
                    d.wal.bytes_fsynced,
                );
                r.push_int("durability", Cumulative, "segments", d.segments);
                r.push_int(
                    "durability",
                    Cumulative,
                    "rotations",
                    d.wal.segments_rotated,
                );
                r.push_int("durability", Cumulative, "checkpoints", d.wal.checkpoints);
                r.push_int("durability", Cumulative, "replays", d.replays);
                r.push_int(
                    "durability",
                    Cumulative,
                    "replayed_records",
                    d.replayed_records,
                );
                r.push_float("durability", Cumulative, "replay_ms", d.replay_ms);
                r.push_int(
                    "durability",
                    Cumulative,
                    "torn_tails",
                    d.torn_tail_truncations,
                );
                r.push_float(
                    "durability",
                    LastOp,
                    "last_checkpoint_ms",
                    d.last_checkpoint_ms,
                );
            }
        }

        if let Some(sh) = backend.shard_stats() {
            r.push_int("shards", Cumulative, "count", sh.shards.len() as u64);
            r.push_int("shards", Cumulative, "failovers", sh.failovers);
            r.push_int("shards", Cumulative, "breaker_opens", sh.breaker_opens);
            r.push_int("shards", Cumulative, "degraded_reads", sh.degraded_reads);
            for (i, s) in sh.shards.iter().enumerate() {
                r.push_int(
                    "shards",
                    Cumulative,
                    interned(format!("shard{i}_primary_reads")),
                    s.primary_reads,
                );
                r.push_int(
                    "shards",
                    Cumulative,
                    interned(format!("shard{i}_replica_reads")),
                    s.replica_reads,
                );
                r.push_int(
                    "shards",
                    Cumulative,
                    interned(format!("shard{i}_failovers")),
                    s.failovers,
                );
                r.push_int(
                    "shards",
                    LastOp,
                    interned(format!("shard{i}_alive")),
                    u64::from(s.primary_alive)
                        + s.replicas.iter().filter(|rep| rep.alive).count() as u64,
                );
                r.push_int(
                    "shards",
                    LastOp,
                    interned(format!("shard{i}_replica_lag")),
                    s.replicas.iter().map(|rep| rep.lag).max().unwrap_or(0),
                );
            }
        }
        r
    }

    /// Human-readable back-end/cache/resilience/APR statistics — what
    /// the CLI's `.stats` command and the server's `STATS` statement
    /// print. One line per `section[scope]` of [`Ssdm::report`].
    pub fn stats_report(&self) -> String {
        self.report().render_text()
    }

    /// The Prometheus text-format metrics dump served by the `METRICS`
    /// wire statement and the server's `--metrics` HTTP endpoint:
    /// the structured [`Ssdm::report`] counters plus the process-wide
    /// recorder's latency histograms (chunk fetch, WAL fsync, query).
    pub fn metrics_prometheus(&self) -> String {
        // Pre-register the core histograms so a scrape sees stable
        // series (with zero counts) even before the first observation.
        let rec = ssdm_obs::recorder();
        for name in [
            "ssdm_chunk_fetch_seconds",
            "ssdm_wal_fsync_seconds",
            "ssdm_query_seconds",
        ] {
            let _ = rec.histogram(name);
        }
        // Likewise the codec counters, which otherwise first appear on
        // the first skipped or decoded chunk.
        for name in ["ssdm_chunks_skipped", "ssdm_chunks_decoded"] {
            let _ = rec.counter(name);
        }
        let mut out = self.report().render_prometheus();
        out.push_str(&rec.prometheus_text());
        out
    }

    /// Enable (`Some(ms)`) or disable (`None`) the slow-query log:
    /// statements at or above the threshold run profiled and print
    /// their `EXPLAIN ANALYZE` profile to stderr.
    pub fn set_slow_query_ms(&mut self, ms: Option<u64>) {
        self.slow_query_ms = ms;
    }

    /// Parse and execute one SciSPARQL statement.
    pub fn query(&mut self, text: &str) -> Result<QueryResult, QueryError> {
        let Some(threshold) = self.slow_query_ms else {
            return self.dataset.query(text);
        };
        let start = std::time::Instant::now();
        let (result, profile) = self.dataset.query_profiled(text)?;
        let elapsed_ms = start.elapsed().as_millis() as u64;
        if elapsed_ms >= threshold {
            eprintln!(
                "[ssdm] slow query: {elapsed_ms} ms (threshold {threshold} ms)\n\
                 {}\n{profile}",
                text.trim()
            );
        }
        Ok(result)
    }

    /// Load Turtle text (collections consolidate into arrays; arrays
    /// above the externalization threshold move to the back-end).
    pub fn load_turtle(&mut self, text: &str) -> Result<usize, QueryError> {
        self.dataset.load_turtle(text)
    }

    /// Set how many elements an array may have before it is stored
    /// externally instead of residing in the graph.
    pub fn set_externalize_threshold(&mut self, elements: usize, chunk_bytes: usize) {
        self.dataset.externalize_threshold = elements;
        self.dataset.chunk_bytes = chunk_bytes;
    }

    /// Load Turtle text into a named graph (thesis §3.3.4).
    pub fn load_turtle_named(&mut self, name: &str, text: &str) -> Result<usize, QueryError> {
        self.dataset.load_turtle_named(name, text)
    }

    /// Set the retrieval strategy for array-proxy resolution.
    pub fn set_strategy(&mut self, strategy: ssdm_storage::RetrievalStrategy) {
        self.dataset.strategy = strategy;
    }

    /// Set the chunk codec policy for arrays stored from now on
    /// (already-stored arrays keep the frames they were written with;
    /// every policy decodes every frame). The default comes from the
    /// `SSDM_CODEC` environment variable, falling back to `auto`.
    pub fn set_codec(&mut self, codec: ssdm_storage::CodecPolicy) {
        self.dataset.arrays.set_codec(codec);
    }

    /// Enable or disable zone-map chunk skipping for filtered
    /// resolutions. On by default; results are bit-identical either
    /// way — skipping only changes how many chunks are fetched.
    pub fn set_chunk_skipping(&mut self, enabled: bool) {
        self.dataset.arrays.set_skip_enabled(enabled);
    }

    /// Set the worker count for parallel proxy resolution and streamed
    /// aggregates (1 = sequential; results are bit-identical either
    /// way). Also sizes the pool the compute kernels use for large
    /// resident arrays.
    pub fn set_parallel_workers(&mut self, workers: usize) {
        let workers = workers.max(1);
        self.dataset.parallel = ssdm_storage::ParallelConfig::with_workers(workers);
        ssdm_array::pool::set_compute_workers(workers);
    }
}

fn raw_store(backend: Backend) -> scisparql::dataset::DynChunkStore {
    match backend {
        Backend::Memory => Box::new(MemoryChunkStore::new()),
        Backend::File(dir) => {
            Box::new(FileChunkStore::new(dir).expect("cannot create array directory"))
        }
        Backend::Relational => Box::new(RelChunkStore::open_memory().expect("in-memory store")),
        Backend::RelationalFile(path, options) => Box::new(
            RelChunkStore::create_file(&path, options).expect("cannot create database file"),
        ),
    }
}

/// Build the sharded cluster for [`Ssdm::open_sharded`]: one primary of
/// the chosen kind per shard. Persistent kinds split their on-disk
/// location per shard (`dir/shard-N`, `path.shardN`) and keep the
/// replication state (WALs, replica segment copies) next to the data;
/// volatile kinds use a private temp root removed on drop.
fn sharded_store(backend: Backend, shards: usize, opts: ShardOptions) -> ShardedChunkStore {
    let boxed = |s: Vec<_>| -> Vec<Box<dyn SharedChunkStore>> { s };
    match backend {
        Backend::Memory => ShardedChunkStore::new(
            (0..shards)
                .map(|_| Box::new(MemoryChunkStore::new()) as Box<dyn SharedChunkStore>)
                .collect(),
            opts,
        ),
        Backend::Relational => ShardedChunkStore::new(
            (0..shards)
                .map(|_| {
                    Box::new(RelChunkStore::open_memory().expect("in-memory store"))
                        as Box<dyn SharedChunkStore>
                })
                .collect(),
            opts,
        ),
        Backend::File(dir) => ShardedChunkStore::with_root(
            boxed(
                (0..shards)
                    .map(|i| {
                        Box::new(
                            FileChunkStore::new(dir.join(format!("shard-{i}")))
                                .expect("cannot create array directory"),
                        ) as Box<dyn SharedChunkStore>
                    })
                    .collect(),
            ),
            dir.join("replication"),
            opts,
        ),
        Backend::RelationalFile(path, options) => {
            let shard_path = |i: usize| PathBuf::from(format!("{}.shard{i}", path.display()));
            ShardedChunkStore::with_root(
                boxed(
                    (0..shards)
                        .map(|i| {
                            Box::new(
                                RelChunkStore::create_file(&shard_path(i), options.clone())
                                    .expect("cannot create database file"),
                            ) as Box<dyn SharedChunkStore>
                        })
                        .collect(),
                ),
                PathBuf::from(format!("{}.replication", path.display())),
                opts,
            )
        }
    }
    .expect("cannot initialize sharded store")
}

/// Intern a dynamically built per-shard counter name so it satisfies
/// the report's `&'static str` name contract. Bounded: the set of names
/// is (shard count x 5), re-used across every report.
fn interned(name: String) -> &'static str {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static NAMES: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let mut map = NAMES
        .get_or_init(Default::default)
        .lock()
        .expect("name intern mutex");
    if let Some(s) = map.get(&name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
    map.insert(name, leaked);
    leaked
}
