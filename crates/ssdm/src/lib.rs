//! SSDM — the Scientific SPARQL Database Manager.
//!
//! The user-facing layer of the system (thesis ch. 5–7): an [`Ssdm`]
//! instance owns a [`scisparql::Dataset`] configured with one of the
//! storage back-ends, and adds:
//!
//! * **data loaders** ([`loaders`]): Turtle files with collection
//!   consolidation, linking of pre-existing binary array files into the
//!   graph (*file links*, the mediator scenario), and RDF Data Cube
//!   consolidation ([`datacube`], thesis §5.3.3);
//! * the **BISTAB** synthetic application ([`bistab`]) reproducing the
//!   computational-biology evaluation of §6.4;
//! * a **workflow client API** ([`workflow`]) mirroring the Matlab
//!   integration of ch. 7: store numeric results under a URI, annotate
//!   them with metadata triples, and query them back with SciSPARQL.
//!
//! # Choosing a back-end
//!
//! ```
//! use ssdm::{Backend, Ssdm};
//!
//! let mut db = Ssdm::open(Backend::Memory);
//! db.load_turtle("@prefix ex: <http://example.org/> . ex:a ex:v (1 2 3) .").unwrap();
//! let rows = db.query("PREFIX ex: <http://example.org/> \
//!                      SELECT (array_sum(?v) AS ?s) WHERE { ex:a ex:v ?v }").unwrap()
//!     .into_rows().unwrap();
//! assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "6");
//! ```

pub mod bistab;
pub mod datacube;
pub mod loaders;
pub mod server;
pub mod snapshot;
pub mod tabular;
pub mod workflow;

use std::path::PathBuf;

use scisparql::{Dataset, QueryError, QueryResult};
use ssdm_storage::{FileChunkStore, MemoryChunkStore, RelChunkStore};

/// Storage back-end selection for externalized arrays.
pub enum Backend {
    /// In-process chunk map (the resident baseline).
    Memory,
    /// Binary files under a directory (one file per array).
    File(PathBuf),
    /// The embedded relational substrate, in memory.
    Relational,
    /// The embedded relational substrate, file-backed, with options.
    RelationalFile(PathBuf, relstore::DbOptions),
}

/// An SSDM instance.
pub struct Ssdm {
    /// The underlying dataset; public for advanced use (registry,
    /// strategy, thresholds).
    pub dataset: Dataset,
}

impl Ssdm {
    /// Open an instance over the chosen back-end.
    pub fn open(backend: Backend) -> Self {
        let store: scisparql::dataset::DynChunkStore = match backend {
            Backend::Memory => Box::new(MemoryChunkStore::new()),
            Backend::File(dir) => {
                Box::new(FileChunkStore::new(dir).expect("cannot create array directory"))
            }
            Backend::Relational => Box::new(RelChunkStore::open_memory().expect("in-memory store")),
            Backend::RelationalFile(path, options) => Box::new(
                RelChunkStore::create_file(&path, options).expect("cannot create database file"),
            ),
        };
        Ssdm {
            dataset: Dataset::with_backend(store),
        }
    }

    /// Parse and execute one SciSPARQL statement.
    pub fn query(&mut self, text: &str) -> Result<QueryResult, QueryError> {
        self.dataset.query(text)
    }

    /// Load Turtle text (collections consolidate into arrays; arrays
    /// above the externalization threshold move to the back-end).
    pub fn load_turtle(&mut self, text: &str) -> Result<usize, QueryError> {
        self.dataset.load_turtle(text)
    }

    /// Set how many elements an array may have before it is stored
    /// externally instead of residing in the graph.
    pub fn set_externalize_threshold(&mut self, elements: usize, chunk_bytes: usize) {
        self.dataset.externalize_threshold = elements;
        self.dataset.chunk_bytes = chunk_bytes;
    }

    /// Load Turtle text into a named graph (thesis §3.3.4).
    pub fn load_turtle_named(&mut self, name: &str, text: &str) -> Result<usize, QueryError> {
        self.dataset.load_turtle_named(name, text)
    }

    /// Set the retrieval strategy for array-proxy resolution.
    pub fn set_strategy(&mut self, strategy: ssdm_storage::RetrievalStrategy) {
        self.dataset.strategy = strategy;
    }
}
