//! SSDM — the Scientific SPARQL Database Manager.
//!
//! The user-facing layer of the system (thesis ch. 5–7): an [`Ssdm`]
//! instance owns a [`scisparql::Dataset`] configured with one of the
//! storage back-ends, and adds:
//!
//! * **data loaders** ([`loaders`]): Turtle files with collection
//!   consolidation, linking of pre-existing binary array files into the
//!   graph (*file links*, the mediator scenario), and RDF Data Cube
//!   consolidation ([`datacube`], thesis §5.3.3);
//! * the **BISTAB** synthetic application ([`bistab`]) reproducing the
//!   computational-biology evaluation of §6.4;
//! * a **workflow client API** ([`workflow`]) mirroring the Matlab
//!   integration of ch. 7: store numeric results under a URI, annotate
//!   them with metadata triples, and query them back with SciSPARQL.
//!
//! # Choosing a back-end
//!
//! ```
//! use ssdm::{Backend, Ssdm};
//!
//! let mut db = Ssdm::open(Backend::Memory);
//! db.load_turtle("@prefix ex: <http://example.org/> . ex:a ex:v (1 2 3) .").unwrap();
//! let rows = db.query("PREFIX ex: <http://example.org/> \
//!                      SELECT (array_sum(?v) AS ?s) WHERE { ex:a ex:v ?v }").unwrap()
//!     .into_rows().unwrap();
//! assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "6");
//! ```

pub mod bistab;
pub mod datacube;
pub mod durability;
pub mod loaders;
pub mod server;
pub mod snapshot;
pub mod tabular;
pub mod workflow;

use std::path::PathBuf;

use scisparql::{Dataset, QueryError, QueryResult};
use ssdm_storage::{CachedChunkStore, ChunkStore, FileChunkStore, MemoryChunkStore, RelChunkStore};

pub use durability::{DurabilityStats, DurableOptions};
pub use ssdm_storage::{CrashPlan, FsyncPolicy};

/// Storage back-end selection for externalized arrays.
pub enum Backend {
    /// In-process chunk map (the resident baseline).
    Memory,
    /// Binary files under a directory (one file per array).
    File(PathBuf),
    /// The embedded relational substrate, in memory.
    Relational,
    /// The embedded relational substrate, file-backed, with options.
    RelationalFile(PathBuf, relstore::DbOptions),
}

/// An SSDM instance.
pub struct Ssdm {
    /// The underlying dataset; public for advanced use (registry,
    /// strategy, thresholds).
    pub dataset: Dataset,
    /// Durability state when opened via [`Ssdm::open_durable`]
    /// (WAL writer, recovery counters); `None` for volatile instances.
    pub(crate) durable: Option<durability::DurableState>,
}

impl Ssdm {
    /// Wrap an already-configured dataset (no durability).
    pub fn from_dataset(dataset: Dataset) -> Self {
        Ssdm {
            dataset,
            durable: None,
        }
    }

    /// Open an instance over the chosen back-end.
    pub fn open(backend: Backend) -> Self {
        Ssdm::from_dataset(Dataset::with_backend(raw_store(backend)))
    }

    /// Open an instance whose back-end is wrapped in a shared LRU chunk
    /// cache of `cache_bytes` ([`CachedChunkStore`]), so repeated array
    /// accesses skip back-end round trips. `cache_bytes == 0` disables
    /// caching (equivalent to [`Ssdm::open`]).
    pub fn open_with_cache(backend: Backend, cache_bytes: usize) -> Self {
        if cache_bytes == 0 {
            return Self::open(backend);
        }
        let cached: scisparql::dataset::DynChunkStore =
            Box::new(CachedChunkStore::new(raw_store(backend), cache_bytes));
        Ssdm::from_dataset(Dataset::with_backend(cached))
    }

    /// Human-readable back-end/cache/resilience/APR statistics — what
    /// the CLI's `.stats` command and the server's `STATS` statement
    /// print.
    pub fn stats_report(&self) -> String {
        let backend = self.dataset.arrays.backend();
        let io = backend.io_stats();
        let cache = backend.cache_stats();
        let res = backend.resilience_stats();
        let apr = self.dataset.arrays.last_stats();
        let compute = ssdm_array::compute_stats();
        let durability = match self.durability_stats() {
            None => "durability: off\n".to_string(),
            Some(d) => format!(
                "durability: records={} bytes_appended={} fsyncs={} bytes_fsynced={} \
                 segments={} rotations={} checkpoints={} replays={} replayed_records={} \
                 replay_ms={:.1} torn_tails={} last_checkpoint_ms={:.1}\n",
                d.wal.records_appended,
                d.wal.bytes_appended,
                d.wal.fsyncs,
                d.wal.bytes_fsynced,
                d.segments,
                d.wal.segments_rotated,
                d.wal.checkpoints,
                d.replays,
                d.replayed_records,
                d.replay_ms,
                d.torn_tail_truncations,
                d.last_checkpoint_ms,
            ),
        };
        format!(
            "backend: statements={} chunks={} bytes={}\n\
             cache: hits={} misses={} hit_rate={:.1}% evictions={} resident_bytes={} capacity_bytes={}\n\
             resilience: retries={} transient={} permanent={} corruption_detected={} \
             corruption_repaired={} short_reads={} giveups={}\n\
             last_apr: statements={} chunks={} bytes={} elements={} fallbacks={} retries={} repaired={}\n\
             compute: kernel_invocations={} elements={} scalar_fallbacks={} parallel_folds={}\n\
             {}",
            io.statements,
            io.chunks_returned,
            io.bytes_returned,
            cache.hits,
            cache.misses,
            cache.hit_rate() * 100.0,
            cache.evictions,
            cache.resident_bytes,
            cache.capacity_bytes,
            res.retries,
            res.transient_failures,
            res.permanent_failures,
            res.corruption_detected,
            res.corruption_repaired,
            res.short_reads,
            res.giveups,
            apr.statements,
            apr.chunks_fetched,
            apr.bytes_fetched,
            apr.elements_resolved,
            apr.fallbacks,
            apr.retries,
            apr.corruption_repaired,
            compute.kernel_invocations,
            compute.elements_processed,
            compute.scalar_fallbacks,
            compute.parallel_folds,
            durability,
        )
    }

    /// Parse and execute one SciSPARQL statement.
    pub fn query(&mut self, text: &str) -> Result<QueryResult, QueryError> {
        self.dataset.query(text)
    }

    /// Load Turtle text (collections consolidate into arrays; arrays
    /// above the externalization threshold move to the back-end).
    pub fn load_turtle(&mut self, text: &str) -> Result<usize, QueryError> {
        self.dataset.load_turtle(text)
    }

    /// Set how many elements an array may have before it is stored
    /// externally instead of residing in the graph.
    pub fn set_externalize_threshold(&mut self, elements: usize, chunk_bytes: usize) {
        self.dataset.externalize_threshold = elements;
        self.dataset.chunk_bytes = chunk_bytes;
    }

    /// Load Turtle text into a named graph (thesis §3.3.4).
    pub fn load_turtle_named(&mut self, name: &str, text: &str) -> Result<usize, QueryError> {
        self.dataset.load_turtle_named(name, text)
    }

    /// Set the retrieval strategy for array-proxy resolution.
    pub fn set_strategy(&mut self, strategy: ssdm_storage::RetrievalStrategy) {
        self.dataset.strategy = strategy;
    }

    /// Set the worker count for parallel proxy resolution and streamed
    /// aggregates (1 = sequential; results are bit-identical either
    /// way). Also sizes the pool the compute kernels use for large
    /// resident arrays.
    pub fn set_parallel_workers(&mut self, workers: usize) {
        let workers = workers.max(1);
        self.dataset.parallel = ssdm_storage::ParallelConfig::with_workers(workers);
        ssdm_array::pool::set_compute_workers(workers);
    }
}

fn raw_store(backend: Backend) -> scisparql::dataset::DynChunkStore {
    match backend {
        Backend::Memory => Box::new(MemoryChunkStore::new()),
        Backend::File(dir) => {
            Box::new(FileChunkStore::new(dir).expect("cannot create array directory"))
        }
        Backend::Relational => Box::new(RelChunkStore::open_memory().expect("in-memory store")),
        Backend::RelationalFile(path, options) => Box::new(
            RelChunkStore::create_file(&path, options).expect("cannot create database file"),
        ),
    }
}
