//! RDF Data Cube vocabulary support (thesis §2.3.5.2, §5.3.3).
//!
//! The W3C Data Cube vocabulary represents multidimensional statistical
//! data as one `qb:Observation` node *per cell*, each carrying its
//! dimension coordinates and measure value — for a d-dimensional cube
//! of N cells that is `N × (d + 2)` triples plus metadata. SSDM
//! *consolidates* such datasets: the observations collapse into one
//! numeric array per measure, plus one dictionary vector per dimension
//! mapping 1-based subscripts to dimension values, "drastically reducing
//! the graph size ... while preserving all information therein".

use ssdm_array::{Num, NumArray};
use ssdm_rdf::{Graph, Term, TermId};

pub const QB: &str = "http://purl.org/linked-data/cube#";

/// What one consolidation pass did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CubeReport {
    pub datasets: usize,
    pub observations_removed: usize,
    pub triples_removed: usize,
    pub arrays_created: usize,
}

fn qb(local: &str) -> Term {
    Term::uri(format!("{QB}{local}"))
}

/// SSDM vocabulary for consolidated cubes.
pub fn ssdm_measure_array() -> Term {
    Term::uri("urn:ssdm:datacube:measureArray")
}

pub fn ssdm_dimension_dict(dim_index: usize) -> Term {
    Term::uri(format!("urn:ssdm:datacube:dimension{dim_index}"))
}

/// Consolidate every `qb:DataSet` in the graph whose observations form
/// a complete dense cube with numeric measures. Non-conforming
/// datasets are left untouched.
pub fn consolidate_datacube(graph: &mut Graph) -> CubeReport {
    let mut report = CubeReport::default();
    let Some(qb_dataset_p) = graph.dictionary().lookup(&qb("dataSet")) else {
        return report;
    };
    let Some(measure_p) = graph.dictionary().lookup(&qb("measure")) else {
        return report;
    };

    // Group observations by their target dataset.
    let mut by_dataset: std::collections::HashMap<TermId, Vec<TermId>> =
        std::collections::HashMap::new();
    for t in graph.iter() {
        if t.p == qb_dataset_p {
            by_dataset.entry(t.o).or_default().push(t.s);
        }
    }

    for (dataset, observations) in by_dataset {
        if observations.is_empty() {
            continue;
        }
        // Discover the dimension properties: every non-measure,
        // non-dataSet property shared by observations.
        let mut dim_props: Vec<TermId> = Vec::new();
        {
            let first_obs = observations[0];
            for t in graph.match_pattern(Some(first_obs), None, None) {
                if t.p != qb_dataset_p && t.p != measure_p && !dim_props.contains(&t.p) {
                    dim_props.push(t.p);
                }
            }
        }
        dim_props.sort();
        if dim_props.is_empty() {
            continue;
        }

        // Collect per-dimension distinct values and per-observation
        // coordinates + measure.
        let mut dim_values: Vec<Vec<TermId>> = vec![Vec::new(); dim_props.len()];
        let mut cells: Vec<(Vec<TermId>, Num)> = Vec::with_capacity(observations.len());
        let mut ok = true;
        for &obs in &observations {
            let mut coord = Vec::with_capacity(dim_props.len());
            for (d, &p) in dim_props.iter().enumerate() {
                let mut vals = graph.match_pattern(Some(obs), Some(p), None);
                let Some(v) = vals.next() else {
                    ok = false;
                    break;
                };
                if vals.next().is_some() {
                    ok = false;
                    break;
                }
                if !dim_values[d].contains(&v.o) {
                    dim_values[d].push(v.o);
                }
                coord.push(v.o);
            }
            if !ok {
                break;
            }
            let mut measures = graph.match_pattern(Some(obs), Some(measure_p), None);
            let Some(m) = measures.next() else {
                ok = false;
                break;
            };
            if measures.next().is_some() {
                ok = false;
                break;
            }
            let Some(num) = graph.term(m.o).as_num() else {
                ok = false;
                break;
            };
            cells.push((coord, num));
        }
        if !ok {
            continue;
        }
        // Order dimension values deterministically (by term order).
        for vals in &mut dim_values {
            vals.sort_by(|a, b| graph.term(*a).order_cmp(graph.term(*b)));
        }
        let shape: Vec<usize> = dim_values.iter().map(Vec::len).collect();
        let count: usize = shape.iter().product();
        if count != cells.len() {
            continue; // sparse cube: leave as observations
        }
        // Fill the dense array.
        let mut data = vec![f64::NAN; count];
        let mut is_int = true;
        let strides: Vec<usize> = {
            let mut s = vec![1usize; shape.len()];
            for d in (0..shape.len().saturating_sub(1)).rev() {
                s[d] = s[d + 1] * shape[d + 1];
            }
            s
        };
        let mut filled = 0usize;
        for (coord, num) in &cells {
            let mut addr = 0usize;
            for (d, c) in coord.iter().enumerate() {
                let idx = dim_values[d]
                    .iter()
                    .position(|v| v == c)
                    .expect("value collected above");
                addr += idx * strides[d];
            }
            if data[addr].is_nan() {
                filled += 1;
            }
            if matches!(num, Num::Real(_)) {
                is_int = false;
            }
            data[addr] = num.as_f64();
        }
        if filled != count {
            continue; // duplicate coordinates
        }
        let array = if is_int {
            NumArray::from_i64_shaped(data.iter().map(|&v| v as i64).collect(), &shape)
        } else {
            NumArray::from_f64_shaped(data, &shape)
        }
        .expect("shape matches by construction");

        // Rewrite: remove observation triples, attach the array and the
        // dimension dictionaries to the dataset node.
        let doomed: Vec<ssdm_rdf::Triple> = graph
            .iter()
            .filter(|t| observations.contains(&t.s))
            .collect();
        for t in &doomed {
            graph.remove_ids(t.s, t.p, t.o);
        }
        report.triples_removed += doomed.len();
        report.observations_removed += observations.len();

        let arr_id = graph.intern(Term::Array(array));
        let measure_array_p = graph.intern(ssdm_measure_array());
        graph.insert_ids(dataset, measure_array_p, arr_id);
        for (d, vals) in dim_values.iter().enumerate() {
            // Numeric dimensions become numeric dictionary vectors;
            // others become rdf lists of their values.
            let dict_p = graph.intern(ssdm_dimension_dict(d + 1));
            let all_numeric = vals.iter().all(|&v| graph.term(v).as_num().is_some());
            if all_numeric {
                let nums: Vec<Num> = vals
                    .iter()
                    .map(|&v| graph.term(v).as_num().expect("checked"))
                    .collect();
                let dict =
                    NumArray::from_data(ssdm_array::ArrayData::from_nums(&nums), &[nums.len()])
                        .expect("vector shape");
                let dict_id = graph.intern(Term::Array(dict));
                graph.insert_ids(dataset, dict_p, dict_id);
            } else {
                // Keep a linked list of the dimension's values.
                let first = graph.intern(Term::uri(ssdm_rdf::RDF_FIRST));
                let rest = graph.intern(Term::uri(ssdm_rdf::RDF_REST));
                let nil = graph.intern(Term::uri(ssdm_rdf::RDF_NIL));
                let mut cells_ids = Vec::with_capacity(vals.len());
                for _ in vals {
                    cells_ids.push(graph.dictionary_mut().fresh_blank());
                }
                for (i, &v) in vals.iter().enumerate() {
                    graph.insert_ids(cells_ids[i], first, v);
                    let next = cells_ids.get(i + 1).copied().unwrap_or(nil);
                    graph.insert_ids(cells_ids[i], rest, next);
                }
                graph.insert_ids(dataset, dict_p, cells_ids[0]);
            }
        }
        report.arrays_created += 1;
        report.datasets += 1;
    }
    report
}

/// Generate a synthetic dense Data Cube dataset in Turtle, with the
/// given dimension extents (experiment E6). Dimension values are
/// integers `1..=extent`; the measure is a deterministic function of
/// the coordinates.
pub fn generate_datacube(dims: &[usize]) -> String {
    let mut out = String::new();
    out.push_str(&format!("@prefix qb: <{QB}> .\n"));
    out.push_str("@prefix ex: <http://example.org/cube/> .\n");
    out.push_str("ex:ds a qb:DataSet .\n");
    let count: usize = dims.iter().product();
    let mut coord = vec![1usize; dims.len()];
    for obs in 0..count {
        out.push_str(&format!("ex:obs{obs} qb:dataSet ex:ds"));
        let mut measure = 0usize;
        for (d, &c) in coord.iter().enumerate() {
            out.push_str(&format!(" ; ex:dim{} {}", d + 1, c));
            measure = measure * 100 + c;
        }
        out.push_str(&format!(" ; qb:measure {measure} .\n"));
        for d in (0..dims.len()).rev() {
            coord[d] += 1;
            if coord[d] <= dims[d] {
                break;
            }
            coord[d] = 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdm_rdf::turtle;

    #[test]
    fn generated_cube_consolidates() {
        let text = generate_datacube(&[3, 4]);
        let mut g = Graph::new();
        turtle::parse_into(&mut g, &text).unwrap();
        // 12 observations x 4 triples + 1 type triple.
        assert_eq!(g.len(), 12 * 4 + 1);
        let report = consolidate_datacube(&mut g);
        assert_eq!(report.datasets, 1);
        assert_eq!(report.observations_removed, 12);
        // Remaining: type + measure array + 2 dimension dictionaries.
        assert_eq!(g.len(), 4);
        // Check the array content: measure at (2,3) = 2*100+3 = 203.
        let map = g
            .dictionary()
            .lookup(&ssdm_measure_array())
            .expect("measure array property");
        let t = g.match_pattern(None, Some(map), None).next().unwrap();
        let arr = g.term(t.o).as_array().unwrap();
        assert_eq!(arr.shape(), vec![3, 4]);
        assert_eq!(arr.get(&[1, 2]).unwrap().as_i64(), 203);
    }

    #[test]
    fn sparse_cube_left_alone() {
        let mut text = generate_datacube(&[2, 2]);
        // Drop one observation to make the cube sparse.
        let cut = text.find("ex:obs3").unwrap();
        text.truncate(cut);
        let mut g = Graph::new();
        turtle::parse_into(&mut g, &text).unwrap();
        let before = g.len();
        let report = consolidate_datacube(&mut g);
        assert_eq!(report.datasets, 0);
        assert_eq!(g.len(), before);
    }

    #[test]
    fn non_numeric_measure_left_alone() {
        let text = format!(
            r#"@prefix qb: <{QB}> .
               @prefix ex: <http://example.org/> .
               ex:o1 qb:dataSet ex:ds ; ex:dim1 1 ; qb:measure "high" .
               ex:o2 qb:dataSet ex:ds ; ex:dim1 2 ; qb:measure "low" ."#
        );
        let mut g = Graph::new();
        turtle::parse_into(&mut g, &text).unwrap();
        let before = g.len();
        consolidate_datacube(&mut g);
        assert_eq!(g.len(), before);
    }

    #[test]
    fn three_dimensional_cube() {
        let text = generate_datacube(&[2, 3, 2]);
        let mut g = Graph::new();
        turtle::parse_into(&mut g, &text).unwrap();
        let report = consolidate_datacube(&mut g);
        assert_eq!(report.arrays_created, 1);
        let map = g.dictionary().lookup(&ssdm_measure_array()).unwrap();
        let t = g.match_pattern(None, Some(map), None).next().unwrap();
        let arr = g.term(t.o).as_array().unwrap();
        assert_eq!(arr.shape(), vec![2, 3, 2]);
        assert_eq!(
            arr.get(&[1, 2, 1]).unwrap().as_i64(),
            2 * 10000 + 3 * 100 + 2
        );
    }
}
