//! Content negotiation over the four SPARQL result formats.
//!
//! Implements the `Accept` header's q-value algebra (RFC 9110 §12):
//! each supported media type is scored against the header's media
//! ranges, most-specific match wins, and the supported type with the
//! highest q is selected. Ties break toward the server's preference
//! order: JSON, XML, TSV, CSV.

/// The result serializations the endpoint can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultFormat {
    Json,
    Xml,
    Csv,
    Tsv,
}

impl ResultFormat {
    /// The `Content-Type` the response carries.
    pub fn content_type(self) -> &'static str {
        match self {
            ResultFormat::Json => "application/sparql-results+json",
            ResultFormat::Xml => "application/sparql-results+xml",
            ResultFormat::Csv => "text/csv; charset=utf-8",
            ResultFormat::Tsv => "text/tab-separated-values; charset=utf-8",
        }
    }

    /// Media types that select this format, canonical first.
    fn aliases(self) -> &'static [&'static str] {
        match self {
            ResultFormat::Json => &["application/sparql-results+json", "application/json"],
            ResultFormat::Xml => &[
                "application/sparql-results+xml",
                "application/xml",
                "text/xml",
            ],
            ResultFormat::Csv => &["text/csv"],
            ResultFormat::Tsv => &["text/tab-separated-values"],
        }
    }
}

/// Server preference order, used both as the tie-break and as the
/// candidate list.
const PREFERENCE: [ResultFormat; 4] = [
    ResultFormat::Json,
    ResultFormat::Xml,
    ResultFormat::Tsv,
    ResultFormat::Csv,
];

/// One media range from an Accept header.
struct MediaRange {
    kind: String,    // "*" or e.g. "application"
    subtype: String, // "*" or e.g. "sparql-results+json"
    q: f64,
}

fn parse_accept(header: &str) -> Vec<MediaRange> {
    let mut ranges = Vec::new();
    for item in header.split(',') {
        let mut parts = item.split(';');
        let Some(mt) = parts.next() else { continue };
        let mt = mt.trim().to_ascii_lowercase();
        if mt.is_empty() {
            continue;
        }
        let (kind, subtype) = match mt.split_once('/') {
            Some((k, s)) => (k.to_string(), s.to_string()),
            None if mt == "*" => ("*".to_string(), "*".to_string()),
            None => continue,
        };
        let mut q = 1.0f64;
        for param in parts {
            if let Some((k, v)) = param.split_once('=') {
                if k.trim().eq_ignore_ascii_case("q") {
                    q = v.trim().parse::<f64>().unwrap_or(0.0).clamp(0.0, 1.0);
                }
            }
        }
        ranges.push(MediaRange { kind, subtype, q });
    }
    ranges
}

/// Specificity rank of a match: exact > type/* > */*.
fn specificity(range: &MediaRange) -> u8 {
    match (range.kind.as_str(), range.subtype.as_str()) {
        ("*", _) => 0,
        (_, "*") => 1,
        _ => 2,
    }
}

/// Score one concrete media type against the ranges: q of the most
/// specific matching range, or `None` if nothing matches.
fn score(media_type: &str, ranges: &[MediaRange]) -> Option<f64> {
    let (kind, subtype) = media_type.split_once('/')?;
    let mut best: Option<(u8, f64)> = None;
    for range in ranges {
        let matches = (range.kind == "*" || range.kind == kind)
            && (range.subtype == "*" || range.subtype == subtype);
        if !matches {
            continue;
        }
        let spec = specificity(range);
        if best.map(|(s, _)| spec > s).unwrap_or(true) {
            best = Some((spec, range.q));
        }
    }
    best.map(|(_, q)| q)
}

/// Pick the result format for an Accept header value.
///
/// `None` header (absent) selects the default (JSON). `Some(Err(()))`
/// is never produced; an Accept that rules out every format returns
/// `None` from this function and the caller answers 406.
pub fn negotiate(accept: Option<&str>) -> Option<ResultFormat> {
    let Some(header) = accept else {
        return Some(ResultFormat::Json);
    };
    let header = header.trim();
    if header.is_empty() {
        return Some(ResultFormat::Json);
    }
    let ranges = parse_accept(header);
    if ranges.is_empty() {
        return Some(ResultFormat::Json);
    }
    let mut best: Option<(f64, ResultFormat)> = None;
    for format in PREFERENCE {
        let q = format
            .aliases()
            .iter()
            .filter_map(|alias| score(alias, &ranges))
            .fold(None::<f64>, |acc, q| {
                Some(acc.map(|a| a.max(q)).unwrap_or(q))
            });
        if let Some(q) = q {
            if q > 0.0 && best.map(|(bq, _)| q > bq).unwrap_or(true) {
                best = Some((q, format));
            }
        }
    }
    best.map(|(_, f)| f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_or_wildcard_accept_defaults_to_json() {
        assert_eq!(negotiate(None), Some(ResultFormat::Json));
        assert_eq!(negotiate(Some("*/*")), Some(ResultFormat::Json));
        assert_eq!(negotiate(Some("")), Some(ResultFormat::Json));
    }

    #[test]
    fn exact_types_select_each_format() {
        assert_eq!(
            negotiate(Some("application/sparql-results+json")),
            Some(ResultFormat::Json)
        );
        assert_eq!(
            negotiate(Some("application/sparql-results+xml")),
            Some(ResultFormat::Xml)
        );
        assert_eq!(negotiate(Some("text/csv")), Some(ResultFormat::Csv));
        assert_eq!(
            negotiate(Some("text/tab-separated-values")),
            Some(ResultFormat::Tsv)
        );
    }

    #[test]
    fn alias_types_map_to_formats() {
        assert_eq!(
            negotiate(Some("application/json")),
            Some(ResultFormat::Json)
        );
        assert_eq!(negotiate(Some("application/xml")), Some(ResultFormat::Xml));
        assert_eq!(negotiate(Some("text/xml")), Some(ResultFormat::Xml));
    }

    #[test]
    fn q_values_order_candidates() {
        assert_eq!(
            negotiate(Some("text/csv;q=0.5, application/sparql-results+xml;q=0.9")),
            Some(ResultFormat::Xml)
        );
        assert_eq!(
            negotiate(Some("application/sparql-results+json;q=0.1, text/csv")),
            Some(ResultFormat::Csv)
        );
    }

    #[test]
    fn type_wildcard_and_specificity() {
        // text/* matches text/xml, CSV, and TSV; server preference
        // ranks XML first among them.
        assert_eq!(negotiate(Some("text/*")), Some(ResultFormat::Xml));
        // An exact type with a higher q beats the wildcard's matches.
        assert_eq!(
            negotiate(Some("text/*;q=0.5, text/csv;q=1.0")),
            Some(ResultFormat::Csv)
        );
        // Exact beats wildcard per type: xml and csv are ruled out by
        // exact q=0 while tsv keeps the wildcard's q.
        assert_eq!(
            negotiate(Some("text/*;q=0.9, text/xml;q=0, text/csv;q=0")),
            Some(ResultFormat::Tsv)
        );
    }

    #[test]
    fn unacceptable_returns_none() {
        assert_eq!(negotiate(Some("image/png")), None);
        assert_eq!(negotiate(Some("text/html;q=0")), None);
        assert_eq!(negotiate(Some("text/csv;q=0")), None);
    }

    #[test]
    fn browser_style_header_prefers_xml_over_wildcard() {
        let firefox = "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8";
        assert_eq!(negotiate(Some(firefox)), Some(ResultFormat::Xml));
    }
}
