//! SPARQL 1.1 Protocol routing and request execution.
//!
//! Routing splits in two phases so the event loop never blocks on the
//! engine: [`route`] classifies a parsed request without touching the
//! database (immediate responses for protocol errors, health checks,
//! and method/path mismatches; an [`Exec`] job otherwise), and
//! [`execute`] runs an `Exec` against the resolved tenant's engine on
//! a worker thread with the same panic isolation as the framed server.
//!
//! Tenant routing: `/query`, `/update`, and `/stats` serve the default
//! tenant; `/tenants/<id>/query|update|stats` serve the named one.
//! `/metrics` and `/healthz` are server-wide.
//!
//! Protocol conformance notes (each was a silent-wrong-answer bug):
//! the dataset-scope parameters (`default-graph-uri`, `named-graph-uri`,
//! `using-graph-uri`, `using-named-graph-uri`) are *refused* with a 400
//! rather than silently ignored — the spec requires honoring or
//! refusing them, and this service always queries its own dataset;
//! duplicate `query=`/`update=` parameters (the spec requires exactly
//! one) are a 400 instead of first-wins; and `Content-Type` matches by
//! media type only, so parameterized headers like
//! `application/x-www-form-urlencoded; charset=UTF-8` are accepted.

use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use crate::tenant::TenantRegistry;
use crate::Ssdm;

use super::negotiate::{negotiate, ResultFormat};
use super::parser::{Method, Request};
use super::results;

/// A complete response, format-agnostic until encoded.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers (e.g. `Allow` on 405).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Suppress the body (HEAD requests keep the headers).
    pub head_only: bool,
}

impl Response {
    pub fn new(status: u16, content_type: &'static str, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type,
            body,
            extra_headers: Vec::new(),
            head_only: false,
        }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Response {
        let mut body = body.into();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        Response::new(status, "text/plain; charset=utf-8", body.into_bytes())
    }

    fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }

    pub fn status_reason(status: u16) -> &'static str {
        match status {
            100 => "Continue",
            200 => "OK",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            406 => "Not Acceptable",
            408 => "Request Timeout",
            413 => "Content Too Large",
            414 => "URI Too Long",
            415 => "Unsupported Media Type",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            _ => "Unknown",
        }
    }

    /// Encode as HTTP/1.1 wire bytes.
    pub fn encode(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            Response::status_reason(self.status),
            self.content_type,
            self.body.len()
        )
        .into_bytes();
        for (name, value) in &self.extra_headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(if keep_alive {
            b"Connection: keep-alive\r\n\r\n"
        } else {
            b"Connection: close\r\n\r\n"
        });
        if !self.head_only {
            out.extend_from_slice(&self.body);
        }
        out
    }
}

/// What a request needs from the engine. `tenant: None` means the
/// default tenant (the bare `/query`-family paths).
#[derive(Debug, Clone)]
pub enum Exec {
    /// A read statement from `/query`, answered in `format`.
    Query {
        tenant: Option<String>,
        statement: String,
        format: ResultFormat,
    },
    /// An update statement from `/update`.
    Update {
        tenant: Option<String>,
        statement: String,
    },
    /// The Prometheus dump across every tenant.
    Metrics,
    /// The plain-text statistics report for one tenant.
    Stats { tenant: Option<String> },
}

impl Exec {
    /// Which tenant's queue and quotas this job charges against.
    pub fn tenant(&self) -> Option<&str> {
        match self {
            Exec::Query { tenant, .. } | Exec::Update { tenant, .. } | Exec::Stats { tenant } => {
                tenant.as_deref()
            }
            Exec::Metrics => None,
        }
    }

    /// Fair-share cost in bytes; deficit round robin weighs queued
    /// work by statement size so a hog's megabyte bodies do not buy it
    /// extra turns.
    pub fn cost(&self) -> u64 {
        match self {
            Exec::Query { statement, .. } | Exec::Update { statement, .. } => {
                statement.len() as u64
            }
            Exec::Metrics | Exec::Stats { .. } => 1,
        }
    }
}

/// The routing decision for one request.
pub enum Routed {
    /// Answer directly from the event loop, no engine involved.
    Immediate(Response),
    /// Dispatch to a worker. `head_only` trims the body on the way out.
    Dispatch { exec: Exec, head_only: bool },
}

fn counter(name: &'static str) {
    ssdm_obs::recorder().counter(name).inc();
}

/// Classify a parsed request per the SPARQL 1.1 Protocol.
pub fn route(req: &Request) -> Routed {
    let head_only = req.method == Method::Head;
    if let Some(rest) = req.path.strip_prefix("/tenants/") {
        let Some((name, endpoint)) = rest.split_once('/') else {
            counter("ssdm_http_not_found_total");
            return Routed::Immediate(Response::text(
                404,
                "tenant paths are /tenants/<id>/query, /tenants/<id>/update, /tenants/<id>/stats",
            ));
        };
        if name.is_empty() {
            counter("ssdm_http_not_found_total");
            return Routed::Immediate(Response::text(404, "empty tenant id"));
        }
        let tenant = Some(name.to_string());
        return match endpoint {
            "query" => route_query(req, tenant, head_only),
            "update" => route_update(req, tenant),
            "stats" => match req.method {
                Method::Get | Method::Head => {
                    counter("ssdm_http_stats_requests_total");
                    Routed::Dispatch {
                        exec: Exec::Stats { tenant },
                        head_only,
                    }
                }
                _ => method_not_allowed("GET, HEAD"),
            },
            _ => {
                counter("ssdm_http_not_found_total");
                Routed::Immediate(Response::text(404, "no such tenant endpoint"))
            }
        };
    }
    match req.path.as_str() {
        "/query" => route_query(req, None, head_only),
        "/update" => route_update(req, None),
        "/metrics" => match req.method {
            Method::Get | Method::Head => {
                counter("ssdm_http_metrics_requests_total");
                Routed::Dispatch {
                    exec: Exec::Metrics,
                    head_only,
                }
            }
            _ => method_not_allowed("GET, HEAD"),
        },
        "/stats" => match req.method {
            Method::Get | Method::Head => {
                counter("ssdm_http_stats_requests_total");
                Routed::Dispatch {
                    exec: Exec::Stats { tenant: None },
                    head_only,
                }
            }
            _ => method_not_allowed("GET, HEAD"),
        },
        "/healthz" => match req.method {
            Method::Get | Method::Head => {
                let mut resp = Response::text(200, "ok");
                resp.head_only = head_only;
                Routed::Immediate(resp)
            }
            _ => method_not_allowed("GET, HEAD"),
        },
        _ => {
            counter("ssdm_http_not_found_total");
            Routed::Immediate(Response::text(404, "no such endpoint"))
        }
    }
}

fn method_not_allowed(allow: &'static str) -> Routed {
    Routed::Immediate(Response::text(405, "method not allowed").with_header("Allow", allow))
}

/// Dataset-scope parameters each endpoint must honor or refuse; this
/// service always operates on its own dataset, so it refuses them.
const QUERY_DATASET_PARAMS: &[&str] = &["default-graph-uri", "named-graph-uri"];
const UPDATE_DATASET_PARAMS: &[&str] = &["using-graph-uri", "using-named-graph-uri"];

fn refuse_dataset_params(pairs: &[(String, String)], forbidden: &[&str]) -> Option<Routed> {
    for (k, _) in pairs {
        if forbidden.iter().any(|f| f == k) {
            return Some(bad_request(&format!(
                "unsupported protocol parameter '{k}': this service always operates on its own \
                 dataset and refuses dataset-scope parameters rather than silently ignoring them"
            )));
        }
    }
    None
}

/// Enforce the protocol's exactly-one rule for the statement
/// parameter across every place it could appear.
fn exactly_one<'a>(
    pairs: impl Iterator<Item = &'a (String, String)>,
    field: &str,
) -> Result<Option<String>, Routed> {
    let mut found = None;
    for (k, v) in pairs {
        if k == field {
            if found.is_some() {
                return Err(bad_request(&format!(
                    "duplicate '{field}' parameter: the protocol requires exactly one"
                )));
            }
            found = Some(v.clone());
        }
    }
    Ok(found)
}

/// `/query`: GET with a `query=` parameter, or POST with either an
/// urlencoded form carrying `query=` or a raw
/// `application/sparql-query` body.
fn route_query(req: &Request, tenant: Option<String>, head_only: bool) -> Routed {
    if let Some(resp) = refuse_dataset_params(&req.query_pairs, QUERY_DATASET_PARAMS) {
        return resp;
    }
    let statement = match req.method {
        Method::Get | Method::Head => match exactly_one(req.query_pairs.iter(), "query") {
            Err(r) => return r,
            Ok(Some(q)) => q,
            Ok(None) => {
                return bad_request("missing required 'query' parameter");
            }
        },
        Method::Post => {
            match extract_post_statement(
                req,
                "query",
                "application/sparql-query",
                QUERY_DATASET_PARAMS,
            ) {
                Ok(s) => s,
                Err(r) => return r,
            }
        }
        Method::Other => return method_not_allowed("GET, HEAD, POST"),
    };
    let Some(format) = negotiate(req.header("accept")) else {
        counter("ssdm_http_not_acceptable_total");
        return Routed::Immediate(Response::text(
            406,
            "not acceptable: supported result types are application/sparql-results+json, \
             application/sparql-results+xml, text/csv, text/tab-separated-values",
        ));
    };
    // The protocol forbids updates through the query endpoint. Parse
    // errors pass through: the engine reports them with its own
    // positions, and some statements (DEFINE FUNCTION...) only it
    // accepts.
    if let Ok(stmt) = scisparql::parser::parse(&statement) {
        if stmt.is_mutation() {
            return bad_request("update statements must use the /update endpoint");
        }
    }
    counter("ssdm_http_query_requests_total");
    Routed::Dispatch {
        exec: Exec::Query {
            tenant,
            statement,
            format,
        },
        head_only,
    }
}

/// `/update`: POST only, urlencoded form carrying `update=` or a raw
/// `application/sparql-update` body.
fn route_update(req: &Request, tenant: Option<String>) -> Routed {
    if req.method != Method::Post {
        return method_not_allowed("POST");
    }
    if let Some(resp) = refuse_dataset_params(&req.query_pairs, UPDATE_DATASET_PARAMS) {
        return resp;
    }
    let statement = match extract_post_statement(
        req,
        "update",
        "application/sparql-update",
        UPDATE_DATASET_PARAMS,
    ) {
        Ok(s) => s,
        Err(r) => return r,
    };
    match scisparql::parser::parse(&statement) {
        Ok(stmt) if !stmt.is_mutation() => {
            return bad_request("read statements must use the /query endpoint");
        }
        _ => {}
    }
    counter("ssdm_http_update_requests_total");
    Routed::Dispatch {
        exec: Exec::Update { tenant, statement },
        head_only: false,
    }
}

fn bad_request(msg: &str) -> Routed {
    counter("ssdm_http_bad_request_total");
    Routed::Immediate(Response::text(400, msg))
}

/// Pull the statement out of a POST body: either the direct media type
/// (raw statement) or a urlencoded form with the named field.
/// `Request::content_type()` strips media-type parameters, so
/// `application/x-www-form-urlencoded; charset=UTF-8` matches here.
fn extract_post_statement(
    req: &Request,
    field: &str,
    direct_type: &str,
    forbidden: &[&str],
) -> Result<String, Routed> {
    match req.content_type().as_deref() {
        Some(t) if t == direct_type => {
            // A statement parameter alongside a raw statement body
            // would be a second statement.
            if req.query_param(field).is_some() {
                return Err(bad_request(&format!(
                    "duplicate '{field}': both a raw {direct_type} body and a '{field}' \
                     parameter were supplied; the protocol requires exactly one"
                )));
            }
            match String::from_utf8(req.body.clone()) {
                Ok(s) => Ok(s),
                Err(_) => Err(bad_request("statement body is not UTF-8")),
            }
        }
        Some("application/x-www-form-urlencoded") | None => {
            let Some(body) = std::str::from_utf8(&req.body).ok() else {
                return Err(bad_request("form body is not UTF-8"));
            };
            let Some(pairs) = super::parser::parse_urlencoded(body) else {
                return Err(bad_request("malformed form body"));
            };
            if let Some(r) = refuse_dataset_params(&pairs, forbidden) {
                return Err(r);
            }
            match exactly_one(req.query_pairs.iter().chain(pairs.iter()), field) {
                Err(r) => Err(r),
                Ok(Some(v)) => Ok(v),
                Ok(None) => Err(bad_request(&format!(
                    "missing required '{field}' form field"
                ))),
            }
        }
        Some(other) => {
            counter("ssdm_http_unsupported_media_total");
            Err(Routed::Immediate(Response::text(
                415,
                format!("unsupported media type '{other}'"),
            )))
        }
    }
}

/// Run one dispatched job against its tenant's engine. Called on a
/// worker thread; takes the engine lock per statement with the framed
/// server's panic-isolation contract (the evaluator holds no
/// cross-statement invariants over a panic edge, so recovering a
/// poisoned lock is sound). Tenants are resolved again here because
/// one may be evicted between admission and execution.
pub fn execute(exec: &Exec, registry: &TenantRegistry) -> Response {
    let rec = ssdm_obs::recorder();
    let start = Instant::now();
    let response = match exec {
        Exec::Metrics => Response::new(
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            registry.metrics_prometheus().into_bytes(),
        ),
        Exec::Stats { tenant } => match registry.resolve(tenant.as_deref()) {
            Ok(t) => Response::text(200, registry.stats_text(&t)),
            Err(why) => Response::text(why.http_status(), why.message()),
        },
        Exec::Query {
            tenant,
            statement,
            format,
        } => match registry.resolve(tenant.as_deref()) {
            Err(why) => Response::text(why.http_status(), why.message()),
            Ok(t) => match run_isolated(statement, t.engine()) {
                Ok(Ok(result)) => Response::new(
                    200,
                    format.content_type(),
                    results::serialize(&result, *format),
                ),
                Ok(Err(e)) => {
                    counter("ssdm_http_query_errors_total");
                    Response::text(400, e.to_string())
                }
                Err(what) => {
                    counter("ssdm_http_panics_total");
                    Response::text(
                        500,
                        format!("internal error: query engine panicked: {what}"),
                    )
                }
            },
        },
        Exec::Update { tenant, statement } => match registry.resolve(tenant.as_deref()) {
            Err(why) => Response::text(why.http_status(), why.message()),
            Ok(t) => match run_isolated(statement, t.engine()) {
                // The protocol leaves the success body open; report the
                // engine's mutation counts as plain text.
                Ok(Ok(scisparql::QueryResult::Updated { inserted, deleted })) => {
                    Response::text(200, format!("inserted {inserted} deleted {deleted}"))
                }
                Ok(Ok(_)) => Response::text(200, "ok"),
                Ok(Err(e)) => {
                    counter("ssdm_http_update_errors_total");
                    Response::text(400, e.to_string())
                }
                Err(what) => {
                    counter("ssdm_http_panics_total");
                    Response::text(
                        500,
                        format!("internal error: query engine panicked: {what}"),
                    )
                }
            },
        },
    };
    rec.histogram("ssdm_http_request_seconds")
        .observe(start.elapsed());
    response
}

type PanicMessage = String;

fn run_isolated(
    statement: &str,
    engine: &Mutex<Ssdm>,
) -> Result<Result<scisparql::QueryResult, scisparql::QueryError>, PanicMessage> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut db = engine.lock().unwrap_or_else(PoisonError::into_inner);
        db.query(statement)
    }))
    .map_err(|panic| {
        panic
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unknown panic".into())
    })
}

#[cfg(test)]
mod tests {
    use super::super::parser::{parse_request, Limits, Parsed};
    use super::*;

    fn parse(raw: &[u8]) -> Request {
        match parse_request(raw, &Limits::default()) {
            Parsed::Complete(r, _) => *r,
            other => panic!("{other:?}"),
        }
    }

    fn immediate(routed: Routed) -> Response {
        match routed {
            Routed::Immediate(r) => r,
            Routed::Dispatch { .. } => panic!("expected immediate response"),
        }
    }

    fn dispatched(routed: Routed) -> Exec {
        match routed {
            Routed::Dispatch { exec, .. } => exec,
            Routed::Immediate(r) => panic!("expected dispatch, got {} {:?}", r.status, r),
        }
    }

    #[test]
    fn get_query_routes_with_negotiated_format() {
        let req = parse(
            b"GET /query?query=SELECT%20%2A%20WHERE%20%7B%7D HTTP/1.1\r\nAccept: text/csv\r\n\r\n",
        );
        match dispatched(route(&req)) {
            Exec::Query {
                tenant,
                statement,
                format,
            } => {
                assert_eq!(tenant, None);
                assert_eq!(statement, "SELECT * WHERE {}");
                assert_eq!(format, ResultFormat::Csv);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn get_query_without_parameter_is_400() {
        let req = parse(b"GET /query HTTP/1.1\r\n\r\n");
        assert_eq!(immediate(route(&req)).status, 400);
    }

    #[test]
    fn post_query_accepts_form_and_raw_bodies() {
        let form = b"POST /query HTTP/1.1\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: 31\r\n\r\nquery=ASK%20%7B%7D&other=thing1";
        let req = parse(form);
        match dispatched(route(&req)) {
            Exec::Query { statement, .. } => assert_eq!(statement, "ASK {}"),
            other => panic!("{other:?}"),
        }
        let raw = b"POST /query HTTP/1.1\r\nContent-Type: application/sparql-query\r\nContent-Length: 6\r\n\r\nASK {}";
        let req = parse(raw);
        match dispatched(route(&req)) {
            Exec::Query { statement, .. } => assert_eq!(statement, "ASK {}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn post_query_wrong_media_type_is_415() {
        let req = parse(
            b"POST /query HTTP/1.1\r\nContent-Type: text/plain\r\nContent-Length: 6\r\n\r\nASK {}",
        );
        assert_eq!(immediate(route(&req)).status, 415);
    }

    #[test]
    fn update_on_query_endpoint_is_400_and_vice_versa() {
        let q = "INSERT%20DATA%20%7B%20%3Chttp%3A%2F%2Fs%3E%20%3Chttp%3A%2F%2Fp%3E%201%20%7D";
        let req = parse(format!("GET /query?query={q} HTTP/1.1\r\n\r\n").as_bytes());
        let resp = immediate(route(&req));
        assert_eq!(resp.status, 400);
        assert!(String::from_utf8_lossy(&resp.body).contains("/update"));

        let req = parse(
            b"POST /update HTTP/1.1\r\nContent-Type: application/sparql-update\r\nContent-Length: 6\r\n\r\nASK {}",
        );
        let resp = immediate(route(&req));
        assert_eq!(resp.status, 400);
        assert!(String::from_utf8_lossy(&resp.body).contains("/query"));
    }

    #[test]
    fn update_requires_post() {
        let req = parse(b"GET /update?update=x HTTP/1.1\r\n\r\n");
        let resp = immediate(route(&req));
        assert_eq!(resp.status, 405);
        assert!(resp
            .extra_headers
            .iter()
            .any(|(n, v)| *n == "Allow" && v == "POST"));
    }

    #[test]
    fn unacceptable_accept_is_406() {
        let req = parse(b"GET /query?query=ASK%7B%7D HTTP/1.1\r\nAccept: image/png\r\n\r\n");
        assert_eq!(immediate(route(&req)).status, 406);
    }

    #[test]
    fn unknown_path_is_404_and_health_is_immediate() {
        let req = parse(b"GET /nope HTTP/1.1\r\n\r\n");
        assert_eq!(immediate(route(&req)).status, 404);
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n");
        let resp = immediate(route(&req));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn metrics_route_dispatches() {
        let req = parse(b"GET /metrics HTTP/1.1\r\n\r\n");
        assert!(matches!(dispatched(route(&req)), Exec::Metrics));
        let req = parse(b"POST /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(immediate(route(&req)).status, 405);
    }

    #[test]
    fn tenant_paths_route_to_the_named_tenant() {
        let req = parse(b"GET /tenants/alice/query?query=ASK%7B%7D HTTP/1.1\r\n\r\n");
        match dispatched(route(&req)) {
            Exec::Query { tenant, .. } => assert_eq!(tenant.as_deref(), Some("alice")),
            other => panic!("{other:?}"),
        }
        let body = "INSERT DATA { <http://s> <http://p> 1 }";
        let raw = format!(
            "POST /tenants/bob/update HTTP/1.1\r\nContent-Type: application/sparql-update\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let req = parse(raw.as_bytes());
        match dispatched(route(&req)) {
            Exec::Update { tenant, .. } => assert_eq!(tenant.as_deref(), Some("bob")),
            other => panic!("{other:?}"),
        }
        let req = parse(b"GET /tenants/alice/stats HTTP/1.1\r\n\r\n");
        match dispatched(route(&req)) {
            Exec::Stats { tenant } => assert_eq!(tenant.as_deref(), Some("alice")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_tenant_paths_are_404() {
        for path in [
            "/tenants/alice",
            "/tenants//query",
            "/tenants/alice/metrics",
        ] {
            let req = parse(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes());
            assert_eq!(immediate(route(&req)).status, 404, "{path}");
        }
    }

    #[test]
    fn dataset_scope_parameters_are_refused_with_400() {
        let req =
            parse(b"GET /query?query=ASK%7B%7D&default-graph-uri=http%3A%2F%2Fg HTTP/1.1\r\n\r\n");
        let resp = immediate(route(&req));
        assert_eq!(resp.status, 400);
        assert!(String::from_utf8_lossy(&resp.body).contains("default-graph-uri"));

        let body = "update=CLEAR%20ALL&using-graph-uri=http%3A%2F%2Fg";
        let raw = format!(
            "POST /update HTTP/1.1\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let resp = immediate(route(&parse(raw.as_bytes())));
        assert_eq!(resp.status, 400);
        assert!(String::from_utf8_lossy(&resp.body).contains("using-graph-uri"));
    }

    #[test]
    fn duplicate_statement_parameters_are_refused_with_400() {
        // Two query= pairs on GET: first-wins would silently run one.
        let req = parse(b"GET /query?query=ASK%7B%7D&query=ASK%7B%7D HTTP/1.1\r\n\r\n");
        let resp = immediate(route(&req));
        assert_eq!(resp.status, 400);
        assert!(String::from_utf8_lossy(&resp.body).contains("exactly one"));

        // Two update= fields in a form body.
        let body = "update=CLEAR%20ALL&update=CLEAR%20ALL";
        let raw = format!(
            "POST /update HTTP/1.1\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let resp = immediate(route(&parse(raw.as_bytes())));
        assert_eq!(resp.status, 400);

        // A raw body plus a query= parameter in the query string.
        let raw = "POST /query?query=ASK%7B%7D HTTP/1.1\r\nContent-Type: application/sparql-query\r\nContent-Length: 6\r\n\r\nASK {}";
        let resp = immediate(route(&parse(raw.as_bytes())));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn parameterized_content_types_match_by_media_type() {
        let body = "query=ASK%20%7B%7D";
        let raw = format!(
            "POST /query HTTP/1.1\r\nContent-Type: application/x-www-form-urlencoded; charset=UTF-8\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        match dispatched(route(&parse(raw.as_bytes()))) {
            Exec::Query { statement, .. } => assert_eq!(statement, "ASK {}"),
            other => panic!("{other:?}"),
        }

        let raw = "POST /query HTTP/1.1\r\nContent-Type: application/sparql-query;charset=utf-8\r\nContent-Length: 6\r\n\r\nASK {}";
        match dispatched(route(&parse(raw.as_bytes()))) {
            Exec::Query { statement, .. } => assert_eq!(statement, "ASK {}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn response_encoding_carries_connection_header() {
        let resp = Response::text(200, "hi");
        let wire = String::from_utf8(resp.encode(true)).unwrap();
        assert!(wire.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(wire.contains("Connection: keep-alive\r\n"));
        assert!(wire.ends_with("\r\n\r\nhi\n"));
        let wire = String::from_utf8(resp.encode(false)).unwrap();
        assert!(wire.contains("Connection: close\r\n"));
    }

    #[test]
    fn head_requests_suppress_the_body_but_keep_length() {
        let mut resp = Response::text(200, "payload");
        resp.head_only = true;
        let wire = String::from_utf8(resp.encode(true)).unwrap();
        assert!(wire.contains("Content-Length: 8\r\n"));
        assert!(wire.ends_with("\r\n\r\n"));
    }

    #[test]
    fn execute_runs_queries_and_updates_against_an_engine() {
        let registry = TenantRegistry::new(
            crate::Ssdm::open(crate::Backend::Memory),
            crate::tenant::TenantQuotas::default(),
        );
        let update = Exec::Update {
            tenant: None,
            statement: "INSERT DATA { <http://s> <http://p> 41 }".into(),
        };
        let resp = execute(&update, &registry);
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8_lossy(&resp.body).contains("inserted 1"));

        let query = Exec::Query {
            tenant: None,
            statement: "SELECT ?o WHERE { <http://s> <http://p> ?o }".into(),
            format: ResultFormat::Json,
        };
        let resp = execute(&query, &registry);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "application/sparql-results+json");
        assert!(String::from_utf8_lossy(&resp.body).contains("\"41\""));

        let bad = Exec::Query {
            tenant: None,
            statement: "SELECT syntax error".into(),
            format: ResultFormat::Json,
        };
        assert_eq!(execute(&bad, &registry).status, 400);

        let metrics = execute(&Exec::Metrics, &registry);
        assert_eq!(metrics.status, 200);
        assert!(String::from_utf8_lossy(&metrics.body).contains("ssdm_"));
    }

    #[test]
    fn execute_routes_tenants_independently_and_404s_unknown_ones() {
        let registry = TenantRegistry::new(
            crate::Ssdm::open(crate::Backend::Memory),
            crate::tenant::TenantQuotas::default(),
        );
        registry
            .add(
                "alice",
                crate::Ssdm::open(crate::Backend::Memory),
                crate::tenant::TenantQuotas::default(),
            )
            .unwrap();

        let update = Exec::Update {
            tenant: Some("alice".into()),
            statement: "INSERT DATA { <http://s> <http://p> 7 }".into(),
        };
        assert_eq!(execute(&update, &registry).status, 200);

        // Alice sees her row; the default tenant does not.
        let ask = |tenant: Option<&str>| {
            let exec = Exec::Query {
                tenant: tenant.map(String::from),
                statement: "ASK { <http://s> <http://p> 7 }".into(),
                format: ResultFormat::Json,
            };
            String::from_utf8(execute(&exec, &registry).body).unwrap()
        };
        assert!(ask(Some("alice")).contains("true"));
        assert!(ask(None).contains("false"));

        let gone = Exec::Query {
            tenant: Some("nobody".into()),
            statement: "ASK {}".into(),
            format: ResultFormat::Json,
        };
        assert_eq!(execute(&gone, &registry).status, 404);
    }
}
