//! From-scratch HTTP/1.1 request parsing.
//!
//! Covers exactly what a SPARQL 1.1 Protocol endpoint needs: the
//! request line, header fields, `Content-Length` and chunked
//! transfer-coding bodies, percent-decoding of the request target, and
//! `application/x-www-form-urlencoded` body decoding. The parser is
//! restartable — it is re-run over the connection's receive buffer
//! until a full request is present — and every limit violation maps to
//! the HTTP status the peer should see.

use std::time::Duration;

/// Request methods the protocol endpoint distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Get,
    Head,
    Post,
    Other,
}

impl Method {
    fn parse(s: &str) -> Method {
        match s {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            _ => Method::Other,
        }
    }
}

/// Parser limits, all enforced before any allocation proportional to
/// the peer's claim.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Cap on the header block (request line + headers + CRLFCRLF).
    pub max_head_bytes: usize,
    /// Cap on the decoded body.
    pub max_body_bytes: usize,
    /// Cap on the number of header fields.
    pub max_headers: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 64 * 1024,
            max_body_bytes: 16 * 1024 * 1024,
            max_headers: 100,
        }
    }
}

/// A fully parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: Method,
    /// Percent-decoded path component of the target.
    pub path: String,
    /// Decoded `key=value` pairs of the target's query string.
    pub query_pairs: Vec<(String, String)>,
    /// Lower-cased header names with their values.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Whether the connection may carry further requests afterwards.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a (lower-case) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query-string value for a key.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query_pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The media type of the body, lower-cased, parameters stripped.
    pub fn content_type(&self) -> Option<String> {
        self.header("content-type").map(|v| {
            v.split(';')
                .next()
                .unwrap_or("")
                .trim()
                .to_ascii_lowercase()
        })
    }
}

/// A protocol error the peer should be told about (then dropped — after
/// a framing error the stream cannot be trusted).
#[derive(Debug, Clone)]
pub struct ParseError {
    pub status: u16,
    pub message: String,
}

impl ParseError {
    fn new(status: u16, message: impl Into<String>) -> ParseError {
        ParseError {
            status,
            message: message.into(),
        }
    }
}

/// What one parse attempt over the receive buffer produced.
#[derive(Debug)]
pub enum Parsed {
    /// Not enough bytes yet; `expects_continue` is set when a complete
    /// header block announced `Expect: 100-continue` and the body has
    /// not fully arrived (the server should send the interim response).
    Incomplete {
        expects_continue: bool,
    },
    /// One request plus how many buffer bytes it consumed.
    Complete(Box<Request>, usize),
    Error(ParseError),
}

/// Try to parse one request from the front of `buf`.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Parsed {
    // Locate the end of the header block.
    let head_end = match find_double_crlf(buf) {
        Some(i) => i,
        None => {
            if buf.len() > limits.max_head_bytes {
                return Parsed::Error(ParseError::new(431, "request header block too large"));
            }
            return Parsed::Incomplete {
                expects_continue: false,
            };
        }
    };
    if head_end > limits.max_head_bytes {
        return Parsed::Error(ParseError::new(431, "request header block too large"));
    }
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return Parsed::Error(ParseError::new(400, "request head is not UTF-8")),
    };
    let body_start = head_end + 4;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method_s, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() && !m.is_empty() && !t.is_empty() => {
            (m, t, v)
        }
        _ => return Parsed::Error(ParseError::new(400, "malformed request line")),
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Parsed::Error(ParseError::new(505, "HTTP version not supported")),
    };
    let method = Method::parse(method_s);

    // Headers.
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= limits.max_headers {
            return Parsed::Error(ParseError::new(431, "too many header fields"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Parsed::Error(ParseError::new(400, "malformed header field"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };

    // Keep-alive semantics: 1.1 defaults on, 1.0 defaults off.
    let connection = header("connection").unwrap_or("").to_ascii_lowercase();
    let keep_alive = if connection.split(',').any(|t| t.trim() == "close") {
        false
    } else if connection.split(',').any(|t| t.trim() == "keep-alive") {
        true
    } else {
        http11
    };
    let expects_continue = header("expect")
        .map(|v| v.eq_ignore_ascii_case("100-continue"))
        .unwrap_or(false);

    // Body framing.
    let chunked = header("transfer-encoding")
        .map(|v| v.to_ascii_lowercase().contains("chunked"))
        .unwrap_or(false);
    let (body, consumed) = if chunked {
        match parse_chunked(&buf[body_start..], limits) {
            ChunkedBody::Incomplete => return Parsed::Incomplete { expects_continue },
            ChunkedBody::Error(e) => return Parsed::Error(e),
            ChunkedBody::Complete(body, used) => (body, body_start + used),
        }
    } else if let Some(v) = header("content-length") {
        let Ok(len) = v.trim().parse::<usize>() else {
            return Parsed::Error(ParseError::new(400, "malformed Content-Length"));
        };
        if len > limits.max_body_bytes {
            return Parsed::Error(ParseError::new(413, "request body too large"));
        }
        if buf.len() < body_start + len {
            return Parsed::Incomplete { expects_continue };
        }
        (buf[body_start..body_start + len].to_vec(), body_start + len)
    } else {
        (Vec::new(), body_start)
    };

    // Decode the target.
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let Some(path) = percent_decode(raw_path, false) else {
        return Parsed::Error(ParseError::new(400, "malformed percent-encoding in path"));
    };
    let query_pairs = match raw_query {
        None => Vec::new(),
        Some(q) => match parse_urlencoded(q) {
            Some(pairs) => pairs,
            None => {
                return Parsed::Error(ParseError::new(400, "malformed query string"));
            }
        },
    };

    Parsed::Complete(
        Box::new(Request {
            method,
            path,
            query_pairs,
            headers,
            body,
            keep_alive,
        }),
        consumed,
    )
}

enum ChunkedBody {
    Incomplete,
    Complete(Vec<u8>, usize),
    Error(ParseError),
}

/// Decode a chunked transfer-coding body: `size-hex CRLF data CRLF`
/// repeated, terminated by a zero chunk and a trailer section we accept
/// but discard.
fn parse_chunked(buf: &[u8], limits: &Limits) -> ChunkedBody {
    let mut body = Vec::new();
    let mut pos = 0usize;
    loop {
        let Some(line_end) = find_crlf(&buf[pos..]) else {
            return ChunkedBody::Incomplete;
        };
        let size_line = &buf[pos..pos + line_end];
        let Some(size) = std::str::from_utf8(size_line)
            .ok()
            .map(|s| s.split(';').next().unwrap_or("").trim())
            .and_then(|s| usize::from_str_radix(s, 16).ok())
        else {
            return ChunkedBody::Error(ParseError::new(400, "malformed chunk size"));
        };
        pos += line_end + 2;
        if size == 0 {
            // Trailer section: zero or more header lines, then CRLF.
            loop {
                let Some(te) = find_crlf(&buf[pos..]) else {
                    return ChunkedBody::Incomplete;
                };
                pos += te + 2;
                if te == 0 {
                    return ChunkedBody::Complete(body, pos);
                }
            }
        }
        if body.len() + size > limits.max_body_bytes {
            return ChunkedBody::Error(ParseError::new(413, "request body too large"));
        }
        if buf.len() < pos + size + 2 {
            return ChunkedBody::Incomplete;
        }
        body.extend_from_slice(&buf[pos..pos + size]);
        if &buf[pos + size..pos + size + 2] != b"\r\n" {
            return ChunkedBody::Error(ParseError::new(400, "chunk data not CRLF-terminated"));
        }
        pos += size + 2;
    }
}

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Percent-decode a component; `plus_is_space` applies the form rule
/// (`+` → space). Returns `None` on truncated or non-hex escapes or
/// non-UTF-8 results.
pub fn percent_decode(s: &str, plus_is_space: bool) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let h = bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16))?;
                let l = bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16))?;
                out.push((h * 16 + l) as u8);
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Decode an `application/x-www-form-urlencoded` payload (also the
/// query-string syntax) into ordered pairs.
pub fn parse_urlencoded(s: &str) -> Option<Vec<(String, String)>> {
    let mut pairs = Vec::new();
    for piece in s.split('&') {
        if piece.is_empty() {
            continue;
        }
        let (k, v) = piece.split_once('=').unwrap_or((piece, ""));
        pairs.push((percent_decode(k, true)?, percent_decode(v, true)?));
    }
    Some(pairs)
}

/// Whether a complete header block at the front of `buf` is still
/// waiting for its body — used to answer `Expect: 100-continue` without
/// a full parse. Kept as a helper for the connection layer's timeout
/// decision: a conn with bytes but no complete request is "mid-request".
pub fn has_complete_head(buf: &[u8]) -> bool {
    find_double_crlf(buf).is_some()
}

/// Connection-layer defaults associated with parsing.
pub const DEFAULT_REQUEST_TIMEOUT: Duration = Duration::from_secs(30);

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(raw: &[u8]) -> (Request, usize) {
        match parse_request(raw, &Limits::default()) {
            Parsed::Complete(r, n) => (*r, n),
            other => panic!("expected complete request, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_with_query_string() {
        let raw =
            b"GET /query?query=SELECT%20%2A%20WHERE%20%7B%7D&x=a+b HTTP/1.1\r\nHost: h\r\n\r\n";
        let (req, used) = parse_ok(raw);
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/query");
        assert_eq!(req.query_param("query"), Some("SELECT * WHERE {}"));
        assert_eq!(req.query_param("x"), Some("a b"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(used, raw.len());
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let raw = b"POST /update HTTP/1.1\r\nContent-Type: application/sparql-update\r\nContent-Length: 5\r\n\r\nhello";
        let (req, used) = parse_ok(raw);
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"hello");
        assert_eq!(
            req.content_type().as_deref(),
            Some("application/sparql-update")
        );
        assert_eq!(used, raw.len());
    }

    #[test]
    fn parses_chunked_body_with_trailers() {
        let raw = b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nSELE\r\n3\r\nCT*\r\n0\r\nX-Trailer: v\r\n\r\n";
        let (req, used) = parse_ok(raw);
        assert_eq!(req.body, b"SELECT*");
        assert_eq!(used, raw.len());
    }

    #[test]
    fn pipelined_requests_consume_exactly_one() {
        let one = b"GET /metrics HTTP/1.1\r\n\r\n";
        let mut raw = one.to_vec();
        raw.extend_from_slice(b"GET /stats HTTP/1.1\r\n\r\n");
        let (req, used) = parse_ok(&raw);
        assert_eq!(req.path, "/metrics");
        assert_eq!(used, one.len());
        let (req2, _) = parse_ok(&raw[used..]);
        assert_eq!(req2.path, "/stats");
    }

    #[test]
    fn incomplete_returns_incomplete_and_flags_expect_continue() {
        match parse_request(b"POST /q HTTP/1.1\r\nContent-Le", &Limits::default()) {
            Parsed::Incomplete { expects_continue } => assert!(!expects_continue),
            other => panic!("{other:?}"),
        }
        let head = b"POST /q HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 10\r\n\r\nabc";
        match parse_request(head, &Limits::default()) {
            Parsed::Incomplete { expects_continue } => assert!(expects_continue),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn http10_defaults_to_close_and_connection_header_overrides() {
        let (req, _) = parse_ok(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive);
        let (req, _) = parse_ok(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(req.keep_alive);
        let (req, _) = parse_ok(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!req.keep_alive);
    }

    #[test]
    fn limit_violations_map_to_statuses() {
        let limits = Limits {
            max_head_bytes: 32,
            max_body_bytes: 4,
            max_headers: 2,
        };
        let long_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64));
        match parse_request(long_head.as_bytes(), &limits) {
            Parsed::Error(e) => assert_eq!(e.status, 431),
            other => panic!("{other:?}"),
        }
        let body_limits = Limits {
            max_head_bytes: 128,
            max_body_bytes: 4,
            max_headers: 10,
        };
        match parse_request(
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n",
            &body_limits,
        ) {
            Parsed::Error(e) => assert_eq!(e.status, 413),
            other => panic!("{other:?}"),
        }
        match parse_request(b"GET / HTTP/2\r\n\r\n", &Limits::default()) {
            Parsed::Error(e) => assert_eq!(e.status, 505),
            other => panic!("{other:?}"),
        }
        match parse_request(b"garbage\r\n\r\n", &Limits::default()) {
            Parsed::Error(e) => assert_eq!(e.status, 400),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn percent_decoding_rejects_bad_escapes() {
        assert_eq!(percent_decode("a%2Fb", false).as_deref(), Some("a/b"));
        assert_eq!(percent_decode("a%2", false), None);
        assert_eq!(percent_decode("a%zz", false), None);
        assert_eq!(percent_decode("a+b", true).as_deref(), Some("a b"));
        assert_eq!(percent_decode("a+b", false).as_deref(), Some("a+b"));
    }

    #[test]
    fn form_decoding_handles_empty_and_valueless_keys() {
        let pairs = parse_urlencoded("query=ASK%7B%7D&flag&x=").unwrap();
        assert_eq!(
            pairs,
            vec![
                ("query".into(), "ASK{}".into()),
                ("flag".into(), String::new()),
                ("x".into(), String::new()),
            ]
        );
    }
}
