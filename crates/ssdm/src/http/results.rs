//! SPARQL result serializers: JSON, XML, CSV, TSV.
//!
//! All four operate over [`QueryResult`] directly. Non-SELECT shapes
//! are lowered first: CONSTRUCT graphs become `?subject ?predicate
//! ?object` solutions, updates become a one-row `?inserted ?deleted`
//! table, and EXPLAIN text a one-column `?text` table — so every
//! format can carry every result kind.
//!
//! Mapping of SSDM-specific values: resident arrays and array proxies
//! serialize as literals typed `urn:ssdm:array` whose lexical form is
//! the SciSPARQL collection notation; closures as `urn:ssdm:closure`.

use scisparql::{QueryResult, Value};
use ssdm_array::Num;
use ssdm_rdf::Term;

use super::negotiate::ResultFormat;

const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
const SSDM_ARRAY: &str = "urn:ssdm:array";
const SSDM_CLOSURE: &str = "urn:ssdm:closure";

/// Serialize a result in the negotiated format.
pub fn serialize(result: &QueryResult, format: ResultFormat) -> Vec<u8> {
    let lowered = lower(result);
    let (vars, rows, boolean) = match &lowered {
        Lowered::Solutions { vars, rows } => (vars.as_slice(), rows.as_slice(), None),
        Lowered::Boolean(b) => (&[] as &[String], &[] as &[Vec<Option<Value>>], Some(*b)),
    };
    match format {
        ResultFormat::Json => to_json(vars, rows, boolean).into_bytes(),
        ResultFormat::Xml => to_xml(vars, rows, boolean).into_bytes(),
        ResultFormat::Csv => to_csv(vars, rows, boolean).into_bytes(),
        ResultFormat::Tsv => to_tsv(vars, rows, boolean).into_bytes(),
    }
}

enum Lowered {
    Solutions {
        vars: Vec<String>,
        rows: Vec<Vec<Option<Value>>>,
    },
    Boolean(bool),
}

/// Lower every result kind to a table or a boolean.
fn lower(result: &QueryResult) -> Lowered {
    match result {
        QueryResult::Solutions { vars, rows } => Lowered::Solutions {
            vars: vars.clone(),
            rows: rows.clone(),
        },
        QueryResult::Boolean(b) => Lowered::Boolean(*b),
        QueryResult::Graph(g) => {
            let vars = vec![
                "subject".to_string(),
                "predicate".to_string(),
                "object".to_string(),
            ];
            let rows = g
                .iter()
                .map(|t| {
                    vec![
                        Some(Value::Term(g.term(t.s).clone())),
                        Some(Value::Term(g.term(t.p).clone())),
                        Some(Value::Term(g.term(t.o).clone())),
                    ]
                })
                .collect();
            Lowered::Solutions { vars, rows }
        }
        QueryResult::Updated { inserted, deleted } => Lowered::Solutions {
            vars: vec!["inserted".to_string(), "deleted".to_string()],
            rows: vec![vec![
                Some(Value::integer(*inserted as i64)),
                Some(Value::integer(*deleted as i64)),
            ]],
        },
        QueryResult::Text(t) => Lowered::Solutions {
            vars: vec!["text".to_string()],
            rows: t
                .lines()
                .map(|l| vec![Some(Value::Term(Term::str(l)))])
                .collect(),
        },
    }
}

/// The (lexical form, term kind) decomposition every serializer needs.
enum Node {
    Uri(String),
    Bnode(String),
    /// value, optional language tag, optional datatype URI.
    Literal(String, Option<String>, Option<String>),
}

fn decompose(value: &Value) -> Node {
    match value {
        Value::Term(t) => match t {
            Term::Uri(u) => Node::Uri(u.clone()),
            Term::Blank(b) => Node::Bnode(b.clone()),
            Term::Str(s) => Node::Literal(s.clone(), None, None),
            Term::LangStr { value, lang } => Node::Literal(value.clone(), Some(lang.clone()), None),
            Term::Number(Num::Int(i)) => {
                Node::Literal(i.to_string(), None, Some(XSD_INTEGER.to_string()))
            }
            Term::Number(n @ Num::Real(_)) => {
                Node::Literal(n.to_string(), None, Some(XSD_DOUBLE.to_string()))
            }
            Term::Bool(b) => Node::Literal(b.to_string(), None, Some(XSD_BOOLEAN.to_string())),
            Term::Typed { value, datatype } => {
                Node::Literal(value.clone(), None, Some(datatype.clone()))
            }
            Term::Array(a) => Node::Literal(a.to_string(), None, Some(SSDM_ARRAY.to_string())),
            Term::ArrayRef(id) => {
                Node::Literal(format!("@array:{id}"), None, Some(SSDM_ARRAY.to_string()))
            }
        },
        Value::Proxy(_) => Node::Literal(value.to_string(), None, Some(SSDM_ARRAY.to_string())),
        Value::Closure(_) => Node::Literal(value.to_string(), None, Some(SSDM_CLOSURE.to_string())),
    }
}

// ---------------------------------------------------------------- JSON

/// Escape a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn to_json(vars: &[String], rows: &[Vec<Option<Value>>], boolean: Option<bool>) -> String {
    let mut out = String::new();
    out.push_str("{\"head\":{");
    if boolean.is_none() {
        out.push_str("\"vars\":[");
        for (i, v) in vars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json_escape(v)));
        }
        out.push(']');
    }
    out.push('}');
    if let Some(b) = boolean {
        out.push_str(&format!(",\"boolean\":{b}}}"));
        return out;
    }
    out.push_str(",\"results\":{\"bindings\":[");
    for (ri, row) in rows.iter().enumerate() {
        if ri > 0 {
            out.push(',');
        }
        out.push('{');
        let mut first = true;
        for (var, cell) in vars.iter().zip(row.iter()) {
            let Some(value) = cell else { continue };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":", json_escape(var)));
            match decompose(value) {
                Node::Uri(u) => {
                    out.push_str(&format!(
                        "{{\"type\":\"uri\",\"value\":\"{}\"}}",
                        json_escape(&u)
                    ));
                }
                Node::Bnode(b) => {
                    out.push_str(&format!(
                        "{{\"type\":\"bnode\",\"value\":\"{}\"}}",
                        json_escape(&b)
                    ));
                }
                Node::Literal(v, lang, dt) => {
                    out.push_str(&format!(
                        "{{\"type\":\"literal\",\"value\":\"{}\"",
                        json_escape(&v)
                    ));
                    if let Some(lang) = lang {
                        out.push_str(&format!(",\"xml:lang\":\"{}\"", json_escape(&lang)));
                    }
                    if let Some(dt) = dt {
                        out.push_str(&format!(",\"datatype\":\"{}\"", json_escape(&dt)));
                    }
                    out.push('}');
                }
            }
        }
        out.push('}');
    }
    out.push_str("]}}");
    out
}

// ----------------------------------------------------------------- XML

/// Escape a string for XML text content or attribute values.
fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

fn to_xml(vars: &[String], rows: &[Vec<Option<Value>>], boolean: Option<bool>) -> String {
    let mut out = String::from(
        "<?xml version=\"1.0\"?>\n<sparql xmlns=\"http://www.w3.org/2005/sparql-results#\">\n",
    );
    out.push_str("  <head>\n");
    if boolean.is_none() {
        for v in vars {
            out.push_str(&format!("    <variable name=\"{}\"/>\n", xml_escape(v)));
        }
    }
    out.push_str("  </head>\n");
    if let Some(b) = boolean {
        out.push_str(&format!("  <boolean>{b}</boolean>\n</sparql>\n"));
        return out;
    }
    out.push_str("  <results>\n");
    for row in rows {
        out.push_str("    <result>\n");
        for (var, cell) in vars.iter().zip(row.iter()) {
            let Some(value) = cell else { continue };
            out.push_str(&format!("      <binding name=\"{}\">", xml_escape(var)));
            match decompose(value) {
                Node::Uri(u) => out.push_str(&format!("<uri>{}</uri>", xml_escape(&u))),
                Node::Bnode(b) => out.push_str(&format!("<bnode>{}</bnode>", xml_escape(&b))),
                Node::Literal(v, lang, dt) => {
                    out.push_str("<literal");
                    if let Some(lang) = lang {
                        out.push_str(&format!(" xml:lang=\"{}\"", xml_escape(&lang)));
                    }
                    if let Some(dt) = dt {
                        out.push_str(&format!(" datatype=\"{}\"", xml_escape(&dt)));
                    }
                    out.push_str(&format!(">{}</literal>", xml_escape(&v)));
                }
            }
            out.push_str("</binding>\n");
        }
        out.push_str("    </result>\n");
    }
    out.push_str("  </results>\n</sparql>\n");
    out
}

// ----------------------------------------------------------------- CSV

/// RFC 4180 quoting: wrap in double quotes when the field contains a
/// comma, quote, CR, or LF; embedded quotes double.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// CSV serializes bare lexical forms (SPARQL 1.1 Query Results CSV
/// format): IRIs without brackets, literals without quotes or type
/// annotations. A boolean result becomes a one-column table.
fn to_csv(vars: &[String], rows: &[Vec<Option<Value>>], boolean: Option<bool>) -> String {
    if let Some(b) = boolean {
        return format!("boolean\r\n{b}\r\n");
    }
    let mut out = String::new();
    out.push_str(
        &vars
            .iter()
            .map(|v| csv_field(v))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push_str("\r\n");
    for row in rows {
        let cells: Vec<String> = vars
            .iter()
            .zip(row.iter())
            .map(|(_, cell)| match cell {
                None => String::new(),
                Some(value) => match decompose(value) {
                    Node::Uri(u) => csv_field(&u),
                    Node::Bnode(b) => csv_field(&format!("_:{b}")),
                    Node::Literal(v, _, _) => csv_field(&v),
                },
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push_str("\r\n");
    }
    out
}

// ----------------------------------------------------------------- TSV

/// TSV serializes full SPARQL syntax (the Query Results TSV format):
/// `<iri>`, `"literal"@lang`, `"lex"^^<dt>`, numbers bare. [`Term`]'s
/// `Display` already produces exactly this, with tabs and newlines
/// escaped inside literals.
fn to_tsv(vars: &[String], rows: &[Vec<Option<Value>>], boolean: Option<bool>) -> String {
    if let Some(b) = boolean {
        return format!("?boolean\n{b}\n");
    }
    let mut out = String::new();
    out.push_str(
        &vars
            .iter()
            .map(|v| format!("?{v}"))
            .collect::<Vec<_>>()
            .join("\t"),
    );
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = vars
            .iter()
            .zip(row.iter())
            .map(|(_, cell)| match cell {
                None => String::new(),
                Some(value) => value.to_string(),
            })
            .collect();
        out.push_str(&cells.join("\t"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdm_array::NumArray;

    fn solutions(vars: &[&str], rows: Vec<Vec<Option<Value>>>) -> QueryResult {
        QueryResult::Solutions {
            vars: vars.iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    fn text_of(result: &QueryResult, format: ResultFormat) -> String {
        String::from_utf8(serialize(result, format)).unwrap()
    }

    #[test]
    fn json_typed_and_lang_literals() {
        let r = solutions(
            &["a", "b", "c", "d"],
            vec![vec![
                Some(Value::Term(Term::LangStr {
                    value: "chat".into(),
                    lang: "fr".into(),
                })),
                Some(Value::Term(Term::Typed {
                    value: "2024-01-01".into(),
                    datatype: "http://www.w3.org/2001/XMLSchema#date".into(),
                })),
                Some(Value::integer(42)),
                Some(Value::double(2.5)),
            ]],
        );
        let json = text_of(&r, ResultFormat::Json);
        assert!(json.contains(r#""a":{"type":"literal","value":"chat","xml:lang":"fr"}"#));
        assert!(json.contains(
            r#""b":{"type":"literal","value":"2024-01-01","datatype":"http://www.w3.org/2001/XMLSchema#date"}"#
        ));
        assert!(json.contains(
            r#""c":{"type":"literal","value":"42","datatype":"http://www.w3.org/2001/XMLSchema#integer"}"#
        ));
        assert!(json.contains(
            r#""d":{"type":"literal","value":"2.5","datatype":"http://www.w3.org/2001/XMLSchema#double"}"#
        ));
    }

    #[test]
    fn json_unbound_variables_are_omitted() {
        let r = solutions(
            &["x", "y"],
            vec![vec![Some(Value::Term(Term::uri("http://e/s"))), None]],
        );
        let json = text_of(&r, ResultFormat::Json);
        assert!(json.contains(r#""head":{"vars":["x","y"]}"#));
        assert!(json.contains(r#"{"x":{"type":"uri","value":"http://e/s"}}"#));
        assert!(!json.contains("\"y\":"));
    }

    #[test]
    fn json_escapes_quotes_and_control_chars() {
        let r = solutions(
            &["s"],
            vec![vec![Some(Value::Term(Term::str("a\"b\\c\nd\u{1}e")))]],
        );
        let json = text_of(&r, ResultFormat::Json);
        assert!(json.contains(r#""value":"a\"b\\c\nd\u0001e""#));
    }

    #[test]
    fn json_boolean_and_empty_results() {
        assert_eq!(
            text_of(&QueryResult::Boolean(true), ResultFormat::Json),
            r#"{"head":{},"boolean":true}"#
        );
        let empty = solutions(&["x"], vec![]);
        assert_eq!(
            text_of(&empty, ResultFormat::Json),
            r#"{"head":{"vars":["x"]},"results":{"bindings":[]}}"#
        );
    }

    #[test]
    fn json_array_values_as_typed_literals() {
        let r = solutions(
            &["a"],
            vec![vec![Some(Value::Term(Term::Array(NumArray::from_i64(
                vec![1, 2, 3],
            ))))]],
        );
        let json = text_of(&r, ResultFormat::Json);
        assert!(json.contains(r#""datatype":"urn:ssdm:array""#));
        assert!(json.contains("(1 2 3)"));
    }

    #[test]
    fn xml_structure_and_escaping() {
        let r = solutions(
            &["iri", "lit"],
            vec![vec![
                Some(Value::Term(Term::uri("http://e/a?x=1&y=<2>"))),
                Some(Value::Term(Term::LangStr {
                    value: "a<b>&c".into(),
                    lang: "en".into(),
                })),
            ]],
        );
        let xml = text_of(&r, ResultFormat::Xml);
        assert!(xml.starts_with("<?xml version=\"1.0\"?>"));
        assert!(xml.contains(r#"<sparql xmlns="http://www.w3.org/2005/sparql-results#">"#));
        assert!(xml.contains(r#"<variable name="iri"/>"#));
        assert!(xml.contains("<uri>http://e/a?x=1&amp;y=&lt;2&gt;</uri>"));
        assert!(xml.contains(r#"<literal xml:lang="en">a&lt;b&gt;&amp;c</literal>"#));
    }

    #[test]
    fn xml_boolean_unbound_and_bnode() {
        let xml = text_of(&QueryResult::Boolean(false), ResultFormat::Xml);
        assert!(xml.contains("<boolean>false</boolean>"));
        assert!(!xml.contains("<results>"));

        let r = solutions(
            &["x", "y"],
            vec![vec![Some(Value::Term(Term::Blank("b0".into()))), None]],
        );
        let xml = text_of(&r, ResultFormat::Xml);
        assert!(xml.contains(r#"<binding name="x"><bnode>b0</bnode></binding>"#));
        assert!(!xml.contains(r#"<binding name="y">"#));
    }

    #[test]
    fn csv_bare_lexical_forms_and_quoting() {
        let r = solutions(
            &["iri", "s", "n"],
            vec![vec![
                Some(Value::Term(Term::uri("http://e/s"))),
                Some(Value::Term(Term::str("a,b \"quoted\"\nline"))),
                Some(Value::integer(7)),
            ]],
        );
        let csv = text_of(&r, ResultFormat::Csv);
        assert_eq!(csv.lines().next(), Some("iri,s,n"));
        assert!(csv.contains("http://e/s,\"a,b \"\"quoted\"\"\nline\",7"));
        assert!(csv.ends_with("\r\n"));
    }

    #[test]
    fn csv_unbound_is_empty_field() {
        let r = solutions(
            &["x", "y", "z"],
            vec![vec![None, Some(Value::integer(1)), None]],
        );
        let csv = text_of(&r, ResultFormat::Csv);
        assert!(csv.contains(",1,"));
    }

    #[test]
    fn tsv_full_sparql_syntax() {
        let r = solutions(
            &["iri", "lang", "typed", "n"],
            vec![vec![
                Some(Value::Term(Term::uri("http://e/s"))),
                Some(Value::Term(Term::LangStr {
                    value: "x".into(),
                    lang: "en".into(),
                })),
                Some(Value::Term(Term::Typed {
                    value: "v".into(),
                    datatype: "http://e/dt".into(),
                })),
                Some(Value::double(1.0)),
            ]],
        );
        let tsv = text_of(&r, ResultFormat::Tsv);
        let mut lines = tsv.lines();
        assert_eq!(lines.next(), Some("?iri\t?lang\t?typed\t?n"));
        assert_eq!(
            lines.next(),
            Some("<http://e/s>\t\"x\"@en\t\"v\"^^<http://e/dt>\t1.0")
        );
    }

    #[test]
    fn tsv_escapes_tabs_in_literals() {
        let r = solutions(&["s"], vec![vec![Some(Value::Term(Term::str("a\tb")))]]);
        let tsv = text_of(&r, ResultFormat::Tsv);
        assert!(tsv.contains("\"a\\tb\""));
    }

    #[test]
    fn graph_results_lower_to_spo_solutions() {
        let mut g = ssdm_rdf::Graph::new();
        ssdm_rdf::turtle::parse_into(&mut g, r#"<http://s> <http://p> "o" ."#).unwrap();
        let r = QueryResult::Graph(g);
        let json = text_of(&r, ResultFormat::Json);
        assert!(json.contains(r#""vars":["subject","predicate","object"]"#));
        assert!(json.contains(r#""subject":{"type":"uri","value":"http://s"}"#));
        let csv = text_of(&r, ResultFormat::Csv);
        assert_eq!(csv.lines().next(), Some("subject,predicate,object"));
    }

    #[test]
    fn update_and_text_results_lower_to_tables() {
        let r = QueryResult::Updated {
            inserted: 3,
            deleted: 1,
        };
        let csv = text_of(&r, ResultFormat::Csv);
        assert_eq!(csv, "inserted,deleted\r\n3,1\r\n");

        let r = QueryResult::Text("plan\nscan".into());
        let tsv = text_of(&r, ResultFormat::Tsv);
        assert_eq!(tsv, "?text\n\"plan\"\n\"scan\"\n");
    }

    #[test]
    fn all_formats_handle_empty_result_sets() {
        let empty = solutions(&[], vec![]);
        assert_eq!(
            text_of(&empty, ResultFormat::Json),
            r#"{"head":{"vars":[]},"results":{"bindings":[]}}"#
        );
        let xml = text_of(&empty, ResultFormat::Xml);
        assert!(xml.contains("<results>\n  </results>"));
        assert_eq!(text_of(&empty, ResultFormat::Csv), "\r\n");
        assert_eq!(text_of(&empty, ResultFormat::Tsv), "\n");
    }
}
