//! Per-connection state for the HTTP event loop.
//!
//! A [`Conn`] owns one nonblocking socket plus its receive buffer,
//! transmit buffer, and the reorder window that keeps pipelined
//! responses in request order: each parsed request gets a sequence
//! number, workers complete them in any order, and completed responses
//! are promoted to the transmit buffer only when every earlier sequence
//! has been promoted first.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use super::parser::{self, Limits, Parsed};
use super::router::{self, Response, Routed};

/// Cap on requests a single connection may have in flight at once;
/// beyond it, pipelined bytes wait in the receive buffer.
pub const MAX_PIPELINE: usize = 32;

/// A parsed request handed to the reactor for worker dispatch.
pub struct Dispatch {
    pub seq: u64,
    pub exec: router::Exec,
    pub head_only: bool,
    pub keep_alive: bool,
}

/// What `flush` left behind.
#[derive(Debug, PartialEq, Eq)]
pub enum FlushState {
    /// Everything promoted so far is on the wire.
    Drained,
    /// The socket would block; keep write interest registered.
    Blocked,
    /// The connection is finished (close-after-flush completed or the
    /// peer vanished) and should be deregistered and dropped.
    Closed,
}

pub struct Conn {
    pub stream: TcpStream,
    pub token: u64,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Completed responses waiting on earlier sequences: seq →
    /// (encoded bytes, close-after flag).
    ready: BTreeMap<u64, (Vec<u8>, bool)>,
    /// Sequence the next parsed request receives.
    next_seq: u64,
    /// Sequence the next promoted response must carry.
    flush_seq: u64,
    /// Requests dispatched to workers and not yet completed.
    pub inflight: usize,
    pub last_activity: Instant,
    /// Stop reading; close once the transmit buffer drains.
    close_after_flush: bool,
    peer_closed: bool,
    /// `Expect: 100-continue` answered already for the request
    /// currently accumulating.
    sent_continue: bool,
}

impl Conn {
    pub fn new(stream: TcpStream, token: u64) -> Conn {
        Conn {
            stream,
            token,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            ready: BTreeMap::new(),
            next_seq: 0,
            flush_seq: 0,
            inflight: 0,
            last_activity: Instant::now(),
            close_after_flush: false,
            peer_closed: false,
            sent_continue: false,
        }
    }

    /// Nothing pending in either direction — safe to close during a
    /// drain without cutting off an answered request.
    pub fn is_idle(&self) -> bool {
        self.inflight == 0 && self.ready.is_empty() && self.wbuf.len() == self.wpos
    }

    /// Bytes buffered but not yet forming a complete request — the
    /// peer is mid-request (relevant for drain-deadline decisions).
    pub fn mid_request(&self) -> bool {
        !self.rbuf.is_empty() && self.inflight == 0 && self.ready.is_empty()
    }

    pub fn wants_write(&self) -> bool {
        self.wbuf.len() > self.wpos
    }

    /// Read everything currently available. Returns `false` when the
    /// peer closed its write side (pending responses still flush).
    pub fn fill(&mut self, max_buffered: usize) -> io::Result<bool> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if self.rbuf.len() >= max_buffered {
                // Backpressure: stop reading until the pipeline drains.
                return Ok(!self.peer_closed);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                    return Ok(false);
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(true),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Parse as many buffered requests as the pipeline window allows.
    /// Immediate responses are completed in place; engine work comes
    /// back as [`Dispatch`] entries for the reactor.
    pub fn drain_input(&mut self, limits: &Limits) -> Vec<Dispatch> {
        let mut jobs = Vec::new();
        while !self.close_after_flush
            && !self.rbuf.is_empty()
            && self.inflight + self.ready.len() < MAX_PIPELINE
        {
            match parser::parse_request(&self.rbuf, limits) {
                Parsed::Incomplete { expects_continue } => {
                    if expects_continue && !self.sent_continue {
                        self.sent_continue = true;
                        self.wbuf
                            .extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                    }
                    if self.peer_closed {
                        // A torso with no more bytes coming: give up.
                        self.close_after_flush = true;
                    }
                    break;
                }
                Parsed::Error(e) => {
                    // Framing is broken; answer once and close.
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    let resp = Response::text(e.status, e.message);
                    self.complete(seq, resp.encode(false), true);
                    self.rbuf.clear();
                    break;
                }
                Parsed::Complete(req, consumed) => {
                    self.rbuf.drain(..consumed);
                    self.sent_continue = false;
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    let keep_alive = req.keep_alive;
                    if !keep_alive {
                        // No further requests will be answered; stop
                        // parsing whatever was pipelined behind.
                        self.close_after_flush = true;
                    }
                    match router::route(&req) {
                        Routed::Immediate(resp) => {
                            self.complete(seq, resp.encode(keep_alive), !keep_alive);
                        }
                        Routed::Dispatch { exec, head_only } => {
                            self.inflight += 1;
                            jobs.push(Dispatch {
                                seq,
                                exec,
                                head_only,
                                keep_alive,
                            });
                        }
                    }
                }
            }
        }
        jobs
    }

    /// Record a finished response; promotes every response whose turn
    /// has come into the transmit buffer.
    pub fn complete(&mut self, seq: u64, encoded: Vec<u8>, close: bool) {
        self.ready.insert(seq, (encoded, close));
        while let Some((bytes, close)) = self.ready.remove(&self.flush_seq) {
            self.flush_seq += 1;
            self.wbuf.extend_from_slice(&bytes);
            if close {
                self.close_after_flush = true;
            }
        }
    }

    /// Like [`Conn::complete`] for worker results (which decrement the
    /// in-flight count).
    pub fn complete_inflight(&mut self, seq: u64, encoded: Vec<u8>, close: bool) {
        self.inflight = self.inflight.saturating_sub(1);
        self.complete(seq, encoded, close);
    }

    /// Write buffered bytes until the socket blocks or the buffer
    /// empties.
    pub fn flush(&mut self) -> FlushState {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return FlushState::Closed,
                Ok(n) => {
                    self.wpos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return FlushState::Blocked,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return FlushState::Closed,
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        if self.close_after_flush && self.ready.is_empty() && self.inflight == 0 {
            return FlushState::Closed;
        }
        if self.peer_closed && self.is_idle() {
            return FlushState::Closed;
        }
        FlushState::Drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (server, client)
    }

    #[test]
    fn pipelined_responses_flush_in_request_order() {
        let (server, mut client) = pair();
        let mut conn = Conn::new(server, 7);
        client
            .write_all(b"GET /metrics HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n")
            .unwrap();
        // Let the bytes arrive.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(conn.fill(1 << 20).unwrap());
        let jobs = conn.drain_input(&Limits::default());
        assert_eq!(jobs.len(), 2);
        assert_eq!(conn.inflight, 2);

        // Complete out of order: seq 1 first must not reach the wire
        // before seq 0.
        conn.complete_inflight(jobs[1].seq, b"SECOND".to_vec(), false);
        assert!(!conn.wants_write(), "seq 1 held back until seq 0 lands");
        conn.complete_inflight(jobs[0].seq, b"FIRST".to_vec(), false);
        assert_eq!(conn.flush(), FlushState::Drained);

        client.set_nonblocking(false).unwrap();
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let mut out = [0u8; 64];
        let n = client.read(&mut out).unwrap();
        assert_eq!(&out[..n], b"FIRSTSECOND");
    }

    #[test]
    fn connection_close_request_stops_the_pipeline() {
        let (server, mut client) = pair();
        let mut conn = Conn::new(server, 1);
        client
            .write_all(
                b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\nGET /stats HTTP/1.1\r\n\r\n",
            )
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        conn.fill(1 << 20).unwrap();
        let jobs = conn.drain_input(&Limits::default());
        assert_eq!(jobs.len(), 1, "nothing behind a Connection: close parses");
        conn.complete_inflight(jobs[0].seq, b"BYE".to_vec(), true);
        assert_eq!(conn.flush(), FlushState::Closed);
    }

    #[test]
    fn malformed_request_answers_then_closes() {
        let (server, mut client) = pair();
        let mut conn = Conn::new(server, 1);
        client.write_all(b"garbage\r\n\r\n").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        conn.fill(1 << 20).unwrap();
        let jobs = conn.drain_input(&Limits::default());
        assert!(jobs.is_empty());
        assert!(conn.wants_write());
        assert_eq!(conn.flush(), FlushState::Closed);
        drop(conn); // the reactor would deregister and drop it here
        client.set_nonblocking(false).unwrap();
        let mut out = Vec::new();
        client.read_to_end(&mut out).unwrap();
        assert!(String::from_utf8_lossy(&out).starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn expect_continue_gets_the_interim_response_once() {
        let (server, mut client) = pair();
        let mut conn = Conn::new(server, 1);
        client
            .write_all(b"POST /query HTTP/1.1\r\nExpect: 100-continue\r\nContent-Type: application/sparql-query\r\nContent-Length: 6\r\n\r\n")
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        conn.fill(1 << 20).unwrap();
        assert!(conn.drain_input(&Limits::default()).is_empty());
        assert!(conn.wants_write(), "100 Continue queued");
        assert_eq!(conn.flush(), FlushState::Drained);
        // A second parse attempt must not repeat the interim response.
        assert!(conn.drain_input(&Limits::default()).is_empty());
        assert!(!conn.wants_write());
        // Body arrives; the request dispatches.
        client.write_all(b"ASK {}").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        conn.fill(1 << 20).unwrap();
        assert_eq!(conn.drain_input(&Limits::default()).len(), 1);
    }
}
