//! HTTP front end: the SPARQL 1.1 Protocol over a readiness-based
//! nonblocking server core.
//!
//! The framed protocol of [`crate::server`] pins one worker thread per
//! active connection — fine for a lab, not for thousands of mostly-idle
//! HTTP clients. This subsystem decouples the two: a single **reactor**
//! thread owns every connection (accept, parse, flush) on top of a raw
//! epoll surface ([`sys`]), and only actual engine work crosses to the
//! bounded worker pool. Thousands of idle keep-alive connections then
//! cost file descriptors, not threads.
//!
//! * [`parser`] — restartable HTTP/1.1 request parsing;
//! * [`negotiate`] — Accept-header selection of the result format;
//! * [`results`] — SPARQL JSON / XML / CSV / TSV serializers;
//! * [`router`] — protocol routing and engine execution;
//! * [`conn`] — per-connection buffers and pipelined response order;
//! * [`sys`] — the epoll/signalfd syscall layer.
//!
//! # Multi-tenancy, admission control, and back-pressure
//!
//! Requests resolve against a [`TenantRegistry`]: `/query` and
//! `/update` serve the default tenant, `/tenants/<id>/query|update`
//! the named one (404 for unknown tenants). Admission happens in the
//! reactor before any queueing: a tenant over its req/s token bucket
//! gets a flat `429`, one at its in-flight quota a `429`, and a full
//! server-wide queue a `503` — instead of piling up unbounded. Queued
//! work feeds the worker pool through a deficit-round-robin
//! [`FairDispatch`] keyed on the tenant (replacing the old FIFO
//! channel), so one tenant's burst cannot starve another's interactive
//! queries. A worker also re-checks how long the job waited in the
//! queue and answers `503` past [`HttpConfig::request_timeout`].
//! Beyond [`HttpConfig::max_connections`] concurrent sockets, new
//! arrivals get a one-line `503` and are closed.
//!
//! # Graceful drain
//!
//! Shutdown (a [`ShutdownHandle`], or SIGTERM via an installed signal
//! fd) reuses the framed server's [`DrainState`] semantics: accepting
//! stops, idle connections close immediately, in-flight requests finish
//! and flush, and anything still open when the drain deadline passes is
//! dropped.

pub mod conn;
pub mod negotiate;
pub mod parser;
pub mod results;
pub mod router;
pub mod sys;

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::server::DrainState;
use crate::tenant::{FairDispatch, Tenant, TenantQuotas, TenantRegistry, DEFAULT_QUANTUM};
use crate::Ssdm;

use conn::{Conn, FlushState};
use parser::Limits;
use router::{Exec, Response};
use sys::{Interest, Poller};

pub use negotiate::ResultFormat as Format;
pub use sys::native_event_loop;

/// SIGTERM / SIGINT numbers for [`prepare_signal_drain`].
pub const SIGINT: i32 = 2;
pub const SIGTERM: i32 = 15;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_SIGNAL: u64 = 2;
const FIRST_CONN_TOKEN: u64 = 16;

/// Knobs of the HTTP front end.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Query-execution worker threads (minimum 1). Connections do not
    /// consume workers; only in-flight requests do.
    pub workers: usize,
    /// Concurrent sockets; arrivals beyond this are answered 503.
    pub max_connections: usize,
    /// Dispatch-queue bound: requests beyond `workers` executing plus
    /// this many waiting are answered 503 (admission control).
    pub queue_depth: usize,
    /// Close keep-alive connections idle longer than this.
    pub idle_timeout: Duration,
    /// Bound on queue wait per request; exceeded jobs answer 503
    /// without touching the engine.
    pub request_timeout: Duration,
    /// Graceful-drain bound on shutdown, as in the framed server.
    pub drain_timeout: Duration,
    /// HTTP parse limits.
    pub limits: Limits,
    /// Per-connection receive-buffer cap; reading pauses beyond it
    /// until the pipeline drains (back-pressure).
    pub max_buffered: usize,
    /// A signalfd from [`prepare_signal_drain`]: when readable the
    /// server begins its graceful drain. `None` disables signal-driven
    /// shutdown (the [`ShutdownHandle`] still works).
    pub signal_fd: Option<std::os::fd::RawFd>,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            workers: 4,
            max_connections: 4096,
            queue_depth: 64,
            idle_timeout: Duration::from_secs(60),
            request_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
            limits: Limits::default(),
            max_buffered: 1 << 20,
            signal_fd: None,
        }
    }
}

/// Block `signals` on the calling thread (spawn threads only *after*
/// this so they inherit the mask) and return a signalfd to pass as
/// [`HttpConfig::signal_fd`]. Linux-only; other platforms get an error
/// and fall back to default signal disposition.
pub fn prepare_signal_drain(signals: &[i32]) -> std::io::Result<std::os::fd::RawFd> {
    sys::signal_fd(signals)
}

/// Raise the process's soft open-file limit toward `target` (clamped
/// to the hard limit); a no-op returning 0 off Linux. The event loop
/// holds one fd per connection, so serving thousands of keep-alive
/// clients needs more than the common 1024 default.
pub fn raise_nofile_limit(target: u64) -> std::io::Result<u64> {
    sys::raise_nofile_limit(target)
}

/// Orders the reactor to begin its graceful drain from another thread.
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    waker: TcpStream,
}

impl ShutdownHandle {
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        let _ = (&self.waker).write(&[1]);
    }
}

/// A bound, not-yet-serving HTTP front end.
pub struct HttpServer {
    listener: TcpListener,
    config: HttpConfig,
    shutdown: Arc<AtomicBool>,
    waker_rx: TcpStream,
    waker_tx: TcpStream,
}

/// A worker-completed response on its way back to the reactor.
struct Done {
    token: u64,
    seq: u64,
    encoded: Vec<u8>,
    close: bool,
}

/// One unit of engine work queued to the pool.
struct Job {
    token: u64,
    seq: u64,
    exec: Exec,
    head_only: bool,
    keep_alive: bool,
    enqueued: Instant,
    /// The admitted tenant (resolved in the reactor), for outcome
    /// counters.
    tenant: Arc<Tenant>,
}

/// Loopback byte-pipe used to wake the reactor out of `epoll_wait`
/// from worker threads and shutdown handles.
fn waker_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let tx = TcpStream::connect(addr)?;
    let (rx, _) = listener.accept()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((rx, tx))
}

impl HttpServer {
    pub fn bind(addr: impl ToSocketAddrs, config: HttpConfig) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let (waker_rx, waker_tx) = waker_pair()?;
        Ok(HttpServer {
            listener,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            waker_rx,
            waker_tx,
        })
    }

    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            waker: self.waker_tx.try_clone()?,
        })
    }

    /// [`HttpServer::serve_registry`] over a single default tenant
    /// sharing `engine` — the single-tenant deployment shape, kept for
    /// embedders.
    pub fn serve(self, engine: Arc<Mutex<Ssdm>>) -> std::io::Result<()> {
        self.serve_registry(Arc::new(TenantRegistry::from_shared(
            engine,
            TenantQuotas::default(),
        )))
    }

    /// Run the reactor on the calling thread with the worker pool
    /// around it, serving every tenant in `registry`; returns after a
    /// graceful drain (handle, signal, or worker-pool loss).
    pub fn serve_registry(self, registry: Arc<TenantRegistry>) -> std::io::Result<()> {
        let HttpServer {
            listener,
            config,
            shutdown,
            waker_rx,
            waker_tx,
        } = self;
        // Best effort: the fd budget should cover the connection cap.
        let _ = sys::raise_nofile_limit(config.max_connections as u64 * 2 + 64);
        let workers = config.workers.max(1);
        // DRR-ordered dispatch replacing the old FIFO sync_channel: the
        // queue_depth bound becomes the server-wide cap, per-tenant
        // caps ride each push.
        let dispatch: Arc<FairDispatch<Job>> = Arc::new(FairDispatch::new(
            DEFAULT_QUANTUM,
            config.queue_depth.max(1),
        ));
        let done: Arc<Mutex<Vec<Done>>> = Arc::new(Mutex::new(Vec::new()));
        let request_timeout = config.request_timeout;

        let worker_done = Arc::clone(&done);
        let worker_registry = Arc::clone(&registry);
        let worker_dispatch = Arc::clone(&dispatch);
        let reactor_dispatch = Arc::clone(&dispatch);
        ssdm_array::pool::run_scoped(
            workers,
            || {
                while let Some((tenant_name, job)) = worker_dispatch.pop() {
                    let mut response = if job.enqueued.elapsed() > request_timeout {
                        ssdm_obs::recorder()
                            .counter("ssdm_http_queue_timeouts_total")
                            .inc();
                        job.tenant.note_timed_out();
                        Response::text(503, "request timed out waiting for a worker")
                    } else {
                        let response = router::execute(&job.exec, &worker_registry);
                        job.tenant.note_done(response.status < 400);
                        response
                    };
                    worker_dispatch.finish(&tenant_name);
                    response.head_only = job.head_only;
                    let encoded = response.encode(job.keep_alive);
                    worker_done.lock().expect("http done queue").push(Done {
                        token: job.token,
                        seq: job.seq,
                        encoded,
                        close: !job.keep_alive,
                    });
                    let _ = (&waker_tx).write(&[1]);
                }
            },
            || {
                let result = reactor(
                    listener,
                    &config,
                    &shutdown,
                    waker_rx,
                    &registry,
                    &reactor_dispatch,
                    &done,
                );
                // Unblock the workers (queued jobs still drain).
                reactor_dispatch.close();
                result
            },
        )
    }
}

/// The event loop. Owns all connection state; never blocks on the
/// engine.
fn reactor(
    listener: TcpListener,
    config: &HttpConfig,
    shutdown: &AtomicBool,
    waker_rx: TcpStream,
    registry: &TenantRegistry,
    dispatch: &FairDispatch<Job>,
    done: &Mutex<Vec<Done>>,
) -> std::io::Result<()> {
    let poller = Poller::new()?;
    listener.set_nonblocking(true)?;
    poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    poller.add(waker_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ)?;
    if let Some(fd) = config.signal_fd {
        poller.add(fd, TOKEN_SIGNAL, Interest::READ)?;
    }

    let drain = DrainState::new();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events = Vec::new();
    let rec = ssdm_obs::recorder();

    loop {
        poller.wait(&mut events, Some(Duration::from_millis(200)))?;
        let mut touched: Vec<u64> = Vec::new();

        for ev in &events {
            match ev.token {
                TOKEN_LISTENER => {
                    accept_ready(
                        &listener,
                        &poller,
                        config,
                        &drain,
                        &mut conns,
                        &mut next_token,
                    );
                }
                TOKEN_WAKER => {
                    let mut sink = [0u8; 64];
                    while matches!((&waker_rx).read(&mut sink), Ok(n) if n > 0) {}
                }
                TOKEN_SIGNAL => {
                    if let Some(fd) = config.signal_fd {
                        if sys::drain_signal_fd(fd) > 0 && !drain.draining() {
                            drain.begin(config.drain_timeout);
                        }
                    }
                }
                token => {
                    let mut dead = false;
                    if let Some(conn) = conns.get_mut(&token) {
                        if (ev.readable || ev.hangup) && conn.fill(config.max_buffered).is_err() {
                            poller_forget(&poller, conn);
                            dead = true;
                        }
                        if !dead {
                            touched.push(token);
                        }
                    }
                    if dead {
                        conns.remove(&token);
                    }
                }
            }
        }

        if shutdown.load(Ordering::SeqCst) && !drain.draining() {
            drain.begin(config.drain_timeout);
        }

        // Deliver worker completions before pumping, so freed pipeline
        // slots parse further buffered requests in the same pass.
        let completed = std::mem::take(&mut *done.lock().expect("http done queue"));
        for d in completed {
            if let Some(conn) = conns.get_mut(&d.token) {
                conn.complete_inflight(d.seq, d.encoded, d.close);
                touched.push(d.token);
            }
        }

        touched.sort_unstable();
        touched.dedup();
        for token in touched {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            let finished = pump(conn, config, &drain, registry, dispatch, rec);
            if finished {
                poller_forget(&poller, conn);
            } else {
                let interest = Interest {
                    read: true,
                    write: conn.wants_write(),
                };
                let _ = poller.modify(conn.stream.as_raw_fd(), token, interest);
            }
            if finished {
                conns.remove(&token);
            }
        }

        // Timeout scan + drain progress.
        let now = Instant::now();
        let mut expired: Vec<u64> = Vec::new();
        for (token, conn) in &conns {
            let idle_too_long = now.duration_since(conn.last_activity) > config.idle_timeout;
            if (idle_too_long && conn.is_idle()) || (drain.draining() && conn.is_idle()) {
                expired.push(*token);
            }
        }
        for token in expired {
            if let Some(conn) = conns.get(&token) {
                poller_forget(&poller, conn);
            }
            conns.remove(&token);
        }

        if drain.draining() {
            // `remaining` floors at 10 ms, so that value means expired.
            let deadline_passed = drain
                .remaining()
                .map(|d| d <= Duration::from_millis(10))
                .unwrap_or(true);
            if conns.is_empty() || deadline_passed {
                return Ok(());
            }
        }
    }
}

fn poller_forget(poller: &Poller, conn: &Conn) {
    let _ = poller.delete(conn.stream.as_raw_fd());
}

/// Accept everything pending. During a drain new arrivals are dropped;
/// over the connection cap they get a one-line 503.
fn accept_ready(
    listener: &TcpListener,
    poller: &Poller,
    config: &HttpConfig,
    drain: &DrainState,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    let rec = ssdm_obs::recorder();
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if drain.draining() {
                    continue; // dropped: the listener is logically closed
                }
                if conns.len() >= config.max_connections {
                    rec.counter("ssdm_http_rejected_connections_total").inc();
                    let resp = Response::text(503, "connection limit reached");
                    let _ = stream.set_nonblocking(true);
                    let _ = (&stream).write(&resp.encode(false));
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if poller
                    .add(stream.as_raw_fd(), token, Interest::READ)
                    .is_ok()
                {
                    rec.counter("ssdm_http_connections_total").inc();
                    conns.insert(token, Conn::new(stream, token));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Advance one connection: parse buffered requests, dispatch or reject
/// jobs, flush output. Returns whether the connection is finished.
fn pump(
    conn: &mut Conn,
    config: &HttpConfig,
    drain: &DrainState,
    registry: &TenantRegistry,
    dispatch: &FairDispatch<Job>,
    rec: &'static ssdm_obs::Recorder,
) -> bool {
    // During a drain no *new* requests are taken; what is in flight
    // still completes and flushes below.
    if !drain.draining() {
        for d in conn.drain_input(&config.limits) {
            let keep_alive = d.keep_alive;
            let seq = d.seq;
            // Admission before any queueing: unknown tenant → 404,
            // over the req/s token bucket → 429.
            let tenant = match registry.admit(d.exec.tenant(), Instant::now()) {
                Ok(tenant) => tenant,
                Err(why) => {
                    rec.counter("ssdm_http_admission_rejects_total").inc();
                    let resp = Response::text(why.http_status(), why.message());
                    conn.complete_inflight(seq, resp.encode(keep_alive), !keep_alive);
                    continue;
                }
            };
            let caps = tenant.caps();
            let cost = d.exec.cost();
            let job = Job {
                token: conn.token,
                seq,
                exec: d.exec,
                head_only: d.head_only,
                keep_alive,
                enqueued: Instant::now(),
                tenant: Arc::clone(&tenant),
            };
            // DRR push enforces the tenant's in-flight cap (429) and
            // the server-wide queue bound (503) — admission control
            // now rather than unbounded buffering.
            match dispatch.push(&tenant.name, caps, cost, job) {
                Ok(()) => tenant.note_admitted(),
                Err(why) => {
                    rec.counter("ssdm_http_admission_rejects_total").inc();
                    tenant.note_rejected(&why);
                    let resp = Response::text(why.http_status(), why.message());
                    conn.complete_inflight(seq, resp.encode(keep_alive), !keep_alive);
                }
            }
        }
    }
    conn.flush() == FlushState::Closed
}

#[cfg(test)]
mod tests {
    use super::negotiate::ResultFormat;
    use super::*;
    use scisparql::QueryResult;
    use std::io::BufRead;

    fn start_server(
        config: HttpConfig,
    ) -> (
        SocketAddr,
        ShutdownHandle,
        std::thread::JoinHandle<std::io::Result<()>>,
    ) {
        let mut db = Ssdm::open(crate::Backend::Memory);
        db.query("INSERT DATA { <http://ex/s> <http://ex/p> 42 }")
            .unwrap();
        let server = HttpServer::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let engine = Arc::new(Mutex::new(db));
        let join = std::thread::spawn(move || server.serve(engine));
        (addr, handle, join)
    }

    /// Read one HTTP/1.1 response off a persistent reader; returns
    /// (status, headers, body). One `BufReader` per connection —
    /// creating a fresh one per response would lose pipelined bytes
    /// already pulled into the old reader's buffer.
    fn read_response(
        reader: &mut std::io::BufReader<TcpStream>,
    ) -> (u16, Vec<(String, String)>, Vec<u8>) {
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .unwrap();
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end().to_string();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().unwrap();
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, headers, body)
    }

    fn get(
        addr: SocketAddr,
        target: &str,
        accept: Option<&str>,
    ) -> (u16, Vec<(String, String)>, Vec<u8>) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let accept_line = accept
            .map(|a| format!("Accept: {a}\r\n"))
            .unwrap_or_default();
        stream
            .write_all(
                format!(
                    "GET {target} HTTP/1.1\r\nHost: t\r\n{accept_line}Connection: close\r\n\r\n"
                )
                .as_bytes(),
            )
            .unwrap();
        let mut reader = std::io::BufReader::new(stream);
        read_response(&mut reader)
    }

    #[test]
    fn query_round_trips_all_four_negotiated_formats() {
        let (addr, handle, join) = start_server(HttpConfig::default());
        let query = "SELECT ?o WHERE { <http://ex/s> <http://ex/p> ?o }";
        let target = format!(
            "/query?query={}",
            query
                .replace(' ', "%20")
                .replace('{', "%7B")
                .replace('}', "%7D")
                .replace('?', "%3F")
        );
        // The expected bytes come straight from the serializers — the
        // wire must match them exactly.
        let expected = QueryResult::Solutions {
            vars: vec!["o".into()],
            rows: vec![vec![Some(scisparql::Value::integer(42))]],
        };
        for (accept, format) in [
            ("application/sparql-results+json", ResultFormat::Json),
            ("application/sparql-results+xml", ResultFormat::Xml),
            ("text/csv", ResultFormat::Csv),
            ("text/tab-separated-values", ResultFormat::Tsv),
        ] {
            let (status, headers, body) = get(addr, &target, Some(accept));
            assert_eq!(status, 200, "format {accept}");
            assert_eq!(
                body,
                results::serialize(&expected, format),
                "format {accept}"
            );
            let ct = headers
                .iter()
                .find(|(n, _)| n == "content-type")
                .map(|(_, v)| v.as_str())
                .unwrap();
            assert!(ct.starts_with(accept), "content-type {ct} for {accept}");
        }
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn post_update_then_query_over_keep_alive_pipeline() {
        let (addr, handle, join) = start_server(HttpConfig::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let update = "INSERT DATA { <http://ex/s2> <http://ex/p> 7 }";
        let query = "ASK { <http://ex/s2> <http://ex/p> 7 }";
        // Two requests in one write: the update and, pipelined behind
        // it, the query that observes its effect.
        let wire = format!(
            "POST /update HTTP/1.1\r\nHost: t\r\nContent-Type: application/sparql-update\r\nContent-Length: {}\r\n\r\n{}POST /query HTTP/1.1\r\nHost: t\r\nContent-Type: application/sparql-query\r\nAccept: application/sparql-results+json\r\nContent-Length: {}\r\n\r\n{}",
            update.len(),
            update,
            query.len(),
            query
        );
        stream.write_all(wire.as_bytes()).unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let (status, _, body) = read_response(&mut reader);
        assert_eq!(status, 200);
        assert!(String::from_utf8_lossy(&body).contains("inserted 1"));
        let (status, _, body) = read_response(&mut reader);
        assert_eq!(status, 200);
        assert_eq!(
            String::from_utf8(body).unwrap(),
            r#"{"head":{},"boolean":true}"#
        );
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn metrics_health_and_errors() {
        let (addr, handle, join) = start_server(HttpConfig::default());
        let (status, _, body) = get(addr, "/metrics", None);
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("ssdm_"), "prometheus dump: {text}");

        let (status, _, _) = get(addr, "/healthz", None);
        assert_eq!(status, 200);
        let (status, _, _) = get(addr, "/nope", None);
        assert_eq!(status, 404);
        let (status, _, _) = get(addr, "/query", None);
        assert_eq!(status, 400);
        let (status, _, _) = get(addr, "/query?query=ASK%7B%7D", Some("image/png"));
        assert_eq!(status, 406);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn graceful_drain_closes_idle_keep_alive_connections() {
        let (addr, handle, join) = start_server(HttpConfig {
            drain_timeout: Duration::from_secs(2),
            ..HttpConfig::default()
        });
        // An idle keep-alive connection (one request answered, held
        // open) and a fresh never-used one.
        let mut used = TcpStream::connect(addr).unwrap();
        used.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        used.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut used = std::io::BufReader::new(used);
        let (status, _, _) = read_response(&mut used);
        assert_eq!(status, 200);
        let mut fresh = TcpStream::connect(addr).unwrap();
        fresh
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();

        let start = Instant::now();
        handle.shutdown();
        join.join().unwrap().unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drain should beat the idle timeout by far"
        );
        // Both sockets observe EOF.
        let mut buf = [0u8; 1];
        assert_eq!(used.read(&mut buf).unwrap_or(0), 0);
        assert_eq!(fresh.read(&mut buf).unwrap_or(0), 0);
    }

    #[test]
    fn connection_limit_answers_503() {
        let (addr, handle, join) = start_server(HttpConfig {
            max_connections: 2,
            ..HttpConfig::default()
        });
        let hold1 = TcpStream::connect(addr).unwrap();
        let hold2 = TcpStream::connect(addr).unwrap();
        // Make sure both are registered before the third arrives.
        std::thread::sleep(Duration::from_millis(300));
        let third = TcpStream::connect(addr).unwrap();
        third
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut third = std::io::BufReader::new(third);
        let (status, _, _) = read_response(&mut third);
        assert_eq!(status, 503);
        drop((hold1, hold2));
        handle.shutdown();
        join.join().unwrap().unwrap();
    }
}
