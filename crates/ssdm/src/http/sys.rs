//! Raw readiness syscalls for the HTTP event loop.
//!
//! The no-dependency mandate rules out `libc` and `mio`, so the epoll
//! surface the reactor needs — `epoll_create1` / `epoll_ctl` /
//! `epoll_pwait`, plus `signalfd4` and `rt_sigprocmask` for
//! signal-driven drain — is invoked directly with inline assembly on
//! Linux x86_64 and aarch64. Everything else (accepting, reading,
//! writing, closing sockets) goes through `std` in nonblocking mode, so
//! the unsafe surface stays confined to this module.
//!
//! On platforms without the assembly backend the [`Poller`] degrades to
//! a timed busy-poll that reports every registered interest as ready;
//! the nonblocking handlers above it simply observe `WouldBlock`.
//! Correct everywhere, efficient where the paper's deployments run.

#![allow(dead_code)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Readiness interest for one registered file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    pub read: bool,
    pub write: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    pub const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Peer hung up or the fd is in an error state; treat as readable
    /// so the handler observes EOF/error from the actual I/O call.
    pub hangup: bool,
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::*;

    // Syscall numbers for the two supported ABIs.
    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EPOLL_CREATE1: usize = 291;
        pub const SIGNALFD4: usize = 289;
        pub const RT_SIGPROCMASK: usize = 14;
        pub const CLOSE: usize = 3;
        pub const READ: usize = 0;
        pub const PRLIMIT64: usize = 302;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const EPOLL_CREATE1: usize = 20;
        pub const SIGNALFD4: usize = 74;
        pub const RT_SIGPROCMASK: usize = 135;
        pub const CLOSE: usize = 57;
        pub const READ: usize = 63;
        pub const PRLIMIT64: usize = 261;
    }

    /// Six-argument raw syscall. Returns the kernel's raw result:
    /// negative values are `-errno`.
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    // epoll constants (uapi/linux/eventpoll.h).
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;
    const EPOLL_CLOEXEC: usize = 0x80000;

    /// The kernel's `struct epoll_event`: packed on x86_64 (12 bytes),
    /// naturally aligned elsewhere (16 bytes on aarch64).
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// Readiness poller over a raw epoll instance.
    pub(crate) struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
            Ok(Poller { epfd: fd as RawFd })
        }

        fn ctl(&self, op: usize, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut events = EPOLLRDHUP;
            if interest.read {
                events |= EPOLLIN;
            }
            if interest.write {
                events |= EPOLLOUT;
            }
            let ev = EpollEvent {
                events,
                data: token,
            };
            check(unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    self.epfd as usize,
                    op,
                    fd as usize,
                    &ev as *const EpollEvent as usize,
                    0,
                    0,
                )
            })
            .map(|_| ())
        }

        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            // Pre-2.6.9 kernels demanded a non-null event for DEL; pass
            // one unconditionally, it is ignored on anything modern.
            let ev = EpollEvent { events: 0, data: 0 };
            check(unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    self.epfd as usize,
                    EPOLL_CTL_DEL,
                    fd as usize,
                    &ev as *const EpollEvent as usize,
                    0,
                    0,
                )
            })
            .map(|_| ())
        }

        /// Wait for readiness, filling `out` (cleared first). `timeout`
        /// of `None` blocks indefinitely.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; 128];
            let ms: isize = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(isize::MAX as u128 / 2) as isize,
            };
            let n = loop {
                let ret = unsafe {
                    syscall6(
                        nr::EPOLL_PWAIT,
                        self.epfd as usize,
                        buf.as_mut_ptr() as usize,
                        buf.len(),
                        ms as usize,
                        0, // no sigmask swap
                        8, // sigsetsize
                    )
                };
                match check(ret) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &buf[..n] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                let _ = syscall6(nr::CLOSE, self.epfd as usize, 0, 0, 0, 0, 0);
            }
        }
    }

    // Signal-driven drain: block the signals process-wide, then read
    // them as events from a signalfd registered in the poller.
    const SIG_BLOCK: usize = 0;
    const SFD_NONBLOCK: usize = 0x800;
    const SFD_CLOEXEC: usize = 0x80000;

    /// Block `signals` (numbers, e.g. `[15, 2]`) for the calling thread
    /// — call before spawning threads so the mask is inherited — and
    /// return a nonblocking signalfd that becomes readable when one of
    /// them is delivered.
    pub(crate) fn signal_fd(signals: &[i32]) -> io::Result<RawFd> {
        let mut mask = 0u64;
        for s in signals {
            mask |= 1u64 << (s - 1);
        }
        check(unsafe {
            syscall6(
                nr::RT_SIGPROCMASK,
                SIG_BLOCK,
                &mask as *const u64 as usize,
                0,
                8,
                0,
                0,
            )
        })?;
        let fd = check(unsafe {
            syscall6(
                nr::SIGNALFD4,
                usize::MAX, // -1: new fd
                &mask as *const u64 as usize,
                8,
                SFD_NONBLOCK | SFD_CLOEXEC,
                0,
                0,
            )
        })?;
        Ok(fd as RawFd)
    }

    /// Drain pending `signalfd_siginfo` records (128 bytes each) from a
    /// nonblocking signalfd. Returns how many signals were consumed.
    pub(crate) fn drain_signal_fd(fd: RawFd) -> usize {
        let mut consumed = 0;
        let mut buf = [0u8; 128];
        loop {
            let ret = unsafe {
                syscall6(
                    nr::READ,
                    fd as usize,
                    buf.as_mut_ptr() as usize,
                    buf.len(),
                    0,
                    0,
                    0,
                )
            };
            if ret == 128 {
                consumed += 1;
            } else {
                break;
            }
        }
        consumed
    }

    /// Raise the soft open-file limit toward `target` (clamped to the
    /// hard limit) so the event loop can actually hold thousands of
    /// connections. Returns the resulting soft limit.
    pub(crate) fn raise_nofile_limit(target: u64) -> io::Result<u64> {
        const RLIMIT_NOFILE: usize = 7;
        #[repr(C)]
        struct Rlimit64 {
            cur: u64,
            max: u64,
        }
        let mut current = Rlimit64 { cur: 0, max: 0 };
        check(unsafe {
            syscall6(
                nr::PRLIMIT64,
                0, // self
                RLIMIT_NOFILE,
                0, // no new limit yet
                &mut current as *mut Rlimit64 as usize,
                0,
                0,
            )
        })?;
        let wanted = Rlimit64 {
            cur: target.min(current.max),
            max: current.max,
        };
        if wanted.cur <= current.cur {
            return Ok(current.cur);
        }
        check(unsafe {
            syscall6(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                &wanted as *const Rlimit64 as usize,
                0,
                0,
                0,
            )
        })?;
        Ok(wanted.cur)
    }

    pub(crate) const NATIVE_EVENT_LOOP: bool = true;
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::*;
    use std::sync::Mutex;

    /// Portable fallback: a timed scan that reports every registered
    /// interest as ready each tick. The nonblocking handlers above
    /// observe `WouldBlock` for fds that are not actually ready, so the
    /// server stays correct at the cost of a bounded busy-poll.
    pub(crate) struct Poller {
        registered: Mutex<Vec<(RawFd, u64, Interest)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Mutex::new(Vec::new()),
            })
        }

        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.lock().unwrap().push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            for slot in reg.iter_mut() {
                if slot.0 == fd {
                    *slot = (fd, token, interest);
                    return Ok(());
                }
            }
            reg.push((fd, token, interest));
            Ok(())
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().retain(|r| r.0 != fd);
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            std::thread::sleep(
                timeout
                    .unwrap_or(Duration::from_millis(5))
                    .min(Duration::from_millis(5)),
            );
            for (_, token, interest) in self.registered.lock().unwrap().iter() {
                out.push(Event {
                    token: *token,
                    readable: interest.read,
                    writable: interest.write,
                    hangup: false,
                });
            }
            Ok(())
        }
    }

    pub(crate) fn signal_fd(_signals: &[i32]) -> io::Result<RawFd> {
        Err(io::Error::other(
            "signal-driven drain needs the Linux event-loop backend",
        ))
    }

    pub(crate) fn drain_signal_fd(_fd: RawFd) -> usize {
        0
    }

    pub(crate) fn raise_nofile_limit(_target: u64) -> io::Result<u64> {
        Ok(0)
    }

    pub(crate) const NATIVE_EVENT_LOOP: bool = false;
}

pub(crate) use imp::{drain_signal_fd, raise_nofile_limit, signal_fd, Poller};

/// Whether this build uses the native epoll backend (`true` on Linux
/// x86_64/aarch64) rather than the portable busy-poll fallback.
pub const fn native_event_loop() -> bool {
    imp::NATIVE_EVENT_LOOP
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_sees_listener_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        // Nothing pending yet on the native backend; the fallback may
        // report spuriously — either way accept() decides.
        let _client = TcpStream::connect(addr).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) && listener.accept().is_ok() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "listener readiness never delivered"
            );
        }
    }

    #[test]
    fn poller_write_interest_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .add(client.as_raw_fd(), 3, Interest::READ_WRITE)
            .unwrap();
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        // A fresh socket is writable immediately.
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 3 && e.writable) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no writability");
        }
        // Readability arrives with bytes.
        server_side.write_all(b"x").unwrap();
        server_side.flush().unwrap();
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 3 && e.readable) {
                let mut b = [0u8; 1];
                if (&client).read(&mut b).is_ok() {
                    assert_eq!(&b, b"x");
                    break;
                }
            }
            assert!(std::time::Instant::now() < deadline, "no readability");
        }
        // Interest can be narrowed and the fd deregistered.
        poller
            .modify(client.as_raw_fd(), 3, Interest::READ)
            .unwrap();
        poller.delete(client.as_raw_fd()).unwrap();
    }
}
