//! Exposing tabular (relational / spreadsheet) data as RDF with Arrays.
//!
//! The thesis surveys Relational-to-RDF mappings (§2.3.1) and the
//! spreadsheet-style Chelonia store (§2.3.4), whose tasks × variables
//! grid with array-valued cells "was mapped without changes" because
//! both sides support numeric arrays as values. This module implements
//! that: a [`Table`] of typed cells — including whole arrays — maps
//! into an RDF graph following the W3C Direct Mapping conventions
//! extended with array values:
//!
//! * the table name becomes an `rdf:type` class URI;
//! * each row becomes a subject — a URI minted from the key column when
//!   one is designated, else a blank node (the Direct Mapping rule for
//!   keyless tables);
//! * each column becomes a property; `NULL` cells emit no triple;
//! * array cells become array values directly (no list expansion).

use ssdm_array::NumArray;
use ssdm_rdf::{Graph, Term};

/// One cell of a table.
#[derive(Debug, Clone)]
pub enum Cell {
    Null,
    Int(i64),
    Real(f64),
    Str(String),
    Bool(bool),
    Array(NumArray),
}

impl Cell {
    fn to_term(&self) -> Option<Term> {
        match self {
            Cell::Null => None,
            Cell::Int(i) => Some(Term::integer(*i)),
            Cell::Real(r) => Some(Term::double(*r)),
            Cell::Str(s) => Some(Term::str(s.clone())),
            Cell::Bool(b) => Some(Term::Bool(*b)),
            Cell::Array(a) => Some(Term::Array(a.clone())),
        }
    }

    /// Render as a URI-safe key fragment.
    fn key_text(&self) -> Option<String> {
        match self {
            Cell::Int(i) => Some(i.to_string()),
            Cell::Str(s) => Some(
                s.chars()
                    .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                    .collect(),
            ),
            _ => None,
        }
    }
}

/// A named table with optional key column.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub columns: Vec<String>,
    /// Index of the primary-key column, if any.
    pub key: Option<usize>,
    pub rows: Vec<Vec<Cell>>,
}

/// Mapping report.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MappingReport {
    pub subjects: usize,
    pub triples: usize,
}

impl Table {
    /// Map this table into `graph` under the namespace `ns`
    /// (e.g. `http://example.org/db/`). Returns what was created.
    pub fn map_to_rdf(&self, graph: &mut Graph, ns: &str) -> MappingReport {
        let class = Term::uri(format!("{ns}{}", self.name));
        let type_p = Term::uri(ssdm_rdf::RDF_TYPE);
        let props: Vec<Term> = self
            .columns
            .iter()
            .map(|c| Term::uri(format!("{ns}{}#{c}", self.name)))
            .collect();
        let mut report = MappingReport::default();
        for (rownum, row) in self.rows.iter().enumerate() {
            let subject = match self.key.and_then(|k| row.get(k)).and_then(Cell::key_text) {
                Some(key) => Term::uri(format!("{ns}{}/{key}", self.name)),
                // Direct Mapping: rows without a primary key become
                // blank nodes.
                None => Term::blank(format!("{}_r{rownum}", self.name)),
            };
            report.subjects += 1;
            if graph.insert(subject.clone(), type_p.clone(), class.clone()) {
                report.triples += 1;
            }
            for (col, cell) in row.iter().enumerate() {
                if let Some(object) = cell.to_term() {
                    if graph.insert(subject.clone(), props[col].clone(), object) {
                        report.triples += 1;
                    }
                }
            }
        }
        report
    }
}

/// Parse a simple CSV (comma-separated, optional double quotes, no
/// embedded newlines) into a table. Cell types are inferred: integers,
/// reals, booleans, `NULL`/empty as null, bracketed space-separated
/// numbers (`[1 2 3]`) as array values, everything else as strings.
pub fn parse_csv(name: &str, text: &str, key_column: Option<&str>) -> Result<Table, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty CSV")?;
    let columns: Vec<String> = split_csv_line(header)
        .into_iter()
        .map(|c| c.trim().to_string())
        .collect();
    let key = match key_column {
        Some(kc) => Some(
            columns
                .iter()
                .position(|c| c == kc)
                .ok_or_else(|| format!("key column '{kc}' not in header"))?,
        ),
        None => None,
    };
    let mut rows = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let cells = split_csv_line(line);
        if cells.len() != columns.len() {
            return Err(format!(
                "row {} has {} cells, expected {}",
                lineno + 2,
                cells.len(),
                columns.len()
            ));
        }
        rows.push(cells.into_iter().map(|c| infer_cell(&c)).collect());
    }
    Ok(Table {
        name: name.to_string(),
        columns,
        key,
        rows,
    })
}

fn split_csv_line(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                if in_quotes && chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = !in_quotes;
                }
            }
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    out.push(cur);
    out
}

fn infer_cell(text: &str) -> Cell {
    let t = text.trim();
    if t.is_empty() || t.eq_ignore_ascii_case("null") {
        return Cell::Null;
    }
    if let Ok(i) = t.parse::<i64>() {
        return Cell::Int(i);
    }
    if let Ok(r) = t.parse::<f64>() {
        return Cell::Real(r);
    }
    if t.eq_ignore_ascii_case("true") {
        return Cell::Bool(true);
    }
    if t.eq_ignore_ascii_case("false") {
        return Cell::Bool(false);
    }
    if let Some(inner) = t.strip_prefix('[').and_then(|x| x.strip_suffix(']')) {
        let parts: Vec<&str> = inner.split_whitespace().collect();
        if !parts.is_empty() {
            if parts.iter().all(|p| p.parse::<i64>().is_ok()) {
                return Cell::Array(NumArray::from_i64(
                    parts.iter().map(|p| p.parse().expect("checked")).collect(),
                ));
            }
            if parts.iter().all(|p| p.parse::<f64>().is_ok()) {
                return Cell::Array(NumArray::from_f64(
                    parts.iter().map(|p| p.parse().expect("checked")).collect(),
                ));
            }
        }
    }
    Cell::Str(t.to_string())
}

impl crate::Ssdm {
    /// Map a table into the default graph (arrays above the threshold
    /// externalize as usual).
    pub fn load_table(&mut self, table: &Table, ns: &str) -> MappingReport {
        let report = table.map_to_rdf(&mut self.dataset.graph, ns);
        let _ = self.dataset.externalize_large_arrays();
        report
    }

    /// Parse CSV text and map it (see [`parse_csv`] for cell syntax).
    pub fn load_csv(
        &mut self,
        name: &str,
        text: &str,
        key_column: Option<&str>,
        ns: &str,
    ) -> Result<MappingReport, String> {
        let table = parse_csv(name, text, key_column)?;
        Ok(self.load_table(&table, ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, Ssdm};

    const CSV: &str = "\
task,k_1,k_a,realization,result,trajectory
1,32.159,79.279,1,true,[10 20 30 40]
2,19.151,39.044,1,false,[5 5 5 5]
3,27.5,44.0,2,true,
";

    #[test]
    fn csv_parsing_infers_types() {
        let t = parse_csv("bistab", CSV, Some("task")).unwrap();
        assert_eq!(t.columns.len(), 6);
        assert_eq!(t.rows.len(), 3);
        assert!(matches!(t.rows[0][1], Cell::Real(_)));
        assert!(matches!(t.rows[0][3], Cell::Int(1)));
        assert!(matches!(t.rows[0][4], Cell::Bool(true)));
        assert!(matches!(t.rows[0][5], Cell::Array(_)));
        assert!(matches!(t.rows[2][5], Cell::Null));
    }

    #[test]
    fn mapping_follows_direct_mapping_rules() {
        let mut db = Ssdm::open(Backend::Memory);
        let report = db
            .load_csv("bistab", CSV, Some("task"), "http://db/")
            .unwrap();
        assert_eq!(report.subjects, 3);
        // Keyed rows become URIs; the Fig. 2 spreadsheet shape appears
        // as one subject per task with one property per variable.
        let rows = db
            .query(
                r#"SELECT ?k (array_sum(?tr) AS ?s) WHERE {
                     <http://db/bistab/1> <http://db/bistab#k_1> ?k ;
                                          <http://db/bistab#trajectory> ?tr
                   }"#,
            )
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "32.159");
        assert_eq!(rows[0][1].as_ref().unwrap().to_string(), "100");
        // Null cells emit no triple.
        let r = db
            .query(r#"SELECT ?tr WHERE { <http://db/bistab/3> <http://db/bistab#trajectory> ?tr }"#)
            .unwrap()
            .into_rows()
            .unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn keyless_rows_become_blank_nodes() {
        let mut db = Ssdm::open(Backend::Memory);
        db.load_csv("log", "event,level\nboot,1\ncrash,2\n", None, "http://db/")
            .unwrap();
        let rows = db
            .query(r#"SELECT ?s WHERE { ?s a <http://db/log> FILTER (isBlank(?s)) }"#)
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn class_typing_queryable() {
        let mut db = Ssdm::open(Backend::Memory);
        db.load_csv("bistab", CSV, Some("task"), "http://db/")
            .unwrap();
        let rows = db
            .query(r#"SELECT (COUNT(?t) AS ?n) WHERE { ?t a <http://db/bistab> }"#)
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "3");
    }

    #[test]
    fn quoted_cells_and_escapes() {
        let t = parse_csv("x", "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n", None).unwrap();
        assert!(matches!(&t.rows[0][0], Cell::Str(s) if s == "hello, world"));
        assert!(matches!(&t.rows[0][1], Cell::Str(s) if s == "say \"hi\""));
    }

    #[test]
    fn ragged_csv_rejected() {
        assert!(parse_csv("x", "a,b\n1\n", None).is_err());
        assert!(parse_csv("x", "", None).is_err());
        assert!(parse_csv("x", "a,b\n1,2\n", Some("nope")).is_err());
    }
}
